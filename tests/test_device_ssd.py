"""Tests for the event-driven SSD controller."""

import numpy as np
import pytest

from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.device.ssd import SSD, run_trace
from repro.schemes import make_scheme
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


def cfg(overhead=0.0, **kwargs) -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=32),
        timing=TimingConfig(overhead_us=overhead),
        **kwargs,
    )


def trace_of(reqs) -> Trace:
    return Trace.from_requests(reqs, name="test")


class TestServiceTimes:
    def test_idle_read_latency_is_service_time(self):
        trace = trace_of([IORequest(0.0, OpKind.READ, 0, 1)])
        result = run_trace(make_scheme("baseline", cfg()), trace)
        assert result.response_times_us[0] == pytest.approx(12.0)

    def test_idle_write_latency(self):
        trace = trace_of([IORequest(0.0, OpKind.WRITE, 0, 2, (1, 2))])
        result = run_trace(make_scheme("baseline", cfg()), trace)
        # 2 pages on 2 channels: one 16us slot
        assert result.response_times_us[0] == pytest.approx(16.0)

    def test_overhead_charged_per_request(self):
        trace = trace_of([IORequest(0.0, OpKind.READ, 0, 1)])
        result = run_trace(make_scheme("baseline", cfg(overhead=20.0)), trace)
        assert result.response_times_us[0] == pytest.approx(32.0)

    def test_inline_write_pays_hash(self):
        trace = trace_of([IORequest(0.0, OpKind.WRITE, 0, 1, (7,))])
        base = run_trace(make_scheme("baseline", cfg()), trace)
        inline = run_trace(make_scheme("inline-dedupe", cfg()), trace)
        # hash 14 + lookup 1 serial before the 16us program
        assert inline.response_times_us[0] == pytest.approx(
            base.response_times_us[0] + 15.0
        )

    def test_inline_dup_write_skips_program(self):
        trace = trace_of(
            [
                IORequest(0.0, OpKind.WRITE, 0, 1, (7,)),
                IORequest(1000.0, OpKind.WRITE, 1, 1, (7,)),
            ]
        )
        result = run_trace(make_scheme("inline-dedupe", cfg()), trace)
        # dup page: hash+lookup plus metadata lookup, no 16us program
        assert result.response_times_us[1] == pytest.approx(14.0 + 1.0 + 1.0)

    def test_trim_is_metadata_only(self):
        trace = trace_of(
            [
                IORequest(0.0, OpKind.WRITE, 0, 1, (7,)),
                IORequest(1000.0, OpKind.TRIM, 0, 1),
            ]
        )
        result = run_trace(make_scheme("baseline", cfg()), trace)
        assert result.response_times_us[1] == pytest.approx(1.0)


class TestQueueing:
    def test_fifo_queueing_adds_wait(self):
        # two reads arriving together: the second waits for the first.
        trace = trace_of(
            [
                IORequest(0.0, OpKind.READ, 0, 1),
                IORequest(0.0, OpKind.READ, 1, 1),
            ]
        )
        result = run_trace(make_scheme("baseline", cfg()), trace)
        assert result.response_times_us[0] == pytest.approx(12.0)
        assert result.response_times_us[1] == pytest.approx(24.0)

    def test_idle_gap_resets_queue(self):
        trace = trace_of(
            [
                IORequest(0.0, OpKind.READ, 0, 1),
                IORequest(500.0, OpKind.READ, 1, 1),
            ]
        )
        result = run_trace(make_scheme("baseline", cfg()), trace)
        assert result.response_times_us[1] == pytest.approx(12.0)

    def test_all_requests_complete(self):
        reqs = [IORequest(float(i), OpKind.READ, i % 4, 1) for i in range(100)]
        result = run_trace(make_scheme("baseline", cfg()), trace_of(reqs))
        assert result.latency.count == 100

    def test_simulated_time_covers_trace(self):
        reqs = [IORequest(float(i * 10), OpKind.READ, 0, 1) for i in range(10)]
        result = run_trace(make_scheme("baseline", cfg()), trace_of(reqs))
        assert result.simulated_us >= 90.0


class TestGCInteraction:
    def overwrite_trace(self, config, rounds=3):
        lpns = int(config.logical_pages * 0.8)
        reqs = []
        t = 0.0
        fp = 0
        for _ in range(rounds):
            for lpn in range(lpns):
                reqs.append(IORequest(t, OpKind.WRITE, lpn, 1, (fp,)))
                t += 5.0
                fp += 1
        return trace_of(reqs)

    def test_gc_triggers_and_is_accounted(self):
        config = cfg()
        result = run_trace(make_scheme("baseline", config), self.overwrite_trace(config))
        assert result.gc.gc_invocations > 0
        assert result.gc.blocks_erased > 0
        assert result.gc.gc_busy_us > 0
        assert result.write_amplification() > 1.0

    def test_gc_inflates_some_latencies(self):
        config = cfg()
        result = run_trace(make_scheme("baseline", config), self.overwrite_trace(config))
        # a request that waited behind a GC burst sees >= erase latency
        assert result.latency.max_us >= config.timing.erase_us

    def test_run_result_fields(self):
        config = cfg()
        result = run_trace(make_scheme("cagc", config), self.overwrite_trace(config))
        assert result.scheme == "cagc"
        assert result.trace == "test"
        assert result.blocks_erased == result.gc.blocks_erased
        assert result.pages_migrated == result.gc.pages_migrated
        assert result.mean_response_us == result.latency.mean_us
        assert result.wear.total_erases == result.gc.blocks_erased

    def test_response_times_array_matches_count(self):
        config = cfg()
        result = run_trace(make_scheme("baseline", config), self.overwrite_trace(config))
        assert len(result.response_times_us) == result.latency.count
        assert (result.response_times_us >= 0).all()


class TestDeterminism:
    def test_replay_deterministic(self):
        config = cfg()
        reqs = [
            IORequest(float(i * 3), OpKind.WRITE, i % 50, 1, (i % 9,))
            for i in range(500)
        ]
        r1 = run_trace(make_scheme("cagc", config), trace_of(reqs))
        r2 = run_trace(make_scheme("cagc", config), trace_of(reqs))
        assert np.array_equal(r1.response_times_us, r2.response_times_us)
        assert r1.blocks_erased == r2.blocks_erased

    def test_ssd_reuse_rejected_semantics(self):
        """A fresh SSD per replay: replaying twice accumulates state, so
        run_trace constructs a new device each time."""
        config = cfg()
        scheme = make_scheme("baseline", config)
        ssd = SSD(scheme)
        trace = trace_of([IORequest(0.0, OpKind.WRITE, 0, 1, (1,))])
        ssd.replay(trace)
        assert scheme.io_counters.write_requests == 1

    def test_unknown_opcode_rejected(self):
        config = cfg()
        ssd = SSD(make_scheme("baseline", config))
        with pytest.raises(ValueError):
            ssd._service((0.0, 9, 0, 1, None))
