"""Property-based cross-scheme tests.

The fundamental FTL contract: whatever the scheme (Baseline,
Inline-Dedupe, CAGC), any sequence of writes, trims and GC bursts must
leave the *logical* state — the LPN -> content map — exactly what the
request stream dictates.  Dedup and GC may only change the physical
layout.
"""

from hypothesis import given, settings, strategies as st

from repro.config import GeometryConfig, SSDConfig
from repro.oracle.invariants import check_all
from repro.schemes import make_scheme

SCHEMES = ("baseline", "inline-dedupe", "cagc")


def tiny_cfg() -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=4, blocks=16),
        cold_region_ratio=0.5,
    )


#: op = (kind, lpn, content); kind 0=write 1=trim 2=gc
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=19),
        st.integers(min_value=0, max_value=6),
    ),
    max_size=120,
)


def apply_ops(scheme, ops):
    """Drive the scheme and an oracle dict with the same operations."""
    oracle = {}
    clock = 0.0
    for kind, lpn, content in ops:
        clock += 1.0
        if kind == 0:
            if scheme.needs_gc():
                scheme.run_gc(clock)
            scheme.write_page(lpn, content, clock)
            oracle[lpn] = content
        elif kind == 1:
            scheme.trim_request(lpn, 1, clock)
            oracle.pop(lpn, None)
        else:
            scheme.run_gc(clock)
    return oracle


class TestLogicalStatePreserved:
    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_baseline(self, ops):
        scheme = make_scheme("baseline", tiny_cfg())
        oracle = apply_ops(scheme, ops)
        assert scheme.logical_content() == oracle
        check_all(scheme, accounting=False)

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_inline_dedupe(self, ops):
        scheme = make_scheme("inline-dedupe", tiny_cfg())
        oracle = apply_ops(scheme, ops)
        assert scheme.logical_content() == oracle
        check_all(scheme, accounting=False)

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cagc(self, ops):
        scheme = make_scheme("cagc", tiny_cfg())
        oracle = apply_ops(scheme, ops)
        assert scheme.logical_content() == oracle
        check_all(scheme, accounting=False)


class TestCrossSchemeEquivalence:
    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_all_schemes_agree_on_logical_state(self, ops):
        states = []
        for name in SCHEMES:
            scheme = make_scheme(name, tiny_cfg())
            apply_ops(scheme, ops)
            states.append(scheme.logical_content())
        assert states[0] == states[1] == states[2]


class TestPhysicalEconomy:
    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_inline_never_programs_more_than_baseline(self, ops):
        base = make_scheme("baseline", tiny_cfg())
        inline = make_scheme("inline-dedupe", tiny_cfg())
        apply_ops(base, ops)
        apply_ops(inline, ops)
        assert (
            inline.io_counters.user_pages_programmed
            <= base.io_counters.user_pages_programmed
        )

    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_refcount_equals_mapping_sharers(self, ops):
        scheme = make_scheme("cagc", tiny_cfg())
        apply_ops(scheme, ops)
        for ppn in scheme.mapping.mapped_ppns():
            assert scheme.mapping.refcount(ppn) >= 1

    @given(ops=ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_cagc_index_entries_point_at_valid_pages(self, ops):
        from repro.flash.chip import PageState

        scheme = make_scheme("cagc", tiny_cfg())
        apply_ops(scheme, ops)
        for ppn in list(scheme.mapping.mapped_ppns()):
            if scheme.index.contains_ppn(ppn):
                assert scheme.flash.state_of(ppn) == PageState.VALID
                assert scheme.index.peek(scheme.page_fp[ppn]) == ppn
