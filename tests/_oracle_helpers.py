"""Shared bug-injection helpers for the oracle test suite.

These deliberately corrupt FTL internals so the tests can prove the
differential harness *detects* real bugs — not just that clean code
passes.  Each injection is a context manager restoring the original
behaviour on exit, so test pollution is impossible even on failure.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.ftl.gc.index import VictimIndex


@contextmanager
def victim_index_off_by_one():
    """Re-introduce an off-by-one in victim-index maintenance.

    When an already-indexed block gains an invalid page, the patched
    hook records ``invalid - 1`` instead of ``invalid``, so the block
    stays one bucket behind the flash array's true count.  Logical
    state is untouched — only ``check_consistency`` (via
    ``repro.oracle.invariants.check_all`` after a GC burst or at end of
    trace) can catch it, which is exactly what the differential harness
    must demonstrate.

    The minimal trigger is one full block plus two invalidations of its
    pages: the first makes the block a member (correct path), the
    second takes the buggy member branch.
    """
    original = VictimIndex.on_invalidate

    def buggy(self, block: int, invalid: int) -> None:
        if self._bucket_of[block] >= 0:
            original(self, block, invalid - 1)
        else:
            original(self, block, invalid)

    VictimIndex.on_invalidate = buggy
    try:
        yield
    finally:
        VictimIndex.on_invalidate = original
