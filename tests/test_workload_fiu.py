"""Tests for FIU presets and trace sizing."""

import pytest

from repro.config import small_config
from repro.workloads.fiu import FIU_PRESETS, build_fiu_trace


class TestPresets:
    def test_table2_values(self):
        assert FIU_PRESETS["mail"].write_ratio == pytest.approx(0.698)
        assert FIU_PRESETS["mail"].dedup_ratio == pytest.approx(0.893)
        assert FIU_PRESETS["homes"].dedup_ratio == pytest.approx(0.300)
        assert FIU_PRESETS["web-vm"].avg_req_pages == pytest.approx(40.8 / 4.0)

    def test_all_presets_validate(self):
        for preset in FIU_PRESETS.values():
            preset.validate()

    def test_webmail_included_for_fig2(self):
        assert "webmail" in FIU_PRESETS


class TestBuildFiuTrace:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            build_fiu_trace("nope", small_config())

    def test_lpn_space_respects_utilization(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("homes", cfg, n_requests=2000, lpn_utilization=0.5)
        assert trace.max_lpn() < int(cfg.logical_pages * 0.5)

    def test_fill_factor_sizes_trace(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        t1 = build_fiu_trace("mail", cfg, n_requests=0, fill_factor=1.0)
        t3 = build_fiu_trace("mail", cfg, n_requests=0, fill_factor=3.0)
        assert 2.5 < len(t3) / len(t1) < 3.5
        # total written volume ~ fill_factor * physical pages
        assert t3.written_page_count() == pytest.approx(
            3.0 * cfg.geometry.total_pages, rel=0.15
        )

    def test_explicit_n_requests_wins(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("mail", cfg, n_requests=1234)
        assert len(trace) == 1234

    def test_seed_override_changes_content(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        a = build_fiu_trace("mail", cfg, n_requests=500, seed=1)
        b = build_fiu_trace("mail", cfg, n_requests=500, seed=2)
        assert not (a.fps_flat[: len(b.fps_flat)] == b.fps_flat[: len(a.fps_flat)]).all()

    def test_characteristics_match_table2(self):
        cfg = small_config(blocks=128, pages_per_block=32)
        for name, preset in FIU_PRESETS.items():
            trace = build_fiu_trace(name, cfg, n_requests=8000)
            stats = trace.stats()
            assert stats.write_ratio == pytest.approx(preset.write_ratio, abs=0.03)
            assert stats.avg_req_kb == pytest.approx(preset.avg_req_pages * 4, rel=0.15)
            # dedup ratio approaches the target from below (pool warmup)
            assert stats.dedup_ratio <= preset.dedup_ratio + 0.03
            assert stats.dedup_ratio >= preset.dedup_ratio - 0.12
