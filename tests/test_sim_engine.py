"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventQueue, SimulationError, Simulator
from repro.sim.events import Event, EventKind


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0)
        q.push(1.0)
        q.push(3.0)
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_equal_time_orders_by_kind(self):
        q = EventQueue()
        q.push(1.0, EventKind.REQUEST_ARRIVAL)
        q.push(1.0, EventKind.OP_COMPLETE)
        assert q.pop().kind == EventKind.OP_COMPLETE
        assert q.pop().kind == EventKind.REQUEST_ARRIVAL

    def test_equal_time_and_kind_fifo(self):
        q = EventQueue()
        first = q.push(1.0, EventKind.GENERIC, payload="a")
        second = q.push(1.0, EventKind.GENERIC, payload="b")
        assert q.pop() is first
        assert q.pop() is second

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e = q.push(1.0)
        q.push(2.0)
        assert len(q) == 2
        q.cancel(e)
        assert len(q) == 1

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, payload="dead")
        q.push(2.0, payload="live")
        q.cancel(e1)
        assert q.pop().payload == "live"

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        e = q.push(1.0)
        q.push(2.0)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0)
        q.push(3.0)
        assert q.peek_time() == 3.0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0)
        q.push(4.0)
        q.cancel(e)
        assert q.peek_time() == 4.0


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(10.0, callback=lambda e: times.append(sim.now))
        sim.schedule(5.0, callback=lambda e: times.append(sim.now))
        sim.run()
        assert times == [5.0, 10.0]
        assert sim.now == 10.0

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0)

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def chain(event):
            seen.append(sim.now)
            if len(seen) < 3:
                sim.schedule(1.0, callback=chain)

        sim.schedule(1.0, callback=chain)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(100.0, callback=lambda e: fired.append(1))
        sim.run(until=50.0)
        assert not fired
        assert sim.now == 50.0
        sim.run()
        assert fired

    def test_run_until_past_last_event_advances_clock(self):
        sim = Simulator()
        sim.schedule(5.0)
        sim.run(until=80.0)
        assert sim.now == 80.0

    def test_max_events(self):
        sim = Simulator()
        count = []
        for _ in range(10):
            sim.schedule(1.0, callback=lambda e: count.append(1))
        sim.run(max_events=4)
        assert len(count) == 4

    def test_step_on_empty_returns_false(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i))
        sim.run()
        assert sim.events_processed == 5

    def test_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            order = []
            for i in range(50):
                sim.schedule(
                    float(i % 7),
                    kind=EventKind(i % 4),
                    callback=lambda e, i=i: order.append(i),
                )
            sim.run()
            return order

        assert run_once() == run_once()


class TestEvent:
    def test_cancel_marks_dead(self):
        e = Event(time=0.0, kind=EventKind.GENERIC, seq=0)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled
