"""Tests for the flash array state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GeometryConfig
from repro.flash.chip import FlashArray, PageState
from repro.flash.errors import EraseError, InvalidAddressError, ProgramError


@pytest.fixture
def flash() -> FlashArray:
    return FlashArray(GeometryConfig(channels=2, pages_per_block=4, blocks=8))


class TestProgram:
    def test_program_returns_sequential_ppns(self, flash):
        assert flash.program(0) == 0
        assert flash.program(0) == 1
        assert flash.program(3) == 12

    def test_program_marks_valid(self, flash):
        ppn = flash.program(2)
        assert flash.state_of(ppn) == PageState.VALID
        assert flash.valid_count[2] == 1

    def test_program_full_block_raises(self, flash):
        for _ in range(4):
            flash.program(0)
        with pytest.raises(ProgramError):
            flash.program(0)

    def test_program_bad_block_raises(self, flash):
        with pytest.raises(InvalidAddressError):
            flash.program(99)

    def test_program_records_write_time(self, flash):
        flash.program(1, now_us=123.5)
        assert flash.last_write_us[1] == 123.5

    def test_total_programs_counter(self, flash):
        for _ in range(3):
            flash.program(0)
        assert flash.total_programs == 3


class TestInvalidate:
    def test_invalidate_flips_state(self, flash):
        ppn = flash.program(0)
        flash.invalidate(ppn)
        assert flash.state_of(ppn) == PageState.INVALID
        assert flash.valid_count[0] == 0
        assert flash.invalid_count[0] == 1

    def test_invalidate_free_page_raises(self, flash):
        with pytest.raises(ProgramError):
            flash.invalidate(0)

    def test_double_invalidate_raises(self, flash):
        ppn = flash.program(0)
        flash.invalidate(ppn)
        with pytest.raises(ProgramError):
            flash.invalidate(ppn)


class TestErase:
    def test_erase_with_valid_pages_refused(self, flash):
        flash.program(0)
        with pytest.raises(EraseError):
            flash.erase(0)

    def test_erase_resets_block(self, flash):
        ppns = [flash.program(0) for _ in range(4)]
        for ppn in ppns:
            flash.invalidate(ppn)
        flash.erase(0)
        assert flash.invalid_count[0] == 0
        assert flash.write_ptr[0] == 0
        assert flash.erase_count[0] == 1
        assert all(flash.state_of(p) == PageState.FREE for p in ppns)

    def test_erased_block_reprogrammable(self, flash):
        ppn = flash.program(0)
        flash.invalidate(ppn)
        flash.erase(0)
        assert flash.program(0) == 0

    def test_erase_empty_block_allowed(self, flash):
        flash.erase(5)
        assert flash.erase_count[5] == 1

    def test_total_erases_counter(self, flash):
        flash.erase(0)
        flash.erase(1)
        assert flash.total_erases == 2


class TestQueries:
    def test_free_pages_in(self, flash):
        assert flash.free_pages_in(0) == 4
        flash.program(0)
        assert flash.free_pages_in(0) == 3

    def test_valid_ppns_in(self, flash):
        a = flash.program(0)
        b = flash.program(0)
        flash.invalidate(a)
        assert flash.valid_ppns_in(0) == [b]

    def test_block_info_snapshot(self, flash):
        flash.program(0, now_us=9.0)
        info = flash.block_info(0)
        assert info.valid_pages == 1
        assert info.free_pages == 3
        assert info.last_write_us == 9.0
        assert info.utilization == 0.25
        assert not info.is_full
        assert not info.is_clean

    def test_iter_blocks_covers_all(self, flash):
        assert len(list(flash.iter_blocks())) == 8


class TestInvariants:
    def test_invariants_hold_through_lifecycle(self, flash):
        ppns = [flash.program(0) for _ in range(4)]
        flash.check_invariants()
        flash.invalidate(ppns[1])
        flash.check_invariants()
        for p in (ppns[0], ppns[2], ppns[3]):
            flash.invalidate(p)
        flash.erase(0)
        flash.check_invariants()

    @given(ops=st.lists(st.integers(min_value=0, max_value=2), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_random_legal_ops_keep_invariants(self, ops):
        """Drive random legal operations; counters must track states."""
        flash = FlashArray(GeometryConfig(channels=2, pages_per_block=4, blocks=4))
        live = []
        for op in ops:
            if op == 0:  # program somewhere with room
                for block in range(flash.blocks):
                    if flash.free_pages_in(block) > 0:
                        live.append(flash.program(block))
                        break
            elif op == 1 and live:  # invalidate oldest live page
                flash.invalidate(live.pop(0))
            elif op == 2:  # erase first erasable block
                for block in range(flash.blocks):
                    if flash.valid_count[block] == 0 and flash.write_ptr[block] > 0:
                        flash.erase(block)
                        break
        flash.check_invariants()
