"""Tests for the region-aware (hot-first) victim policy."""

import numpy as np
import pytest

from repro.config import GeometryConfig, SSDConfig
from repro.core.cagc import CAGCScheme
from repro.flash.chip import FlashArray
from repro.ftl.allocator import BlockAllocator, Region
from repro.ftl.gc import GreedyPolicy, RegionAwarePolicy


def setup_two_region_flash():
    flash = FlashArray(GeometryConfig(channels=1, pages_per_block=4, blocks=8))
    alloc = BlockAllocator(flash)
    # block 0: hot, fully written, 2 invalid
    hot_ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
    for ppn in hot_ppns[:2]:
        flash.invalidate(ppn)
    # block 1: cold, fully written, 3 invalid (greedier choice!)
    cold_ppns = [alloc.allocate_page(Region.COLD) for _ in range(4)]
    for ppn in cold_ppns[:3]:
        flash.invalidate(ppn)
    # retire active slots so both blocks are victim-eligible
    for _ in range(4):
        alloc.allocate_page(Region.HOT)
    for _ in range(4):
        alloc.allocate_page(Region.COLD)
    return flash, alloc


class TestRegionAwarePolicy:
    def test_prefers_hot_even_when_cold_is_greedier(self):
        flash, alloc = setup_two_region_flash()
        policy = RegionAwarePolicy(GreedyPolicy(), alloc)
        victim = policy.select(flash, alloc.victim_candidates_mask(), 0.0)
        assert victim == 0  # hot block despite fewer invalid pages

    def test_falls_back_to_cold_when_no_hot_victim(self):
        flash, alloc = setup_two_region_flash()
        mask = alloc.victim_candidates_mask()
        mask[0] = False  # no hot candidates left
        policy = RegionAwarePolicy(GreedyPolicy(), alloc)
        assert policy.select(flash, mask, 0.0) == 1

    def test_none_when_no_candidates(self):
        flash, alloc = setup_two_region_flash()
        policy = RegionAwarePolicy(GreedyPolicy(), alloc)
        empty = np.zeros(flash.blocks, dtype=bool)
        assert policy.select(flash, empty, 0.0) is None

    def test_name_reflects_base(self):
        flash, alloc = setup_two_region_flash()
        assert RegionAwarePolicy(GreedyPolicy(), alloc).name == "hot-first(greedy)"


class TestCAGCIntegration:
    def test_prefer_hot_victims_option_wraps_policy(self):
        config = SSDConfig(
            geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=16),
            cold_region_ratio=0.5,
        )
        scheme = CAGCScheme(config, prefer_hot_victims=True)
        assert isinstance(scheme.policy, RegionAwarePolicy)

    def test_run_with_hot_preference_stays_consistent(self):
        config = SSDConfig(
            geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=16),
            cold_region_ratio=0.5,
        )
        scheme = CAGCScheme(config, prefer_hot_victims=True)
        fp = 0
        lpns = int(config.logical_pages * 0.9)
        for _ in range(5):
            for lpn in range(lpns):
                if scheme.needs_gc():
                    scheme.run_gc(0.0)
                content = fp % 7 if lpn % 2 == 0 else 10_000 + fp
                scheme.write_page(lpn, content, 0.0)
                fp += 1
        scheme.check_invariants()
        assert scheme.gc_counters.blocks_erased > 0
