"""Property tests for the array's deterministic plumbing.

Hypothesis sweeps the structural invariants the equivalence suite
relies on but does not itself probe:

* the multiplexer's merge is a *stable* sort by ``(time, tenant,
  seq)`` — per-tenant order is preserved, ties break by tenant id,
  and re-multiplexing is a pure function of the inputs;
* routing is a pure function of the LPN: the split partitions the
  merged stream without reordering, rebases correctly, and round-trips;
* the NCQ gate never admits past its depth, for any depth;
* replaying the same merged trace twice is bit-identical.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.array import RangeRouter, SSDArray
from repro.config import small_config
from repro.oracle.diff import build_scheme
from repro.workloads.multiplex import (
    demultiplex_lpns,
    multiplex_traces,
    tenant_layout,
)
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

_W, _R = int(OpKind.WRITE), int(OpKind.READ)


def _tenant_trace(rng: np.random.Generator, n: int, span: int, name: str) -> Trace:
    """A small, time-sorted single-tenant trace with integer-valued
    timestamps (coarse enough to force plenty of cross-tenant ties)."""
    times = np.sort(rng.integers(0, max(2, n // 2), size=n)).astype(np.float64)
    ops = np.where(rng.random(n) < 0.7, _W, _R).astype(np.uint8)
    lpns = rng.integers(0, span, size=n).astype(np.int64)
    npages = np.ones(n, dtype=np.int32)
    fp_counts = np.where(ops == _W, 1, 0)
    fp_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(fp_counts, out=fp_offsets[1:])
    fps_flat = rng.integers(1 << 20, 1 << 21, size=int(fp_offsets[-1])).astype(
        np.int64
    )
    return Trace(times, ops, lpns, npages, fps_flat, fp_offsets, name=name)


class TestTenantLayout:
    @given(
        tenants=st.integers(min_value=1, max_value=12),
        devices=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_windows_disjoint_and_contained(self, tenants, devices):
        pages = 4096
        placements = tenant_layout(tenants, devices, pages)
        for p in placements:
            assert 0 <= p.device < devices
            lo, hi = p.base_lpn, p.base_lpn + p.span
            assert p.device * pages <= lo and hi <= (p.device + 1) * pages
        windows = sorted((p.base_lpn, p.base_lpn + p.span) for p in placements)
        for (_, hi), (lo, _) in zip(windows, windows[1:]):
            assert hi <= lo, "tenant windows overlap"


class TestMergeOrder:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        tenants=st.integers(min_value=1, max_value=5),
        devices=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_stable_sort_by_time_tenant_seq(self, seed, tenants, devices):
        rng = np.random.default_rng(seed)
        pages = 1024
        placements = tenant_layout(tenants, devices, pages)
        traces = [
            _tenant_trace(rng, int(rng.integers(1, 40)), placements[t].span, f"t{t}")
            for t in range(tenants)
        ]
        merged = multiplex_traces(traces, devices, pages)
        assert len(merged) == sum(len(t) for t in traces)
        # (time, tenant) lexicographic, i.e. ties break by tenant id.
        keys = list(zip(merged.times_us.tolist(), merged.tenant_ids.tolist()))
        assert keys == sorted(keys)
        # Stability: each tenant's subsequence is its trace, in order.
        for t, (trace, placement) in enumerate(zip(traces, placements)):
            mask = merged.tenant_ids == t
            assert np.array_equal(merged.times_us[mask], trace.times_us)
            assert np.array_equal(merged.ops[mask], trace.ops)
            assert np.array_equal(
                merged.lpns[mask] - placement.base_lpn, trace.lpns
            )
        # Tenant tags are redundant with the LPN windows.
        assert np.array_equal(
            demultiplex_lpns(merged.lpns, placements), merged.tenant_ids
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_merge_is_pure(self, seed):
        rng = np.random.default_rng(seed)
        traces = [_tenant_trace(rng, 30, 256, f"t{t}") for t in range(3)]
        a = multiplex_traces(traces, 2, 1024)
        b = multiplex_traces(traces, 2, 1024)
        for col in ("times_us", "ops", "lpns", "npages", "fps_flat", "fp_offsets"):
            assert np.array_equal(getattr(a, col), getattr(b, col))
        assert np.array_equal(a.tenant_ids, b.tenant_ids)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_fingerprints_follow_their_request(self, seed):
        rng = np.random.default_rng(seed)
        traces = [_tenant_trace(rng, 25, 256, f"t{t}") for t in range(3)]
        merged = multiplex_traces(traces, 3, 1024)
        by_tenant = {t: iter(tr.iter_rows()) for t, tr in enumerate(traces)}
        for i, row in enumerate(merged.iter_rows()):
            want = next(by_tenant[int(merged.tenant_ids[i])])
            got_fps = [] if row[4] is None else row[4].tolist()
            want_fps = [] if want[4] is None else want[4].tolist()
            assert got_fps == want_fps


class TestRouterPurity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        devices=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_device_of_is_pure_and_split_consistent(self, seed, devices):
        rng = np.random.default_rng(seed)
        pages = 512
        router = RangeRouter(devices, pages)
        trace = _tenant_trace(rng, 60, devices * pages, "flat")
        split = router.split(trace)
        assert len(split) == devices
        assert sum(len(sub) for sub, _ in split) == len(trace)
        for device, (sub, _) in enumerate(split):
            # Rebased into the device-local space...
            assert np.all(sub.lpns >= 0) and np.all(sub.lpns < pages)
            # ...and routing each global LPN individually agrees.
            global_lpns = sub.lpns + device * pages
            for lpn in global_lpns.tolist():
                assert router.device_of(lpn) == device
            # Relative order within the device is preserved.
            assert np.all(np.diff(sub.times_us) >= 0)
        # Round-trip: reassembling by device recovers the multiset of
        # (time, op, global lpn) rows exactly.
        rebuilt = sorted(
            (t, o, l + d * pages)
            for d, (sub, _) in enumerate(split)
            for t, o, l in zip(
                sub.times_us.tolist(), sub.ops.tolist(), sub.lpns.tolist()
            )
        )
        original = sorted(
            zip(trace.times_us.tolist(), trace.ops.tolist(), trace.lpns.tolist())
        )
        assert rebuilt == original


class TestNCQBound:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        depth=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=15, deadline=None)
    def test_inflight_never_exceeds_depth(self, seed, depth):
        rng = np.random.default_rng(seed)
        cfg = small_config(blocks=32, pages_per_block=8, gc_mode="blocking")
        traces = [
            _tenant_trace(rng, 120, cfg.logical_pages // 1, f"t{t}")
            for t in range(2)
        ]
        merged = multiplex_traces(traces, 2, cfg.logical_pages)
        schemes = [build_scheme("baseline", "greedy", cfg) for _ in range(2)]
        result = SSDArray(schemes, ncq_depth=depth).replay(merged)
        assert all(peak <= depth for peak in result.ncq_peaks)
        assert result.requests_completed == len(merged)


class TestReplayDeterminism:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_same_trace_twice_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        cfg = small_config(blocks=32, pages_per_block=8, gc_mode="blocking")
        traces = [
            _tenant_trace(rng, 150, cfg.logical_pages, f"t{t}") for t in range(2)
        ]
        merged = multiplex_traces(traces, 2, cfg.logical_pages)
        runs = []
        for _ in range(2):
            schemes = [build_scheme("cagc", "greedy", cfg) for _ in range(2)]
            result = SSDArray(
                schemes, coordination="staggered", ncq_depth=6
            ).replay(merged)
            runs.append(result)
        a, b = runs
        for da, db in zip(a.devices, b.devices):
            assert np.array_equal(da.response_times_us, db.response_times_us)
            assert da.gc == db.gc and da.io == db.io
        assert np.array_equal(a.telemetry.hist.counts, b.telemetry.hist.counts)
        assert a.coord_stats == b.coord_stats
        assert a.simulated_us == b.simulated_us
