"""Tests for the multi-lane hash engine (coprocessor model)."""

import dataclasses

import pytest

from repro.config import TimingConfig, small_config
from repro.core.pipeline import GCPipeline
from repro.device.ssd import run_trace
from repro.flash.timing import FlashTiming
from repro.schemes import make_scheme
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


class TestInlineCost:
    def test_single_lane_serial(self):
        t = FlashTiming(TimingConfig(hash_lanes=1))
        assert t.inline_dedup_us(4) == 4 * 14.0 + 4 * 1.0

    def test_four_lanes_quarter_hash_time(self):
        t = FlashTiming(TimingConfig(hash_lanes=4))
        assert t.inline_dedup_us(4) == 14.0 + 4 * 1.0

    def test_partial_batch_rounds_up(self):
        t = FlashTiming(TimingConfig(hash_lanes=4))
        assert t.inline_dedup_us(5) == 2 * 14.0 + 5 * 1.0

    def test_lanes_validation(self):
        with pytest.raises(ValueError):
            TimingConfig(hash_lanes=0).validate()


class TestPipelineLanes:
    def test_more_lanes_never_slower(self):
        def makespan(lanes, pages=32):
            t = FlashTiming(TimingConfig(hash_lanes=lanes))
            pipe = GCPipeline(t)
            for _ in range(pages):
                pipe.process_page(write=False)
            return pipe.finish()

        assert makespan(4) <= makespan(2) <= makespan(1)

    def test_lanes_remove_hash_bottleneck(self):
        """With hash > read, one lane bottlenecks on hashing; enough
        lanes shift the bottleneck back to the read path."""
        slow_hash = TimingConfig(read_us=10.0, hash_us=40.0, lookup_us=0.0)
        one = GCPipeline(FlashTiming(slow_hash))
        many = GCPipeline(FlashTiming(dataclasses.replace(slow_hash, hash_lanes=8)))
        for _ in range(32):
            one.process_page(write=False)
            many.process_page(write=False)
        erase = slow_hash.erase_us
        assert one.finish() - erase >= 32 * 40.0  # hash-bound
        # 8 lanes: bound by the read stream (320us) plus one hash (40us)
        assert many.finish() - erase == pytest.approx(32 * 10.0 + 40.0)


class TestDeviceLevel:
    def test_coprocessor_shrinks_inline_overhead(self):
        trace = Trace.from_requests(
            [IORequest(float(i * 1000), OpKind.WRITE, i, 4, (i * 4, i * 4 + 1, i * 4 + 2, i * 4 + 3)) for i in range(50)]
        )
        means = {}
        for lanes in (1, 4):
            cfg = small_config(blocks=64, pages_per_block=16)
            cfg = dataclasses.replace(
                cfg, timing=dataclasses.replace(cfg.timing, hash_lanes=lanes)
            )
            result = run_trace(make_scheme("inline-dedupe", cfg), trace)
            means[lanes] = result.latency.mean_us
        assert means[4] < means[1]
