"""Extended experiment-harness tests (quick scale)."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.fig7_placement_example import run_placement_demo


class TestFig7:
    def test_placement_demo_separates_regions(self):
        data = run_placement_demo()
        assert data["cold"]["mean_refcount"] >= 2.0
        assert data["hot"]["mean_refcount"] < data["cold"]["mean_refcount"]

    def test_report_renders(self):
        report = run_experiment("fig7", scale="quick")
        assert "cold" in report.data and "hot" in report.data
        assert str(report)


class TestFig13Quick:
    def test_all_policies_positive_migration_cut(self):
        report = run_experiment("fig13", scale="quick")
        for workload, per_policy in report.data["pages_migrated"].items():
            for policy, cut in per_policy.items():
                assert cut > 0.0, (workload, policy)

    def test_rows_cover_grid(self):
        report = run_experiment("fig13", scale="quick")
        assert len(report.rows) == 9  # 3 workloads x 3 policies


class TestAblationReports:
    @pytest.mark.parametrize(
        "experiment_id",
        [
            "ablation-threshold",
            "ablation-placement",
            "ablation-hash-latency",
            "ablation-op-space",
            "ablation-gc-mode",
            "ablation-separation",
            "ablation-write-buffer",
            "ablation-hot-victims",
            "ablation-channels",
        ],
    )
    def test_every_ablation_runs_at_quick_scale(self, experiment_id):
        report = run_experiment(experiment_id, scale="quick")
        assert report.rows
        assert report.data
        assert str(report)


class TestDataSchemas:
    def test_fig9_data_schema(self):
        report = run_experiment("fig9", scale="quick")
        for workload in ("homes", "web-vm", "mail"):
            row = report.data[workload]
            assert set(row) == {
                "baseline",
                "cagc",
                "reduction_pct",
                "paper_reduction_pct",
            }

    def test_fig11_inline_also_reported(self):
        report = run_experiment("fig11", scale="quick")
        for workload in ("homes", "web-vm", "mail"):
            assert "inline_mean_us" in report.data[workload]

    def test_fig12_cdf_arrays_usable(self):
        report = run_experiment("fig12", scale="quick")
        xs, fs = report.data["mail"]["cagc_cdf"]
        assert len(xs) == len(fs) == 100
        assert fs[-1] == pytest.approx(1.0)
