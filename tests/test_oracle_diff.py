"""Property tests: the real FTL agrees with the reference oracle.

Every scheme x GC-policy combination replays a battery of seeded
adversarial fuzz traces through ``repro.oracle.diff.diff_trace`` and
must never diverge — on logical content, refcounts, live-page bounds,
request counters, the program/erase conservation laws, or any
structural invariant.  The seed count is tunable at the command line
(``pytest --oracle-seeds 50``); a deeper sweep lives behind the
opt-in ``oracle`` marker (``pytest -m oracle``).

The bug-detection tests close the loop: with a deliberately corrupted
victim index (``tests/_oracle_helpers.py``) the harness MUST report a
divergence, proving the net has no hole where that bug class lives.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.oracle import ALL_POLICIES, ALL_SCHEMES, diff_trace, fuzz_config, fuzz_trace
from repro.workloads.trace import Trace

from tests._oracle_helpers import victim_index_off_by_one

REGRESS_DIR = Path(__file__).parent / "regress"

COMBOS = [
    pytest.param(scheme, policy, id=f"{scheme}-{policy}")
    for scheme in ALL_SCHEMES
    for policy in ALL_POLICIES
]


@pytest.fixture(scope="module")
def fuzz_cfg():
    return fuzz_config()


@pytest.mark.parametrize("scheme,policy", COMBOS)
def test_no_divergence_on_fuzz_seeds(scheme, policy, fuzz_cfg, oracle_seeds):
    """Clean code never diverges from the oracle, for any combo."""
    for seed in range(oracle_seeds):
        trace = fuzz_trace(seed, fuzz_cfg)
        divergence = diff_trace(
            trace, scheme=scheme, policy=policy, config=fuzz_cfg, check_every=4
        )
        assert divergence is None, str(divergence)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_no_divergence_preemptive_gc(scheme):
    """Preemptive-GC configs auto-route to device replay and still agree."""
    cfg = fuzz_config(gc_mode="preemptive")
    for seed in range(4):
        divergence = diff_trace(
            fuzz_trace(seed, cfg), scheme=scheme, config=cfg
        )
        assert divergence is None, str(divergence)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_no_divergence_write_buffer(scheme):
    """With a DRAM write buffer state still matches at end of replay
    (counters are buffer-dependent and excluded from the compare)."""
    cfg = fuzz_config(write_buffer_pages=8)
    for seed in range(4):
        divergence = diff_trace(
            fuzz_trace(seed, cfg), scheme=scheme, config=cfg
        )
        assert divergence is None, str(divergence)


def test_injected_victim_index_bug_is_caught(fuzz_cfg):
    """The harness detects a real (re-injected) victim-index bug."""
    with victim_index_off_by_one():
        hits = []
        for seed in range(3):
            divergence = diff_trace(
                fuzz_trace(seed, fuzz_cfg), scheme="baseline", config=fuzz_cfg
            )
            if divergence is not None:
                hits.append(divergence)
        assert hits, "corrupted victim index escaped the differential harness"
        assert any(d.kind == "invariant" for d in hits)


def test_injected_bug_caught_in_device_replay():
    """gc_hook wiring: the same bug is caught mid-replay on a real SSD."""
    cfg = fuzz_config(gc_mode="preemptive")
    with victim_index_off_by_one():
        hits = [
            diff_trace(fuzz_trace(seed, cfg), scheme="baseline", config=cfg)
            for seed in range(3)
        ]
        assert any(d is not None and d.kind == "invariant" for d in hits)


def _regress_traces():
    paths = sorted(REGRESS_DIR.glob("*.csv"))
    assert paths, f"no regression traces under {REGRESS_DIR}"
    return paths


@pytest.mark.parametrize("path", _regress_traces(), ids=lambda p: p.stem)
@pytest.mark.parametrize("scheme,policy", COMBOS)
def test_regression_traces_stay_clean(path, scheme, policy, fuzz_cfg):
    """Every committed shrunk regression trace replays cleanly today."""
    trace = Trace.load_csv(path, name=path.stem)
    divergence = diff_trace(trace, scheme=scheme, policy=policy, config=fuzz_cfg)
    assert divergence is None, str(divergence)


def test_victim_index_regress_trace_still_triggers_bug(fuzz_cfg):
    """The committed minimal trace still reproduces the bug it shrank
    from — if the injection stops firing, the regression case is dead."""
    trace = Trace.load_csv(
        REGRESS_DIR / "victim-index-off-by-one.csv", name="victim-index-off-by-one"
    )
    with victim_index_off_by_one():
        divergence = diff_trace(trace, scheme="baseline", config=fuzz_cfg)
    assert divergence is not None and divergence.kind == "invariant"


@pytest.mark.oracle
@pytest.mark.parametrize("scheme,policy", COMBOS)
def test_deep_fuzz_sweep(scheme, policy, fuzz_cfg):
    """Opt-in deep sweep (pytest -m oracle): 50 seeds per combo."""
    for seed in range(50):
        trace = fuzz_trace(seed, fuzz_cfg)
        divergence = diff_trace(
            trace, scheme=scheme, policy=policy, config=fuzz_cfg, check_every=2
        )
        assert divergence is None, str(divergence)
