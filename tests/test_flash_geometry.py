"""Tests for flash address arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.config import GeometryConfig
from repro.flash.errors import InvalidAddressError
from repro.flash.geometry import Geometry


@pytest.fixture
def geom() -> Geometry:
    return Geometry(GeometryConfig(channels=4, pages_per_block=16, blocks=32))


class TestConversions:
    def test_split_ppn(self, geom):
        assert geom.split_ppn(0) == (0, 0)
        assert geom.split_ppn(15) == (0, 15)
        assert geom.split_ppn(16) == (1, 0)
        assert geom.split_ppn(35) == (2, 3)

    def test_make_ppn_inverse(self, geom):
        assert geom.make_ppn(2, 3) == 35

    def test_ppn_to_block_and_offset(self, geom):
        assert geom.ppn_to_block(33) == 2
        assert geom.ppn_to_offset(33) == 1

    def test_total_pages(self, geom):
        assert geom.total_pages == 32 * 16

    def test_channel_striping(self, geom):
        assert geom.block_to_channel(0) == 0
        assert geom.block_to_channel(1) == 1
        assert geom.block_to_channel(4) == 0
        assert geom.ppn_to_channel(16) == 1  # block 1


class TestBoundsChecking:
    def test_check_ppn_rejects_negative(self, geom):
        with pytest.raises(InvalidAddressError):
            geom.check_ppn(-1)

    def test_check_ppn_rejects_too_large(self, geom):
        with pytest.raises(InvalidAddressError):
            geom.check_ppn(geom.total_pages)

    def test_check_block_bounds(self, geom):
        geom.check_block(31)
        with pytest.raises(InvalidAddressError):
            geom.check_block(32)

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Geometry(GeometryConfig(blocks=0))


class TestPropertyRoundTrips:
    @given(ppn=st.integers(min_value=0, max_value=32 * 16 - 1))
    def test_split_make_roundtrip(self, ppn):
        geom = Geometry(GeometryConfig(channels=4, pages_per_block=16, blocks=32))
        block, offset = geom.split_ppn(ppn)
        assert geom.make_ppn(block, offset) == ppn
        assert 0 <= offset < geom.pages_per_block
        assert 0 <= block < geom.blocks

    @given(
        channels=st.integers(min_value=1, max_value=8),
        ppb=st.integers(min_value=1, max_value=64),
        blocks_per_channel=st.integers(min_value=1, max_value=16),
    )
    def test_channel_always_in_range(self, channels, ppb, blocks_per_channel):
        geom = Geometry(
            GeometryConfig(
                channels=channels,
                pages_per_block=ppb,
                blocks=channels * blocks_per_channel,
            )
        )
        for block in range(geom.blocks):
            assert 0 <= geom.block_to_channel(block) < channels
