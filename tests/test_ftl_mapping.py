"""Tests for the shared-page mapping table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftl.mapping import MappingError, MappingTable


class TestBind:
    def test_bind_and_lookup(self):
        m = MappingTable()
        assert m.lookup(5) is None
        m.bind(5, 100)
        assert m.lookup(5) == 100

    def test_bind_returns_previous(self):
        m = MappingTable()
        assert m.bind(1, 10) is None
        assert m.bind(1, 20) == 10
        assert m.lookup(1) == 20

    def test_refcount_counts_sharers(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        m.bind(3, 10)
        assert m.refcount(10) == 3
        assert sorted(m.lpns_of(10)) == [1, 2, 3]

    def test_rebind_same_lpn_same_ppn_keeps_refcount(self):
        m = MappingTable()
        m.bind(1, 10)
        old = m.bind(1, 10)
        assert old == 10
        assert m.refcount(10) == 1

    def test_old_ppn_loses_reference(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        m.bind(1, 20)
        assert m.refcount(10) == 1
        assert m.refcount(20) == 1

    def test_len_counts_lpns(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        assert len(m) == 2


class TestUnbind:
    def test_unbind_returns_ppn(self):
        m = MappingTable()
        m.bind(1, 10)
        assert m.unbind(1) == 10
        assert m.lookup(1) is None
        assert m.refcount(10) == 0

    def test_unbind_unknown_returns_none(self):
        assert MappingTable().unbind(99) is None

    def test_unbind_keeps_other_sharers(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        m.unbind(1)
        assert m.refcount(10) == 1
        assert m.lookup(2) == 10


class TestRemap:
    def test_remap_moves_all_referrers(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        moved = m.remap_ppn(10, 50)
        assert moved == 2
        assert m.lookup(1) == 50
        assert m.lookup(2) == 50
        assert m.refcount(10) == 0
        assert m.refcount(50) == 2

    def test_remap_merges_into_existing(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 20)
        m.remap_ppn(10, 20)
        assert m.refcount(20) == 2

    def test_remap_unmapped_is_noop(self):
        m = MappingTable()
        assert m.remap_ppn(10, 20) == 0

    def test_remap_to_self_rejected(self):
        m = MappingTable()
        m.bind(1, 10)
        with pytest.raises(MappingError):
            m.remap_ppn(10, 10)

    def test_is_mapped(self):
        m = MappingTable()
        assert not m.is_mapped(10)
        m.bind(1, 10)
        assert m.is_mapped(10)


class TestInvariantsProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=9),   # lpn
                st.integers(min_value=0, max_value=14),  # ppn
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_ops_keep_forward_reverse_consistent(self, ops):
        m = MappingTable()
        for op, lpn, ppn in ops:
            if op == 0:
                m.bind(lpn, ppn)
            elif op == 1:
                m.unbind(lpn)
            else:
                target = (ppn + 1) % 15
                if target != ppn:
                    m.remap_ppn(ppn, target)
        m.check_invariants()

    @given(
        binds=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 5)), min_size=1, max_size=100
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_refcounts_sum_to_lpn_count(self, binds):
        m = MappingTable()
        for lpn, ppn in binds:
            m.bind(lpn, ppn)
        total = sum(m.refcount(p) for p in set(m.mapped_ppns()))
        assert total == len(m)


class TestCompactReverseMap:
    """The reverse relation keeps a sole referrer in the flat solo
    column and only spills into the shared-PPN overflow dict at
    refcount 2 (the paper's Fig 6: >80% of pages have exactly one
    referrer).  These tests drive the promote/demote transitions and
    check the table against a plain dict model."""

    def test_promote_on_second_sharer_demote_on_unbind(self):
        m = MappingTable()
        m.bind(1, 10)
        assert 10 not in m._shared  # sole referrer stays in the solo column
        assert m._solo[10] == 1
        m.bind(2, 10)
        assert m._shared[10] == {1, 2}  # promoted to the overflow on share
        m.unbind(1)
        assert 10 not in m._shared  # demoted back at refcount 1
        assert m._solo[10] == 2
        assert m.lookup(2) == 10
        m.check_invariants()

    def test_lpn_zero_is_a_valid_sole_referrer(self):
        # LPN 0 is falsy; the int representation must not confuse it
        # with "absent".
        m = MappingTable()
        m.bind(0, 10)
        assert m.refcount(10) == 1
        assert list(m.lpns_of(10)) == [0]
        assert m.unbind(0) == 10
        assert m.refcount(10) == 0
        m.check_invariants()

    def test_remap_merges_int_into_int(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 20)
        assert m.remap_ppn(10, 20) == 1
        assert m._shared[20] == {1, 2}
        assert m.refcount(20) == 2
        m.check_invariants()

    def test_remap_transfers_set_wholesale(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        assert m.remap_ppn(10, 50) == 2
        assert m._shared[50] == {1, 2}
        assert sorted(m.lpns_of(50)) == [1, 2]
        m.check_invariants()

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # bind/unbind/remap
                st.integers(min_value=0, max_value=9),  # lpn
                st.integers(min_value=0, max_value=11),  # ppn
                st.integers(min_value=0, max_value=11),  # remap target
            ),
            max_size=120,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_model(self, ops):
        m = MappingTable()
        model = {}  # lpn -> ppn, the obviously-correct forward map
        for op, lpn, ppn, target in ops:
            if op == 0:
                assert m.bind(lpn, ppn) == model.get(lpn)
                model[lpn] = ppn
            elif op == 1:
                assert m.unbind(lpn) == model.pop(lpn, None)
            elif target != ppn:
                moved = sum(1 for p in model.values() if p == ppn)
                assert m.remap_ppn(ppn, target) == moved
                model = {
                    l: (target if p == ppn else p) for l, p in model.items()
                }
            m.check_invariants()
        assert len(m) == len(model)
        for lpn in range(10):
            assert m.lookup(lpn) == model.get(lpn)
        for ppn in range(12):
            referrers = sorted(l for l, p in model.items() if p == ppn)
            assert sorted(m.lpns_of(ppn)) == referrers
            assert m.refcount(ppn) == len(referrers)
            assert m.is_mapped(ppn) == bool(referrers)
