"""Tests for the shared-page mapping table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftl.mapping import MappingError, MappingTable


class TestBind:
    def test_bind_and_lookup(self):
        m = MappingTable()
        assert m.lookup(5) is None
        m.bind(5, 100)
        assert m.lookup(5) == 100

    def test_bind_returns_previous(self):
        m = MappingTable()
        assert m.bind(1, 10) is None
        assert m.bind(1, 20) == 10
        assert m.lookup(1) == 20

    def test_refcount_counts_sharers(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        m.bind(3, 10)
        assert m.refcount(10) == 3
        assert sorted(m.lpns_of(10)) == [1, 2, 3]

    def test_rebind_same_lpn_same_ppn_keeps_refcount(self):
        m = MappingTable()
        m.bind(1, 10)
        old = m.bind(1, 10)
        assert old == 10
        assert m.refcount(10) == 1

    def test_old_ppn_loses_reference(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        m.bind(1, 20)
        assert m.refcount(10) == 1
        assert m.refcount(20) == 1

    def test_len_counts_lpns(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        assert len(m) == 2


class TestUnbind:
    def test_unbind_returns_ppn(self):
        m = MappingTable()
        m.bind(1, 10)
        assert m.unbind(1) == 10
        assert m.lookup(1) is None
        assert m.refcount(10) == 0

    def test_unbind_unknown_returns_none(self):
        assert MappingTable().unbind(99) is None

    def test_unbind_keeps_other_sharers(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        m.unbind(1)
        assert m.refcount(10) == 1
        assert m.lookup(2) == 10


class TestRemap:
    def test_remap_moves_all_referrers(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 10)
        moved = m.remap_ppn(10, 50)
        assert moved == 2
        assert m.lookup(1) == 50
        assert m.lookup(2) == 50
        assert m.refcount(10) == 0
        assert m.refcount(50) == 2

    def test_remap_merges_into_existing(self):
        m = MappingTable()
        m.bind(1, 10)
        m.bind(2, 20)
        m.remap_ppn(10, 20)
        assert m.refcount(20) == 2

    def test_remap_unmapped_is_noop(self):
        m = MappingTable()
        assert m.remap_ppn(10, 20) == 0

    def test_remap_to_self_rejected(self):
        m = MappingTable()
        m.bind(1, 10)
        with pytest.raises(MappingError):
            m.remap_ppn(10, 10)

    def test_is_mapped(self):
        m = MappingTable()
        assert not m.is_mapped(10)
        m.bind(1, 10)
        assert m.is_mapped(10)


class TestInvariantsProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=9),   # lpn
                st.integers(min_value=0, max_value=14),  # ppn
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_ops_keep_forward_reverse_consistent(self, ops):
        m = MappingTable()
        for op, lpn, ppn in ops:
            if op == 0:
                m.bind(lpn, ppn)
            elif op == 1:
                m.unbind(lpn)
            else:
                target = (ppn + 1) % 15
                if target != ppn:
                    m.remap_ppn(ppn, target)
        m.check_invariants()

    @given(
        binds=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 5)), min_size=1, max_size=100
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_refcounts_sum_to_lpn_count(self, binds):
        m = MappingTable()
        for lpn, ppn in binds:
            m.bind(lpn, ppn)
        total = sum(m.refcount(p) for p in set(m.mapped_ppns()))
        assert total == len(m)
