"""Exporters, SLO monitors, cross-run diffing, and the CLI surfaces
over the metrics stack.

The golden files under ``tests/data/`` pin the Prometheus snapshot and
JSONL time series of one fully-seeded reference-kernel run byte for
byte: exporter output is deterministic (registration order, shortest
round-trip float repr), so any drift here is a behavioral change in the
simulator or the registry, not noise.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs.compare import (
    DEFAULT_THRESHOLD,
    compare_snapshots,
    flagged,
    summarize,
)
from repro.obs.export import format_value, prometheus_text, series_csv, series_jsonl
from repro.obs.metrics import DeviceMetrics, MetricsSnapshot
from repro.obs.slo import (
    SLObjective,
    default_objectives,
    evaluate_slo,
    evaluate_slos,
    gc_spike_annotations,
)

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def seeded_snapshot():
    """The committed golden scenario: 400 seeded mail requests on a
    small device, reference kernel (the series cadence is
    kernel-dependent by design, so the golden pins one kernel)."""
    from repro.config import small_config
    from repro.device.ssd import run_trace
    from repro.schemes import make_scheme
    from repro.workloads.fiu import build_fiu_trace

    cfg = small_config(blocks=64, pages_per_block=16, kernel="reference")
    trace = build_fiu_trace("mail", cfg, n_requests=400, fill_factor=3.0, seed=7)
    metrics = DeviceMetrics(interval_us=50_000.0)
    run_trace(make_scheme("cagc", cfg), trace, metrics=metrics)
    return metrics.snapshot()


class TestExporters:
    def test_format_value_integral_and_float(self):
        assert format_value(400.0) == "400"
        assert format_value(0.984375) == "0.984375"

    def test_prometheus_golden(self, seeded_snapshot):
        golden = (DATA / "metrics_golden.prom").read_text()
        assert prometheus_text(seeded_snapshot) == golden

    def test_jsonl_golden(self, seeded_snapshot):
        golden = (DATA / "metrics_golden.jsonl").read_text()
        assert series_jsonl(seeded_snapshot) == golden

    def test_prom_shape(self, seeded_snapshot):
        lines = prometheus_text(seeded_snapshot).splitlines()
        assert lines[0].startswith("# TYPE ")
        assert lines[-1] == "# EOF"
        assert "# TYPE cagc_requests_total counter" in lines
        assert "# TYPE cagc_waf gauge" in lines

    def test_csv_matches_jsonl_rows(self, seeded_snapshot):
        csv_lines = series_csv(seeded_snapshot).splitlines()
        jsonl_lines = series_jsonl(seeded_snapshot).splitlines()
        assert len(csv_lines) == len(jsonl_lines) + 1  # header row
        header = csv_lines[0].split(",")
        assert header[0] == "t_us"
        first = json.loads(jsonl_lines[0])
        assert list(first) == header


def _synthetic_snapshot():
    """Hand-built snapshot with a known violation pattern: p99 windows
    2, 3 and 7 breach 500us; GC collects land in windows 2 and 3 only."""
    times = np.arange(10) * 10_000.0
    p99 = np.array([100, 100, 900, 900, 100, 100, 100, 900, 100, 100], float)
    gc = np.array([0, 0, 1, 2, 2, 2, 2, 2, 2, 2], float)
    return MetricsSnapshot(
        values={"cagc_waf": 5.0},
        times_us=times,
        series={"window_p99_us": p99, "cagc_gc_invocations_total": gc},
        interval_us=10_000.0,
    )


class TestSLO:
    def test_series_objective_burn_rate(self):
        row = evaluate_slo(
            _synthetic_snapshot(),
            SLObjective("p99", "window_p99_us", 500.0, budget=0.1, burn_window=5),
        )
        assert row["windows"] == 10
        assert row["violations"] == 3
        assert row["violation_fraction"] == pytest.approx(0.3)
        # Worst 5-window stretch holds 2 violations: 0.4 of the window,
        # 4x the 10% budget.
        assert row["burn_rate"] == pytest.approx(4.0)
        assert row["status"] == "breach"

    def test_value_objective_zero_budget(self):
        row = evaluate_slo(
            _synthetic_snapshot(),
            SLObjective("waf", "cagc_waf", 4.0, kind="value", budget=0.0),
        )
        assert row["worst"] == 5.0
        assert row["violations"] == 1
        assert row["status"] == "breach"

    def test_missing_series_is_clean(self):
        row = evaluate_slo(
            _synthetic_snapshot(), SLObjective("x", "no_such_column", 1.0)
        )
        assert row["windows"] == 0
        assert row["status"] == "ok"

    def test_default_objectives_cover_latency_and_waf(self):
        names = [o.name for o in default_objectives()]
        assert names == ["p99-latency", "p999-latency", "waf"]
        rows = evaluate_slos(_synthetic_snapshot())
        assert [r["objective"] for r in rows] == names

    def test_gc_spike_annotations_correlate(self):
        spikes = gc_spike_annotations(_synthetic_snapshot(), limit=500.0)
        assert [s["t_us"] for s in spikes] == [20_000.0, 30_000.0, 70_000.0]
        assert [s["correlated"] for s in spikes] == [True, True, False]
        assert spikes[0]["gc_delta"] == 1.0


class TestCompare:
    def test_self_compare_is_clean(self, seeded_snapshot):
        rows = compare_snapshots(seeded_snapshot, seeded_snapshot)
        assert rows  # non-trivial alignment
        assert flagged(rows) == []
        assert summarize(rows)["clean"] is True

    def test_value_drift_flags(self):
        a = _synthetic_snapshot()
        b = _synthetic_snapshot()
        b.values["cagc_waf"] = a.values["cagc_waf"] * 2
        hot = flagged(compare_snapshots(a, b))
        assert any(r["metric"] == "cagc_waf" for r in hot)
        row = next(r for r in hot if r["metric"] == "cagc_waf")
        assert row["rel"] == pytest.approx(1.0)

    def test_one_sided_metric_flags(self):
        a = _synthetic_snapshot()
        b = _synthetic_snapshot()
        b.values["cagc_new_counter_total"] = 3.0
        hot = flagged(compare_snapshots(a, b))
        row = next(r for r in hot if r["metric"] == "cagc_new_counter_total")
        assert row["a"] is None and row["delta"] is None

    def test_series_aggregates_catch_transient_spike(self):
        # Same final values, different tail excursion mid-run: only the
        # series:...:max pseudo-metric can see it.
        a = _synthetic_snapshot()
        b = _synthetic_snapshot()
        b.series["window_p99_us"] = a.series["window_p99_us"].copy()
        b.series["window_p99_us"][7] = 9_000.0
        hot = flagged(compare_snapshots(a, b, threshold=DEFAULT_THRESHOLD))
        assert any(r["metric"] == "series:window_p99_us:max" for r in hot)
        assert not flagged(compare_snapshots(a, b, include_series=False))


class TestCLI:
    """The metrics / compare / bench-history CLI surfaces, sharing one
    quick-scale cached run so only the first invocation simulates."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path_factory):
        cache_dir = tmp_path_factory.getbasetemp() / "metrics-cli-cache"
        monkeypatch.setenv("CAGC_CACHE_DIR", str(cache_dir))

    RUN = ["--workload", "mail", "--scheme", "cagc", "--scale", "quick"]

    def test_metrics_prom_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["metrics", *self.RUN, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# TYPE ")
        assert out.rstrip().endswith("# EOF")
        assert "cagc_requests_total" in out

    def test_metrics_jsonl_and_slo(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "series.jsonl"
        assert (
            main(
                ["metrics", *self.RUN, "--format", "jsonl", "--out", str(out_file), "--slo"]
            )
            == 0
        )
        rows = [json.loads(line) for line in out_file.read_text().splitlines()]
        assert rows and "t_us" in rows[0] and "window_p99_us" in rows[0]
        printed = capsys.readouterr().out
        assert "SLO burn rates" in printed
        assert "p99-latency" in printed
        assert "gc spikes" in printed

    def test_report_out_doc_structure(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "report.json"
        assert main(["report", *self.RUN, "--out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert set(doc) >= {"run", "metrics", "kernel", "slo"}
        assert doc["run"].startswith("mail/cagc/greedy@quick")
        assert set(doc["kernel"]) >= {"batches", "batched_requests", "fallback_requests"}
        assert [r["objective"] for r in doc["slo"]] == [
            "p99-latency",
            "p999-latency",
            "waf",
        ]

    def test_compare_self_is_zero_delta(self, capsys):
        from repro.cli import main

        label = "mail/cagc@quick"
        assert (
            main(["report", "--compare", label, label, "--fail-on-diff"]) == 0
        )
        out = capsys.readouterr().out
        assert "0 flagged" in out

    def test_compare_different_schemes_flags_and_fails(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "diff.json"
        code = main(
            [
                "report",
                "--compare",
                "mail/baseline@quick",
                "mail/cagc@quick",
                "--fail-on-diff",
                "--out",
                str(out_file),
            ]
        )
        assert code == 1
        assert "flagged" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["summary"]["flagged"] > 0
        assert doc["run_a"].startswith("mail/baseline")

    def test_bad_compare_label_rejected(self, capsys):
        from repro.cli import main

        assert main(["report", "--compare", "too/many/parts/here", "mail/cagc"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchHistoryCLI:
    def _write_history(self, path: Path) -> None:
        entries = [
            {
                "schema": 4,
                "git_sha": "aaa0001",
                "taken_at": "2026-08-01T00:00:00Z",
                "python": "3.12.0",
                "cases": {"baseline": 10.0, "cagc": 12.0},
            },
            {"schema": 3, "git_sha": "old0000", "cases": {"baseline": 1.0}},
            {
                "schema": 4,
                "git_sha": "bbb0002",
                "taken_at": "2026-08-02T00:00:00Z",
                "python": "3.12.0",
                "cases": {"baseline": 15.0, "cagc": 12.1},
            },
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in entries))

    def test_table_and_regression_annotations(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "hist.jsonl"
        self._write_history(history)
        assert main(["bench-history", "--file", str(history)]) == 0
        out = capsys.readouterr().out
        assert "bench history: 2 snapshots" in out  # schema-3 entry dropped
        assert "15.00!" in out  # baseline 10 -> 15 is a >25% step
        assert "12.10" in out and "12.10!" not in out  # cagc within threshold
        assert "regression: baseline at bbb0002" in out

    def test_case_filter_hides_other_columns(self, tmp_path, capsys):
        from repro.cli import main

        history = tmp_path / "hist.jsonl"
        self._write_history(history)
        assert main(["bench-history", "--file", str(history), "--cases", "cagc"]) == 0
        out = capsys.readouterr().out
        assert "cagc" in out and "baseline" not in out

    def test_missing_file_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench-history", "--file", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_repo_history_parses(self, capsys):
        from repro.cli import main

        history = Path(__file__).parent.parent / "BENCH_history.jsonl"
        if not history.exists():  # pragma: no cover - fresh checkout
            pytest.skip("no committed bench history")
        assert main(["bench-history", "--file", str(history)]) == 0
        assert "bench history" in capsys.readouterr().out
