"""Tests for span tracing: recording, nesting, export, validation.

Covers the tentpole acceptance path — a default-config cagc run traced
to Chrome trace-event JSON must validate against the schema and show
distinct tracks for foreground I/O, GC phases and hash lanes — plus
golden-file stability of the pipeline export and span-ordering
properties under adversarial fuzz workloads.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import TimingConfig, small_config
from repro.core.pipeline import GCPipeline
from repro.device.ssd import SSD, run_trace
from repro.flash.timing import FlashTiming
from repro.obs import (
    TRACK_GC,
    TRACK_GC_READ,
    TRACK_GC_WRITE,
    TRACK_IO,
    Tracer,
    hash_lane_track,
    validate_chrome_trace,
)
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace

GOLDEN = Path(__file__).parent / "data" / "pipeline_trace_golden.json"


class TestTracerRecording:
    def test_span_instant_counter(self):
        tr = Tracer()
        tr.span("io", "write", 10.0, 5.0, lpn=3)
        tr.instant("gc", "victim-select", 12.0, victim=7)
        tr.counter("timeline", "free_blocks", 15.0, 42.0)
        events = list(tr.events())
        assert [e.kind for e in events] == ["span", "instant", "counter"]
        assert events[0].args == {"lpn": 3}
        assert events[1].dur_us is None
        assert events[2].value == 42.0
        assert len(tr) == 3

    def test_begin_end_nesting(self):
        tr = Tracer()
        tr.begin("gc", "burst", 0.0)
        tr.begin("gc", "block", 1.0)
        assert tr.open_spans("gc") == 2
        tr.end("gc", 5.0)
        tr.end("gc", 10.0, blocks=1)
        assert tr.open_spans("gc") == 0
        inner, outer = tr.spans("gc")
        assert (inner.name, inner.ts_us, inner.dur_us) == ("block", 1.0, 4.0)
        assert (outer.name, outer.ts_us, outer.dur_us) == ("burst", 0.0, 10.0)
        assert outer.args == {"blocks": 1}
        # inner closed first => well-nested: inner interval inside outer
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="no open span"):
            tr.end("gc", 1.0)

    def test_limit_drops_gracefully(self):
        tr = Tracer(limit=2)
        for i in range(5):
            tr.instant("io", "x", float(i))
        assert len(tr) == 2
        assert tr.dropped == 3

    def test_tracks_first_seen_order(self):
        tr = Tracer()
        tr.instant("b", "x", 0.0)
        tr.instant("a", "x", 1.0)
        tr.instant("b", "y", 2.0)
        assert tr.tracks() == ["b", "a"]

    def test_add_counters_from_timeline_dict(self):
        tr = Tracer()
        tr.add_counters_from(
            {"free": {"times_us": [0.0, 5.0], "values": [1.0, 0.5]}},
            track="timeline",
        )
        events = list(tr.events())
        assert [e.value for e in events] == [1.0, 0.5]
        assert all(e.track == "timeline" for e in events)


class TestChromeExport:
    def test_export_validates_and_names_tracks(self):
        tr = Tracer()
        tr.span(TRACK_IO, "write", 0.0, 3.0)
        tr.instant(TRACK_GC, "victim-select", 1.0, victim=2)
        tr.counter("timeline", "free_blocks", 2.0, 9.0)
        doc = tr.to_chrome()
        tracks = validate_chrome_trace(doc)
        assert tracks == [TRACK_IO, TRACK_GC, "timeline"]
        assert doc["displayTimeUnit"] == "ms"

    def test_counter_args_are_numeric(self):
        tr = Tracer()
        tr.counter("t", "free", 0.0, 1.5)
        rows = [e for e in tr.to_chrome()["traceEvents"] if e["ph"] == "C"]
        assert rows[0]["args"] == {"free": 1.5}

    def test_invalid_documents_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1, "name": "x"}]}
            )
        with pytest.raises(ValueError, match="thread_name"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "i", "pid": 1, "tid": 1, "name": "x", "ts": 0, "s": "t"}
                    ]
                }
            )

    def test_jsonl_round_trips_events(self, tmp_path):
        tr = Tracer()
        tr.span("io", "read", 1.0, 2.0, lpn=9)
        tr.instant("gc", "promote", 3.0)
        path = tmp_path / "t.jsonl"
        tr.write(path, fmt="jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {
            "kind": "span", "track": "io", "name": "read",
            "ts_us": 1.0, "dur_us": 2.0, "args": {"lpn": 9},
        }
        assert lines[1]["kind"] == "instant"

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            Tracer().write(tmp_path / "t", fmt="protobuf")


def _pipeline_trace() -> Tracer:
    """The tiny deterministic run behind the golden file: three pages
    (migrate, dedup-hit, dedup-hit-with-promotion) through the CAGC
    pipeline at the paper's Table I timings."""
    tracer = Tracer()
    timing = FlashTiming(TimingConfig())
    pipe = GCPipeline(timing, tracer=tracer, base_us=100.0)
    pipe.process_page(write=True, ppn=0)
    pipe.process_page(write=False, ppn=1)
    pipe.extra_copy(ppn=2)
    pipe.finish()
    return tracer


class TestGoldenFile:
    def test_pipeline_chrome_export_matches_golden(self):
        # Golden pin: the Chrome export of a fixed pipeline run.  Timing
        # constants come from the paper's Table I, so this only changes
        # if the export format or the pipeline model changes — both of
        # which *should* show up in review as a golden-file diff.
        doc = _pipeline_trace().to_chrome()
        golden = json.loads(GOLDEN.read_text())
        assert doc == golden

    def test_golden_file_is_valid_chrome_trace(self):
        tracks = validate_chrome_trace(json.loads(GOLDEN.read_text()))
        assert TRACK_GC_READ in tracks
        assert TRACK_GC_WRITE in tracks
        assert hash_lane_track(0) in tracks


def _traced_run(scheme_name="cagc", gc_mode="blocking", seed=None):
    # These tests pin the *reference* path's span structure (one io
    # span per request); the vectorized kernel intentionally replaces
    # those with per-run `kernel` batch spans, so force the reference
    # kernel even when REPRO_KERNEL says otherwise.
    if seed is None:
        cfg = small_config(
            blocks=64, pages_per_block=16, gc_mode=gc_mode, kernel="reference"
        )
        trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=2.0)
    else:
        # The oracle's fuzz profiles are engineered to trigger GC on a
        # tiny device — exactly the adversarial coverage we want here.
        import dataclasses

        from repro.oracle import fuzz_config, fuzz_trace

        cfg = dataclasses.replace(
            fuzz_config(), gc_mode=gc_mode, kernel="reference"
        )
        trace = fuzz_trace(seed, cfg, n_requests=300)
    tracer = Tracer()
    result = run_trace(make_scheme(scheme_name, cfg), trace, tracer=tracer)
    return tracer, result


class TestAcceptance:
    def test_cagc_run_produces_valid_chrome_trace_with_distinct_tracks(
        self, tmp_path
    ):
        # The ISSUE acceptance criterion, minus the CLI plumbing (covered
        # in test_cli.py): a cagc run traced to chrome format validates
        # and separates foreground I/O, GC phases and hash lanes.
        tracer, _ = _traced_run()
        path = tmp_path / "out.json"
        tracer.write(path, fmt="chrome")
        tracks = validate_chrome_trace(json.loads(path.read_text()))
        assert TRACK_IO in tracks
        assert TRACK_GC in tracks
        assert TRACK_GC_READ in tracks
        assert TRACK_GC_WRITE in tracks
        assert any(t.startswith("hash-lane-") for t in tracks)

    def test_tracing_does_not_change_results(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("mail", cfg, n_requests=0, fill_factor=2.0)
        plain = run_trace(make_scheme("cagc", cfg), trace)
        traced = run_trace(make_scheme("cagc", cfg), trace, tracer=Tracer())
        assert plain.latency.mean_us == traced.latency.mean_us
        assert vars(plain.gc) == vars(traced.gc)
        assert plain.simulated_us == traced.simulated_us


def _assert_no_overlap(spans, eps=1e-6):
    ordered = sorted(spans, key=lambda e: e.ts_us)
    for prev, cur in zip(ordered, ordered[1:]):
        assert cur.ts_us >= prev.ts_us + prev.dur_us - eps, (
            f"overlap on {cur.track}: {prev} then {cur}"
        )


class TestSpanProperties:
    """Structural properties that must hold for *any* workload."""

    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    @pytest.mark.parametrize("gc_mode", ["blocking", "preemptive"])
    def test_fuzz_traces_produce_well_formed_spans(self, seed, gc_mode):
        tracer, result = _traced_run("cagc", gc_mode=gc_mode, seed=seed)
        for e in tracer.events():
            assert e.ts_us >= 0.0
            if e.kind == "span":
                assert e.dur_us >= 0.0
        # every begin() was matched by an end()
        for track in tracer.tracks():
            assert tracer.open_spans(track) == 0
        # single-server resources never overlap themselves
        _assert_no_overlap(tracer.spans(TRACK_IO))
        _assert_no_overlap(tracer.spans(TRACK_GC_READ))
        _assert_no_overlap(tracer.spans(TRACK_GC_WRITE))
        for track in tracer.tracks():
            if track.startswith("hash-lane-"):
                _assert_no_overlap(tracer.spans(track))

    @pytest.mark.parametrize("seed", [0, 5])
    def test_gc_events_fall_inside_gc_bursts(self, seed):
        tracer, result = _traced_run("cagc", seed=seed)
        bursts = [e for e in tracer.spans(TRACK_GC) if e.name == "gc-burst"]
        assert len(bursts) == result.gc.gc_invocations

        def inside(ts):
            return any(b.ts_us - 1e-6 <= ts <= b.ts_us + b.dur_us + 1e-6 for b in bursts)

        selects = [
            e
            for e in tracer.events()
            if e.name == "victim-select" and not (e.args or {}).get("idle")
        ]
        assert selects, "no victim selections traced"
        for e in selects:
            assert inside(e.ts_us), f"victim-select at {e.ts_us} outside all bursts"

    def test_victim_count_matches_counters(self):
        tracer, result = _traced_run("baseline")
        selects = [e for e in tracer.events() if e.name == "victim-select"]
        assert len(selects) == result.gc.blocks_erased
        erases = [e for e in tracer.spans(TRACK_GC) if e.name == "erase"]
        assert len(erases) == result.gc.blocks_erased


class TestDeviceIntegration:
    def test_ssd_sets_scheme_tracer(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        scheme = make_scheme("cagc", cfg)
        tracer = Tracer()
        ssd = SSD(scheme, tracer=tracer)
        assert scheme.tracer is tracer
        assert ssd.tracer is tracer

    def test_untraced_scheme_has_no_tracer(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        scheme = make_scheme("cagc", cfg)
        SSD(scheme)
        assert scheme.tracer is None

    def test_parallel_device_traces_per_channel(self):
        from repro.device.parallel import ParallelSSD

        cfg = small_config(blocks=64, pages_per_block=16, channels=2)
        trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=2.0)
        tracer = Tracer()
        ParallelSSD(make_scheme("baseline", cfg), tracer=tracer).replay(trace)
        io_tracks = [t for t in tracer.tracks() if t.startswith("io.ch")]
        assert len(io_tracks) >= 2
        for track in io_tracks:
            _assert_no_overlap(tracer.spans(track))
