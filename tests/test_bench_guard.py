"""Opt-in throughput regression guard (``pytest -m benchguard``).

Deselected by default (see ``addopts`` in pyproject.toml): wall-clock
benchmarks have no place in the unit suite, but CI can run
``pytest -m benchguard`` as a perf gate.  The guard compares a fresh
snapshot's best-of-rounds timing against the committed
``BENCH_throughput.json`` baseline with a 25% allowance (see
``scripts/check_bench_regression.py`` for the comparison policy).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"
BASELINE = REPO_ROOT / "BENCH_throughput.json"

pytestmark = pytest.mark.benchguard


@pytest.fixture(scope="module")
def guard_module():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import check_bench_regression

        yield check_bench_regression
    finally:
        sys.path.remove(str(SCRIPTS))


def test_baseline_snapshot_is_committed_and_comparable(guard_module):
    baseline = json.loads(BASELINE.read_text())
    assert baseline["schema"] == guard_module.SNAPSHOT_SCHEMA
    assert set(baseline["replay"]) == {
        "baseline",
        "inline-dedupe",
        "cagc",
        "baseline@8x",
        "cagc@8x",
        "baseline@64x",
        "cagc@64x",
        "array@4",
        "array@4-staggered",
    }
    assert baseline["replay_requests"] == 5_000
    assert all("ops" in case for case in baseline["replay"].values())
    # Schema 3: per-case peak RSS measured in isolated child processes.
    assert baseline["isolated"] is True
    assert all(case["peak_rss_mb"] > 0 for case in baseline["replay"].values())


def test_scaled_geometry_per_op_cost_stays_flat():
    # The committed snapshot must show per-op replay cost within 2x of
    # the default geometry even at 64x the blocks — the incremental
    # victim index keeps greedy selection O(1) instead of O(blocks) and
    # the columnar FTL/dedup stores keep per-op table costs flat.  The
    # bound was 1.10x on the reference path, whose ~48 us/op of
    # interpreter overhead swamped everything; the vectorized kernel's
    # ~11-13 us/op base exposes real workload-shape differences (the
    # auto-sized 64x trace produces GC victims with more valid pages,
    # so migration work per op is higher), so the bound is looser — but
    # an O(blocks) reversion adds hundreds of us/op at 64x and still
    # fails it by an order of magnitude.
    baseline = json.loads(BASELINE.read_text())
    for scheme in ("baseline", "cagc"):
        default_us = baseline["replay"][scheme]["median_us_per_op"]
        for factor in (8, 64):
            scaled_us = baseline["replay"][f"{scheme}@{factor}x"]["median_us_per_op"]
            assert scaled_us <= 2.0 * default_us, (
                f"{scheme}: {scaled_us:.1f} us/op at {factor}x blocks vs "
                f"{default_us:.1f} at default geometry"
            )


def test_scaled_geometry_memory_stays_columnar():
    # 64x the blocks is 8x the physical pages of the 8x case, yet peak
    # RSS must grow far less than that: the interpreter+numpy floor
    # dominates and the per-page state is a handful of fixed-width
    # columns (8-16 bytes/page), not boxed dict entries (~100 bytes).
    baseline = json.loads(BASELINE.read_text())
    for scheme in ("baseline", "cagc"):
        rss_8x = baseline["replay"][f"{scheme}@8x"]["peak_rss_mb"]
        rss_64x = baseline["replay"][f"{scheme}@64x"]["peak_rss_mb"]
        assert rss_64x <= 4.0 * rss_8x, (
            f"{scheme}: {rss_64x:.1f} MB at 64x blocks vs {rss_8x:.1f} MB "
            f"at 8x — per-page state is no longer columnar"
        )


def test_hot_loop_within_threshold_of_baseline(guard_module):
    # min-of-rounds plus re-measured regressions: the guard needs
    # several shots at a quiet scheduling window on small CI boxes.
    rc = guard_module.run_check(BASELINE, threshold=0.25, rounds=7, attempts=3)
    assert rc == 0, "hot loop regressed >25% vs committed BENCH_throughput.json"


def test_vectorized_kernel_speedup_floors():
    # The kernel/orchestrator split measures ~2.6x (baseline), ~3.2x
    # (cagc) and ~5.5x (inline-dedupe, via the plan/apply foreground
    # kernel) against the reference path; these floors leave ~25-30%
    # headroom for noisy runners so the speedup cannot silently rot
    # while absolute numbers drift with the machine.  Cells interleave
    # the two paths and the ratio uses best-of-cells, so shared-runner
    # load spikes hit both sides.
    import time

    from repro.config import small_config
    from repro.device.ssd import run_trace
    from repro.schemes import make_scheme
    from repro.workloads.fiu import build_fiu_trace

    floors = {"baseline": 2.1, "cagc": 2.4, "inline-dedupe": 3.5}
    cfgs = {
        kernel: small_config(blocks=128, pages_per_block=32, kernel=kernel)
        for kernel in ("reference", "vectorized")
    }
    trace = build_fiu_trace("mail", cfgs["reference"], n_requests=5_000)
    for scheme_name, floor in floors.items():
        walls = {"reference": [], "vectorized": []}
        for kernel in walls:  # warm-up: numpy/import one-time costs
            run_trace(make_scheme(scheme_name, cfgs[kernel]), trace)
        for _ in range(7):
            for kernel in ("reference", "vectorized"):
                start = time.perf_counter()
                run_trace(make_scheme(scheme_name, cfgs[kernel]), trace)
                walls[kernel].append(time.perf_counter() - start)
        ratio = min(walls["reference"]) / min(walls["vectorized"])
        assert ratio >= floor, (
            f"{scheme_name}: vectorized kernel only {ratio:.2f}x the "
            f"reference path (floor is {floor}x)"
        )


def test_array_kernel_speedup_floors():
    # The epoch-batched array kernel measures ~6x (independent) and
    # ~7-8x (staggered / global-token, where the coordinator's deferral
    # machinery keeps lanes out of scalar GC boundaries) against the
    # reference array loop on the benched 4-device / 4-tenant case; a
    # 2.5x floor leaves generous headroom for noisy runners while still
    # failing if the array quietly reverts to wholesale event-loop
    # fallback (~1.0x).  Cells interleave the two paths like the
    # single-device floor test so load spikes hit both sides.
    import time

    from repro.array import SSDArray
    from repro.config import small_config
    from repro.schemes import make_scheme
    from repro.workloads.fiu import build_fiu_trace
    from repro.workloads.multiplex import multiplex_traces

    devices = tenants = 4
    cfgs = {
        kernel: small_config(blocks=128, pages_per_block=32, kernel=kernel)
        for kernel in ("reference", "vectorized")
    }
    tenant_traces = [
        build_fiu_trace(
            "mail", cfgs["reference"], n_requests=1_250, seed=100 + t
        )
        for t in range(tenants)
    ]
    merged = multiplex_traces(
        tenant_traces,
        devices=devices,
        pages_per_device=cfgs["reference"].logical_pages,
    )

    def replay(kernel, coordination):
        schemes = [make_scheme("cagc", cfgs[kernel]) for _ in range(devices)]
        return SSDArray(
            schemes, coordination=coordination, ncq_depth=16
        ).replay(merged)

    for coordination in ("independent", "staggered"):
        walls = {"reference": [], "vectorized": []}
        for kernel in walls:  # warm-up: numpy/import one-time costs
            result = replay(kernel, coordination)
            if kernel == "vectorized":
                assert result.kernel_fallback_reason is None
        for _ in range(5):
            for kernel in ("reference", "vectorized"):
                start = time.perf_counter()
                replay(kernel, coordination)
                walls[kernel].append(time.perf_counter() - start)
        ratio = min(walls["reference"]) / min(walls["vectorized"])
        assert ratio >= 2.5, (
            f"array@{devices} [{coordination}]: epoch kernel only "
            f"{ratio:.2f}x the reference array loop (floor is 2.5x)"
        )


def test_telemetry_batching_overhead_within_15pct():
    # Telemetry-enabled vectorized replays fold per-batch
    # (LatencyHistogram.record_many + boundary snapshots) instead of
    # falling back to the reference event loop; the acceptance bar is
    # that an attached RunTelemetry costs at most 15% over the
    # untraced vectorized replay.
    import time

    from repro.config import small_config
    from repro.device.ssd import SSD
    from repro.obs.telemetry import RunTelemetry
    from repro.schemes import make_scheme
    from repro.workloads.fiu import build_fiu_trace

    cfg = small_config(blocks=128, pages_per_block=32, kernel="vectorized")
    trace = build_fiu_trace("mail", cfg, n_requests=5_000)
    walls = {"bare": [], "telemetry": []}
    for _ in walls:  # warm-up
        SSD(make_scheme("cagc", cfg)).replay(trace)
    for _ in range(7):
        for mode in ("bare", "telemetry"):
            telemetry = (
                RunTelemetry(snapshot_every_us=10_000.0)
                if mode == "telemetry"
                else None
            )
            ssd = SSD(make_scheme("cagc", cfg), telemetry=telemetry)
            start = time.perf_counter()
            ssd.replay(trace)
            walls[mode].append(time.perf_counter() - start)
    ratio = min(walls["telemetry"]) / min(walls["bare"])
    assert ratio <= 1.15, (
        f"telemetry-enabled vectorized replay is {ratio:.2f}x the bare "
        f"replay (bar is 1.15x)"
    )


def test_disabled_instrumentation_overhead_within_2pct(guard_module):
    # The repro.obs contract: every tracing/telemetry site on the hot
    # path is one predicated `x is not None` test when no observer is
    # attached, so an untraced replay must stay within 2% of the
    # committed baseline (which was itself recorded with observers
    # disabled).  Fresh min-of-rounds vs baseline median, same policy as
    # the 25% trajectory guard, just a far tighter bar.
    #
    # A 2% bar is below the timing jitter of a loaded shared runner, so
    # the gate first measures what this machine can actually resolve:
    # two back-to-back snapshots of the same code.  When their
    # disagreement already exceeds 2%, a failure would be scheduler
    # weather, not a regression — skip instead of flaking.  The gate
    # itself stays strict: on a quiet machine any >2% drift still fails.
    noise = guard_module.timing_noise_floor(rounds=5)
    if noise > 0.02:
        pytest.skip(
            f"machine timing noise floor {noise:.1%} exceeds the 2% bar; "
            "this gate cannot resolve regressions here"
        )
    rc = guard_module.run_check(BASELINE, threshold=0.02, rounds=7, attempts=4)
    assert rc == 0, (
        "disabled-instrumentation replay exceeded the committed "
        "BENCH_throughput.json baseline by more than 2%"
    )
