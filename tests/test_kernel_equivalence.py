"""Kernel/orchestrator equivalence: ``kernel=vectorized`` must be
bit-identical to the reference event loop.

The batched kernels (``repro.kernel``) claim exact equivalence, not
approximate agreement — every response time, counter and state column
must match the per-request path.  These tests pin that down at the
places the batching is most likely to crack:

* chunk boundaries: a GC trigger landing mid-chunk (and at the very
  first/last request of a chunk) must split runs exactly where the
  reference path would have run GC;
* fallback seams: configurations the kernels do not model (a DRAM
  write buffer splitting write runs, preemptive GC) must silently take
  the reference path, and requests they do not model (reads of
  never-written LPNs) must resolve identically;
* the full scheme x policy matrix: sha256 trajectory identity across
  all 12 combinations on a real-trace workload.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.kernel.orchestrator as orchestrator
from repro.config import small_config
from repro.device.ssd import SSD
from repro.kernel import kernel_eligible
from repro.oracle.diff import build_scheme, diff_kernels
from repro.oracle.fuzz import (
    PROFILES,
    fuzz_config,
    fuzz_trace,
    lpn_span,
    rows_to_trace,
)
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.request import OpKind

SCHEMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")
POLICIES = ("greedy", "cost-benefit", "random")

_W, _R, _T = int(OpKind.WRITE), int(OpKind.READ), int(OpKind.TRIM)


def _trajectory_digest(result, scheme) -> str:
    h = hashlib.sha256()
    h.update(result.response_times_us.tobytes())
    h.update(repr(result.gc).encode())
    h.update(repr(result.io).encode())
    h.update(repr(result.wear).encode())
    h.update(repr(result.simulated_us).encode())
    h.update(repr(sorted(scheme.state_snapshot().content.items())).encode())
    return h.hexdigest()


class TestTrajectoryIdentity:
    """sha256-identical trajectories across the scheme x policy matrix."""

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_combos_identical(self, scheme_name, policy):
        digests = {}
        for kernel in ("reference", "vectorized"):
            cfg = small_config(blocks=64, pages_per_block=16, kernel=kernel)
            trace = build_fiu_trace("mail", cfg, n_requests=1200)
            scheme = build_scheme(scheme_name, policy, cfg)
            result = SSD(scheme).replay(trace)
            digests[kernel] = _trajectory_digest(result, scheme)
        assert digests["reference"] == digests["vectorized"]


class TestChunkBoundaries:
    """Runs must split exactly at GC triggers wherever the chunk edges
    fall — including chunks so small every boundary case is hit."""

    @pytest.mark.parametrize("chunk", [3, 7, 64])
    @pytest.mark.parametrize("scheme_name", ["baseline", "cagc"])
    def test_gc_trigger_mid_chunk(self, monkeypatch, chunk, scheme_name):
        monkeypatch.setattr(orchestrator, "CHUNK_REQUESTS", chunk)
        # gc-fill floods the tiny fuzz device: triggers land inside,
        # at the start of, and at the end of nearly every chunk.
        trace = fuzz_trace(2, n_requests=240, profile="gc-fill")
        assert diff_kernels(trace, scheme=scheme_name) is None

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=40),
        chunk=st.sampled_from([5, 11, 32]),
    )
    def test_profiles_property(self, seed, chunk):
        orig = orchestrator.CHUNK_REQUESTS
        orchestrator.CHUNK_REQUESTS = chunk
        try:
            profile = PROFILES[seed % len(PROFILES)]
            trace = fuzz_trace(seed, n_requests=160, profile=profile)
            assert diff_kernels(trace, scheme="cagc") is None
        finally:
            orchestrator.CHUNK_REQUESTS = orig


class TestFallbackSeams:
    def test_unmapped_read_fallback(self):
        """Reads of never-written LPNs resolve zero pages on both
        paths, without breaking the runs around them."""
        cfg = fuzz_config()
        span = lpn_span(cfg)
        rows = []
        clock = 0.0
        fp = 1 << 41
        for burst in range(12):
            for k in range(6):
                clock += 7.0
                fp += 1
                rows.append((clock, _W, (burst * 5 + k) % (span // 2), 2, (fp, fp)))
            clock += 7.0
            # The top half of the span is never written.
            rows.append((clock, _R, span - 1, 1, ()))
            clock += 7.0
            rows.append((clock, _R, span - 2, 2, ()))
        trace = rows_to_trace(rows, name="unmapped-reads")
        for scheme_name in ("baseline", "cagc"):
            assert diff_kernels(trace, scheme=scheme_name) is None

    def test_write_buffer_splits_to_reference_path(self):
        """A DRAM write buffer absorbs and reorders run-internal
        writes, so the batched kernels do not model it: the vectorized
        config must take the reference path and stay bit-identical."""
        results = {}
        for kernel in ("reference", "vectorized"):
            cfg = small_config(
                blocks=64,
                pages_per_block=16,
                kernel=kernel,
                write_buffer_pages=8,
            )
            trace = build_fiu_trace("mail", cfg, n_requests=800)
            ssd = SSD(build_scheme("cagc", "greedy", cfg))
            assert not kernel_eligible(ssd, trace)
            results[kernel] = ssd.replay(trace)
        assert np.array_equal(
            results["reference"].response_times_us,
            results["vectorized"].response_times_us,
        )
        assert results["reference"].gc == results["vectorized"].gc

    def test_preemptive_gc_not_eligible(self):
        cfg = small_config(
            blocks=64, pages_per_block=16, kernel="vectorized", gc_mode="preemptive"
        )
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(build_scheme("baseline", "greedy", cfg))
        assert not kernel_eligible(ssd, trace)

    def test_eligible_by_default(self):
        cfg = small_config(blocks=64, pages_per_block=16, kernel="vectorized")
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(build_scheme("baseline", "greedy", cfg))
        assert kernel_eligible(ssd, trace)

    def test_reference_config_not_eligible(self):
        cfg = small_config(blocks=64, pages_per_block=16, kernel="reference")
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(build_scheme("baseline", "greedy", cfg))
        assert not kernel_eligible(ssd, trace)
