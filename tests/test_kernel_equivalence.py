"""Kernel/orchestrator equivalence: ``kernel=vectorized`` must be
bit-identical to the reference event loop.

The batched kernels (``repro.kernel``) claim exact equivalence, not
approximate agreement — every response time, counter and state column
must match the per-request path.  These tests pin that down at the
places the batching is most likely to crack:

* chunk boundaries: a GC trigger landing mid-chunk (and at the very
  first/last request of a chunk) must split runs exactly where the
  reference path would have run GC;
* fallback seams: configurations the kernels do not model (a DRAM
  write buffer splitting write runs, preemptive GC) must silently take
  the reference path, and requests they do not model (reads of
  never-written LPNs) must resolve identically;
* the full scheme x policy matrix: sha256 trajectory identity across
  all 12 combinations on a real-trace workload.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import small_config
from repro.device.ssd import SSD
from repro.kernel import kernel_eligible
from repro.oracle.diff import build_scheme, diff_kernels
from repro.oracle.fuzz import (
    PROFILES,
    fuzz_config,
    fuzz_trace,
    lpn_span,
    rows_to_trace,
)
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.request import OpKind

SCHEMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")
POLICIES = ("greedy", "cost-benefit", "random")

_W, _R, _T = int(OpKind.WRITE), int(OpKind.READ), int(OpKind.TRIM)


def _trajectory_digest(result, scheme) -> str:
    h = hashlib.sha256()
    h.update(result.response_times_us.tobytes())
    h.update(repr(result.gc).encode())
    h.update(repr(result.io).encode())
    h.update(repr(result.wear).encode())
    h.update(repr(result.simulated_us).encode())
    h.update(repr(sorted(scheme.state_snapshot().content.items())).encode())
    return h.hexdigest()


class TestTrajectoryIdentity:
    """sha256-identical trajectories across the scheme x policy matrix."""

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_combos_identical(self, scheme_name, policy):
        digests = {}
        for kernel in ("reference", "vectorized"):
            cfg = small_config(blocks=64, pages_per_block=16, kernel=kernel)
            trace = build_fiu_trace("mail", cfg, n_requests=1200)
            scheme = build_scheme(scheme_name, policy, cfg)
            result = SSD(scheme).replay(trace)
            digests[kernel] = _trajectory_digest(result, scheme)
        assert digests["reference"] == digests["vectorized"]


class TestChunkBoundaries:
    """Runs must split exactly at GC triggers wherever the chunk edges
    fall — including chunks so small every boundary case is hit."""

    @pytest.mark.parametrize("chunk", [3, 7, 64])
    @pytest.mark.parametrize("scheme_name", ["baseline", "cagc", "inline-dedupe"])
    def test_gc_trigger_mid_chunk(self, chunk, scheme_name):
        # gc-fill floods the tiny fuzz device: triggers land inside,
        # at the start of, and at the end of nearly every chunk.
        trace = fuzz_trace(2, n_requests=240, profile="gc-fill")
        cfg = fuzz_config(kernel_chunk_requests=chunk)
        assert diff_kernels(trace, scheme=scheme_name, config=cfg) is None

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=40),
        chunk=st.sampled_from([5, 11, 32]),
    )
    def test_profiles_property(self, seed, chunk):
        profile = PROFILES[seed % len(PROFILES)]
        trace = fuzz_trace(seed, n_requests=160, profile=profile)
        cfg = fuzz_config(kernel_chunk_requests=chunk)
        assert diff_kernels(trace, scheme="cagc", config=cfg) is None


class TestInlineDedupePolicies:
    """The inline-dedupe plan/apply kernel must be exact under every
    victim policy — GC boundaries land wherever the policy steers
    them, so each policy exercises different plan split points."""

    @pytest.mark.parametrize(
        "policy", ("greedy", "cost-benefit", "random", "region-aware")
    )
    def test_digest_identity(self, policy):
        digests = {}
        for kernel in ("reference", "vectorized"):
            cfg = small_config(blocks=64, pages_per_block=16, kernel=kernel)
            trace = build_fiu_trace("mail", cfg, n_requests=1200)
            scheme = build_scheme("inline-dedupe", policy, cfg)
            result = SSD(scheme).replay(trace)
            digests[kernel] = _trajectory_digest(result, scheme)
        assert digests["reference"] == digests["vectorized"]

    @pytest.mark.parametrize(
        "policy", ("greedy", "cost-benefit", "random", "region-aware")
    )
    def test_gc_heavy_fuzz(self, policy):
        trace = fuzz_trace(7, n_requests=300, profile="gc-fill")
        assert (
            diff_kernels(trace, scheme="inline-dedupe", policy=policy) is None
        )


class TestTelemetryParity:
    """Telemetry-enabled vectorized replays stay on the batched path;
    the histogram fold must be exact and the percentiles identical."""

    @pytest.mark.parametrize(
        "scheme_name", ("baseline", "cagc", "inline-dedupe")
    )
    def test_histogram_exact(self, scheme_name):
        from repro.obs.telemetry import RunTelemetry

        hists = {}
        for kernel in ("reference", "vectorized"):
            cfg = small_config(blocks=64, pages_per_block=16, kernel=kernel)
            trace = build_fiu_trace("mail", cfg, n_requests=1500)
            telemetry = RunTelemetry(snapshot_every_us=500.0)
            ssd = SSD(build_scheme(scheme_name, "greedy", cfg), telemetry=telemetry)
            ssd.replay(trace)
            hists[kernel] = telemetry.hist
            assert telemetry.snapshots > 0
        ref, vec = hists["reference"], hists["vectorized"]
        assert np.array_equal(ref.counts, vec.counts)
        assert ref.total == vec.total
        assert ref.sum_us == vec.sum_us  # bit-exact (sequential fold)
        assert ref.max_us == vec.max_us
        assert ref.mean_us == vec.mean_us
        for p in (50.0, 99.0):
            # Identical counts imply identical bucket percentiles; the
            # <=2% acceptance bound is therefore met with zero error.
            assert ref.percentile(p) == vec.percentile(p)

    def test_telemetry_keeps_batched_path(self):
        """An attached RunTelemetry must not force the reference path."""
        from repro.obs.telemetry import RunTelemetry

        cfg = small_config(blocks=64, pages_per_block=16, kernel="vectorized")
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(
            build_scheme("cagc", "greedy", cfg),
            telemetry=RunTelemetry(),
        )
        assert kernel_eligible(ssd, trace)

    def test_record_many_matches_record(self):
        from repro.obs.telemetry import LatencyHistogram

        rng = np.random.default_rng(11)
        samples = rng.exponential(37.0, size=5000) + 0.05
        one = LatencyHistogram()
        for x in samples.tolist():
            one.record(x)
        # Fold in uneven slices to exercise the running-sum seeding.
        many = LatencyHistogram()
        for lo, hi in ((0, 1), (1, 17), (17, 17), (17, 4000), (4000, 5000)):
            many.record_many(samples[lo:hi])
        assert np.array_equal(one.counts, many.counts)
        assert one.total == many.total
        assert one.sum_us == many.sum_us
        assert one.max_us == many.max_us


class TestCagcBatchedCollect:
    """Chunk/victim-boundary properties of the batched CAGC collection
    (it only engages above ``BATCH_MIN_PAGES`` valid pages, so these
    run on a large-block geometry)."""

    def _config(self, **overrides):
        from repro.config import GeometryConfig

        geometry = GeometryConfig(channels=2, pages_per_block=128, blocks=12)
        return fuzz_config(geometry=geometry, **overrides)

    def test_batched_path_engages(self):
        from dataclasses import replace

        cfg = replace(self._config(), kernel="vectorized")
        scheme = build_scheme("cagc", "greedy", cfg)
        trace = fuzz_trace(1, config=cfg, n_requests=500, profile="gc-fill")
        SSD(scheme).replay(trace)
        assert scheme.kernel_gc_stats["batched"] > 0

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=30),
        chunk=st.sampled_from([13, 64, 65536]),
    )
    def test_gc_fill_property(self, seed, chunk):
        cfg = self._config(kernel_chunk_requests=chunk)
        trace = fuzz_trace(seed, config=cfg, n_requests=400, profile="gc-fill")
        assert diff_kernels(trace, scheme="cagc", config=cfg) is None

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=20))
    def test_mixed_profile_property(self, seed):
        profile = PROFILES[seed % len(PROFILES)]
        cfg = self._config()
        trace = fuzz_trace(seed, config=cfg, n_requests=400, profile=profile)
        assert diff_kernels(trace, scheme="cagc", config=cfg) is None


class TestFallbackSeams:
    def test_unmapped_read_fallback(self):
        """Reads of never-written LPNs resolve zero pages on both
        paths, without breaking the runs around them."""
        cfg = fuzz_config()
        span = lpn_span(cfg)
        rows = []
        clock = 0.0
        fp = 1 << 41
        for burst in range(12):
            for k in range(6):
                clock += 7.0
                fp += 1
                rows.append((clock, _W, (burst * 5 + k) % (span // 2), 2, (fp, fp)))
            clock += 7.0
            # The top half of the span is never written.
            rows.append((clock, _R, span - 1, 1, ()))
            clock += 7.0
            rows.append((clock, _R, span - 2, 2, ()))
        trace = rows_to_trace(rows, name="unmapped-reads")
        for scheme_name in ("baseline", "cagc"):
            assert diff_kernels(trace, scheme=scheme_name) is None

    def test_write_buffer_splits_to_reference_path(self):
        """A DRAM write buffer absorbs and reorders run-internal
        writes, so the batched kernels do not model it: the vectorized
        config must take the reference path and stay bit-identical."""
        results = {}
        for kernel in ("reference", "vectorized"):
            cfg = small_config(
                blocks=64,
                pages_per_block=16,
                kernel=kernel,
                write_buffer_pages=8,
            )
            trace = build_fiu_trace("mail", cfg, n_requests=800)
            ssd = SSD(build_scheme("cagc", "greedy", cfg))
            assert not kernel_eligible(ssd, trace)
            results[kernel] = ssd.replay(trace)
        assert np.array_equal(
            results["reference"].response_times_us,
            results["vectorized"].response_times_us,
        )
        assert results["reference"].gc == results["vectorized"].gc

    def test_preemptive_gc_not_eligible(self):
        cfg = small_config(
            blocks=64, pages_per_block=16, kernel="vectorized", gc_mode="preemptive"
        )
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(build_scheme("baseline", "greedy", cfg))
        assert not kernel_eligible(ssd, trace)

    def test_eligible_by_default(self):
        cfg = small_config(blocks=64, pages_per_block=16, kernel="vectorized")
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(build_scheme("baseline", "greedy", cfg))
        assert kernel_eligible(ssd, trace)

    def test_reference_config_not_eligible(self):
        cfg = small_config(blocks=64, pages_per_block=16, kernel="reference")
        trace = build_fiu_trace("mail", cfg, n_requests=10)
        ssd = SSD(build_scheme("baseline", "greedy", cfg))
        assert not kernel_eligible(ssd, trace)
