"""Tests for the Inline-Dedupe scheme."""

import pytest

from repro.flash.chip import PageState
from repro.schemes.inline_dedupe import InlineDedupeScheme


@pytest.fixture
def scheme(tiny_config):
    return InlineDedupeScheme(tiny_config)


class TestWritePath:
    def test_unique_content_programs_and_indexes(self, scheme):
        out = scheme.write_request(0, [11], 0.0)
        assert out.programs == 1
        assert out.hashed_pages == 1
        assert out.dedup_hits == 0
        assert len(scheme.index) == 1

    def test_duplicate_content_skips_program(self, scheme):
        scheme.write_request(0, [11], 0.0)
        out = scheme.write_request(1, [11], 0.0)
        assert out.programs == 0
        assert out.dedup_hits == 1
        assert scheme.flash.total_programs == 1
        assert scheme.mapping.lookup(0) == scheme.mapping.lookup(1)

    def test_every_page_pays_hash(self, scheme):
        scheme.write_request(0, [11], 0.0)
        out = scheme.write_request(1, [11, 22, 11], 0.0)
        assert out.hashed_pages == 3

    def test_refcount_grows_with_sharers(self, scheme):
        for lpn in range(4):
            scheme.write_request(lpn, [77], 0.0)
        ppn = scheme.mapping.lookup(0)
        assert scheme.mapping.refcount(ppn) == 4

    def test_rewrite_same_content_same_lpn_is_stable(self, scheme):
        scheme.write_request(0, [11], 0.0)
        ppn = scheme.mapping.lookup(0)
        scheme.write_request(0, [11], 0.0)
        assert scheme.mapping.lookup(0) == ppn
        assert scheme.mapping.refcount(ppn) == 1
        scheme.check_invariants()

    def test_overwrite_releases_only_when_last_ref_gone(self, scheme):
        scheme.write_request(0, [11], 0.0)
        scheme.write_request(1, [11], 0.0)
        shared = scheme.mapping.lookup(0)
        scheme.write_request(0, [22], 0.0)
        assert scheme.flash.state_of(shared) == PageState.VALID
        scheme.write_request(1, [33], 0.0)
        assert scheme.flash.state_of(shared) == PageState.INVALID
        assert not scheme.index.contains_ppn(shared)

    def test_dead_content_can_be_rewritten(self, scheme):
        scheme.write_request(0, [11], 0.0)
        scheme.write_request(0, [22], 0.0)  # kills content 11
        out = scheme.write_request(1, [11], 0.0)
        assert out.programs == 1  # content 11 must be stored again

    def test_inline_hit_counter(self, scheme):
        scheme.write_request(0, [11], 0.0)
        scheme.write_request(1, [11], 0.0)
        assert scheme.io_counters.inline_dedup_hits == 1


class TestGC:
    def fill(self, scheme):
        lpns = scheme.config.logical_pages
        for lpn in range(lpns):
            if scheme.needs_gc():
                scheme.run_gc(0.0)
            scheme.write_page(lpn, 1000 + lpn, 0.0)
        for lpn in range(lpns // 2):
            if scheme.needs_gc():
                scheme.run_gc(0.0)
            scheme.write_page(lpn, 5000 + lpn, 0.0)

    def test_gc_preserves_content_and_index(self, scheme):
        self.fill(scheme)
        content = scheme.logical_content()
        while scheme.needs_gc():
            if scheme.run_gc(0.0) == 0.0:
                break
        assert scheme.logical_content() == content
        scheme.check_invariants()

    def test_gc_moves_index_entries_with_pages(self, scheme):
        self.fill(scheme)
        scheme.run_gc(0.0)
        # every canonical entry still points at a VALID page
        for ppn in list(scheme.mapping.mapped_ppns()):
            if scheme.index.contains_ppn(ppn):
                assert scheme.flash.state_of(ppn) == PageState.VALID

    def test_logical_content_shared_across_lpns(self, scheme):
        scheme.write_request(0, [11], 0.0)
        scheme.write_request(1, [11], 0.0)
        assert scheme.logical_content() == {0: 11, 1: 11}
