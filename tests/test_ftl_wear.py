"""Tests for wear statistics."""

from repro.config import GeometryConfig
from repro.flash.chip import FlashArray
from repro.ftl.wear import wear_stats


def test_fresh_device_has_zero_wear():
    flash = FlashArray(GeometryConfig(channels=1, pages_per_block=4, blocks=4))
    stats = wear_stats(flash)
    assert stats.total_erases == 0
    assert stats.max_erase == 0
    assert stats.cov == 0.0


def test_wear_counts_follow_erases():
    flash = FlashArray(GeometryConfig(channels=1, pages_per_block=4, blocks=4))
    for _ in range(3):
        flash.erase(0)
    flash.erase(1)
    stats = wear_stats(flash)
    assert stats.total_erases == 4
    assert stats.max_erase == 3
    assert stats.mean_erase == 1.0


def test_cov_zero_for_even_wear():
    flash = FlashArray(GeometryConfig(channels=1, pages_per_block=4, blocks=4))
    for block in range(4):
        flash.erase(block)
    assert wear_stats(flash).cov == 0.0


def test_cov_positive_for_uneven_wear():
    flash = FlashArray(GeometryConfig(channels=1, pages_per_block=4, blocks=4))
    for _ in range(10):
        flash.erase(0)
    assert wear_stats(flash).cov > 1.0
