"""Tests for the experiment harness (quick scale)."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import (
    SCALES,
    ExperimentReport,
    gc_efficiency_result,
    get_scale,
    reduction_vs_baseline,
)
from repro.experiments.fig6_refcount_invalid import refcount_invalidation_histogram
from repro.experiments.fig8_example import run_scenario
from repro.workloads.fiu import build_fiu_trace


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        for artifact in (
            "table1",
            "table2",
            "fig2",
            "fig6",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
        ):
            assert artifact in EXPERIMENTS

    def test_ablations_registered(self):
        assert any(k.startswith("ablation-") for k in EXPERIMENTS)

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_scales_have_valid_configs(self):
        for scale in SCALES.values():
            scale.config().validate()


class TestReportStructure:
    def test_report_renders_as_text(self):
        report = run_experiment("table1", scale="quick")
        text = str(report)
        assert "[table1]" in text
        assert "Page Size" in text

    def test_table1_matches_paper(self):
        assert run_experiment("table1", scale="quick").data["matches"]


class TestTable2:
    def test_characteristics_close_to_paper(self):
        report = run_experiment("table2", scale="quick")
        for workload, paper in (
            ("mail", (0.698, 0.893)),
            ("homes", (0.805, 0.300)),
            ("web-vm", (0.785, 0.493)),
        ):
            measured = report.data[workload]
            assert measured["write_ratio"] == pytest.approx(paper[0], abs=0.05)
            assert measured["dedup_ratio"] == pytest.approx(paper[1], abs=0.13)


class TestFig2:
    def test_inline_dedup_degrades_light_load(self):
        report = run_experiment("fig2", scale="quick")
        for workload in ("homes", "webmail", "mail"):
            assert report.data[workload]["normalized"] > 1.2
            assert report.data[workload]["gc_bursts_baseline"] == 0

    def test_homes_overhead_largest(self):
        # lowest dedup ratio -> least inline benefit -> worst slowdown
        data = run_experiment("fig2", scale="quick").data
        assert data["homes"]["normalized"] >= data["mail"]["normalized"]


class TestFig6:
    def test_refcount_one_dominates_invalidations(self):
        report = run_experiment("fig6", scale="quick")
        for workload in ("homes", "web-vm", "mail"):
            assert report.data[workload]["1"] > 0.8
            assert report.data[workload][">3"] < 0.05

    def test_histogram_helper_direct(self):
        from repro.config import small_config

        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("mail", cfg, n_requests=3000)
        hist = refcount_invalidation_histogram(trace)
        assert hist.total > 0
        assert abs(sum(hist.fractions()) - 1.0) < 1e-9


class TestFig8:
    def test_paper_exact_page_writes(self):
        trad = run_scenario("baseline")
        cagc = run_scenario("cagc")
        assert trad["gc_page_writes"] == 12
        assert cagc["gc_page_writes"] == 7  # one per unique content A..G
        assert cagc["physical_pages_after_gc"] == 7
        assert trad["physical_pages_after_gc"] == 12

    def test_delete_frees_more_under_baseline(self):
        # baseline invalidates 5 pages (E,B,F,B,G); CAGC only loses the
        # contents whose last reference died (E, F, G).
        trad = run_scenario("baseline")
        cagc = run_scenario("cagc")
        assert trad["pages_freed_by_delete"] == 5
        assert cagc["pages_freed_by_delete"] == 3


class TestGCEfficiency:
    """Quick-scale shape checks for Figs 9-11."""

    @pytest.mark.parametrize("workload", ["homes", "web-vm", "mail"])
    def test_cagc_erases_fewer_blocks(self, workload):
        base = gc_efficiency_result(workload, "baseline", "quick")
        cagc = gc_efficiency_result(workload, "cagc", "quick")
        assert cagc.blocks_erased < base.blocks_erased

    @pytest.mark.parametrize("workload", ["homes", "web-vm", "mail"])
    def test_cagc_migrates_fewer_pages(self, workload):
        base = gc_efficiency_result(workload, "baseline", "quick")
        cagc = gc_efficiency_result(workload, "cagc", "quick")
        assert cagc.pages_migrated < base.pages_migrated

    @pytest.mark.parametrize("workload", ["homes", "web-vm", "mail"])
    def test_cagc_improves_mean_response(self, workload):
        base = gc_efficiency_result(workload, "baseline", "quick")
        cagc = gc_efficiency_result(workload, "cagc", "quick")
        assert cagc.latency.mean_us < base.latency.mean_us

    def test_mail_benefits_most_from_dedup(self):
        reductions = {}
        for workload in ("homes", "mail"):
            base = gc_efficiency_result(workload, "baseline", "quick")
            cagc = gc_efficiency_result(workload, "cagc", "quick")
            reductions[workload] = reduction_vs_baseline(
                base.pages_migrated, cagc.pages_migrated
            )
        assert reductions["mail"] > reductions["homes"]

    def test_results_memoized(self):
        a = gc_efficiency_result("homes", "baseline", "quick")
        b = gc_efficiency_result("homes", "baseline", "quick")
        assert a is b


class TestReports:
    @pytest.mark.parametrize("experiment_id", ["fig9", "fig10", "fig11", "fig12"])
    def test_quick_reports_render(self, experiment_id):
        report = run_experiment(experiment_id, scale="quick")
        assert isinstance(report, ExperimentReport)
        assert len(report.rows) >= 3
        assert str(report)


class TestArrayTail:
    def test_registered_with_spec_fanout(self):
        from repro.experiments.registry import _SPEC_BUILDERS

        assert "array-tail" in EXPERIMENTS
        specs = _SPEC_BUILDERS["array-tail"]("quick")
        assert len(specs) == 3
        assert {s.gc_coord for s in specs} == {
            "independent",
            "staggered",
            "global-token",
        }
        assert all(s.array_devices == 4 and s.tenants == 4 for s in specs)

    def test_reproduces_unsynchronized_gc_tail_inflation(self):
        """The experiment's headline claim, at quick scale: independent
        per-device GC shows the worst array-wide p999, strictly above
        the best coordinated policy."""
        report = run_experiment("array-tail", scale="quick")
        assert isinstance(report, ExperimentReport)
        assert len(report.rows) == 3
        assert str(report)
        p999 = report.data["p999"]
        coordinated = min(p999["staggered"], p999["global-token"])
        assert p999["independent"] > coordinated
        assert report.data["inflation"]["independent"] > 1.0
