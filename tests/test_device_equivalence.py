"""Equivalence and oracle-based property tests for the device layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.device.parallel import ParallelSSD
from repro.device.ssd import SSD
from repro.device.writebuffer import WriteBuffer
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace


def one_channel_cfg() -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=1, pages_per_block=16, blocks=64),
        timing=TimingConfig(overhead_us=0.0),
    )


class TestSerialParallelEquivalence:
    """With one channel, the parallel controller degenerates to the
    serial one: same dispatch, same queue, same timing — so every
    response time and counter must match bit-for-bit."""

    @pytest.mark.parametrize("scheme_name", ["baseline", "inline-dedupe", "cagc"])
    def test_single_channel_identical(self, scheme_name):
        cfg = one_channel_cfg()
        trace = build_fiu_trace("homes", cfg, n_requests=3000)
        serial_scheme = make_scheme(scheme_name, cfg)
        parallel_scheme = make_scheme(scheme_name, cfg)
        serial = SSD(serial_scheme).replay(trace)
        parallel = ParallelSSD(parallel_scheme).replay(trace)
        assert np.array_equal(serial.response_times_us, parallel.response_times_us)
        assert serial.blocks_erased == parallel.blocks_erased
        assert serial.pages_migrated == parallel.pages_migrated
        assert serial_scheme.logical_content() == parallel_scheme.logical_content()


class _LRUOracle:
    """Reference LRU write-back buffer, the slow-but-obvious way."""

    def __init__(self, capacity, batch):
        self.capacity = capacity
        self.batch = batch
        self.entries = []  # list of [lpn, fp], LRU first

    def put(self, lpn, fp):
        for entry in self.entries:
            if entry[0] == lpn:
                self.entries.remove(entry)
                self.entries.append([lpn, fp])
                return []
        self.entries.append([lpn, fp])
        evicted = []
        if len(self.entries) > self.capacity:
            for _ in range(min(self.batch, len(self.entries))):
                evicted.append(tuple(self.entries.pop(0)))
        return evicted

    def trim(self, lpn):
        for entry in self.entries:
            if entry[0] == lpn:
                self.entries.remove(entry)
                return True
        return False


class TestWriteBufferOracle:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # 0=put 1=trim
                st.integers(min_value=0, max_value=12),  # lpn
                st.integers(min_value=0, max_value=99),  # fp
            ),
            max_size=200,
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru(self, ops, capacity):
        batch = max(1, capacity // 8)
        buf = WriteBuffer(capacity, destage_batch=batch)
        oracle = _LRUOracle(capacity, batch)
        for op, lpn, fp in ops:
            if op == 0:
                assert buf.put(lpn, fp) == oracle.put(lpn, fp)
            else:
                assert buf.trim(lpn) == oracle.trim(lpn)
            assert len(buf) == len(oracle.entries)
        drained = dict(buf.drain())
        assert drained == {lpn: fp for lpn, fp in oracle.entries}

    @given(
        puts=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 9)), max_size=150
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_every_page_destaged_or_buffered(self, puts):
        """Nothing is lost: last content of each LPN is either still
        buffered at drain time or was destaged at some point."""
        buf = WriteBuffer(4, destage_batch=1)
        destaged = {}
        for lpn, fp in puts:
            for e_lpn, e_fp in buf.put(lpn, fp):
                destaged[e_lpn] = e_fp
        for lpn, fp in buf.drain():
            destaged[lpn] = fp
        expected = {}
        for lpn, fp in puts:
            expected[lpn] = fp
        # the final destage of each LPN carries its last-written content
        for lpn, fp in expected.items():
            assert destaged[lpn] == fp
