"""Tests for the endurance model and wear-aware allocation."""

import pytest

from repro.config import GeometryConfig, SSDConfig, small_config
from repro.flash.chip import FlashArray
from repro.flash.endurance import EnduranceModel
from repro.ftl.allocator import Region, WearAwareAllocator


@pytest.fixture
def flash() -> FlashArray:
    return FlashArray(GeometryConfig(channels=2, pages_per_block=4, blocks=8))


class TestEnduranceModel:
    def test_fresh_device_full_life(self, flash):
        report = EnduranceModel(1000).report(flash, SSDConfig())
        assert report.mean_life_remaining == 1.0
        assert report.worst_life_remaining == 1.0
        assert report.max_cycles_used == 0

    def test_wear_consumes_life(self, flash):
        for _ in range(250):
            flash.erase(0)
        model = EnduranceModel(1000)
        report = model.report(flash, SSDConfig())
        assert report.worst_life_remaining == pytest.approx(0.75)
        assert report.mean_cycles_used == pytest.approx(250 / 8)
        assert model.cycles_until_failure(flash) == 750

    def test_life_floors_at_zero(self, flash):
        for _ in range(20):
            flash.erase(0)
        report = EnduranceModel(10).report(flash, SSDConfig())
        assert report.worst_life_remaining == 0.0

    def test_lifetime_writes_scale_inverse_waf(self, flash):
        cfg = SSDConfig()
        model = EnduranceModel(1000)
        at_one = model.report(flash, cfg, waf=1.0).lifetime_writes_bytes
        at_two = model.report(flash, cfg, waf=2.0).lifetime_writes_bytes
        assert at_one == pytest.approx(2 * at_two)

    def test_invalid_rating_rejected(self):
        with pytest.raises(ValueError):
            EnduranceModel(0)


class TestWearAwareAllocator:
    def test_prefers_least_worn_block(self, flash):
        # pre-wear blocks 0..5 heavily, leave 6 and 7 fresh
        for block in range(6):
            for _ in range(5):
                flash.erase(block)
        alloc = WearAwareAllocator(flash)
        ppn = alloc.allocate_page(Region.HOT)
        assert flash.geometry.ppn_to_block(ppn) in (6, 7)

    def test_spreads_wear_more_evenly_than_fifo(self):
        """Under churn, wear-aware allocation lowers the wear CoV."""
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme
        from repro.workloads.fiu import build_fiu_trace

        import dataclasses

        cov = {}
        for wear_aware in (False, True):
            cfg = dataclasses.replace(
                small_config(blocks=64, pages_per_block=16),
                wear_aware_allocation=wear_aware,
            )
            trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=4.0)
            result = run_trace(make_scheme("baseline", cfg), trace)
            cov[wear_aware] = result.wear.cov
        assert cov[True] <= cov[False]

    def test_invariants_hold(self, flash):
        alloc = WearAwareAllocator(flash)
        for _ in range(10):
            alloc.allocate_page(Region.HOT)
        alloc.check_invariants()

    def test_config_flag_selects_allocator(self):
        import dataclasses

        from repro.schemes import make_scheme

        cfg = dataclasses.replace(small_config(), wear_aware_allocation=True)
        scheme = make_scheme("baseline", cfg)
        assert isinstance(scheme.allocator, WearAwareAllocator)
