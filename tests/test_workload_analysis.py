"""Tests for the workload-analysis helpers."""

import pytest

from repro.config import small_config
from repro.workloads.analysis import (
    content_popularity,
    final_content_refcounts,
    profile_trace,
    refcount_histogram,
)
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


def simple_trace() -> Trace:
    return Trace.from_requests(
        [
            IORequest(0.0, OpKind.WRITE, 0, 2, (0xA, 0xB)),   # lpn0=A lpn1=B
            IORequest(1.0, OpKind.WRITE, 2, 1, (0xA,)),        # lpn2=A
            IORequest(2.0, OpKind.WRITE, 0, 1, (0xC,)),        # lpn0 updated
            IORequest(3.0, OpKind.READ, 0, 2),
            IORequest(4.0, OpKind.TRIM, 1, 1),                 # lpn1 gone
        ]
    )


class TestContentPopularity:
    def test_descending_counts(self):
        pop = content_popularity(simple_trace())
        assert pop.tolist() == [2, 1, 1]  # A twice, B once, C once

    def test_empty_trace(self):
        assert content_popularity(Trace.from_requests([])).size == 0


class TestFinalRefcounts:
    def test_refcounts_after_updates_and_trims(self):
        refs = final_content_refcounts(simple_trace())
        # live state: lpn0=C, lpn2=A (lpn1 trimmed)
        assert refs == {0xC: 1, 0xA: 1}

    def test_shared_content_counted(self):
        trace = Trace.from_requests(
            [
                IORequest(0.0, OpKind.WRITE, 0, 1, (0xA,)),
                IORequest(1.0, OpKind.WRITE, 1, 1, (0xA,)),
                IORequest(2.0, OpKind.WRITE, 2, 1, (0xA,)),
            ]
        )
        assert final_content_refcounts(trace) == {0xA: 3}


class TestProfile:
    def test_simple_profile(self):
        profile = profile_trace(simple_trace())
        assert profile.working_set_pages == 3  # lpns 0,1,2
        assert profile.written_pages == 4
        assert profile.update_fraction == pytest.approx(0.25)
        assert profile.unique_contents == 3
        assert profile.mean_final_refcount == 1.0

    def test_empty_profile(self):
        profile = profile_trace(Trace.from_requests([]))
        assert profile.working_set_pages == 0
        assert profile.mean_overwrites == 0.0

    def test_fiu_presets_show_expected_skew(self):
        cfg = small_config(blocks=128, pages_per_block=32)
        mail = profile_trace(build_fiu_trace("mail", cfg, n_requests=4000))
        homes = profile_trace(build_fiu_trace("homes", cfg, n_requests=4000))
        # mail's heavy dedup -> far fewer unique contents per written page
        assert (
            mail.unique_contents / mail.written_pages
            < homes.unique_contents / homes.written_pages
        )
        # mail's shared pool -> higher mean refcount
        assert mail.mean_final_refcount > homes.mean_final_refcount
        # popular content dominates under zipf
        assert mail.top1pct_content_share > 0.1


class TestRefcountHistogram:
    def test_buckets_sum_to_one(self):
        cfg = small_config(blocks=128, pages_per_block=32)
        trace = build_fiu_trace("mail", cfg, n_requests=3000)
        rows = refcount_histogram(trace)
        assert [label for label, _ in rows] == ["1", "2", "3", ">3"]
        assert sum(f for _, f in rows) == pytest.approx(1.0)

    def test_empty_trace(self):
        rows = refcount_histogram(Trace.from_requests([]))
        assert all(f == 0.0 for _, f in rows)
