"""Tests for blocking vs preemptive (idle-time) GC modes."""

import dataclasses

import pytest

from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.device.ssd import SSD, run_trace
from repro.oracle.invariants import check_all
from repro.schemes import make_scheme
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


def cfg(mode="blocking") -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=32),
        timing=TimingConfig(overhead_us=0.0),
        gc_mode=mode,
    )


def churn_trace(config, rounds=4, gap_us=200.0) -> Trace:
    """Overwrite churn with idle gaps between requests."""
    lpns = int(config.logical_pages * 0.8)
    reqs = []
    t = 0.0
    fp = 0
    for _ in range(rounds):
        for lpn in range(lpns):
            reqs.append(IORequest(t, OpKind.WRITE, lpn, 1, (fp,)))
            t += gap_us
            fp += 1
    return Trace.from_requests(reqs, name="churn")


class TestConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SSDConfig(), gc_mode="lazy").validate()

    def test_modes_accepted(self):
        for mode in ("blocking", "preemptive"):
            dataclasses.replace(SSDConfig(), gc_mode=mode).validate()


class TestPreemptiveMode:
    def test_background_chunks_run_in_idle_gaps(self):
        config = cfg("preemptive")
        scheme = make_scheme("baseline", config)
        ssd = SSD(scheme)
        ssd.replay(churn_trace(config))
        assert ssd.background_gc_chunks > 0

    def test_blocking_mode_never_uses_background(self):
        config = cfg("blocking")
        ssd = SSD(make_scheme("baseline", config))
        ssd.replay(churn_trace(config))
        assert ssd.background_gc_chunks == 0

    def test_both_modes_preserve_logical_content(self):
        results = {}
        for mode in ("blocking", "preemptive"):
            config = cfg(mode)
            scheme = make_scheme("cagc", config)
            SSD(scheme).replay(churn_trace(config))
            check_all(scheme)
            results[mode] = scheme.logical_content()
        assert results["blocking"] == results["preemptive"]

    def test_preemptive_improves_tail_latency(self):
        """With idle gaps available, moving GC off the foreground path
        must cut the worst-case stall."""
        lat = {}
        for mode in ("blocking", "preemptive"):
            config = cfg(mode)
            result = run_trace(make_scheme("baseline", config), churn_trace(config))
            lat[mode] = result.latency
        assert lat["preemptive"].p99_us < lat["blocking"].p99_us
        assert lat["preemptive"].max_us <= lat["blocking"].max_us

    def test_preemptive_foreground_stall_bounded_by_reserve(self):
        """A single foreground stall collects only enough blocks to
        restore the reserve, not a full burst."""
        config = cfg("preemptive")
        scheme = make_scheme("baseline", config)
        ssd = SSD(scheme)
        # saturating trace: no idle gaps, so foreground GC must happen
        reqs = []
        fp = 0
        lpns = int(config.logical_pages * 0.8)
        for round_ in range(4):
            for lpn in range(lpns):
                reqs.append(IORequest(0.0, OpKind.WRITE, lpn, 1, (fp,)))
                fp += 1
        result = ssd.replay(Trace.from_requests(reqs, name="saturated"))
        assert result.gc.blocks_erased > 0
        assert scheme.allocator.free_blocks >= 0

    def test_device_stays_consistent_after_bg_gc(self):
        config = cfg("preemptive")
        scheme = make_scheme("inline-dedupe", config)
        SSD(scheme).replay(churn_trace(config))
        check_all(scheme)


class TestCollectNext:
    def test_collect_next_zero_when_no_victims(self):
        scheme = make_scheme("baseline", cfg())
        assert scheme.collect_next(0.0) == 0.0

    def test_collect_next_erases_one_block(self):
        config = cfg()
        scheme = make_scheme("baseline", config)
        lpns = int(config.logical_pages * 0.8)
        for rep in range(2):
            for lpn in range(lpns):
                if scheme.needs_gc():
                    scheme.run_gc(0.0)
                scheme.write_page(lpn, rep * lpns + lpn, 0.0)
        erased_before = scheme.gc_counters.blocks_erased
        duration = scheme.collect_next(0.0)
        assert duration > 0.0
        assert scheme.gc_counters.blocks_erased == erased_before + 1

    def test_reserve_blocks_floor(self):
        scheme = make_scheme("baseline", cfg())
        assert scheme.reserve_blocks() >= 4
