"""Tests for the shared logger and the wall-clock heartbeat."""

from __future__ import annotations

import argparse
import io
import logging

import pytest

from repro.obs import Heartbeat
from repro.obs import log


@pytest.fixture(autouse=True)
def _restore_logger():
    yield
    # leave the module in its default state for other tests
    log.setup(verbosity=0)


class TestLog:
    def test_levels_follow_verbosity(self):
        assert log.setup(verbosity=-1).level == logging.WARNING
        assert log.setup(verbosity=0).level == logging.INFO
        assert log.setup(verbosity=2).level == logging.DEBUG

    def test_setup_is_idempotent(self):
        log.setup()
        log.setup()
        assert len(log.logger.handlers) == 1
        assert log.logger.propagate is False

    def test_messages_respect_level(self):
        stream = io.StringIO()
        log.setup(verbosity=-1, stream=stream)
        log.info("hidden")
        log.warning("shown")
        assert stream.getvalue() == "shown\n"

    def test_argparse_flags_round_trip(self):
        parser = argparse.ArgumentParser()
        log.add_verbosity_args(parser)
        args = parser.parse_args(["-q", "-q"])
        assert log.setup_from_args(args).level == logging.WARNING
        args = parser.parse_args(["-v"])
        assert log.setup_from_args(args).level == logging.DEBUG

    def test_logger_name_is_shared(self):
        assert log.logger is logging.getLogger("cagc")


class TestHeartbeat:
    def test_zero_interval_prints_every_tick(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        hb.tick(1_000_000.0, events=10, requests=5)
        hb.tick(2_000_000.0, events=20, requests=10)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert hb.beats == 2
        assert "sim" in lines[0] and "reqs" in lines[0]

    def test_long_interval_stays_quiet(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=3600.0, stream=stream)
        for i in range(100):
            hb.tick(float(i), events=i, requests=i)
        assert stream.getvalue() == ""
        assert hb.beats == 0

    def test_finish_always_prints_summary(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=3600.0, stream=stream)
        hb.finish(5_000_000.0, events=1234, requests=600)
        out = stream.getvalue()
        assert "done" in out
        assert "600 reqs" in out

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(interval_s=-1.0)

    def test_tick_line_carries_ops_gc_and_eta(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        hb.expect(100)
        hb.tick(1_000_000.0, events=10, requests=5, gc_collects=3)
        line = stream.getvalue().splitlines()[0]
        assert "ops/s" in line
        assert "gc 3" in line
        assert "eta" in line and "eta     -" not in line

    def test_eta_is_dash_without_expected_total(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        hb.tick(1_000_000.0, events=10, requests=5)
        assert "eta     -" in stream.getvalue()

    def test_finish_line_carries_gc_count(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=3600.0, stream=stream)
        hb.finish(5_000_000.0, events=1234, requests=600, gc_collects=7)
        out = stream.getvalue()
        assert "done" in out and "gc 7" in out

    def test_replay_feeds_expected_total_and_gc(self):
        from repro.config import small_config
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme
        from repro.workloads.fiu import build_fiu_trace

        cfg = small_config(blocks=64, pages_per_block=16, kernel="reference")
        trace = build_fiu_trace("homes", cfg, n_requests=50)
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        run_trace(make_scheme("baseline", cfg), trace, heartbeat=hb)
        assert hb.total_requests == len(trace)  # replay() declared it
        assert "gc " in stream.getvalue()

    def test_device_drives_heartbeat(self):
        from repro.config import small_config
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme
        from repro.workloads.fiu import build_fiu_trace

        # Per-request ticks are a reference-path contract; the
        # vectorized kernel ticks at batch boundaries instead.
        cfg = small_config(blocks=64, pages_per_block=16, kernel="reference")
        trace = build_fiu_trace("homes", cfg, n_requests=200)
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        run_trace(make_scheme("baseline", cfg), trace, heartbeat=hb)
        assert hb.beats == 200  # one per completed request
        assert "done" in stream.getvalue()  # finish() summary from replay()

    def test_vectorized_kernel_ticks_at_batch_boundaries(self):
        from repro.config import small_config
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme
        from repro.workloads.fiu import build_fiu_trace

        cfg = small_config(blocks=64, pages_per_block=16, kernel="vectorized")
        trace = build_fiu_trace("homes", cfg, n_requests=200)
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        run_trace(make_scheme("baseline", cfg), trace, heartbeat=hb)
        # An attached heartbeat no longer forces the reference loop:
        # batching coarsens the tick cadence to run boundaries.
        assert 1 <= hb.beats < 200
        assert "done" in stream.getvalue()
