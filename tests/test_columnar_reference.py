"""Differential property tests: columnar stores vs dict reference models.

The columnar :class:`MappingTable` and :class:`FingerprintIndex` replaced
dict-of-boxed-ints implementations.  These tests re-state the old dict
semantics as in-test reference models and drive both through seeded
random operation sequences, comparing every return value and every
queryable observation after every step, and running the columnar
structures' own ``check_invariants`` as they go.  Any divergence —
wrong value, missing error, drifted occupancy — fails with the step
number that produced it.

Opt-in via the ``oracle`` marker (deselected by default, swept by
``scripts/check_oracle.py``-adjacent CI jobs)::

    pytest -m oracle tests/test_columnar_reference.py
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

import pytest

from repro.dedup.index import FingerprintIndex, IndexError_
from repro.ftl.mapping import MappingTable

pytestmark = pytest.mark.oracle

SEEDS = range(12)
STEPS = 400


class DictMapping:
    """The pre-columnar MappingTable semantics, as plain dicts."""

    def __init__(self) -> None:
        self.fwd: Dict[int, int] = {}
        self.rev: Dict[int, Set[int]] = {}

    def __len__(self) -> int:
        return len(self.fwd)

    def lookup(self, lpn: int) -> Optional[int]:
        return self.fwd.get(lpn)

    def refcount(self, ppn: int) -> int:
        return len(self.rev.get(ppn, ()))

    def is_mapped(self, ppn: int) -> bool:
        return bool(self.rev.get(ppn))

    def lpns_of(self, ppn: int):
        return sorted(self.rev.get(ppn, ()))

    def mapped_ppns(self):
        return sorted(p for p, refs in self.rev.items() if refs)

    def mapped_count(self, lpn: int, npages: int) -> int:
        return sum(1 for i in range(lpn, lpn + npages) if i in self.fwd)

    def bind(self, lpn: int, ppn: int) -> Optional[int]:
        old = self.fwd.get(lpn)
        if old is not None:
            self._drop(old, lpn)
        self.fwd[lpn] = ppn
        self.rev.setdefault(ppn, set()).add(lpn)
        return old

    def unbind(self, lpn: int) -> Optional[int]:
        old = self.fwd.pop(lpn, None)
        if old is not None:
            self._drop(old, lpn)
        return old

    def remap_ppn(self, old_ppn: int, new_ppn: int) -> int:
        moving = self.rev.pop(old_ppn, set())
        for lpn in moving:
            self.fwd[lpn] = new_ppn
        if moving:
            self.rev.setdefault(new_ppn, set()).update(moving)
        return len(moving)

    def _drop(self, ppn: int, lpn: int) -> None:
        refs = self.rev.get(ppn)
        if refs is not None:
            refs.discard(lpn)
            if not refs:
                del self.rev[ppn]


def _compare_mapping(step: int, columnar: MappingTable, ref: DictMapping,
                     lpn_span: int, ppn_span: int) -> None:
    assert len(columnar) == len(ref), f"step {step}: table length diverged"
    assert columnar.mapped_ppns() == ref.mapped_ppns(), f"step {step}: mapped_ppns"
    for ppn in range(ppn_span):
        assert columnar.refcount(ppn) == ref.refcount(ppn), f"step {step}: refcount({ppn})"
        assert sorted(columnar.lpns_of(ppn)) == ref.lpns_of(ppn), f"step {step}: lpns_of({ppn})"
    for lpn in range(lpn_span):
        assert columnar.lookup(lpn) == ref.lookup(lpn), f"step {step}: lookup({lpn})"
    columnar.check_invariants()


@pytest.mark.parametrize("seed", SEEDS)
def test_mapping_table_matches_dict_reference(seed):
    rng = random.Random(seed)
    lpn_span, ppn_span = 48, 32
    columnar = MappingTable(logical_pages=lpn_span, physical_pages=ppn_span)
    ref = DictMapping()
    for step in range(STEPS):
        op = rng.random()
        if op < 0.55:
            lpn, ppn = rng.randrange(lpn_span), rng.randrange(ppn_span)
            assert columnar.bind(lpn, ppn) == ref.bind(lpn, ppn), f"step {step}: bind"
        elif op < 0.75:
            lpn = rng.randrange(lpn_span)
            assert columnar.unbind(lpn) == ref.unbind(lpn), f"step {step}: unbind"
        else:
            old, new = rng.sample(range(ppn_span), 2)
            assert columnar.remap_ppn(old, new) == ref.remap_ppn(old, new), (
                f"step {step}: remap_ppn({old}, {new})"
            )
        # Vectorized extent query against the naive per-page count.
        lo = rng.randrange(lpn_span)
        for width in (1, 7, 100):
            assert columnar.mapped_count(lo, width) == ref.mapped_count(lo, width), (
                f"step {step}: mapped_count({lo}, {width})"
            )
        _compare_mapping(step, columnar, ref, lpn_span, ppn_span)


class DictIndex:
    """The pre-columnar FingerprintIndex semantics, as plain dicts."""

    def __init__(self) -> None:
        self.fp_ppn: Dict[int, int] = {}
        self.ppn_fp: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.fp_ppn)

    def peek(self, fp: int) -> Optional[int]:
        return self.fp_ppn.get(fp)

    def fp_of(self, ppn: int) -> Optional[int]:
        return self.ppn_fp.get(ppn)

    def contains_ppn(self, ppn: int) -> bool:
        return ppn in self.ppn_fp

    def entries(self):
        return sorted(self.fp_ppn.items())

    def insert(self, fp: int, ppn: int) -> None:
        if fp in self.fp_ppn:
            raise IndexError_("already indexed")
        if ppn in self.ppn_fp:
            raise IndexError_("already canonical")
        self.fp_ppn[fp] = ppn
        self.ppn_fp[ppn] = fp

    def remove_ppn(self, ppn: int) -> Optional[int]:
        fp = self.ppn_fp.pop(ppn, None)
        if fp is not None:
            del self.fp_ppn[fp]
        return fp

    def move(self, old_ppn: int, new_ppn: int) -> None:
        if old_ppn not in self.ppn_fp:
            raise IndexError_("not canonical")
        if new_ppn in self.ppn_fp:
            raise IndexError_("already canonical")
        fp = self.ppn_fp.pop(old_ppn)
        self.ppn_fp[new_ppn] = fp
        self.fp_ppn[fp] = new_ppn


def _fp_pool(rng: random.Random, size: int):
    # A mix of small, huge (>= 2^62, stressing the Fibonacci-hash
    # distribution), and negative fingerprints (the fallback-dict path).
    pool = [rng.randrange(1 << 63) for _ in range(size)]
    pool += [(1 << 63) - 1 - i for i in range(4)]
    pool += [-rng.randrange(1, 1 << 62) for _ in range(4)]
    return pool


@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprint_index_matches_dict_reference(seed):
    rng = random.Random(1000 + seed)
    ppn_span = 64
    fps = _fp_pool(rng, 24)
    # Tiny initial table so the run crosses several grow/rehash cycles,
    # and enough churn that tombstones accumulate between them.
    columnar = FingerprintIndex(initial_slots=4)
    ref = DictIndex()
    for step in range(STEPS):
        op = rng.random()
        if op < 0.5:
            fp, ppn = rng.choice(fps), rng.randrange(ppn_span)
            outcome_col = outcome_ref = None
            try:
                columnar.insert(fp, ppn)
            except IndexError_:
                outcome_col = "raised"
            try:
                ref.insert(fp, ppn)
            except IndexError_:
                outcome_ref = "raised"
            assert outcome_col == outcome_ref, f"step {step}: insert({fp:#x}, {ppn})"
        elif op < 0.8:
            ppn = rng.randrange(ppn_span)
            assert columnar.remove_ppn(ppn) == ref.remove_ppn(ppn), (
                f"step {step}: remove_ppn({ppn})"
            )
        else:
            old, new = rng.sample(range(ppn_span), 2)
            outcome_col = outcome_ref = None
            try:
                columnar.move(old, new)
            except IndexError_:
                outcome_col = "raised"
            try:
                ref.move(old, new)
            except IndexError_:
                outcome_ref = "raised"
            assert outcome_col == outcome_ref, f"step {step}: move({old}, {new})"

        assert len(columnar) == len(ref), f"step {step}: index length diverged"
        for fp in fps:
            assert columnar.peek(fp) == ref.peek(fp), f"step {step}: peek({fp:#x})"
        for ppn in range(ppn_span):
            assert columnar.fp_of(ppn) == ref.fp_of(ppn), f"step {step}: fp_of({ppn})"
            assert columnar.contains_ppn(ppn) == ref.contains_ppn(ppn), (
                f"step {step}: contains_ppn({ppn})"
            )
        assert sorted(columnar.entries()) == ref.entries(), f"step {step}: entries"
        columnar.check_invariants()


def test_lookup_counts_hits_and_misses_like_dict_membership():
    idx = FingerprintIndex(initial_slots=4)
    ref = DictIndex()
    for i, fp in enumerate((5, 1 << 62, -3)):
        idx.insert(fp, i)
        ref.insert(fp, i)
    hits = misses = 0
    for fp in (5, 7, -3, -9, 1 << 62, 0):
        expected = ref.peek(fp)
        assert idx.lookup(fp) == expected
        if expected is None:
            misses += 1
        else:
            hits += 1
    assert (idx.hits, idx.misses) == (hits, misses)
    assert idx.hit_ratio == pytest.approx(hits / (hits + misses))
