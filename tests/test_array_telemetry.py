"""Per-tenant SLO telemetry: partition identity, report rows, and the
coordination tail-latency effect.

The partition identity is the accounting backbone of the SLO view:
every completion is recorded into the global, per-device and per-tenant
histograms, so folding either family back together must reproduce the
global histogram *exactly* (bucket counts, totals, maxima — integer
and order-independent) with ``sum_us`` equal up to float fold order.

The seeded coordination test pins the paper-adjacent effect the array
exists to show: unsynchronized per-device GC inflates the array-wide
p999 over staggered GC windows on the same workload.
"""

import numpy as np
import pytest

from repro.array import ArrayTelemetry, SSDArray
from repro.config import small_config
from repro.oracle.diff import build_scheme
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.multiplex import multiplex_traces


def _gc_heavy_array_result(coordination: str):
    """The committed GC-heavy scenario: 4 tenants on 4 small devices,
    blocking GC, enough overwrite churn that every device collects
    continuously.  Fully deterministic (fixed seeds, fixed config)."""
    cfg = small_config(blocks=64, pages_per_block=16, gc_mode="blocking")
    tenant_traces = [
        build_fiu_trace(
            "mail", cfg, n_requests=1200, fill_factor=3.0, seed=100 + t
        )
        for t in range(4)
    ]
    merged = multiplex_traces(
        tenant_traces, devices=4, pages_per_device=cfg.logical_pages
    )
    schemes = [build_scheme("cagc", "greedy", cfg) for _ in range(4)]
    return SSDArray(schemes, coordination=coordination, ncq_depth=16).replay(
        merged
    )


class TestPartitionIdentity:
    @pytest.fixture(scope="class")
    def result(self):
        return _gc_heavy_array_result("staggered")

    def test_tenant_fold_exact(self, result):
        telemetry = result.telemetry
        folded = telemetry.folded_by_tenant()
        assert np.array_equal(folded.counts, telemetry.hist.counts)
        assert folded.total == telemetry.hist.total
        assert folded.max_us == telemetry.hist.max_us
        assert folded.sum_us == pytest.approx(
            telemetry.hist.sum_us, rel=1e-12
        )

    def test_device_fold_exact(self, result):
        telemetry = result.telemetry
        folded = telemetry.folded_by_device()
        assert np.array_equal(folded.counts, telemetry.hist.counts)
        assert folded.total == telemetry.hist.total
        assert folded.max_us == telemetry.hist.max_us
        assert folded.sum_us == pytest.approx(
            telemetry.hist.sum_us, rel=1e-12
        )

    def test_every_request_attributed(self, result):
        telemetry = result.telemetry
        assert telemetry.hist.total == 4 * 1200
        assert all(h.total == 1200 for h in telemetry.tenant_hists)
        # Disjoint tenant->device placement: tenant t is device t here.
        for tenant_hist, device_hist in zip(
            telemetry.tenant_hists, telemetry.device_hists
        ):
            assert np.array_equal(tenant_hist.counts, device_hist.counts)

    def test_device_results_agree_with_histograms(self, result):
        """The per-device RunResult latency summaries and the device
        histograms describe the same completions."""
        for device, hist in zip(result.devices, result.telemetry.device_hists):
            assert device.latency.count == hist.total
            assert device.latency.max_us == hist.max_us

    def test_synthetic_partition(self):
        """Direct unit check, independent of the simulator."""
        rng = np.random.default_rng(3)
        telemetry = ArrayTelemetry(devices=3, tenants=5)
        samples = rng.exponential(80.0, size=4000) + 0.2
        devices = rng.integers(0, 3, size=4000)
        tenants = rng.integers(0, 5, size=4000)
        for lat, dev, ten in zip(samples, devices, tenants):
            telemetry.on_complete(int(dev), int(ten), float(lat))
        for folded in (telemetry.folded_by_tenant(), telemetry.folded_by_device()):
            assert np.array_equal(folded.counts, telemetry.hist.counts)
            assert folded.total == telemetry.hist.total
            assert folded.max_us == telemetry.hist.max_us
            assert folded.sum_us == pytest.approx(
                telemetry.hist.sum_us, rel=1e-12
            )

    def test_arrays_round_trip(self):
        telemetry = ArrayTelemetry(devices=2, tenants=3)
        for i in range(100):
            telemetry.on_complete(i % 2, i % 3, 10.0 + i)
        back = ArrayTelemetry.from_arrays(telemetry.to_arrays())
        assert np.array_equal(back.hist.counts, telemetry.hist.counts)
        for a, b in zip(back.tenant_hists, telemetry.tenant_hists):
            assert np.array_equal(a.counts, b.counts)
            assert a.total == b.total and a.sum_us == b.sum_us
            assert a.max_us == b.max_us


class TestSLORows:
    def test_slo_rows_cover_array_and_tenants(self):
        telemetry = ArrayTelemetry(devices=2, tenants=3)
        for i in range(300):
            telemetry.on_complete(i % 2, i % 3, 50.0 + (i % 7))
        rows = dict(telemetry.slo_rows())
        assert "array p99 / p999" in rows
        for tenant in range(3):
            assert f"tenant {tenant} p99 / p999" in rows

    def test_silent_tenants_skipped(self):
        telemetry = ArrayTelemetry(devices=1, tenants=4)
        telemetry.on_complete(0, 1, 42.0)
        rows = dict(telemetry.slo_rows())
        assert "tenant 1 p99 / p999" in rows
        assert "tenant 0 p99 / p999" not in rows

    def test_report_prints_per_tenant_slo_rows(self, tmp_path, monkeypatch, capsys):
        """End to end: ``cagc-repro report --array-devices`` must print
        one p99/p999 row per tenant."""
        from repro.cli import main
        from repro.experiments.common import reset_result_caches

        monkeypatch.setenv("CAGC_CACHE_DIR", str(tmp_path))
        reset_result_caches()
        code = main(
            [
                "report",
                "--workload",
                "mail",
                "--scheme",
                "baseline",
                "--scale",
                "quick",
                "--array-devices",
                "2",
                "--tenants",
                "2",
                "--gc-coord",
                "staggered",
                "-q",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "array p99 / p999" in out
        assert "tenant 0 p99 / p999" in out
        assert "tenant 1 p99 / p999" in out
        assert "staggered" in out


class TestCoordinationTailEffect:
    def test_staggered_reduces_array_p999(self):
        """The unsynchronized-GC cliff, seeded and deterministic:
        independent per-device GC must show strictly higher array-wide
        p999 than staggered windows on the same GC-heavy workload."""
        independent = _gc_heavy_array_result("independent")
        staggered = _gc_heavy_array_result("staggered")
        p999_ind = independent.percentile(99.9)
        p999_stag = staggered.percentile(99.9)
        assert p999_stag < p999_ind, (
            f"staggered p999 {p999_stag:.0f}us not below "
            f"independent {p999_ind:.0f}us"
        )
        # The effect is a tail effect: meaningful inflation (>5%), and
        # the coordinated run must actually have coordinated (deferrals
        # + idle bursts happened).
        assert p999_ind / p999_stag > 1.05
        assert staggered.coord_stats["gc_deferrals"] > 0
        assert staggered.coord_stats["idle_bursts"] > 0

    def test_global_token_also_tames_tail(self):
        independent = _gc_heavy_array_result("independent")
        token = _gc_heavy_array_result("global-token")
        assert token.percentile(99.9) < independent.percentile(99.9)
        assert token.coord_stats["token_grants"] > 0
