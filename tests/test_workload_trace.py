"""Tests for trace containers and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


def make_requests():
    return [
        IORequest(0.0, OpKind.WRITE, lpn=10, npages=2, fingerprints=(111, 222)),
        IORequest(5.0, OpKind.READ, lpn=10, npages=2),
        IORequest(9.0, OpKind.TRIM, lpn=10, npages=1),
        IORequest(12.5, OpKind.WRITE, lpn=0, npages=1, fingerprints=(111,)),
    ]


class TestIORequest:
    def test_write_requires_fingerprints(self):
        with pytest.raises(ValueError):
            IORequest(0.0, OpKind.WRITE, lpn=0, npages=2)

    def test_write_fingerprint_count_must_match(self):
        with pytest.raises(ValueError):
            IORequest(0.0, OpKind.WRITE, lpn=0, npages=2, fingerprints=(1,))

    def test_read_rejects_fingerprints(self):
        with pytest.raises(ValueError):
            IORequest(0.0, OpKind.READ, lpn=0, npages=1, fingerprints=(1,))

    def test_npages_positive(self):
        with pytest.raises(ValueError):
            IORequest(0.0, OpKind.READ, lpn=0, npages=0)

    def test_lpns_range(self):
        req = IORequest(0.0, OpKind.READ, lpn=5, npages=3)
        assert list(req.lpns) == [5, 6, 7]
        assert req.bytes == 3 * 4096


class TestTraceConstruction:
    def test_from_requests_roundtrip(self):
        reqs = make_requests()
        trace = Trace.from_requests(reqs, name="t")
        assert len(trace) == 4
        back = list(trace.iter_requests())
        assert back == reqs

    def test_iter_rows_matches_requests(self):
        trace = Trace.from_requests(make_requests())
        rows = list(trace.iter_rows())
        assert rows[0][1] == int(OpKind.WRITE)
        assert list(rows[0][4]) == [111, 222]
        assert rows[1][4] is None

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                np.zeros(2),
                np.zeros(3, dtype=np.uint8),
                np.zeros(2, dtype=np.int64),
                np.ones(2, dtype=np.int32),
                np.zeros(0, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
            )

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                np.zeros(2),
                np.zeros(2, dtype=np.uint8),
                np.zeros(2, dtype=np.int64),
                np.ones(2, dtype=np.int32),
                np.zeros(0, dtype=np.int64),
                np.zeros(2, dtype=np.int64),  # needs n+1
            )


class TestTraceStats:
    def test_stats_basic(self):
        trace = Trace.from_requests(make_requests())
        stats = trace.stats()
        assert stats.requests == 4
        assert stats.write_requests == 2
        assert stats.read_requests == 1
        assert stats.trim_requests == 1
        assert stats.write_ratio == 0.5
        assert stats.written_pages == 3
        # fps: 111, 222, 111 -> one duplicate of three.
        assert stats.dedup_ratio == pytest.approx(1 / 3)
        assert stats.unique_written_pages == 2

    def test_avg_req_kb(self):
        trace = Trace.from_requests(make_requests())
        assert trace.stats().avg_req_kb == pytest.approx((2 + 2 + 1 + 1) / 4 * 4.0)

    def test_max_lpn(self):
        trace = Trace.from_requests(make_requests())
        assert trace.max_lpn() == 11

    def test_written_page_count(self):
        assert Trace.from_requests(make_requests()).written_page_count() == 3

    def test_empty_trace(self):
        trace = Trace.from_requests([])
        stats = trace.stats()
        assert stats.requests == 0
        assert stats.dedup_ratio == 0.0
        assert trace.max_lpn() == 0


class TestCSV:
    def test_roundtrip(self, tmp_path):
        trace = Trace.from_requests(make_requests(), name="demo")
        path = tmp_path / "demo.csv"
        trace.save_csv(path)
        loaded = Trace.load_csv(path)
        assert loaded.name == "demo"
        assert list(loaded.iter_requests()) == list(trace.iter_requests())

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError):
            Trace.load_csv(path)

    @given(
        reqs=st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 100),
                st.integers(1, 5),
                st.lists(st.integers(0, 2**62), min_size=5, max_size=5),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, reqs):
        requests = []
        t = 0.0
        for op, lpn, npages, fps in reqs:
            kind = OpKind(op)
            requests.append(
                IORequest(
                    t,
                    kind,
                    lpn=lpn,
                    npages=npages,
                    fingerprints=tuple(fps[:npages]) if kind == OpKind.WRITE else None,
                )
            )
            t += 1.5
        trace = Trace.from_requests(requests)
        path = tmp_path_factory.mktemp("csv") / "t.csv"
        trace.save_csv(path)
        assert list(Trace.load_csv(path).iter_requests()) == requests
