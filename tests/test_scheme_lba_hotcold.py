"""Tests for the LBA-based hot/cold comparator scheme."""

import pytest

from repro.ftl.allocator import Region
from repro.schemes import make_scheme
from repro.schemes.lba_hotcold import LBAHotColdScheme


@pytest.fixture
def scheme(tiny_config):
    return LBAHotColdScheme(tiny_config)


class TestHeatTracking:
    def test_write_counts_accumulate(self, scheme):
        scheme.write_request(0, [1], 0.0)
        scheme.write_request(0, [2], 0.0)
        scheme.write_request(1, [3], 0.0)
        assert scheme.lpn_writes[0] == 2
        assert scheme.lpn_writes[1] == 1

    def test_hot_classification_threshold(self, scheme):
        scheme.write_request(0, [1], 0.0)
        assert not scheme._is_hot_lpn(0)
        scheme.write_request(0, [2], 0.0)
        assert scheme._is_hot_lpn(0)

    def test_trim_clears_heat(self, scheme):
        scheme.write_request(0, [1], 0.0)
        scheme.write_request(0, [2], 0.0)
        scheme.trim_request(0, 1, 0.0)
        assert not scheme._is_hot_lpn(0)

    def test_threshold_validation(self, tiny_config):
        with pytest.raises(ValueError):
            LBAHotColdScheme(tiny_config, hot_write_threshold=0)


class TestMigrationPlacement:
    def fill_and_gc(self, scheme):
        # LPNs 0..3 rewritten (hot), 4..15 written once (cold)
        fp = 0
        for lpn in range(16):
            scheme.write_page(lpn, fp, 0.0)
            fp += 1
        for _ in range(3):
            for lpn in range(4):
                scheme.write_page(lpn, fp, 0.0)
                fp += 1
        # collect all full blocks once
        flash = scheme.flash
        victims = [
            b
            for b in range(flash.blocks)
            if not scheme.allocator.is_active(b)
            and flash.write_ptr[b] == flash.pages_per_block
        ]
        for b in victims:
            scheme.collect_block(b, 0.0)

    def test_cold_lpns_migrate_to_cold_region(self, scheme):
        self.fill_and_gc(scheme)
        cold_lpns = range(4, 16)
        cold_regions = {
            scheme.allocator.region_of(
                scheme.flash.geometry.ppn_to_block(scheme.mapping.lookup(lpn))
            )
            for lpn in cold_lpns
        }
        assert Region.COLD in cold_regions

    def test_hot_lpns_stay_hot(self, scheme):
        self.fill_and_gc(scheme)
        for lpn in range(4):
            region = scheme.allocator.region_of(
                scheme.flash.geometry.ppn_to_block(scheme.mapping.lookup(lpn))
            )
            assert region == Region.HOT

    def test_no_dedup_anywhere(self, scheme):
        scheme.write_request(0, [7], 0.0)
        scheme.write_request(1, [7], 0.0)
        assert scheme.flash.total_programs == 2
        assert len(scheme.index) == 0

    def test_content_preserved_through_gc(self, scheme):
        self.fill_and_gc(scheme)
        scheme.check_invariants()


class TestFactory:
    def test_make_scheme_by_name(self, tiny_config):
        scheme = make_scheme("lba-hotcold", tiny_config)
        assert scheme.name == "lba-hotcold"
