"""Tests for the synthetic trace generator."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.request import OpKind
from repro.workloads.synth import TraceSpec, _zipf_weights, generate_trace


def spec(**kwargs) -> TraceSpec:
    base = TraceSpec(n_requests=5000, lpn_space=20_000, seed=7)
    return dataclasses.replace(base, **kwargs)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_requests": 0},
            {"write_ratio": 1.5},
            {"dedup_ratio": -0.1},
            {"avg_req_pages": 0.5},
            {"max_req_pages": 0},
            {"lpn_space": 10, "max_req_pages": 64},
            {"hot_frac": 0.0},
            {"hot_prob": 1.5},
            {"popular_pool": 0},
            {"mean_interarrival_us": 0.0},
            {"write_ratio": 0.9, "trim_ratio": 0.2},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            spec(**kwargs).validate()

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            spec().with_overrides(write_ratio=2.0)

    def test_with_overrides_returns_new(self):
        s = spec().with_overrides(dedup_ratio=0.9)
        assert s.dedup_ratio == 0.9


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = generate_trace(spec(seed=3))
        b = generate_trace(spec(seed=3))
        assert np.array_equal(a.times_us, b.times_us)
        assert np.array_equal(a.fps_flat, b.fps_flat)

    def test_different_seed_differs(self):
        a = generate_trace(spec(seed=3))
        b = generate_trace(spec(seed=4))
        assert not np.array_equal(a.fps_flat, b.fps_flat)

    def test_write_ratio_approximate(self):
        trace = generate_trace(spec(write_ratio=0.7))
        assert trace.stats().write_ratio == pytest.approx(0.7, abs=0.03)

    def test_dedup_ratio_approximate(self):
        trace = generate_trace(spec(dedup_ratio=0.6, n_requests=20_000))
        assert trace.stats().dedup_ratio == pytest.approx(0.6, abs=0.05)

    def test_avg_request_size_approximate(self):
        trace = generate_trace(spec(avg_req_pages=4.0))
        assert trace.stats().avg_req_kb == pytest.approx(16.0, rel=0.15)

    def test_times_nondecreasing(self):
        trace = generate_trace(spec())
        assert (np.diff(trace.times_us) >= 0).all()

    def test_extents_within_lpn_space(self):
        trace = generate_trace(spec())
        assert trace.max_lpn() < 20_000
        assert (trace.lpns >= 0).all()

    def test_sizes_within_bounds(self):
        trace = generate_trace(spec(max_req_pages=8))
        assert trace.npages.max() <= 8
        assert trace.npages.min() >= 1

    def test_trims_generated_when_requested(self):
        trace = generate_trace(spec(write_ratio=0.5, trim_ratio=0.2))
        stats = trace.stats()
        assert stats.trim_requests > 0
        assert stats.trim_requests / stats.requests == pytest.approx(0.2, abs=0.03)

    def test_hot_region_receives_more_traffic(self):
        s = spec(hot_frac=0.2, hot_prob=0.8)
        trace = generate_trace(s)
        hot_boundary = int(s.lpn_space * s.hot_frac)
        hot = (trace.lpns < hot_boundary).mean()
        assert hot > 0.6

    def test_dedup_zero_all_unique(self):
        trace = generate_trace(spec(dedup_ratio=0.0))
        assert trace.stats().dedup_ratio == 0.0

    def test_dedup_one_nearly_all_duplicate(self):
        trace = generate_trace(spec(dedup_ratio=1.0, n_requests=10_000))
        assert trace.stats().dedup_ratio > 0.9

    def test_explicit_rng_used(self):
        rng = np.random.default_rng(0)
        a = generate_trace(spec(), rng=rng)
        b = generate_trace(spec(), rng=np.random.default_rng(0))
        assert np.array_equal(a.fps_flat, b.fps_flat)

    def test_write_pages_have_fingerprints(self):
        trace = generate_trace(spec())
        for _, op, _, npages, fps in trace.iter_rows():
            if op == int(OpKind.WRITE):
                assert fps is not None and len(fps) == npages
            else:
                assert fps is None


class TestZipfWeights:
    def test_normalized(self):
        w = _zipf_weights(100, 1.0)
        assert w.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = _zipf_weights(50, 1.2)
        assert (np.diff(w) < 0).all()

    def test_s_zero_uniform(self):
        w = _zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    @given(pool=st.integers(1, 500), s=st.floats(0.0, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_always_a_distribution(self, pool, s):
        w = _zipf_weights(pool, s)
        assert len(w) == pool
        assert (w >= 0).all()
        assert w.sum() == pytest.approx(1.0)
