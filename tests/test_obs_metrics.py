"""The unified metrics registry: handle semantics, label partitioning,
the time-series recorder, and — the load-bearing contract — that an
attached metrics bundle is purely observational: with metrics on, every
scheme x policy trajectory stays sha256-identical to the bare replay on
both kernels.
"""

import hashlib
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    ArrayMetrics,
    Counter,
    CounterVec,
    DeviceMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    sample_id,
)
from repro.obs.series import TimeSeriesRecorder, percentile_from_counts


class TestSampleId:
    def test_bare_name(self):
        assert sample_id("cagc_requests_total") == "cagc_requests_total"

    def test_labels_render_prometheus_style(self):
        assert (
            sample_id("cagc_requests_total", (("tenant", "3"),))
            == 'cagc_requests_total{tenant="3"}'
        )


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.counter_vec("v", "tenant") is reg.counter_vec("v", "tenant")

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_callback_gauge_is_lazy(self):
        reads = []
        reg = MetricsRegistry()
        gauge = reg.gauge("g", fn=lambda: reads.append(1) or 7.0)
        assert reads == []  # registration costs nothing
        assert gauge.sample() == 7.0
        assert len(reads) == 1

    def test_unsampled_gauge_kept_out_of_series_scalars(self):
        reg = MetricsRegistry()
        reg.gauge("expensive", fn=lambda: 1.0, sampled=False)
        reg.counter("cheap").inc()
        sampled = dict(reg.iter_scalars(sampled_only=True))
        assert "expensive" not in sampled and "cheap" in sampled
        assert "expensive" in reg.sample_values()

    def test_histogram_value_rows(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        hist.observe(10.0)
        hist.observe(20.0)
        values = reg.sample_values()
        assert values["lat_count"] == 2.0
        assert values["lat_sum"] == 30.0
        assert values["lat_max"] == 20.0

    def test_observe_many_matches_per_event(self):
        a, b = Histogram("a"), Histogram("b")
        values = np.array([3.0, 55.0, 700.0, 55.0])
        a.observe_many(values)
        for v in values:
            b.observe(float(v))
        assert np.array_equal(a.hist.counts, b.hist.counts)
        assert a.hist.sum_us == b.hist.sum_us
        assert a.hist.max_us == b.hist.max_us

    def test_vec_children_cached_and_sorted(self):
        vec = CounterVec("c", "device")
        assert vec.labels(1) is vec.labels(1)
        vec.labels(2).inc(5)
        vec.labels(0).inc(1)
        assert [c.labels for c in vec.children()] == [
            (("device", "0"),),
            (("device", "1"),),
            (("device", "2"),),
        ]


class TestPartitionLaw:
    """Per-device / per-tenant labeled counters exactly partition their
    global parent: every recording site feeds the parent and exactly one
    child per label dimension."""

    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 3),  # device
                st.integers(0, 2),  # tenant
                st.integers(1, 1_000),  # amount (integral: exact sums)
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_labeled_counters_partition_global(self, events):
        reg = MetricsRegistry()
        parent = reg.counter("total")
        by_device = reg.counter_vec("total", "device")
        by_tenant = reg.counter_vec("total", "tenant")
        for device, tenant, amount in events:
            parent.add(amount)
            by_device.labels(device).add(amount)
            by_tenant.labels(tenant).add(amount)
        assert by_device.sum() == parent.value
        assert by_tenant.sum() == parent.value


class TestTimeSeriesRecorder:
    def _bound(self, interval_us=10.0, max_samples=8):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        recorder = TimeSeriesRecorder(
            interval_us=interval_us, max_samples=max_samples
        )
        recorder.bind(reg)
        return reg, counter, recorder

    def test_cadence_is_caller_gated(self):
        # The hot path compares sim-time against next_due_us and only
        # then pays for sample(); the recorder re-arms relative to the
        # sampled time, skipping past idle gaps instead of backlogging.
        _, counter, recorder = self._bound(interval_us=10.0)
        counter.inc()
        for t in (0.0, 5.0, 12.0):
            if t >= recorder.next_due_us:
                recorder.sample(t)
        times, columns = recorder.arrays()
        assert list(times) == [0.0, 12.0]
        assert list(columns["c"]) == [1.0, 1.0]
        assert recorder.next_due_us == 22.0

    def test_decimation_halves_and_doubles_interval(self):
        _, counter, recorder = self._bound(interval_us=1.0, max_samples=64)
        t = 0.0
        for i in range(150):
            counter.inc()
            recorder.sample(t)
            t += 2.0
        assert recorder.samples <= 64
        assert recorder.interval_us > 1.0  # doubled at least once
        times, columns = recorder.arrays()
        assert np.all(np.diff(times) > 0)  # decimation keeps order
        assert np.all(np.diff(columns["c"]) >= 0)  # counters stay monotone

    def test_percentile_from_counts_overflow_goes_to_max(self):
        from repro.obs.telemetry import LatencyHistogram

        hist = LatencyHistogram()
        hist.record(1e9)  # beyond the last edge: overflow bucket
        p = percentile_from_counts(hist.counts, hist.total, hist.max_us, 99.0)
        assert p == hist.max_us


GRID = [
    (scheme, policy)
    for scheme in ("baseline", "inline-dedupe", "cagc", "lba-hotcold")
    for policy in ("greedy", "cost-benefit", "region-aware")
]


class TestObservationalOnly:
    """Metrics never perturb the simulation: all 12 scheme x policy
    trajectories are sha256-identical with and without a bundle, on both
    kernels."""

    @staticmethod
    def _digest(result) -> str:
        samples = np.ascontiguousarray(result.response_times_us)
        return hashlib.sha256(samples.tobytes()).hexdigest()

    @pytest.mark.parametrize("kernel", ["reference", "vectorized"])
    def test_trajectories_identical_with_metrics(self, kernel):
        from repro.device.ssd import SSD
        from repro.oracle.diff import build_scheme
        from repro.oracle.fuzz import fuzz_config, fuzz_trace

        config = replace(fuzz_config(), kernel=kernel)
        trace = fuzz_trace(0, config, n_requests=200)
        for scheme, policy in GRID:
            bare = SSD(build_scheme(scheme, policy, config)).replay(trace)
            metrics = DeviceMetrics()
            metered = SSD(
                build_scheme(scheme, policy, config), metrics=metrics
            ).replay(trace)
            assert self._digest(bare) == self._digest(metered), (
                scheme,
                policy,
                kernel,
            )
            snapshot = metered.metrics
            assert isinstance(snapshot, MetricsSnapshot)
            assert snapshot.values["cagc_requests_total"] == bare.latency.count

    def test_cross_kernel_aggregates_match(self):
        """The kernel-independent metrics (request counter, latency
        histogram fold) agree across kernels even though the sampler
        clocks differently (per completion vs per batch)."""
        from repro.device.ssd import SSD
        from repro.oracle.diff import build_scheme
        from repro.oracle.fuzz import fuzz_config, fuzz_trace

        snapshots = {}
        meters = {}
        for kernel in ("reference", "vectorized"):
            config = replace(fuzz_config(), kernel=kernel)
            trace = fuzz_trace(1, config, n_requests=200)
            metrics = DeviceMetrics()
            SSD(build_scheme("cagc", "greedy", config), metrics=metrics).replay(
                trace
            )
            meters[kernel] = metrics
            snapshots[kernel] = metrics.snapshot()
        ref, vec = meters["reference"], meters["vectorized"]
        assert ref.requests.value == vec.requests.value
        assert np.array_equal(ref.latency.hist.counts, vec.latency.hist.counts)
        assert ref.latency.hist.sum_us == vec.latency.hist.sum_us
        assert ref.latency.hist.max_us == vec.latency.hist.max_us
        assert (
            snapshots["reference"].values["cagc_waf"]
            == snapshots["vectorized"].values["cagc_waf"]
        )


class TestDeviceMetricsSnapshot:
    @pytest.fixture(scope="class")
    def snapshot(self):
        from repro.config import small_config
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme
        from repro.workloads.fiu import build_fiu_trace

        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("mail", cfg, n_requests=1500, fill_factor=3.0)
        metrics = DeviceMetrics(interval_us=5_000.0)
        result = run_trace(make_scheme("cagc", cfg), trace, metrics=metrics)
        return result.metrics

    def test_series_and_values_wired(self, snapshot):
        assert snapshot.samples > 0
        assert snapshot.times_us.size == snapshot.samples
        for column in snapshot.series.values():
            assert column.size == snapshot.samples
        # GC ran (fill_factor 3.0 churns), so the lazy gauges moved.
        assert snapshot.values["cagc_gc_blocks_erased_total"] > 0
        assert snapshot.values["cagc_request_latency_us_count"] > 0

    def test_windowed_percentile_columns_present(self, snapshot):
        assert "window_ops" in snapshot.series
        assert "window_p99_us" in snapshot.series
        assert float(snapshot.series["window_ops"].sum()) > 0

    def test_counter_columns_monotone(self, snapshot):
        for name, column in snapshot.series.items():
            if name.endswith("_total"):
                assert np.all(np.diff(column) >= -1e-9), name


class TestArrayMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.array import SSDArray
        from repro.config import small_config
        from repro.oracle.diff import build_scheme
        from repro.workloads.fiu import build_fiu_trace
        from repro.workloads.multiplex import multiplex_traces

        cfg = small_config(blocks=64, pages_per_block=16, gc_mode="blocking")
        # 3 tenants over 2 devices: scale each tenant's footprint to its
        # layout window (same construction the CLI's array path uses).
        slots = 2
        tenant_traces = [
            build_fiu_trace(
                "mail",
                cfg,
                n_requests=800,
                fill_factor=3.0 / slots,
                lpn_utilization=0.84 / slots,
                seed=100 + t,
            )
            for t in range(3)
        ]
        merged = multiplex_traces(
            tenant_traces, devices=2, pages_per_device=cfg.logical_pages
        )
        schemes = [build_scheme("cagc", "greedy", cfg) for _ in range(2)]
        array = SSDArray(
            schemes,
            coordination="independent",
            ncq_depth=16,
            metrics=ArrayMetrics(),
        )
        return array.replay(merged)

    def test_device_and_tenant_families_partition_global(self, result):
        values = result.metrics.values
        total = values["cagc_requests_total"]
        assert total == result.telemetry.hist.total
        device_sum = sum(
            v
            for k, v in values.items()
            if k.startswith('cagc_requests_total{device="')
        )
        tenant_sum = sum(
            v
            for k, v in values.items()
            if k.startswith('cagc_requests_total{tenant="')
        )
        assert device_sum == total
        assert tenant_sum == total

    def test_per_device_gc_gauges_in_series(self, result):
        snapshot = result.metrics
        assert 'cagc_gc_blocks_erased_total{device="0"}' in snapshot.series
        assert 'cagc_gc_blocks_erased_total{device="1"}' in snapshot.series
        per_device = sum(
            float(snapshot.series[f'cagc_gc_blocks_erased_total{{device="{i}"}}'][-1])
            for i in range(2)
        )
        assert per_device == snapshot.values["cagc_gc_blocks_erased_total"]
