"""Tests for victim-selection policies."""

import numpy as np
import pytest

from repro.config import GeometryConfig
from repro.flash.chip import FlashArray
from repro.ftl.gc import POLICIES, make_policy
from repro.ftl.gc.cost_benefit import CostBenefitPolicy
from repro.ftl.gc.greedy import GreedyPolicy
from repro.ftl.gc.random_policy import RandomPolicy


def build_flash(invalid_per_block, now=0.0, write_times=None):
    """Flash with each block fully programmed and the given invalid counts."""
    blocks = len(invalid_per_block)
    flash = FlashArray(GeometryConfig(channels=1, pages_per_block=8, blocks=blocks))
    for block, n_invalid in enumerate(invalid_per_block):
        t = write_times[block] if write_times else 0.0
        ppns = [flash.program(block, now_us=t) for _ in range(8)]
        for ppn in ppns[:n_invalid]:
            flash.invalidate(ppn)
    return flash


def candidates_of(flash):
    return (flash.write_ptr == flash.pages_per_block) & (flash.invalid_count > 0)


class TestGreedy:
    def test_picks_most_invalid(self):
        flash = build_flash([2, 7, 5])
        assert GreedyPolicy().select(flash, candidates_of(flash), 0.0) == 1

    def test_ignores_non_candidates(self):
        flash = build_flash([2, 7, 5])
        mask = candidates_of(flash)
        mask[1] = False
        assert GreedyPolicy().select(flash, mask, 0.0) == 2

    def test_none_when_no_candidates(self):
        flash = build_flash([0, 0])
        assert GreedyPolicy().select(flash, candidates_of(flash), 0.0) is None


class TestRandom:
    def test_only_selects_candidates(self):
        flash = build_flash([3, 0, 3, 0, 3])
        policy = RandomPolicy(seed=7)
        mask = candidates_of(flash)
        picks = {policy.select(flash, mask, 0.0) for _ in range(50)}
        assert picks <= {0, 2, 4}
        assert len(picks) > 1  # actually random

    def test_deterministic_per_seed(self):
        flash = build_flash([3, 3, 3, 3])
        mask = candidates_of(flash)
        a = [RandomPolicy(seed=5).select(flash, mask.copy(), 0.0) for _ in range(1)]
        b = [RandomPolicy(seed=5).select(flash, mask.copy(), 0.0) for _ in range(1)]
        assert a == b

    def test_none_when_no_candidates(self):
        flash = build_flash([0])
        assert RandomPolicy().select(flash, candidates_of(flash), 0.0) is None


class TestCostBenefit:
    def test_prefers_emptier_block_at_equal_age(self):
        flash = build_flash([6, 2], write_times=[100.0, 100.0])
        assert CostBenefitPolicy().select(flash, candidates_of(flash), 1000.0) == 0

    def test_age_breaks_ties_toward_older(self):
        flash = build_flash([4, 4], write_times=[0.0, 900.0])
        assert CostBenefitPolicy().select(flash, candidates_of(flash), 1000.0) == 0

    def test_fully_invalid_block_always_wins(self):
        flash = build_flash([8, 1], write_times=[999.0, 0.0])
        assert CostBenefitPolicy().select(flash, candidates_of(flash), 1000.0) == 0

    def test_none_when_no_candidates(self):
        flash = build_flash([0, 0])
        assert CostBenefitPolicy().select(flash, candidates_of(flash), 0.0) is None


class TestFactory:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_make_policy_by_name(self, name):
        policy = make_policy(name)
        assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("lru")

    def test_random_uses_seed(self):
        flash = build_flash([3, 3, 3, 3, 3, 3, 3, 3])
        mask = candidates_of(flash)
        seq_a = [make_policy("random", seed=1).select(flash, mask, 0.0) for _ in range(5)]
        seq_b = [make_policy("random", seed=1).select(flash, mask, 0.0) for _ in range(5)]
        assert seq_a == seq_b
