"""Page-conservation integration tests.

The accounting identities EXPERIMENTS.md's analysis rests on must hold
exactly in the simulator for every scheme and workload:

* programs_total = user_programs + gc_migrations
* erases x pages_per_block = programs_total - (free_start - free_end pages)
* live mapped pages == valid flash pages referenced by the mapping
"""

import pytest

from repro.config import small_config
from repro.device.ssd import run_trace
from repro.oracle.invariants import check_all
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace

SCHEMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")


@pytest.fixture(scope="module")
def runs():
    cfg = small_config(blocks=64, pages_per_block=16)
    trace = build_fiu_trace("mail", cfg, n_requests=0, fill_factor=3.0)
    out = {}
    for name in SCHEMES:
        scheme = make_scheme(name, cfg)
        result = run_trace(scheme, trace)
        out[name] = (scheme, result, cfg)
    return out


class TestConservation:
    @pytest.mark.parametrize("name", SCHEMES)
    def test_programs_decompose(self, runs, name):
        scheme, result, _ = runs[name]
        assert (
            scheme.flash.total_programs
            == result.io.user_pages_programmed + result.gc.pages_migrated
        )

    @pytest.mark.parametrize("name", SCHEMES)
    def test_erase_page_balance(self, runs, name):
        """free_end = free_start - programs + erases*ppb, in pages."""
        scheme, result, cfg = runs[name]
        ppb = cfg.geometry.pages_per_block
        total_pages = cfg.geometry.total_pages
        free_pages_end = int(
            (scheme.flash.write_ptr == 0).sum() * ppb
            + sum(
                ppb - int(scheme.flash.write_ptr[b])
                for b in range(scheme.flash.blocks)
                if scheme.flash.write_ptr[b] > 0
            )
        )
        expected = total_pages - scheme.flash.total_programs + scheme.flash.total_erases * ppb
        assert free_pages_end == expected

    @pytest.mark.parametrize("name", SCHEMES)
    def test_mapped_pages_are_valid(self, runs, name):
        scheme, _, _ = runs[name]
        from repro.flash.chip import PageState

        for ppn in scheme.mapping.mapped_ppns():
            assert scheme.flash.state_of(ppn) == PageState.VALID

    @pytest.mark.parametrize("name", SCHEMES)
    def test_valid_pages_all_referenced(self, runs, name):
        """No leaked valid pages: every VALID flash page has a referrer."""
        import numpy as np

        from repro.flash.chip import PageState

        scheme, _, _ = runs[name]
        valid_ppns = set(
            int(p) for p in np.nonzero(scheme.flash.page_state == PageState.VALID)[0]
        )
        mapped = set(scheme.mapping.mapped_ppns())
        assert valid_ppns == mapped

    @pytest.mark.parametrize("name", SCHEMES)
    def test_full_invariant_suite(self, runs, name):
        scheme, _, _ = runs[name]
        check_all(scheme)


class TestDedupEconomy:
    def test_inline_physical_pages_equal_unique_live_contents(self, runs):
        scheme, _, _ = runs["inline-dedupe"]
        live_contents = {scheme.page_fp[p] for p in scheme.mapping.mapped_ppns()}
        assert len(live_contents) == len(set(scheme.mapping.mapped_ppns()))

    def test_index_memory_reported(self, runs):
        scheme, _, _ = runs["inline-dedupe"]
        # Honest footprint: the flat columns alone cost 24 bytes per
        # allocated slot, so the report must at least cover the live
        # entries, and stay within the allocated-capacity ceiling
        # (slots are a power of two at <=2/3 load, plus the reverse
        # column over the physical page range).
        reported = scheme.index.memory_bytes()
        assert reported >= len(scheme.index) * 24
        cap = len(scheme.index._keys)
        assert reported <= cap * 16 + len(scheme.index._ppn_fp) * 8 + 4096

    def test_cagc_live_pages_at_most_baseline(self, runs):
        base, _, _ = runs["baseline"]
        cagc, _, _ = runs["cagc"]
        assert len(cagc.page_fp) <= len(base.page_fp)
