"""Shrinker tests: ddmin minimizes diverging traces deterministically.

The acceptance bar from the issue: an injected off-by-one in
victim-index maintenance must be caught by the fuzz harness and shrink
to a regression trace of at most 10 requests, identically on every
run for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.oracle import (
    ddmin,
    diff_trace,
    fuzz_config,
    fuzz_trace,
    make_divergence_predicate,
    shrink_trace,
)

from tests._oracle_helpers import victim_index_off_by_one


# -- ddmin on plain lists ------------------------------------------------------


def test_ddmin_single_culprit():
    assert ddmin(list(range(100)), lambda s: 37 in s) == [37]


def test_ddmin_pair_of_culprits():
    result = ddmin(list(range(64)), lambda s: 5 in s and 50 in s)
    assert result == [5, 50]


def test_ddmin_result_is_one_minimal():
    failing = lambda s: sum(s) >= 10  # noqa: E731
    result = ddmin([1, 2, 3, 4, 5, 6], failing)
    assert failing(result)
    for i in range(len(result)):
        assert not failing(result[:i] + result[i + 1 :])


def test_ddmin_deterministic():
    items = list(range(200))
    failing = lambda s: len([x for x in s if x % 17 == 0]) >= 3  # noqa: E731
    assert ddmin(items, failing) == ddmin(items, failing)


def test_ddmin_rejects_passing_input():
    with pytest.raises(ValueError):
        ddmin([1, 2, 3], lambda s: False)


# -- full pipeline: injected bug -> fuzz -> shrink -----------------------------


def _find_diverging_trace(config):
    for seed in range(10):
        trace = fuzz_trace(seed, config)
        if diff_trace(trace, scheme="baseline", config=config) is not None:
            return trace
    pytest.fail("injected victim-index bug never diverged across 10 seeds")


def test_injected_bug_shrinks_to_at_most_10_requests():
    config = fuzz_config()
    with victim_index_off_by_one():
        trace = _find_diverging_trace(config)
        predicate = make_divergence_predicate("baseline", "greedy", config)
        minimal = shrink_trace(trace, predicate)
        assert predicate(minimal), "shrunk trace no longer diverges"
        assert len(minimal) <= 10, (
            f"shrunk to {len(minimal)} requests, acceptance bound is 10"
        )
    # Without the injection the minimal trace must replay cleanly: the
    # divergence belongs to the bug, not to the trace.
    assert diff_trace(minimal, scheme="baseline", config=config) is None


def test_shrink_is_deterministic_for_fixed_seed():
    config = fuzz_config()
    with victim_index_off_by_one():
        trace = _find_diverging_trace(config)
        predicate = make_divergence_predicate("baseline", "greedy", config)
        first = shrink_trace(trace, predicate)
        second = shrink_trace(trace, predicate)

    def rows(t):
        return [
            (time, op, lpn, npages, tuple(int(f) for f in fps))
            for time, op, lpn, npages, fps in t.iter_rows()
        ]

    assert rows(first) == rows(second)
