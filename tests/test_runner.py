"""Tests for the experiment runner: specs, cache, parallel execution.

The load-bearing guarantees pinned here:

* ``run_specs(jobs=N)`` returns results **bit-identical** to serial
  execution for every scheme — parallelism must never change what an
  experiment reports;
* a ``RunResult`` survives the serialize/deserialize round trip
  bit-for-bit (NumPy samples verbatim, JSON floats shortest-repr);
* the persistent cache is content-addressed, schema-versioned, and
  treats corruption as a miss rather than an error.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.device.ssd import RunResult, run_trace
from repro.runner import (
    RunCache,
    RunSpec,
    SchemaMismatchError,
    result_from_bytes,
    result_to_bytes,
    run_specs,
    sweep_specs,
)
from repro.runner import serialize as serialize_mod
from repro.runner.cache import ENV_CACHE_DIR, ENV_NO_CACHE, cache_enabled
from repro.runner.executor import resolve_jobs
from repro.schemes import make_scheme
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace

SCHEMES = ("baseline", "inline-dedupe", "cagc")


def assert_identical(a: RunResult, b: RunResult) -> None:
    """Field-by-field bit-identity of two run results."""
    assert a.scheme == b.scheme
    assert a.trace == b.trace
    assert a.latency == b.latency
    assert a.response_times_us.dtype == b.response_times_us.dtype
    assert np.array_equal(a.response_times_us, b.response_times_us)
    assert a.gc == b.gc
    assert a.io == b.io
    assert a.wear == b.wear
    assert a.simulated_us == b.simulated_us
    assert a.buffer == b.buffer


# --------------------------------------------------------------------- specs


class TestRunSpec:
    def test_key_is_stable_across_instances(self):
        a = RunSpec(workload="mail", scheme="cagc")
        b = RunSpec(workload="mail", scheme="cagc")
        assert a.key() == b.key()
        assert len(a.key()) == 64  # sha256 hex

    def test_key_changes_with_every_field(self):
        base = RunSpec(workload="mail", scheme="cagc")
        variants = [
            dataclasses.replace(base, workload="homes"),
            dataclasses.replace(base, scheme="baseline"),
            dataclasses.replace(base, policy="random"),
            dataclasses.replace(base, seed=1),
            dataclasses.replace(base, scale="quick"),
        ]
        keys = {base.key(), *(v.key() for v in variants)}
        assert len(keys) == 6

    def test_key_embeds_schema_version(self, monkeypatch):
        # A schema bump must orphan every old cache entry (new keys).
        import repro.runner.spec as spec_mod

        spec = RunSpec(workload="mail", scheme="cagc")
        before = spec.key()
        monkeypatch.setattr(spec_mod, "SCHEMA_VERSION", spec_mod.SCHEMA_VERSION + 1)
        assert spec.key() != before

    def test_label(self):
        spec = RunSpec(workload="mail", scheme="cagc", policy="greedy", seed=2, scale="quick")
        assert spec.label() == "mail/cagc/greedy@quick#2"

    def test_sweep_specs_cartesian_order(self):
        specs = sweep_specs(("homes", "mail"), ("baseline", "cagc"), seeds=(0, 1))
        assert len(specs) == 8
        assert specs[0] == RunSpec(workload="homes", scheme="baseline", seed=0)
        assert specs[1] == RunSpec(workload="homes", scheme="baseline", seed=1)
        assert specs[-1] == RunSpec(workload="mail", scheme="cagc", seed=1)
        assert len(set(specs)) == 8

    def test_execute_matches_run_trace(self):
        spec = RunSpec(workload="mail", scheme="baseline", scale="quick")
        assert_identical(spec.execute(), spec.execute())


# ----------------------------------------------------------------- serialize


def tiny_result(buffered: bool = False) -> RunResult:
    """A real (small) run to serialize, optionally with buffer stats."""
    config = SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=32),
        timing=TimingConfig(overhead_us=0.0),
        write_buffer_pages=16 if buffered else 0,
    )
    reqs = []
    t = 0.0
    fp = 0
    for round_ in range(3):
        for lpn in range(64):
            reqs.append(IORequest(t, OpKind.WRITE, lpn, 1, (fp,)))
            t += 50.0
            fp += 1
    reqs.append(IORequest(t, OpKind.READ, 0, 4))
    return run_trace(
        make_scheme("baseline", config), Trace.from_requests(reqs, name="tiny")
    )


class TestSerializeRoundTrip:
    def test_round_trip_is_bit_identical(self):
        result = tiny_result()
        assert_identical(result, result_from_bytes(result_to_bytes(result)))

    def test_round_trip_preserves_buffer_stats(self):
        result = tiny_result(buffered=True)
        assert result.buffer is not None
        restored = result_from_bytes(result_to_bytes(result))
        assert_identical(result, restored)
        assert restored.buffer == result.buffer

    def test_round_trip_without_buffer_keeps_none(self):
        restored = result_from_bytes(result_to_bytes(tiny_result()))
        assert restored.buffer is None

    def test_schema_mismatch_raises(self, monkeypatch):
        payload = result_to_bytes(tiny_result())
        monkeypatch.setattr(
            serialize_mod, "SCHEMA_VERSION", serialize_mod.SCHEMA_VERSION + 1
        )
        with pytest.raises(SchemaMismatchError):
            result_from_bytes(payload)


# --------------------------------------------------------------------- cache


class TestRunCache:
    def spec(self) -> RunSpec:
        return RunSpec(workload="mail", scheme="baseline", scale="quick")

    def test_put_then_get_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        spec, result = self.spec(), tiny_result()
        assert cache.get(spec) is None
        assert cache.misses == 1
        path = cache.put(spec, result)
        assert path.exists()
        assert spec in cache
        assert len(cache) == 1
        assert_identical(result, cache.get(spec))
        assert cache.hits == 1

    def test_sharded_layout(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = self.spec()
        path = cache.path_for(spec)
        key = spec.key()
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.npz"

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = self.spec()
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz archive")
        assert cache.get(spec) is None
        assert cache.misses == 1
        assert not path.exists()

    def test_atomic_put_leaves_no_temp_files(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(self.spec(), tiny_result())
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(self.spec(), tiny_result())
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(ENV_NO_CACHE, "1")
        assert not cache_enabled()
        assert RunCache.from_env() is None
        monkeypatch.delenv(ENV_NO_CACHE)
        assert cache_enabled()
        assert RunCache.from_env() is not None

    def test_env_cache_dir_overrides_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
        cache = RunCache.from_env()
        assert cache is not None
        assert cache.root == tmp_path / "elsewhere"


# ------------------------------------------------------------------ executor


class TestResolveJobs:
    def test_default_is_cpu_count(self):
        import os

        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(3) == 3


class TestRunSpecsEquivalence:
    """Parallel fan-out must be bit-identical to serial execution."""

    SPECS = tuple(
        RunSpec(workload="mail", scheme=s, scale="quick") for s in SCHEMES
    )

    def test_parallel_matches_serial_for_all_schemes(self):
        serial = run_specs(self.SPECS, jobs=1)
        parallel = run_specs(self.SPECS, jobs=2)
        for spec, a, b in zip(self.SPECS, serial, parallel):
            assert a.scheme == spec.scheme
            assert_identical(a, b)

    def test_cache_round_trip_matches_fresh_run(self, tmp_path):
        cache = RunCache(tmp_path)
        fresh = run_specs(self.SPECS, jobs=1, cache=cache)
        assert cache.hits == 0 and cache.misses == len(self.SPECS)
        cached = run_specs(self.SPECS, jobs=1, cache=cache)
        assert cache.hits == len(self.SPECS)
        for a, b in zip(fresh, cached):
            assert_identical(a, b)

    def test_duplicates_computed_once_and_aligned(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = self.SPECS[0]
        results = run_specs([spec, spec, spec], jobs=1, cache=cache)
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert len(cache) == 1

    def test_progress_callback_reports_source(self, tmp_path):
        cache = RunCache(tmp_path)
        events = []
        spec = self.SPECS[0]
        run_specs([spec], cache=cache, progress=lambda s, src: events.append((s, src)))
        run_specs([spec], cache=cache, progress=lambda s, src: events.append((s, src)))
        assert events == [(spec, "run"), (spec, "cache")]


class TestExperimentsIntegration:
    def test_gc_efficiency_result_persists_across_memo_reset(
        self, monkeypatch, tmp_path
    ):
        from repro.experiments.common import gc_efficiency_result, reset_result_caches

        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        reset_result_caches()
        try:
            first = gc_efficiency_result("mail", "baseline", scale="quick")
            again = gc_efficiency_result("mail", "baseline", scale="quick")
            assert again is first  # in-process memo: identity preserved
            reset_result_caches()  # simulate a new process
            reloaded = gc_efficiency_result("mail", "baseline", scale="quick")
            assert reloaded is not first  # came from the persistent cache
            assert_identical(first, reloaded)
        finally:
            monkeypatch.delenv(ENV_CACHE_DIR)
            reset_result_caches()
