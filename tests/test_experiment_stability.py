"""Seed-stability checks: reported reductions are not one-seed flukes."""

import numpy as np
import pytest

from repro.experiments.common import reduction_stability


@pytest.mark.parametrize("workload", ["homes", "mail"])
def test_migration_reduction_stable_across_seeds(workload):
    reductions = reduction_stability(workload, "pages_migrated", seeds=(0, 1, 2))
    assert all(r > 15.0 for r in reductions), reductions
    # spread across seeds stays moderate relative to the effect size
    assert np.std(reductions) < max(10.0, 0.3 * np.mean(reductions))


def test_erase_reduction_positive_every_seed():
    reductions = reduction_stability("mail", "blocks_erased", seeds=(0, 1, 2))
    assert all(r > 5.0 for r in reductions), reductions


def test_response_reduction_positive_every_seed():
    reductions = reduction_stability("mail", "mean_response_us", seeds=(0, 1, 2))
    assert all(r > 0.0 for r in reductions), reductions


def test_mail_beats_homes_on_every_seed():
    mail = reduction_stability("mail", "pages_migrated", seeds=(0, 1, 2))
    homes = reduction_stability("homes", "pages_migrated", seeds=(0, 1, 2))
    assert all(m > h for m, h in zip(mail, homes))
