"""Tests for repro.config: Table I defaults and validation."""

import dataclasses

import pytest

from repro.config import (
    GB,
    KB,
    GeometryConfig,
    SSDConfig,
    TimingConfig,
    paper_config,
    paper_geometry,
    small_config,
)


class TestTimingConfig:
    def test_table1_defaults(self):
        t = TimingConfig()
        assert t.read_us == 12.0
        assert t.write_us == 16.0
        assert t.erase_us == 1500.0
        assert t.hash_us == 14.0

    def test_erase_is_order_of_magnitude_larger(self):
        # the paper's premise: erase latency is ms, page ops are us.
        t = TimingConfig()
        assert t.erase_us >= 10 * max(t.read_us, t.write_us, t.hash_us)

    @pytest.mark.parametrize(
        "field", ["read_us", "write_us", "erase_us", "hash_us", "lookup_us"]
    )
    def test_negative_rejected(self, field):
        t = dataclasses.replace(TimingConfig(), **{field: -1.0})
        with pytest.raises(ValueError):
            t.validate()

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TimingConfig(), overhead_us=-0.1).validate()

    def test_zero_latencies_allowed(self):
        dataclasses.replace(
            TimingConfig(), read_us=0.0, hash_us=0.0
        ).validate()  # hash coprocessor ablation needs hash_us=0


class TestGeometryConfig:
    def test_block_size_table1(self):
        g = GeometryConfig()
        assert g.page_size == 4 * KB
        assert g.block_size == g.page_size * g.pages_per_block

    def test_total_pages(self):
        g = GeometryConfig(blocks=100, pages_per_block=64)
        assert g.total_pages == 6400

    def test_physical_bytes(self):
        g = GeometryConfig(blocks=10, pages_per_block=4, page_size=4096)
        assert g.physical_bytes == 10 * 4 * 4096

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"channels": 0},
            {"page_size": 0},
            {"pages_per_block": -1},
            {"blocks": 0},
            {"blocks": 10, "channels": 4},  # not divisible
        ],
    )
    def test_invalid_rejected(self, kwargs):
        g = dataclasses.replace(GeometryConfig(), **kwargs)
        with pytest.raises(ValueError):
            g.validate()


class TestSSDConfig:
    def test_logical_capacity_reflects_op(self):
        cfg = SSDConfig()
        assert cfg.logical_pages == int(cfg.geometry.total_pages * 0.93)
        assert cfg.logical_bytes == cfg.logical_pages * cfg.geometry.page_size

    def test_defaults_valid(self):
        SSDConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"op_ratio": -0.1},
            {"op_ratio": 1.0},
            {"gc_watermark": 0.0},
            {"gc_watermark": 1.0},
            {"gc_stop_watermark": 0.1},  # below watermark
            {"cold_threshold": 0},
            {"cold_region_ratio": 1.0},
            {"gc_burst_blocks": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        cfg = dataclasses.replace(SSDConfig(), **kwargs)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_op_ratio_eats_everything_rejected(self):
        cfg = dataclasses.replace(SSDConfig(), op_ratio=0.9999999)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_scaled_changes_blocks_only(self):
        cfg = SSDConfig()
        scaled = cfg.scaled(blocks=512)
        assert scaled.geometry.blocks == 512
        assert scaled.geometry.pages_per_block == cfg.geometry.pages_per_block
        assert scaled.timing == cfg.timing

    def test_scaled_changes_channels(self):
        scaled = SSDConfig().scaled(blocks=512, channels=8)
        assert scaled.geometry.channels == 8

    def test_scaled_validates(self):
        with pytest.raises(ValueError):
            SSDConfig().scaled(blocks=10, channels=4)


class TestPaperConfig:
    def test_capacity_is_80gb(self):
        cfg = paper_config()
        assert cfg.geometry.physical_bytes == 80 * GB

    def test_block_size_256kb(self):
        assert paper_config().geometry.block_size == 256 * KB

    def test_geometry_helper_matches(self):
        assert paper_geometry() == paper_config().geometry

    def test_paper_config_valid(self):
        paper_config().validate()


class TestSmallConfig:
    def test_small_config_valid(self):
        cfg = small_config()
        cfg.validate()
        assert cfg.geometry.blocks == 256

    def test_small_config_overrides(self):
        cfg = small_config(blocks=64, channels=2, cold_threshold=3)
        assert cfg.geometry.blocks == 64
        assert cfg.cold_threshold == 3
