"""Tests for the flash latency model."""

import pytest

from repro.config import TimingConfig
from repro.flash.timing import FlashTiming


@pytest.fixture
def t() -> FlashTiming:
    return FlashTiming(TimingConfig(overhead_us=0.0))


class TestRequestTimes:
    def test_single_page_read(self, t):
        assert t.read_request_us(1, channels=4) == 12.0

    def test_single_page_write(self, t):
        assert t.write_request_us(1, channels=4) == 16.0

    def test_pages_within_channel_count_parallel(self, t):
        # 4 pages on 4 channels: one slot.
        assert t.write_request_us(4, channels=4) == 16.0

    def test_pages_beyond_channels_serialize(self, t):
        # 5 pages on 4 channels: two slots.
        assert t.write_request_us(5, channels=4) == 32.0
        assert t.read_request_us(9, channels=4) == 36.0

    def test_zero_pages_costs_overhead_only(self, t):
        assert t.write_request_us(0, channels=4) == 0.0

    def test_overhead_added_per_request(self):
        t = FlashTiming(TimingConfig(overhead_us=20.0))
        assert t.read_request_us(1, channels=4) == 32.0
        assert t.write_request_us(0, channels=4) == 20.0

    def test_single_channel(self, t):
        assert t.write_request_us(3, channels=1) == 48.0


class TestDedupCosts:
    def test_inline_cost_is_serial_per_page(self, t):
        assert t.inline_dedup_us(3) == 3 * (14.0 + 1.0)

    def test_inline_cost_zero_pages(self, t):
        assert t.inline_dedup_us(0) == 0.0


class TestGCCosts:
    def test_gc_migrate_copies_then_erases(self, t):
        assert t.gc_migrate_us(10) == 10 * (12.0 + 16.0) + 1500.0

    def test_gc_migrate_empty_block_is_erase_only(self, t):
        assert t.gc_migrate_us(0) == 1500.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FlashTiming(TimingConfig(read_us=-1.0))
