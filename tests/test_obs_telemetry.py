"""Tests for run telemetry: histograms, GC phase attribution, hooks.

The latency histogram trades ~7% relative resolution (its bucket
growth factor) for constant memory, so accuracy tests compare against
``np.percentile`` with that tolerance.  Phase attribution tests pin the
closed-form identities the analytic accounting must satisfy on every
scheme.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import small_config
from repro.device.ssd import SSD, run_trace
from repro.obs import HookMux, LatencyHistogram, RunTelemetry
from repro.obs.telemetry import GC_PHASES
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace

ALL_SCHEMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")


def _small_run(scheme_name, **cfg_kwargs):
    cfg = small_config(blocks=64, pages_per_block=16, **cfg_kwargs)
    trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=2.0)
    return run_trace(make_scheme(scheme_name, cfg), trace), cfg


class TestLatencyHistogram:
    def test_percentiles_track_numpy_within_bucket_resolution(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=3.0, sigma=1.2, size=20_000)
        hist = LatencyHistogram.from_samples(samples)
        for p in (50, 90, 95, 99, 99.9):
            exact = float(np.percentile(samples, p))
            approx = hist.percentile(p)
            # one bucket of slack on top of the 7% growth factor
            assert approx == pytest.approx(exact, rel=0.15), f"p{p}"

    def test_record_matches_from_samples(self):
        samples = [0.05, 1.0, 17.3, 444.4, 99_999.0]
        live = LatencyHistogram()
        for s in samples:
            live.record(s)
        bulk = LatencyHistogram.from_samples(samples)
        assert (live.counts == bulk.counts).all()
        assert live.total == bulk.total == len(samples)
        assert live.max_us == bulk.max_us
        assert live.sum_us == pytest.approx(bulk.sum_us)

    def test_merge(self):
        a = LatencyHistogram.from_samples([1.0, 2.0])
        b = LatencyHistogram.from_samples([100.0])
        a.merge(b)
        assert a.total == 3
        assert a.max_us == 100.0
        assert a.percentile(100) == pytest.approx(100.0, rel=0.08)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean_us == 0.0

    def test_overflow_reports_recorded_max(self):
        hist = LatencyHistogram.from_samples([1e12])  # beyond last edge
        assert hist.counts[-1] == 1
        assert hist.percentile(99) == 1e12

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(-1)

    def test_percentile_never_exceeds_max(self):
        hist = LatencyHistogram.from_samples([5.0, 5.0, 5.0])
        assert hist.percentile(99) <= 5.0 * 1.0 + 1e-9 or hist.percentile(
            99
        ) == pytest.approx(5.0, rel=0.08)

    def test_to_dict_sparse(self):
        hist = LatencyHistogram.from_samples([1.0, 1.0, 1000.0])
        doc = hist.to_dict()
        assert doc["total"] == 3
        assert sum(doc["buckets"].values()) == 3
        assert len(doc["buckets"]) == 2


class TestPhaseAttribution:
    @pytest.mark.parametrize("scheme_name", ALL_SCHEMES)
    def test_erase_and_write_identities(self, scheme_name):
        result, cfg = _small_run(scheme_name)
        gc = result.gc
        timing = cfg.timing
        assert gc.blocks_erased > 0, "workload must trigger GC"
        # every erased block contributes exactly one erase
        assert gc.gc_erase_us == pytest.approx(gc.blocks_erased * timing.erase_us)
        # every migrated page (promotions included) is one program
        assert gc.gc_write_us == pytest.approx(gc.pages_migrated * timing.write_us)
        # the read path saw at least every examined page
        assert gc.gc_read_us >= gc.pages_examined * timing.read_us - 1e-6

    @pytest.mark.parametrize("scheme_name", ("baseline", "lba-hotcold"))
    def test_non_dedup_schemes_never_hash_in_gc(self, scheme_name):
        result, _ = _small_run(scheme_name)
        assert result.gc.gc_hash_us == 0.0

    def test_cagc_hashes_every_examined_page(self):
        result, cfg = _small_run("cagc")
        gc = result.gc
        t = cfg.timing
        assert gc.gc_hash_us == pytest.approx(
            gc.pages_examined * (t.hash_us + t.lookup_us)
        )

    def test_cagc_phases_overlap(self):
        # The overlapped pipeline's whole point: resource busy times sum
        # to more than the critical-path makespan would allow serially.
        result, _ = _small_run("cagc")
        gc = result.gc
        phases = RunTelemetry.gc_phase_breakdown(gc)
        assert set(phases) == set(GC_PHASES)
        assert all(v >= 0 for v in phases.values())
        serial = gc.gc_read_us + gc.gc_hash_us + gc.gc_write_us + gc.gc_erase_us
        assert gc.gc_busy_us < serial

    def test_baseline_serial_gc_is_exact(self):
        # Traditional GC (Fig 3) has no overlap: makespan == read+write+erase.
        result, _ = _small_run("baseline")
        gc = result.gc
        assert gc.gc_busy_us == pytest.approx(
            gc.gc_read_us + gc.gc_write_us + gc.gc_erase_us
        )


class TestRunTelemetryLive:
    def test_on_complete_feeds_histogram_and_snapshots(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=2.0)
        telemetry = RunTelemetry(snapshot_every_us=10_000.0)
        ssd = SSD(make_scheme("cagc", cfg), telemetry=telemetry)
        result = ssd.replay(trace)
        assert telemetry.hist.total == result.latency.count
        assert telemetry.hist.mean_us == pytest.approx(result.latency.mean_us)
        assert telemetry.snapshots > 1
        # uniform series landed in the device timeline
        for name in ("free_fraction", "blocks_erased", "pages_migrated", "gc_busy_us"):
            times, values = ssd.timeline.series(name)
            assert times.size > 0, name
            assert (np.diff(times) >= 0).all()

    def test_gc_hook_snapshot_coexists_with_user_hook(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=2.0)
        telemetry = RunTelemetry()
        ssd = SSD(make_scheme("baseline", cfg), telemetry=telemetry)
        calls = []
        ssd.gc_hook = lambda dev: calls.append(dev.scheme.gc_counters.blocks_erased)
        assert len(ssd.hooks) == 2  # telemetry snapshot + user hook
        ssd.replay(trace)
        assert calls, "user hook never fired"
        assert telemetry.snapshots >= len(calls)

    def test_from_result_matches_live_histogram(self):
        result, _ = _small_run("cagc")
        rebuilt = RunTelemetry.from_result(result)
        assert rebuilt.hist.total == result.latency.count
        assert rebuilt.hist.percentile(99) == pytest.approx(
            result.latency.p99_us, rel=0.15
        )

    def test_summary_rows_cover_the_report(self):
        result, _ = _small_run("cagc")
        rows = dict(RunTelemetry.summary_rows(result))
        for key in (
            "requests",
            "write amplification",
            "GC dedup ratio",
            "blocks erased",
            "GC busy (makespan)",
            "GC read busy",
            "GC hash busy",
            "GC write busy",
            "GC erase busy",
        ):
            assert key in rows, key
        assert rows["blocks erased"] == f"{result.gc.blocks_erased:,}"


class TestSerialization:
    def test_phase_fields_round_trip_through_cache_format(self):
        from repro.runner.serialize import result_from_bytes, result_to_bytes

        result, _ = _small_run("cagc")
        clone = result_from_bytes(result_to_bytes(result))
        assert vars(clone.gc) == vars(result.gc)
        assert clone.gc.gc_read_us > 0.0


class TestHookMux:
    def test_order_and_removal(self):
        mux = HookMux()
        calls = []
        first = mux.add(lambda x: calls.append(("first", x)))
        mux.add(lambda x: calls.append(("second", x)))
        mux("dev")
        assert calls == [("first", "dev"), ("second", "dev")]
        mux.remove(first)
        assert len(mux) == 1
        assert first not in mux

    def test_empty_mux_is_falsy(self):
        mux = HookMux()
        assert not mux
        mux.add(lambda: None)
        assert mux

    def test_exceptions_propagate(self):
        # invariant checkers rely on their AssertionError killing the run
        mux = HookMux()
        mux.add(lambda x: (_ for _ in ()).throw(AssertionError("boom")))
        with pytest.raises(AssertionError, match="boom"):
            mux("dev")

    def test_gc_hook_property_replaces_cleanly(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        ssd = SSD(make_scheme("baseline", cfg))
        a, b = (lambda dev: None), (lambda dev: None)
        ssd.gc_hook = a
        ssd.gc_hook = b
        assert ssd.gc_hook is b
        assert len(ssd.hooks) == 1
        ssd.gc_hook = None
        assert len(ssd.hooks) == 0
