"""Tests for the Baseline scheme (no dedup)."""

import pytest

from repro.flash.chip import PageState
from repro.schemes.baseline import BaselineScheme


@pytest.fixture
def scheme(tiny_config):
    return BaselineScheme(tiny_config)


class TestWrites:
    def test_every_page_programs(self, scheme):
        out = scheme.write_request(0, [11, 22, 33], 0.0)
        assert out.programs == 3
        assert out.hashed_pages == 0
        assert scheme.io_counters.logical_pages_written == 3
        assert scheme.io_counters.user_pages_programmed == 3

    def test_duplicate_content_still_programs(self, scheme):
        scheme.write_request(0, [11], 0.0)
        out = scheme.write_request(1, [11], 0.0)
        assert out.programs == 1  # content-blind
        assert scheme.flash.total_programs == 2

    def test_overwrite_invalidates_old_page(self, scheme):
        scheme.write_request(0, [11], 0.0)
        old_ppn = scheme.mapping.lookup(0)
        scheme.write_request(0, [22], 0.0)
        assert scheme.flash.state_of(old_ppn) == PageState.INVALID
        assert scheme.mapping.lookup(0) != old_ppn

    def test_logical_content_tracks_writes(self, scheme):
        scheme.write_request(0, [11, 22], 0.0)
        scheme.write_request(1, [33], 0.0)
        assert scheme.logical_content() == {0: 11, 1: 33}

    def test_refcount_always_one(self, scheme):
        scheme.write_request(0, [11], 0.0)
        scheme.write_request(1, [11], 0.0)
        for ppn in scheme.mapping.mapped_ppns():
            assert scheme.mapping.refcount(ppn) == 1


class TestReadsAndTrims:
    def test_read_counts_mapped_pages(self, scheme):
        scheme.write_request(4, [1, 2], 0.0)
        assert scheme.read_request(4, 3) == 2
        assert scheme.io_counters.pages_read == 3

    def test_trim_releases_pages(self, scheme):
        scheme.write_request(0, [11, 22], 0.0)
        assert scheme.trim_request(0, 2, 0.0) == 2
        assert scheme.live_logical_pages() == 0
        assert scheme.flash.invalid_count.sum() == 2

    def test_trim_unmapped_is_noop(self, scheme):
        assert scheme.trim_request(5, 3, 0.0) == 0


class TestGC:
    def fill_device(self, scheme, spread=2):
        """Write then overwrite to build invalid pages."""
        lpns = scheme.config.logical_pages // spread
        fp = 0
        for lpn in range(lpns):
            scheme.write_page(lpn, fp, 0.0)
            fp += 1
        for lpn in range(lpns):
            scheme.write_page(lpn, fp, 0.0)
            fp += 1

    def test_needs_gc_after_fill(self, scheme):
        assert not scheme.needs_gc()
        self.fill_device(scheme)
        assert scheme.needs_gc()

    def test_run_gc_reclaims_space(self, scheme):
        self.fill_device(scheme)
        before = scheme.allocator.free_blocks
        duration = scheme.run_gc(0.0)
        assert duration > 0
        assert scheme.allocator.free_blocks > before
        assert scheme.gc_counters.blocks_erased > 0

    def test_gc_preserves_logical_content(self, scheme):
        self.fill_device(scheme)
        content = scheme.logical_content()
        scheme.run_gc(0.0)
        assert scheme.logical_content() == content
        scheme.check_invariants()

    def test_gc_burst_bounded(self, scheme):
        self.fill_device(scheme)
        scheme.run_gc(0.0)
        assert scheme.gc_counters.blocks_erased <= scheme.config.gc_burst_blocks

    def test_gc_noop_when_above_watermark(self, scheme):
        scheme.write_request(0, [1], 0.0)
        assert scheme.run_gc(0.0) == 0.0
        assert scheme.gc_counters.gc_invocations == 0

    def test_collect_block_duration_matches_model(self, scheme):
        self.fill_device(scheme)
        mask = scheme.allocator.victim_candidates_mask()
        victim = int(mask.nonzero()[0][0])
        valid = int(scheme.flash.valid_count[victim])
        outcome = scheme.collect_block(victim, 0.0)
        assert outcome.duration_us == scheme.timing.gc_migrate_us(valid)
        assert outcome.pages_migrated == valid
        assert outcome.dedup_skipped == 0
