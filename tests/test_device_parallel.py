"""Tests for the channel-parallel SSD controller."""

import pytest

from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.device.parallel import ParallelSSD
from repro.device.ssd import SSD
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


def cfg(channels=2) -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=channels, pages_per_block=8, blocks=32),
        timing=TimingConfig(overhead_us=0.0),
    )


class TestParallelService:
    def test_simultaneous_requests_overlap_across_channels(self):
        # two 1-page reads of mapped data on different channels
        config = cfg(channels=2)
        scheme = make_scheme("baseline", config)
        # place content on both channels: blocks 0 (ch0) and 1 (ch1)
        scheme.write_page(0, 1, 0.0)
        for _ in range(7):
            scheme.write_page(10, 2, 0.0)  # fill block 0
        scheme.write_page(1, 3, 0.0)  # lands in block 1 -> channel 1
        trace = Trace.from_requests(
            [
                IORequest(1000.0, OpKind.READ, 0, 1),
                IORequest(1000.0, OpKind.READ, 1, 1),
            ]
        )
        result = ParallelSSD(scheme).replay(trace)
        # both finish in one read time: true channel parallelism
        assert result.response_times_us.tolist() == [12.0, 12.0]

    def test_same_channel_requests_serialize(self):
        config = cfg(channels=2)
        scheme = make_scheme("baseline", config)
        scheme.write_page(0, 1, 0.0)
        trace = Trace.from_requests(
            [
                IORequest(1000.0, OpKind.READ, 0, 1),
                IORequest(1000.0, OpKind.READ, 0, 1),
            ]
        )
        result = ParallelSSD(scheme).replay(trace)
        assert sorted(result.response_times_us.tolist()) == [12.0, 24.0]

    def test_writes_spread_across_channels_by_lpn(self):
        config = cfg(channels=4)
        scheme = make_scheme("baseline", config)
        reqs = [
            IORequest(0.0, OpKind.WRITE, lpn, 1, (lpn,)) for lpn in range(4)
        ]
        result = ParallelSSD(scheme).replay(Trace.from_requests(reqs))
        # LPNs 0..3 dispatch to 4 distinct channels -> all take one slot
        assert result.response_times_us.tolist() == [16.0] * 4

    def test_same_extent_writes_stay_ordered(self):
        config = cfg(channels=4)
        scheme = make_scheme("baseline", config)
        reqs = [
            IORequest(0.0, OpKind.WRITE, 5, 1, (111,)),
            IORequest(0.0, OpKind.WRITE, 5, 1, (222,)),
        ]
        ParallelSSD(scheme).replay(Trace.from_requests(reqs))
        assert scheme.logical_content() == {5: 222}

    def test_unmapped_read_serviced(self):
        config = cfg()
        result = ParallelSSD(make_scheme("baseline", config)).replay(
            Trace.from_requests([IORequest(0.0, OpKind.READ, 99, 1)])
        )
        assert result.latency.count == 1


class TestGCIsolation:
    def test_gc_on_one_channel_does_not_stall_other(self):
        """The parallel-GC claim: while channel 0 pays a GC burst,
        channel 1 keeps serving reads at raw latency."""
        config = cfg(channels=2)
        scheme = make_scheme("baseline", config)
        # fill until the device sits below the GC watermark
        lpns = int(config.logical_pages * 0.8)
        fp = 0
        lpn = 0
        while not scheme.needs_gc():
            scheme.write_page(lpn % lpns, fp, 0.0)
            fp += 1
            lpn += 1
        assert scheme.needs_gc()
        # find an LPN mapped to channel 1 for the concurrent read
        read_lpn = next(
            lpn
            for lpn in range(lpns)
            if scheme.flash.geometry.ppn_to_channel(scheme.mapping.lookup(lpn)) == 1
        )
        trace = Trace.from_requests(
            [
                IORequest(10_000.0, OpKind.WRITE, 0, 1, (999_999,)),  # ch0 + GC
                IORequest(10_000.0, OpKind.READ, read_lpn, 1),        # ch1
            ]
        )
        result = ParallelSSD(scheme).replay(trace)
        # latencies record in completion order: the read finishes first
        read_latency, write_latency = sorted(result.response_times_us)
        assert write_latency > scheme.timing.erase_us  # paid the GC burst
        assert read_latency == pytest.approx(12.0)     # unaffected


class TestConsistencyAndComparison:
    def test_parallel_preserves_logical_content_disjoint_extents(self):
        """With non-overlapping write extents (no cross-channel ordering
        hazards) the parallel device must agree with the serial one."""
        import numpy as np

        rng = np.random.default_rng(5)
        config = cfg(channels=4)
        reqs = []
        t = 0.0
        fp = 0
        slots = list(range(0, int(config.logical_pages) - 4, 4))
        for _ in range(3):
            for slot in slots:
                reqs.append(IORequest(t, OpKind.WRITE, slot, 2, (fp, fp + 1)))
                t += float(rng.integers(1, 50))
                fp += 2
        trace = Trace.from_requests(reqs)
        serial_scheme = make_scheme("cagc", config)
        parallel_scheme = make_scheme("cagc", config)
        SSD(serial_scheme).replay(trace)
        ParallelSSD(parallel_scheme).replay(trace)
        parallel_scheme.check_invariants()
        assert (
            parallel_scheme.logical_content() == serial_scheme.logical_content()
        )

    def test_parallel_device_invariants_on_real_workload(self):
        config = cfg(channels=4)
        trace = build_fiu_trace("homes", config, n_requests=2000)
        scheme = make_scheme("cagc", config)
        ParallelSSD(scheme).replay(trace)
        scheme.check_invariants()

    def test_more_channels_reduce_queueing(self):
        means = {}
        for channels in (1, 4):
            config = cfg(channels=channels)
            trace = build_fiu_trace(
                "homes", config, n_requests=3000, mean_interarrival_us=30.0
            )
            result = ParallelSSD(make_scheme("baseline", config)).replay(trace)
            means[channels] = result.latency.mean_us
        assert means[4] < means[1]
