"""Tests for the fingerprint index."""

import pytest

from repro.dedup.index import FingerprintIndex, IndexError_


class TestBasics:
    def test_lookup_miss_then_hit(self):
        idx = FingerprintIndex()
        assert idx.lookup(0xAB) is None
        idx.insert(0xAB, 7)
        assert idx.lookup(0xAB) == 7
        assert idx.hits == 1
        assert idx.misses == 1
        assert idx.hit_ratio == 0.5

    def test_peek_does_not_count(self):
        idx = FingerprintIndex()
        idx.insert(1, 2)
        idx.peek(1)
        idx.peek(9)
        assert idx.hits == 0
        assert idx.misses == 0

    def test_fp_of_reverse_lookup(self):
        idx = FingerprintIndex()
        idx.insert(0xCD, 3)
        assert idx.fp_of(3) == 0xCD
        assert idx.fp_of(4) is None
        assert idx.contains_ppn(3)

    def test_len(self):
        idx = FingerprintIndex()
        idx.insert(1, 10)
        idx.insert(2, 20)
        assert len(idx) == 2

    def test_hit_ratio_empty(self):
        assert FingerprintIndex().hit_ratio == 0.0


class TestMutations:
    def test_duplicate_fp_insert_rejected(self):
        idx = FingerprintIndex()
        idx.insert(1, 10)
        with pytest.raises(IndexError_):
            idx.insert(1, 11)

    def test_duplicate_ppn_insert_rejected(self):
        idx = FingerprintIndex()
        idx.insert(1, 10)
        with pytest.raises(IndexError_):
            idx.insert(2, 10)

    def test_remove_ppn(self):
        idx = FingerprintIndex()
        idx.insert(1, 10)
        assert idx.remove_ppn(10) == 1
        assert idx.peek(1) is None
        assert len(idx) == 0

    def test_remove_unknown_ppn_is_noop(self):
        assert FingerprintIndex().remove_ppn(42) is None

    def test_move_repoints_entry(self):
        idx = FingerprintIndex()
        idx.insert(5, 10)
        idx.move(10, 99)
        assert idx.peek(5) == 99
        assert idx.fp_of(99) == 5
        assert not idx.contains_ppn(10)

    def test_move_unknown_rejected(self):
        with pytest.raises(IndexError_):
            FingerprintIndex().move(1, 2)

    def test_move_onto_occupied_rejected(self):
        idx = FingerprintIndex()
        idx.insert(1, 10)
        idx.insert(2, 20)
        with pytest.raises(IndexError_):
            idx.move(10, 20)

    def test_invariants_after_churn(self):
        idx = FingerprintIndex()
        for i in range(20):
            idx.insert(i, 100 + i)
        for i in range(0, 20, 2):
            idx.remove_ppn(100 + i)
        for i in range(1, 20, 2):
            idx.move(100 + i, 200 + i)
        idx.check_invariants()
