"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GeometryConfig, SSDConfig, TimingConfig, small_config
from repro.schemes import make_scheme


def pytest_addoption(parser):
    parser.addoption(
        "--oracle-seeds",
        type=int,
        default=20,
        help="fuzz seeds per scheme/policy combo in the differential "
        "oracle property tests (tests/test_oracle_diff.py)",
    )


@pytest.fixture(scope="session")
def oracle_seeds(request) -> int:
    """Number of fuzz seeds the oracle property tests run per combo."""
    return request.config.getoption("--oracle-seeds")


@pytest.fixture
def tiny_config() -> SSDConfig:
    """A minimal device: 16 blocks x 8 pages, 2 channels."""
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=16),
        cold_region_ratio=0.5,
    )


@pytest.fixture
def small_cfg() -> SSDConfig:
    """A small but GC-capable device: 64 blocks x 16 pages."""
    return small_config(blocks=64, pages_per_block=16, channels=4)


@pytest.fixture
def timing() -> TimingConfig:
    return TimingConfig()


@pytest.fixture(params=["baseline", "inline-dedupe", "cagc"])
def any_scheme(request, tiny_config):
    """Each FTL scheme instantiated on the tiny device."""
    return make_scheme(request.param, tiny_config)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
