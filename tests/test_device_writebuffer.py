"""Tests for the DRAM write buffer and its device integration."""

import dataclasses

import pytest

from repro.config import GeometryConfig, SSDConfig, TimingConfig
from repro.device.ssd import run_trace
from repro.device.writebuffer import WriteBuffer
from repro.schemes import make_scheme
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace


class TestWriteBufferUnit:
    def test_put_within_capacity_no_eviction(self):
        buf = WriteBuffer(4)
        assert buf.put(1, 0xA) == []
        assert buf.put(2, 0xB) == []
        assert len(buf) == 2

    def test_overwrite_absorbed(self):
        buf = WriteBuffer(4)
        buf.put(1, 0xA)
        assert buf.put(1, 0xB) == []
        assert buf.stats.overwrite_hits == 1
        assert buf.read(1) == 0xB

    def test_overflow_evicts_lru_batch(self):
        buf = WriteBuffer(4, destage_batch=2)
        for lpn in range(5):
            evicted = buf.put(lpn, lpn * 10)
        assert [lpn for lpn, _ in evicted] == [0, 1]
        assert len(buf) == 3

    def test_recently_used_pages_survive(self):
        buf = WriteBuffer(4, destage_batch=1)
        for lpn in range(4):
            buf.put(lpn, 0)
        buf.put(0, 1)  # refresh lpn 0
        evicted = buf.put(9, 0)
        assert evicted[0][0] == 1  # lpn 1 is now LRU

    def test_read_miss(self):
        buf = WriteBuffer(4)
        assert buf.read(42) is None
        assert buf.stats.read_hits == 0

    def test_trim_drops_without_destage(self):
        buf = WriteBuffer(4)
        buf.put(1, 0xA)
        assert buf.trim(1)
        assert not buf.trim(1)
        assert buf.stats.trims_absorbed == 1
        assert len(buf) == 0

    def test_drain_returns_everything(self):
        buf = WriteBuffer(8)
        for lpn in range(5):
            buf.put(lpn, lpn)
        drained = buf.drain()
        assert len(drained) == 5
        assert len(buf) == 0
        assert buf.stats.pages_destaged == 5

    def test_absorption_ratio(self):
        buf = WriteBuffer(8)
        for _ in range(3):
            buf.put(1, 0)
        buf.drain()
        assert buf.stats.absorption_ratio == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)
        with pytest.raises(ValueError):
            WriteBuffer(4, dram_us=-1.0)


def cfg(buffer_pages=0) -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=32),
        timing=TimingConfig(overhead_us=0.0),
        write_buffer_pages=buffer_pages,
    )


def rewrite_trace(config, rounds=4) -> Trace:
    """Skewed rewrites: a hot set smaller than the buffer plus a cold
    sweep (cyclic patterns larger than an LRU buffer never hit)."""
    lpns = int(config.logical_pages * 0.5)
    hot = 16
    reqs = []
    t = 0.0
    fp = 0
    for _ in range(rounds):
        for lpn in range(lpns):
            reqs.append(IORequest(t, OpKind.WRITE, lpn, 1, (fp,)))
            t += 100.0
            fp += 1
            hot_lpn = lpn % hot
            reqs.append(IORequest(t, OpKind.WRITE, hot_lpn, 1, (fp,)))
            t += 100.0
            fp += 1
    return Trace.from_requests(reqs, name="rewrite")


class TestDeviceIntegration:
    def test_buffer_absorbs_rewrites(self):
        config = cfg(buffer_pages=64)
        result = run_trace(make_scheme("baseline", config), rewrite_trace(config))
        assert result.buffer is not None
        assert result.buffer.overwrite_hits > 0
        assert result.buffer.pages_destaged < result.buffer.pages_buffered

    def test_no_buffer_by_default(self):
        config = cfg()
        result = run_trace(make_scheme("baseline", config), rewrite_trace(config))
        assert result.buffer is None

    def test_buffer_reduces_flash_writes(self):
        config_plain = cfg()
        config_buf = cfg(buffer_pages=64)
        trace = rewrite_trace(config_plain)
        plain = run_trace(make_scheme("baseline", config_plain), trace)
        buffered = run_trace(make_scheme("baseline", config_buf), trace)
        assert (
            buffered.io.user_pages_programmed < plain.io.user_pages_programmed
        )

    def test_logical_content_correct_after_flush(self):
        config = cfg(buffer_pages=32)
        scheme = make_scheme("baseline", config)
        trace = rewrite_trace(config, rounds=2)
        run_trace.__wrapped__ if hasattr(run_trace, "__wrapped__") else None
        from repro.device.ssd import SSD

        SSD(scheme).replay(trace)
        # after end-of-run flush, every LPN holds its last-written content
        content = scheme.logical_content()
        expected = {}
        for _, op, lpn, npages, fps in trace.iter_rows():
            if op == int(OpKind.WRITE):
                for off in range(npages):
                    expected[lpn + off] = int(fps[off])
        assert content == expected
        scheme.check_invariants()

    def test_buffered_write_latency_is_dram_fast(self):
        config = cfg(buffer_pages=1024)  # never overflows in this test
        trace = Trace.from_requests(
            [IORequest(0.0, OpKind.WRITE, 0, 2, (1, 2))]
        )
        result = run_trace(make_scheme("baseline", config), trace)
        # 2 pages at 1us DRAM, no flash program on the critical path
        assert result.response_times_us[0] == pytest.approx(2.0)

    def test_buffered_read_hit_is_dram_fast(self):
        config = cfg(buffer_pages=1024)
        trace = Trace.from_requests(
            [
                IORequest(0.0, OpKind.WRITE, 0, 1, (1,)),
                IORequest(500.0, OpKind.READ, 0, 1),
            ]
        )
        result = run_trace(make_scheme("baseline", config), trace)
        assert result.response_times_us[1] == pytest.approx(1.0)
        assert result.buffer.read_hits == 1

    def test_trim_absorbs_buffered_pages(self):
        config = cfg(buffer_pages=1024)
        trace = Trace.from_requests(
            [
                IORequest(0.0, OpKind.WRITE, 0, 1, (1,)),
                IORequest(500.0, OpKind.TRIM, 0, 1),
            ]
        )
        scheme = make_scheme("baseline", config)
        result = run_trace(scheme, trace)
        assert result.buffer.trims_absorbed == 1
        assert scheme.live_logical_pages() == 0
        assert scheme.flash.total_programs == 0  # never reached flash

    def test_works_with_cagc(self):
        config = dataclasses.replace(cfg(buffer_pages=64), cold_region_ratio=0.5)
        scheme = make_scheme("cagc", config)
        run_trace(scheme, rewrite_trace(config))
        scheme.check_invariants()


class TestBufferedReadOverhead:
    """Pin the per-request overhead accounting of buffered reads.

    The firmware/host overhead must be charged exactly once per request:
    a pure miss costs exactly what a bufferless read would, a pure hit
    costs overhead + DRAM slots, and a mixed request pays the flash read
    for its misses plus one DRAM slot per hit — never two overheads.
    """

    OVERHEAD = 20.0
    READ = 12.0
    DRAM = 1.0

    def config(self) -> SSDConfig:
        return SSDConfig(
            geometry=GeometryConfig(channels=2, pages_per_block=8, blocks=32),
            timing=TimingConfig(overhead_us=self.OVERHEAD, read_us=self.READ),
            write_buffer_pages=1024,  # never overflows in these tests
            write_buffer_dram_us=self.DRAM,
        )

    def read_response(self, write_lpns, read_lpn, npages) -> float:
        """Response time of one n-page read after buffering ``write_lpns``."""
        reqs = [
            IORequest(i * 1000.0, OpKind.WRITE, lpn, 1, (lpn + 1,))
            for i, lpn in enumerate(write_lpns)
        ]
        reqs.append(IORequest(1e6, OpKind.READ, read_lpn, npages))
        result = run_trace(
            make_scheme("baseline", self.config()),
            Trace.from_requests(reqs, name="buffered-read"),
        )
        return float(result.response_times_us[-1])

    def test_all_hit_costs_overhead_plus_dram_slots(self):
        # 4 buffered pages: one request overhead + 4 DRAM accesses.
        got = self.read_response(write_lpns=[0, 1, 2, 3], read_lpn=0, npages=4)
        assert got == pytest.approx(self.OVERHEAD + 4 * self.DRAM)

    def test_all_miss_costs_exactly_bufferless_read(self):
        # 4 unbuffered pages over 2 channels: overhead + ceil(4/2) slots,
        # identical to a device with no buffer at all.
        got = self.read_response(write_lpns=[0, 1, 2, 3], read_lpn=100, npages=4)
        assert got == pytest.approx(self.OVERHEAD + 2 * self.READ)

    def test_mixed_charges_one_overhead_total(self):
        # LPNs 0-1 buffered, 2-3 not: one overhead + 2 DRAM slots +
        # flash slots for the 2 misses (their overhead already counted).
        got = self.read_response(write_lpns=[0, 1], read_lpn=0, npages=4)
        flash_part = (self.OVERHEAD + 1 * self.READ) - self.OVERHEAD
        assert got == pytest.approx(self.OVERHEAD + 2 * self.DRAM + flash_part)

    def test_mixed_cheaper_than_all_miss(self):
        mixed = self.read_response(write_lpns=[0, 1], read_lpn=0, npages=4)
        miss = self.read_response(write_lpns=[0, 1], read_lpn=100, npages=4)
        assert mixed < miss
