"""Tests for the block allocator and region bookkeeping."""

import pytest

from repro.config import GeometryConfig
from repro.flash.chip import FlashArray
from repro.ftl.allocator import (
    BlockAllocator,
    DeviceFullError,
    Region,
    WearAwareAllocator,
)


@pytest.fixture
def flash() -> FlashArray:
    return FlashArray(GeometryConfig(channels=2, pages_per_block=4, blocks=6))


@pytest.fixture
def alloc(flash) -> BlockAllocator:
    return BlockAllocator(flash)


class TestAllocation:
    def test_starts_with_all_blocks_free(self, alloc):
        assert alloc.free_blocks == 6
        assert alloc.free_fraction() == 1.0

    def test_allocate_fills_block_in_order(self, alloc):
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        assert ppns == [0, 1, 2, 3]

    def test_allocate_pulls_new_block_when_full(self, alloc):
        for _ in range(5):
            alloc.allocate_page(Region.HOT)
        assert alloc.free_blocks == 4  # blocks 0 and 1 in use

    def test_regions_use_separate_blocks(self, alloc):
        hot = alloc.allocate_page(Region.HOT)
        cold = alloc.allocate_page(Region.COLD)
        assert alloc.flash.geometry.ppn_to_block(hot) != alloc.flash.geometry.ppn_to_block(cold)
        assert alloc.region_of(0) == Region.HOT
        assert alloc.region_of(1) == Region.COLD

    def test_region_blocks_counter(self, alloc):
        for _ in range(5):
            alloc.allocate_page(Region.HOT)
        alloc.allocate_page(Region.COLD)
        assert alloc.region_blocks[Region.HOT] == 2
        assert alloc.region_blocks[Region.COLD] == 1

    def test_device_full_raises(self, alloc):
        with pytest.raises(DeviceFullError):
            for _ in range(100):
                alloc.allocate_page(Region.HOT)

    def test_write_time_propagates(self, alloc):
        ppn = alloc.allocate_page(Region.HOT, now_us=77.0)
        block = alloc.flash.geometry.ppn_to_block(ppn)
        assert alloc.flash.last_write_us[block] == 77.0


class TestRelease:
    def test_release_returns_block_to_pool(self, alloc, flash):
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        for ppn in ppns:
            flash.invalidate(ppn)
        flash.erase(0)
        alloc.release_block(0)
        assert alloc.free_blocks == 6
        assert alloc.region_of(0) == -1
        assert alloc.region_blocks[Region.HOT] == 0

    def test_release_active_block_rejected(self, alloc):
        alloc.allocate_page(Region.HOT)
        with pytest.raises(RuntimeError):
            alloc.release_block(0)


class TestVictimCandidates:
    def test_partial_blocks_not_candidates(self, alloc, flash):
        ppn = alloc.allocate_page(Region.HOT)
        flash.invalidate(ppn)
        assert not alloc.victim_candidates_mask().any()

    def test_full_block_with_invalid_is_candidate(self, alloc, flash):
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        flash.invalidate(ppns[0])
        mask = alloc.victim_candidates_mask()
        assert mask[0]
        assert mask.sum() == 1

    def test_fully_valid_block_not_candidate(self, alloc):
        for _ in range(4):
            alloc.allocate_page(Region.HOT)
        assert not alloc.victim_candidates_mask().any()

    def test_active_block_excluded(self, alloc, flash):
        # fill block 0 entirely and invalidate; start block 1 (active).
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        extra = alloc.allocate_page(Region.HOT)
        for ppn in ppns:
            flash.invalidate(ppn)
        flash.invalidate(extra)
        mask = alloc.victim_candidates_mask()
        assert mask[0]
        assert not mask[1]  # active, though it has an invalid page


class TestInvariants:
    def test_invariants_after_churn(self, alloc, flash):
        for round_ in range(3):
            ppns = [alloc.allocate_page(round_ % 2) for _ in range(8)]
            for ppn in ppns:
                flash.invalidate(ppn)
            for block in range(flash.blocks):
                if (
                    flash.write_ptr[block] == 4
                    and flash.valid_count[block] == 0
                    and not alloc.is_active(block)
                ):
                    flash.erase(block)
                    alloc.release_block(block)
            alloc.check_invariants()


class TestAllocateRun:
    def test_run_matches_per_page_ppns(self, alloc):
        base, count = alloc.allocate_run(Region.HOT, 3)
        assert (base, count) == (0, 3)
        assert alloc.flash.total_programs == 3
        assert alloc.flash.valid_count[0] == 3
        alloc.check_invariants()

    def test_run_capped_by_active_block_space(self, alloc):
        alloc.allocate_page(Region.HOT)
        base, count = alloc.allocate_run(Region.HOT, 10)
        assert (base, count) == (1, 3)  # 3 pages left in block 0
        # Block 0 is now full and retired from the active slot.
        assert alloc.active_block(Region.HOT) is None
        base, count = alloc.allocate_run(Region.HOT, 10)
        assert count == 4  # fresh block, full run
        alloc.check_invariants()

    def test_run_tracks_write_time(self, alloc, flash):
        alloc.allocate_run(Region.HOT, 2, now_us=55.0)
        assert flash.last_write_us[0] == 55.0

    def test_run_raises_when_pool_exhausted(self, alloc):
        for _ in range(6):
            alloc.allocate_run(Region.HOT, 4)
        with pytest.raises(DeviceFullError):
            alloc.allocate_run(Region.HOT, 1)


class TestWearAwareHeapPool:
    def test_heap_respects_preexisting_wear(self, flash):
        # Blocks 0..3 pre-worn before the allocator exists; the heap
        # must be seeded from the live erase counters, not zeros.
        for block in range(4):
            flash.erase(block)
        alloc = WearAwareAllocator(flash)
        first = alloc.flash.geometry.ppn_to_block(alloc.allocate_page(Region.HOT))
        assert first == 4  # least worn, lowest id
        alloc.check_invariants()

    def test_ties_break_to_lowest_block_id(self, flash):
        alloc = WearAwareAllocator(flash)
        pulled = []
        for _ in range(3):
            ppn = alloc.allocate_page(Region.HOT)
            pulled.append(flash.geometry.ppn_to_block(ppn))
            alloc.allocate_run(Region.HOT, 3)  # finish the block
        assert pulled == [0, 1, 2]

    def test_released_blocks_requeue_under_new_wear(self, flash):
        alloc = WearAwareAllocator(flash)
        # Fill and reclaim block 0 so its erase count rises to 1.
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        for ppn in ppns:
            flash.invalidate(ppn)
        flash.erase(0)
        alloc.release_block(0)
        # The next pulls must prefer the never-erased blocks 1..5 first.
        order = []
        while alloc.free_blocks:
            block = alloc._pull_free(Region.HOT)
            order.append(block)
            alloc.allocate_run(Region.HOT, 4)  # consume it fully
        assert order == [1, 2, 3, 4, 5, 0]

    def test_stale_heap_entry_refiled_after_external_erase(self, flash):
        alloc = WearAwareAllocator(flash)
        # Erasing a *free* block bumps its counter while pooled; the
        # lazily-invalidated entry must be re-filed, not lost.
        flash.erase(0)
        pulls = [alloc._pull_free(Region.HOT) for _ in range(6)]
        assert sorted(pulls) == [0, 1, 2, 3, 4, 5]
        assert pulls[-1] == 0  # the worn block comes out last
        alloc.check_invariants()

    def test_invariant_checks_cover_set_pool(self, flash):
        alloc = WearAwareAllocator(flash)
        alloc.allocate_page(Region.HOT)
        alloc.check_invariants()
        assert alloc.free_blocks == 5
