"""Tests for the CAGC scheme (the paper's contribution)."""

import pytest

from repro.core.cagc import CAGCScheme
from repro.flash.chip import PageState
from repro.ftl.allocator import Region


@pytest.fixture
def scheme(tiny_config):
    return CAGCScheme(tiny_config)


def force_collect_full_blocks(scheme):
    """Collect every full, inactive block (snapshot first)."""
    flash = scheme.flash
    victims = [
        b
        for b in range(flash.blocks)
        if not scheme.allocator.is_active(b)
        and flash.write_ptr[b] == flash.pages_per_block
    ]
    for b in victims:
        scheme.collect_block(b, 0.0)
    return victims


class TestWritePath:
    def test_writes_are_baseline_fast(self, scheme):
        out = scheme.write_request(0, [11, 22], 0.0)
        assert out.programs == 2
        assert out.hashed_pages == 0  # nothing on the critical path

    def test_duplicates_coexist_until_gc(self, scheme):
        scheme.write_request(0, [11], 0.0)
        scheme.write_request(1, [11], 0.0)
        assert scheme.flash.total_programs == 2
        assert scheme.mapping.lookup(0) != scheme.mapping.lookup(1)
        assert len(scheme.index) == 0  # index populated at GC time

    def test_writes_go_to_hot_region(self, scheme):
        scheme.write_request(0, [11], 0.0)
        block = scheme.flash.geometry.ppn_to_block(scheme.mapping.lookup(0))
        assert scheme.allocator.region_of(block) == Region.HOT


class TestGCDedup:
    def test_gc_merges_duplicates(self, scheme):
        # 8 pages/block: fill one block with duplicate content pairs.
        scheme.write_request(0, [11, 11, 22, 22, 33, 33, 44, 44], 0.0)
        force_collect_full_blocks(scheme)
        # after GC, the four contents each have one physical page
        assert scheme.mapping.lookup(0) == scheme.mapping.lookup(1)
        assert scheme.mapping.lookup(2) == scheme.mapping.lookup(3)
        assert len(scheme.index) == 4
        assert scheme.gc_counters.dedup_skipped == 4

    def test_gc_preserves_logical_content(self, scheme):
        scheme.write_request(0, [11, 11, 22, 33, 44, 44, 55, 66], 0.0)
        content = scheme.logical_content()
        force_collect_full_blocks(scheme)
        assert scheme.logical_content() == content
        scheme.check_invariants()

    def test_second_gc_dedups_against_index(self, scheme):
        scheme.write_request(0, [11, 12, 13, 14, 15, 16, 17, 18], 0.0)
        force_collect_full_blocks(scheme)
        # new writes with content 11 duplicate the canonical page
        scheme.write_request(8, [11, 21, 22, 23, 24, 25, 26, 27], 0.0)
        skipped_before = scheme.gc_counters.dedup_skipped
        force_collect_full_blocks(scheme)
        assert scheme.gc_counters.dedup_skipped > skipped_before
        assert scheme.mapping.lookup(0) == scheme.mapping.lookup(8)
        scheme.check_invariants()

    def test_migration_counts_exclude_dedup_hits(self, scheme):
        scheme.write_request(0, [11, 11, 11, 11, 22, 22, 22, 22], 0.0)
        force_collect_full_blocks(scheme)
        gc = scheme.gc_counters
        assert gc.pages_examined == 8
        assert gc.dedup_skipped == 6
        assert gc.pages_migrated == gc.pages_examined - gc.dedup_skipped + gc.promotions

    def test_invalid_pages_not_examined(self, scheme):
        scheme.write_request(0, [11, 22, 33, 44, 55, 66, 77, 88], 0.0)
        scheme.write_request(0, [99], 0.0)  # invalidates first page
        force_collect_full_blocks(scheme)
        assert scheme.gc_counters.pages_examined == 7


class TestPlacement:
    def test_shared_pages_promoted_to_cold(self, scheme):
        # Two copies of content 11 in one block; dedup raises refcount to
        # 2 (== threshold) -> canonical migrates to the cold region.
        scheme.write_request(0, [11, 11, 22, 33, 44, 55, 66, 77], 0.0)
        force_collect_full_blocks(scheme)
        ppn = scheme.mapping.lookup(0)
        block = scheme.flash.geometry.ppn_to_block(ppn)
        assert scheme.allocator.region_of(block) == Region.COLD
        assert scheme.gc_counters.promotions >= 1

    def test_unique_pages_stay_hot(self, scheme):
        scheme.write_request(0, [11, 22, 33, 44, 55, 66, 77, 88], 0.0)
        force_collect_full_blocks(scheme)
        for lpn in range(8):
            block = scheme.flash.geometry.ppn_to_block(scheme.mapping.lookup(lpn))
            assert scheme.allocator.region_of(block) == Region.HOT

    def test_refcount_based_region_at_migration(self, scheme):
        # Build a shared page via GC, then overwrite one sharer so the
        # refcount drops below the threshold; the next migration demotes
        # it back to the hot region.
        scheme.write_request(0, [11, 11, 22, 33, 44, 55, 66, 77], 0.0)
        force_collect_full_blocks(scheme)
        scheme.write_request(0, [88], 0.0)  # refcount of 11 drops to 1
        canonical = scheme.mapping.lookup(1)
        assert scheme.mapping.refcount(canonical) == 1
        region = scheme.placement.region_for(
            scheme.mapping.refcount(canonical), scheme.allocator
        )
        assert region == Region.HOT

    def test_trim_decrements_without_invalidating_shared(self, scheme):
        scheme.write_request(0, [11, 11, 22, 33, 44, 55, 66, 77], 0.0)
        force_collect_full_blocks(scheme)
        shared = scheme.mapping.lookup(0)
        scheme.trim_request(0, 1, 0.0)
        assert scheme.flash.state_of(shared) == PageState.VALID
        scheme.trim_request(1, 1, 0.0)
        assert scheme.flash.state_of(shared) == PageState.INVALID


class TestPipelineTiming:
    def test_gc_block_faster_than_baseline_model(self, scheme):
        """With dedup hits, CAGC's per-block GC beats the copy-all model."""
        scheme.write_request(0, [11, 11, 11, 11, 22, 22, 22, 22], 0.0)
        victims = [
            b
            for b in range(scheme.flash.blocks)
            if not scheme.allocator.is_active(b)
            and scheme.flash.write_ptr[b] == scheme.flash.pages_per_block
        ]
        outcome = scheme.collect_block(victims[0], 0.0)
        assert outcome.duration_us < scheme.timing.gc_migrate_us(8)

    def test_empty_block_costs_erase_only(self, scheme):
        scheme.write_request(0, [11, 22, 33, 44, 55, 66, 77, 88], 0.0)
        for lpn in range(8):
            scheme.write_page(lpn, 100 + lpn, 0.0)  # invalidate block 0
        outcome = scheme.collect_block(0, 0.0)
        assert outcome.pages_examined == 0
        assert outcome.duration_us == scheme.timing.erase_us


class TestEndToEnd:
    def test_sustained_churn_keeps_invariants(self, scheme):
        fp = 0
        # address ~90% of logical space so GC victims carry valid pages
        # (otherwise greedy only ever erases fully-invalid blocks and the
        # dedup path never runs).
        lpns = int(scheme.config.logical_pages * 0.9)
        for round_ in range(6):
            for lpn in range(lpns):
                # half the writes duplicate a small pool
                content = (fp % 5) if (lpn % 2 == 0) else 10_000 + fp
                if scheme.needs_gc():
                    scheme.run_gc(float(fp))
                scheme.write_page(lpn, content, float(fp))
                fp += 1
        scheme.check_invariants()
        assert scheme.gc_counters.dedup_skipped > 0
