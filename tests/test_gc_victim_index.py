"""Tests for the incremental GC victim index and its selection paths.

The contract under test: for every policy, selection through the
incrementally-maintained :class:`VictimIndex` is *bit-identical* to the
brute-force reference path (O(blocks) mask + full scan), at any point
of any program/invalidate/erase history — including the seeded RNG
stream of the random policy and the hot-first filtering of the
region-aware wrapper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GeometryConfig, small_config
from repro.flash.chip import FlashArray
from repro.ftl.allocator import BlockAllocator, Region
from repro.ftl.gc import make_policy
from repro.ftl.gc.cost_benefit import CostBenefitPolicy
from repro.ftl.gc.greedy import GreedyPolicy
from repro.ftl.gc.index import VictimIndex
from repro.ftl.gc.random_policy import RandomPolicy
from repro.ftl.gc.region_aware import RegionAwarePolicy
from repro.schemes import make_scheme


def make_indexed_allocator(blocks=8, pages_per_block=4):
    flash = FlashArray(
        GeometryConfig(channels=2, pages_per_block=pages_per_block, blocks=blocks)
    )
    alloc = BlockAllocator(flash)
    flash.victim_index = VictimIndex(flash)
    return flash, alloc, flash.victim_index


class TestVictimIndexUnit:
    def test_empty_flash_has_no_candidates(self):
        flash, alloc, index = make_indexed_allocator()
        assert len(index) == 0
        assert index.top_block() == -1
        assert index.sorted_candidates().size == 0
        index.check_consistency(alloc)

    def test_partial_block_not_indexed(self):
        flash, alloc, index = make_indexed_allocator()
        ppn = alloc.allocate_page(Region.HOT)
        flash.invalidate(ppn)
        assert len(index) == 0
        index.check_consistency(alloc)

    def test_block_enters_on_fill_with_prior_invalid(self):
        flash, alloc, index = make_indexed_allocator()
        ppn = alloc.allocate_page(Region.HOT)
        flash.invalidate(ppn)  # invalid while still active/partial
        for _ in range(3):
            alloc.allocate_page(Region.HOT)
        assert index.top_block() == 0
        index.check_consistency(alloc)

    def test_block_enters_on_first_invalidate_after_fill(self):
        flash, alloc, index = make_indexed_allocator()
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        assert len(index) == 0  # full but fully valid: nothing to reclaim
        flash.invalidate(ppns[2])
        assert index.top_block() == 0
        index.check_consistency(alloc)

    def test_invalidate_moves_block_up_buckets(self):
        flash, alloc, index = make_indexed_allocator()
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        for count, ppn in enumerate(ppns, start=1):
            flash.invalidate(ppn)
            assert index.candidates_mask()[0]
            assert int(flash.invalid_count[0]) == count
            index.check_consistency(alloc)

    def test_erase_removes_block(self):
        flash, alloc, index = make_indexed_allocator()
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(4)]
        for ppn in ppns:
            flash.invalidate(ppn)
        flash.erase(0)
        alloc.release_block(0)
        assert len(index) == 0
        assert index.top_block() == -1
        index.check_consistency(alloc)

    def test_top_block_ties_break_to_lowest_id(self):
        flash, alloc, index = make_indexed_allocator(blocks=6)
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(24)]
        # Blocks 0..5 all full; give blocks 4, 1 and 3 two invalids each.
        for block in (4, 1, 3):
            flash.invalidate(ppns[block * 4])
            flash.invalidate(ppns[block * 4 + 1])
        assert index.top_block() == 1
        index.check_consistency(alloc)

    def test_sorted_candidates_ascending_int64(self):
        flash, alloc, index = make_indexed_allocator(blocks=6)
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(24)]
        for block in (5, 0, 2):
            flash.invalidate(ppns[block * 4])
        arr = index.sorted_candidates()
        assert arr.dtype == np.int64
        assert arr.tolist() == [0, 2, 5]

    def test_rebuild_matches_incremental_state(self):
        flash, alloc, index = make_indexed_allocator(blocks=6)
        ppns = [alloc.allocate_page(Region.HOT) for _ in range(20)]
        for ppn in ppns[::3]:
            flash.invalidate(ppn)
        before = index.candidates_mask().tolist()
        index.rebuild()
        assert index.candidates_mask().tolist() == before
        index.check_consistency(alloc)


def all_policy_pairs(seed=0):
    """(name, oracle_policy, indexed_policy) with paired RNG streams."""
    return [
        ("greedy", GreedyPolicy(), GreedyPolicy()),
        ("cost-benefit", CostBenefitPolicy(), CostBenefitPolicy()),
        ("random", RandomPolicy(seed=seed), RandomPolicy(seed=seed)),
    ]


def assert_selections_match(scheme, now_us, seed=0):
    """Indexed selection must equal the masked-oracle selection for all
    four policies (region-aware wraps each base policy)."""
    flash = scheme.flash
    alloc = scheme.allocator
    index = scheme.victim_index
    mask = alloc.victim_candidates_mask()
    for name, oracle, indexed in all_policy_pairs(seed):
        want = oracle.select(flash, mask.copy(), now_us)
        got = indexed.select_indexed(flash, index, now_us)
        assert got == want, f"{name}: indexed {got} != oracle {want}"
    for name, oracle, indexed in all_policy_pairs(seed):
        oracle_wrap = RegionAwarePolicy(oracle, alloc)
        indexed_wrap = RegionAwarePolicy(indexed, alloc)
        want = oracle_wrap.select(flash, mask.copy(), now_us)
        got = indexed_wrap.select_indexed(flash, index, now_us)
        assert got == want, f"hot-first({name}): indexed {got} != oracle {want}"


class TestOracleEquivalenceProperty:
    """Randomized program/invalidate/erase churn; selection must agree
    with the oracle at every checkpoint, for every policy."""

    @pytest.mark.parametrize("scheme_name", ["baseline", "cagc", "lba-hotcold"])
    def test_random_churn_replay(self, scheme_name):
        rng = np.random.default_rng(42)
        cfg = small_config(blocks=24, pages_per_block=8)
        scheme = make_scheme(scheme_name, cfg)
        logical = cfg.logical_pages
        now = 0.0
        for step in range(400):
            now += float(rng.uniform(1.0, 50.0))
            op = rng.random()
            lpn = int(rng.integers(0, logical - 4))
            npages = int(rng.integers(1, 5))
            if op < 0.75:
                fps = [int(f) for f in rng.integers(0, 40, size=npages)]
                if scheme.needs_gc():
                    scheme.run_gc(now)
                scheme.write_request(lpn, fps, now)
            elif op < 0.9:
                scheme.trim_request(lpn, npages, now)
            elif scheme.needs_background_gc():
                scheme.collect_next(now)
            if step % 20 == 0:
                assert_selections_match(scheme, now, seed=step)
                scheme.check_invariants()  # includes index consistency
        assert_selections_match(scheme, now)
        scheme.check_invariants()

    def test_direct_flash_churn(self):
        """Drive allocator/flash directly (no scheme) through fills,
        invalidations and erases; index tracks the oracle mask."""
        rng = np.random.default_rng(7)
        flash, alloc, index = make_indexed_allocator(blocks=16, pages_per_block=8)
        live = []
        for step in range(2000):
            roll = rng.random()
            if roll < 0.55 and alloc.free_blocks > 1:
                live.append(alloc.allocate_page(int(rng.random() < 0.3)))
            elif roll < 0.9 and live:
                victim = live.pop(int(rng.integers(len(live))))
                flash.invalidate(victim)
            else:
                erasable = [
                    b
                    for b in range(flash.blocks)
                    if flash.valid_count[b] == 0
                    and flash.write_ptr[b] > 0
                    and not alloc.is_active(b)
                ]
                if erasable:
                    block = erasable[int(rng.integers(len(erasable)))]
                    flash.erase(block)
                    alloc.release_block(block)
            if step % 50 == 0:
                index.check_consistency(alloc)
                mask = alloc.victim_candidates_mask()
                now = float(step)
                for name, oracle, indexed in all_policy_pairs(seed=step):
                    want = oracle.select(flash, mask.copy(), now)
                    got = indexed.select_indexed(flash, index, now)
                    assert got == want, f"{name} diverged at step {step}"
        index.check_consistency(alloc)


class TestIndexedSelectionInGC:
    def test_run_gc_uses_index_and_matches_oracle_policy(self):
        """A replay driven purely by the index-backed driver produces
        the same victim sequence the oracle path would have."""
        from repro.device.ssd import run_trace
        from repro.workloads.fiu import build_fiu_trace

        class OracleGreedy(GreedyPolicy):
            """Greedy forced through the O(blocks) reference path."""

            def select_indexed(self, flash, index, now_us, region_arr=None, region=-1):
                mask = index.candidates_mask()
                if region_arr is not None:
                    mask &= region_arr == region
                return self.select(flash, mask, now_us)

        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("mail", cfg, n_requests=2000)
        fast = run_trace(make_scheme("cagc", cfg, policy=GreedyPolicy()), trace)
        slow = run_trace(make_scheme("cagc", cfg, policy=OracleGreedy()), trace)
        assert fast.gc.blocks_erased == slow.gc.blocks_erased
        assert fast.gc.pages_migrated == slow.gc.pages_migrated
        assert np.array_equal(fast.response_times_us, slow.response_times_us)

    def test_check_invariants_detects_index_corruption(self):
        cfg = small_config(blocks=16, pages_per_block=4)
        scheme = make_scheme("baseline", cfg)
        fps = list(range(8))
        scheme.write_request(0, fps, 0.0)
        scheme.write_request(0, fps, 1.0)  # overwrites: blocks 0-1 reclaimable
        scheme.check_invariants()
        # Corrupt the index behind the flash hooks' back.
        scheme.victim_index._add(9, 2)
        with pytest.raises(AssertionError):
            scheme.check_invariants()


class TestBulkWritePath:
    """The bulk program-run fast path must be state-identical to the
    per-page write_page loop."""

    @pytest.mark.parametrize("scheme_name", ["baseline", "cagc", "lba-hotcold"])
    def test_bulk_matches_per_page(self, scheme_name):
        from repro.device.ssd import run_trace
        from repro.workloads.fiu import build_fiu_trace

        cfg = small_config(blocks=48, pages_per_block=8)
        trace = build_fiu_trace("web-vm", cfg, n_requests=1500)
        bulk_scheme = make_scheme(scheme_name, cfg)
        assert bulk_scheme.bulk_user_writes
        slow_scheme = make_scheme(scheme_name, cfg)
        slow_scheme.bulk_user_writes = False  # force the reference loop
        bulk = run_trace(bulk_scheme, trace)
        slow = run_trace(slow_scheme, trace)
        assert np.array_equal(bulk.response_times_us, slow.response_times_us)
        assert bulk.io == slow.io
        assert bulk.gc == slow.gc
        assert bulk_scheme.logical_content() == slow_scheme.logical_content()
        bulk_scheme.check_invariants()

    def test_bulk_write_spans_multiple_blocks(self):
        cfg = small_config(blocks=16, pages_per_block=4)
        scheme = make_scheme("baseline", cfg)
        npages = 11  # crosses two block boundaries
        out = scheme.write_request(100, list(range(npages)), 0.0)
        assert out.programs == npages
        assert scheme.live_logical_pages() == npages
        assert scheme.flash.total_programs == npages
        scheme.check_invariants()

    def test_bulk_overwrite_invalidates_old_pages(self):
        cfg = small_config(blocks=16, pages_per_block=4)
        scheme = make_scheme("baseline", cfg)
        scheme.write_request(0, [1, 2, 3, 4, 5], 0.0)
        scheme.write_request(0, [6, 7, 8, 9, 10], 1.0)
        assert scheme.live_logical_pages() == 5
        assert int(scheme.flash.invalid_count.sum()) == 5
        assert scheme.logical_content() == {0: 6, 1: 7, 2: 8, 3: 9, 4: 10}
        scheme.check_invariants()

    def test_bulk_read_counts_mapped_extent(self):
        cfg = small_config(blocks=16, pages_per_block=4)
        scheme = make_scheme("baseline", cfg)
        scheme.write_request(10, [1, 2, 3], 0.0)
        assert scheme.read_request(8, 8) == 3  # only 10..12 mapped
        assert scheme.read_request(10, 3) == 3
        assert scheme.read_request(0, 4) == 0


class TestLBAHotColdBulkCounting:
    def test_write_frequency_counted_on_bulk_path(self):
        cfg = small_config(blocks=16, pages_per_block=4)
        scheme = make_scheme("lba-hotcold", cfg)
        scheme.write_request(5, [1, 2], 0.0)
        scheme.write_request(5, [3, 4], 1.0)
        scheme.write_request(6, [5], 2.0)
        assert scheme.lpn_writes[5] == 2
        assert scheme.lpn_writes[6] == 3
        assert scheme._is_hot_lpn(5)
        assert scheme._is_hot_lpn(6)
        assert not scheme._is_hot_lpn(7)
