"""Tests for region composition statistics — and the paper's III-C claim."""

import pytest

from repro.config import small_config
from repro.device.ssd import run_trace
from repro.ftl.regions import region_stats
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace


@pytest.fixture(scope="module")
def cagc_after_mail():
    cfg = small_config(blocks=128, pages_per_block=32)
    trace = build_fiu_trace("mail", cfg, n_requests=0, fill_factor=3.0)
    scheme = make_scheme("cagc", cfg)
    run_trace(scheme, trace)
    return scheme


class TestRegionStats:
    def test_fresh_scheme_has_empty_regions(self, tiny_config):
        scheme = make_scheme("cagc", tiny_config)
        stats = region_stats(scheme)
        assert stats["hot"].blocks == 0
        assert stats["cold"].blocks == 0
        assert stats["cold"].invalid_density == 0.0

    def test_regions_populated_after_run(self, cagc_after_mail):
        stats = region_stats(cagc_after_mail)
        assert stats["hot"].blocks > 0
        assert stats["cold"].blocks > 0

    def test_paper_claim_cold_region_rarely_invalidated(self, cagc_after_mail):
        """Section III-C: cold blocks 'will not likely have any invalid
        data pages' — their invalid density must sit far below hot's."""
        stats = region_stats(cagc_after_mail)
        assert stats["cold"].invalid_density < 0.5 * max(
            stats["hot"].invalid_density, 1e-9
        )
        assert stats["cold"].invalid_density < 0.2

    def test_cold_pages_are_shared(self, cagc_after_mail):
        """Cold residents are there because of their reference counts."""
        stats = region_stats(cagc_after_mail)
        assert stats["cold"].mean_refcount >= 2.0
        assert stats["cold"].mean_refcount > stats["hot"].mean_refcount

    def test_page_accounting_consistent(self, cagc_after_mail):
        scheme = cagc_after_mail
        stats = region_stats(scheme)
        ppb = scheme.flash.pages_per_block
        for region in stats.values():
            total = region.valid_pages + region.invalid_pages + region.free_pages
            assert total == region.blocks * ppb

    def test_baseline_uses_single_region(self):
        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("homes", cfg, n_requests=2000)
        scheme = make_scheme("baseline", cfg)
        run_trace(scheme, trace)
        stats = region_stats(scheme)
        assert stats["cold"].blocks == 0
        assert stats["hot"].blocks > 0
