"""Tests for the timeline recorder and its device integration."""

import numpy as np
import pytest

from repro.metrics.timeline import TimelineRecorder


class TestRecorder:
    def test_sample_and_series(self):
        tl = TimelineRecorder()
        tl.sample("free", 0.0, 1.0)
        tl.sample("free", 10.0, 0.8)
        times, values = tl.series("free")
        assert times.tolist() == [0.0, 10.0]
        assert values.tolist() == [1.0, 0.8]

    def test_unknown_series_empty(self):
        times, values = TimelineRecorder().series("ghost")
        assert times.size == 0 and values.size == 0

    def test_growth_beyond_initial_capacity(self):
        tl = TimelineRecorder()
        for i in range(1000):
            tl.sample("x", float(i), float(i * 2))
        times, values = tl.series("x")
        assert len(times) == 1000
        assert values[-1] == 1998.0

    def test_names_sorted(self):
        tl = TimelineRecorder()
        tl.sample("b", 0.0, 1.0)
        tl.sample("a", 0.0, 1.0)
        assert tl.names() == ["a", "b"]

    def test_last(self):
        tl = TimelineRecorder()
        tl.sample("x", 1.0, 5.0)
        tl.sample("x", 2.0, 6.0)
        assert tl.last("x") == (2.0, 6.0)
        with pytest.raises(KeyError):
            tl.last("y")

    def test_resample_step_interpolation(self):
        tl = TimelineRecorder()
        tl.sample("x", 0.0, 1.0)
        tl.sample("x", 10.0, 2.0)
        grid, values = tl.resample("x", points=5)
        assert grid.tolist() == [0.0, 2.5, 5.0, 7.5, 10.0]
        assert values.tolist() == [1.0, 1.0, 1.0, 1.0, 2.0]

    def test_resample_validation(self):
        tl = TimelineRecorder()
        tl.sample("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            tl.resample("x", points=0)

    def test_resample_single_sample_is_constant(self):
        tl = TimelineRecorder()
        tl.sample("x", 3.0, 7.0)
        grid, values = tl.resample("x", points=4)
        assert grid.tolist() == [3.0, 3.0, 3.0, 3.0]
        assert values.tolist() == [7.0, 7.0, 7.0, 7.0]

    def test_resample_empty(self):
        grid, values = TimelineRecorder().resample("x")
        assert grid.size == 0

    def test_to_dict_round_trip(self):
        tl = TimelineRecorder()
        tl.sample("free", 0.0, 1.0)
        tl.sample("free", 10.0, 0.5)
        tl.sample("erased", 10.0, 2.0)
        doc = tl.to_dict()
        assert sorted(doc) == ["erased", "free"]
        assert doc["free"] == {"times_us": [0.0, 10.0], "values": [1.0, 0.5]}
        # plain lists, JSON-serializable as-is
        import json

        json.dumps(doc)


class TestDeviceIntegration:
    def test_device_samples_gc_activity(self):
        from repro.config import small_config
        from repro.device.ssd import SSD
        from repro.schemes import make_scheme
        from repro.workloads.fiu import build_fiu_trace

        cfg = small_config(blocks=64, pages_per_block=16)
        trace = build_fiu_trace("homes", cfg, n_requests=0, fill_factor=3.0)
        ssd = SSD(make_scheme("baseline", cfg))
        ssd.replay(trace)
        times, free = ssd.timeline.series("free_fraction")
        assert times.size > 0
        assert ((free >= 0) & (free <= 1)).all()
        _, erased = ssd.timeline.series("blocks_erased")
        assert (np.diff(erased) >= 0).all()  # cumulative counter
