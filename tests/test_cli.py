"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_run_single_experiment(capsys):
    assert main(["run", "table1", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "error" in capsys.readouterr().err


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig9", "--scale", "enormous"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


class TestTraceCommands:
    def test_trace_gen_csv_then_info(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert (
            main(
                [
                    "trace-gen",
                    "--preset",
                    "homes",
                    "--requests",
                    "500",
                    "--blocks",
                    "64",
                    "--pages-per-block",
                    "16",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()
        assert main(["trace-info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "write ratio" in printed
        assert "refcount distribution" in printed

    def test_trace_gen_fiu_format(self, tmp_path):
        out = tmp_path / "t.blk"
        assert (
            main(
                [
                    "trace-gen",
                    "--preset",
                    "mail",
                    "--requests",
                    "200",
                    "--blocks",
                    "64",
                    "--pages-per-block",
                    "16",
                    "--format",
                    "fiu",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert main(["trace-info", str(out), "--format", "fiu"]) == 0

    def test_trace_info_missing_file(self, capsys):
        assert main(["trace-info", "/nonexistent/file.csv"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate_preset(self, capsys):
        rc = main(
            [
                "simulate",
                "--scheme",
                "cagc",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "blocks erased" in out
        assert "write amplification" in out

    def test_simulate_trace_file_preemptive(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(
            [
                "trace-gen",
                "--preset",
                "mail",
                "--requests",
                "400",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--out",
                str(out),
            ]
        )
        rc = main(
            [
                "simulate",
                "--scheme",
                "baseline",
                "--replay",
                str(out),
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--gc-mode",
                "preemptive",
                "--wear-aware",
                "--policy",
                "cost-benefit",
            ]
        )
        assert rc == 0
        assert "preemptive" in capsys.readouterr().out

    def test_simulate_writes_valid_chrome_trace(self, tmp_path, capsys):
        # ISSUE acceptance criterion: a cagc run with --trace/--trace-format
        # chrome yields a schema-valid file with distinct tracks for
        # foreground I/O, GC phases, and hash lanes.
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "run.json"
        rc = main(
            [
                "simulate",
                "--scheme",
                "cagc",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
                # The per-request io track is reference-path span
                # structure; the vectorized kernel replaces it with
                # batch spans on the kernel track.
                "--kernel",
                "reference",
                "--trace",
                str(out),
                "--trace-format",
                "chrome",
            ]
        )
        assert rc == 0
        tracks = validate_chrome_trace(json.loads(out.read_text()))
        assert "io" in tracks
        assert "gc" in tracks
        assert "gc.read" in tracks and "gc.write" in tracks
        assert any(t.startswith("hash-lane-") for t in tracks)
        assert "wrote" in capsys.readouterr().err

    def test_simulate_vectorized_kernel_trace_and_attribution(self, tmp_path, capsys):
        # On the vectorized path the tracer records batch/fallback
        # spans on the kernel track instead of per-request io spans,
        # and the summary table folds them into attribution rows.
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "run.json"
        rc = main(
            [
                "simulate",
                "--scheme",
                "cagc",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
                "--kernel",
                "vectorized",
                "--trace",
                str(out),
                "--trace-format",
                "chrome",
            ]
        )
        assert rc == 0
        tracks = validate_chrome_trace(json.loads(out.read_text()))
        assert "kernel" in tracks
        assert "io" not in tracks
        table = capsys.readouterr().out
        assert "kernel batches" in table
        assert "kernel fallback rate" in table

    def test_simulate_writes_jsonl_trace(self, tmp_path):
        import json

        out = tmp_path / "run.jsonl"
        rc = main(
            [
                "simulate",
                "--scheme",
                "baseline",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
                "--trace",
                str(out),
                "--trace-format",
                "jsonl",
                "--quiet",
            ]
        )
        assert rc == 0
        events = [json.loads(line) for line in out.read_text().splitlines()]
        assert events
        assert {"kind", "track", "name", "ts_us"} <= set(events[0])

    def test_quiet_flag_suppresses_status(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(
            [
                "simulate",
                "--scheme",
                "baseline",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
                "--trace",
                str(out),
                "-q",
            ]
        )
        captured = capsys.readouterr()
        assert "wrote" not in captured.err
        assert "blocks erased" in captured.out  # results stay on stdout


class TestReportCommand:
    def test_report_renders_telemetry_table(self, capsys):
        rc = main(
            ["report", "--workload", "homes", "--scheme", "cagc", "--scale", "quick"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for key in (
            "write amplification",
            "GC dedup ratio",
            "p95 / p99 / p999",
            "GC read busy",
            "GC erase busy",
        ):
            assert key in out, key

    def test_report_json_out(self, tmp_path):
        import json

        out = tmp_path / "report.json"
        rc = main(
            [
                "report",
                "--workload",
                "homes",
                "--scheme",
                "baseline",
                "--scale",
                "quick",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["run"].startswith("homes/baseline/")
        assert "blocks erased" in doc["metrics"]
