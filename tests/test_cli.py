"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert set(out) == set(EXPERIMENTS)


def test_run_single_experiment(capsys):
    assert main(["run", "table1", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "[table1]" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "error" in capsys.readouterr().err


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig9", "--scale", "enormous"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])


class TestTraceCommands:
    def test_trace_gen_csv_then_info(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert (
            main(
                [
                    "trace-gen",
                    "--preset",
                    "homes",
                    "--requests",
                    "500",
                    "--blocks",
                    "64",
                    "--pages-per-block",
                    "16",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert out.exists()
        assert main(["trace-info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "write ratio" in printed
        assert "refcount distribution" in printed

    def test_trace_gen_fiu_format(self, tmp_path):
        out = tmp_path / "t.blk"
        assert (
            main(
                [
                    "trace-gen",
                    "--preset",
                    "mail",
                    "--requests",
                    "200",
                    "--blocks",
                    "64",
                    "--pages-per-block",
                    "16",
                    "--format",
                    "fiu",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert main(["trace-info", str(out), "--format", "fiu"]) == 0

    def test_trace_info_missing_file(self, capsys):
        assert main(["trace-info", "/nonexistent/file.csv"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestSimulateCommand:
    def test_simulate_preset(self, capsys):
        rc = main(
            [
                "simulate",
                "--scheme",
                "cagc",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "blocks erased" in out
        assert "write amplification" in out

    def test_simulate_trace_file_preemptive(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(
            [
                "trace-gen",
                "--preset",
                "mail",
                "--requests",
                "400",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--out",
                str(out),
            ]
        )
        rc = main(
            [
                "simulate",
                "--scheme",
                "baseline",
                "--trace",
                str(out),
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--gc-mode",
                "preemptive",
                "--wear-aware",
                "--policy",
                "cost-benefit",
            ]
        )
        assert rc == 0
        assert "preemptive" in capsys.readouterr().out
