"""Tests for the FIU IODedup trace-format parser."""

import io

import pytest

from repro.workloads.fiu_format import (
    FIUFormatError,
    dump_fiu_trace,
    load_fiu_trace,
    parse_fiu_line,
)
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace

SAMPLE = """\
# FIU iodedup sample
1000000 231 httpd 100 1 W 8 0 0123456789abcdef0123456789abcdef
1000000 231 httpd 101 1 W 8 0 deadbeefdeadbeefdeadbeefdeadbeef
2000000 231 httpd 100 1 R 8 0 0123456789abcdef0123456789abcdef
3500000 99 mysqld 500 1 W 8 0 cafebabecafebabecafebabecafebabe
"""


class TestParseLine:
    def test_parses_write(self):
        rec = parse_fiu_line("1000 1 proc 42 1 W 8 0 " + "ab" * 16)
        assert rec.op == OpKind.WRITE
        assert rec.block == 42
        assert rec.time_us == 1.0
        assert rec.fingerprint == (int("ab" * 16, 16) & ((1 << 63) - 1))

    def test_parses_read_lowercase(self):
        rec = parse_fiu_line("1000 1 proc 42 1 r 8 0 " + "00" * 16)
        assert rec.op == OpKind.READ

    def test_blank_and_comment_lines_skipped(self):
        assert parse_fiu_line("") is None
        assert parse_fiu_line("# comment") is None

    def test_wrong_field_count_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("1000 1 proc 42 1 W 8 0")

    def test_bad_op_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("1000 1 proc 42 1 X 8 0 " + "00" * 16)

    def test_bad_digest_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("1000 1 proc 42 1 W 8 0 nothex!")

    def test_bad_int_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("abc 1 proc 42 1 W 8 0 " + "00" * 16)


class TestLoadTrace:
    def test_loads_sample(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE), name="sample")
        assert trace.name == "sample"
        stats = trace.stats()
        assert stats.read_requests == 1
        assert stats.write_requests == 2  # two 100/101 coalesce
        assert stats.trim_requests == 0

    def test_coalesces_contiguous_same_timestamp(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE))
        first = next(trace.iter_requests())
        assert first.npages == 2
        assert first.lpn == 100

    def test_no_coalesce_option(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE), coalesce=False)
        assert trace.stats().write_requests == 3

    def test_timestamps_rebased_to_zero(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE))
        assert trace.times_us[0] == 0.0
        assert trace.times_us[-1] == pytest.approx(2500.0)

    def test_empty_input(self):
        trace = load_fiu_trace(io.StringIO("# nothing\n"))
        assert len(trace) == 0

    def test_from_file(self, tmp_path):
        path = tmp_path / "t.blk"
        path.write_text(SAMPLE)
        trace = load_fiu_trace(path)
        assert trace.name == "t"
        assert len(trace) == 3

    def test_replayable(self, tmp_path):
        from repro.config import small_config
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme

        trace = load_fiu_trace(io.StringIO(SAMPLE))
        result = run_trace(make_scheme("cagc", small_config(blocks=64)), trace)
        assert result.latency.count == len(trace)


class TestRoundTrip:
    def test_dump_then_load(self, tmp_path):
        requests = [
            IORequest(0.0, OpKind.WRITE, 10, 2, (0xAA, 0xBB)),
            IORequest(50.0, OpKind.READ, 10, 1),
            IORequest(80.0, OpKind.TRIM, 10, 1),  # dropped: format has no TRIM
            IORequest(100.0, OpKind.WRITE, 99, 1, (0xAA,)),
        ]
        trace = Trace.from_requests(requests)
        path = tmp_path / "dump.blk"
        dump_fiu_trace(trace, path)
        loaded = load_fiu_trace(path)
        stats = loaded.stats()
        assert stats.write_requests == 2
        assert stats.read_requests == 1
        assert stats.trim_requests == 0
        # content identity preserved
        assert loaded.fps_flat.tolist() == [0xAA, 0xBB, 0xAA]
