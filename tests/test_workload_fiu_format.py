"""Tests for the FIU IODedup trace-format parser."""

import io

import pytest

from repro.workloads.fiu_format import (
    FIUFormatError,
    dump_fiu_trace,
    iter_fiu_chunks,
    load_fiu_trace,
    parse_fiu_line,
)
from repro.workloads.request import IORequest, OpKind
from repro.workloads.trace import Trace

SAMPLE = """\
# FIU iodedup sample
1000000 231 httpd 100 1 W 8 0 0123456789abcdef0123456789abcdef
1000000 231 httpd 101 1 W 8 0 deadbeefdeadbeefdeadbeefdeadbeef
2000000 231 httpd 100 1 R 8 0 0123456789abcdef0123456789abcdef
3500000 99 mysqld 500 1 W 8 0 cafebabecafebabecafebabecafebabe
"""


class TestParseLine:
    def test_parses_write(self):
        rec = parse_fiu_line("1000 1 proc 42 1 W 8 0 " + "ab" * 16)
        assert rec.op == OpKind.WRITE
        assert rec.block == 42
        assert rec.time_us == 1.0
        assert rec.fingerprint == (int("ab" * 16, 16) & ((1 << 63) - 1))

    def test_parses_read_lowercase(self):
        rec = parse_fiu_line("1000 1 proc 42 1 r 8 0 " + "00" * 16)
        assert rec.op == OpKind.READ

    def test_blank_and_comment_lines_skipped(self):
        assert parse_fiu_line("") is None
        assert parse_fiu_line("# comment") is None

    def test_wrong_field_count_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("1000 1 proc 42 1 W 8 0")

    def test_bad_op_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("1000 1 proc 42 1 X 8 0 " + "00" * 16)

    def test_bad_digest_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("1000 1 proc 42 1 W 8 0 nothex!")

    def test_bad_int_rejected(self):
        with pytest.raises(FIUFormatError):
            parse_fiu_line("abc 1 proc 42 1 W 8 0 " + "00" * 16)


class TestLoadTrace:
    def test_loads_sample(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE), name="sample")
        assert trace.name == "sample"
        stats = trace.stats()
        assert stats.read_requests == 1
        assert stats.write_requests == 2  # two 100/101 coalesce
        assert stats.trim_requests == 0

    def test_coalesces_contiguous_same_timestamp(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE))
        first = next(trace.iter_requests())
        assert first.npages == 2
        assert first.lpn == 100

    def test_no_coalesce_option(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE), coalesce=False)
        assert trace.stats().write_requests == 3

    def test_timestamps_rebased_to_zero(self):
        trace = load_fiu_trace(io.StringIO(SAMPLE))
        assert trace.times_us[0] == 0.0
        assert trace.times_us[-1] == pytest.approx(2500.0)

    def test_empty_input(self):
        trace = load_fiu_trace(io.StringIO("# nothing\n"))
        assert len(trace) == 0

    def test_from_file(self, tmp_path):
        path = tmp_path / "t.blk"
        path.write_text(SAMPLE)
        trace = load_fiu_trace(path)
        assert trace.name == "t"
        assert len(trace) == 3

    def test_replayable(self, tmp_path):
        from repro.config import small_config
        from repro.device.ssd import run_trace
        from repro.schemes import make_scheme

        trace = load_fiu_trace(io.StringIO(SAMPLE))
        result = run_trace(make_scheme("cagc", small_config(blocks=64)), trace)
        assert result.latency.count == len(trace)


def _run_record(ts_ns: int, base_block: int, n: int) -> str:
    """``n`` contiguous same-timestamp write records (one coalesced run)."""
    return "".join(
        f"{ts_ns} 7 proc {base_block + i} 1 W 8 0 {i + 1:032x}\n" for i in range(n)
    )


class TestChunkedParsing:
    def test_empty_input_yields_one_empty_chunk(self):
        chunks = list(iter_fiu_chunks(io.StringIO("# only comments\n\n")))
        assert len(chunks) == 1
        assert len(chunks[0]) == 0

    def test_malformed_line_reports_lineno_from_chunks(self):
        text = SAMPLE + "9000000 1 proc notanint 1 W 8 0 " + "00" * 16 + "\n"
        with pytest.raises(FIUFormatError, match="line 6"):
            list(iter_fiu_chunks(io.StringIO(text), chunk_size=2))

    def test_truncated_final_line_rejected(self):
        # A copy truncated mid-record (e.g. partial download) must fail
        # loudly, not silently drop the tail.
        text = SAMPLE + "9000000 1 proc 7 1 W"
        with pytest.raises(FIUFormatError, match="expected 9 fields"):
            load_fiu_trace(io.StringIO(text))
        with pytest.raises(FIUFormatError, match="expected 9 fields"):
            list(iter_fiu_chunks(io.StringIO(text), chunk_size=1))

    def test_chunk_boundary_never_splits_a_coalesced_run(self):
        # chunk_size=1 closes a chunk after every flushed request, so
        # the chunk boundary falls while the 5-record run is still
        # open: the run must carry over and land whole in the next
        # chunk, never split across two.
        text = _run_record(1_000_000, 10, 1) + _run_record(2_000_000, 100, 5)
        chunks = list(iter_fiu_chunks(io.StringIO(text), chunk_size=1))
        sizes = [trace.npages.tolist() for trace in chunks]
        assert sizes == [[1], [5]]

    def test_chunks_match_whole_load_for_any_chunk_size(self):
        text = "".join(
            _run_record(i * 1_000_000, i * 50, 1 + i % 4) for i in range(20)
        )
        whole = load_fiu_trace(io.StringIO(text))
        for size in (1, 3, 19, 20, 999):
            chunks = list(iter_fiu_chunks(io.StringIO(text), chunk_size=size))
            assert sum(len(c) for c in chunks) == len(whole)
            times, lpns, npages = [], [], []
            for c in chunks:
                times.extend(c.times_us.tolist())
                lpns.extend(c.lpns.tolist())
                npages.extend(c.npages.tolist())
            assert times == whole.times_us.tolist()
            assert lpns == whole.lpns.tolist()
            assert npages == whole.npages.tolist()

    def test_timestamp_rebase_spans_chunks(self):
        # The rebase origin is the whole trace's first record, not each
        # chunk's: later chunks keep absolute offsets from t=0.
        text = _run_record(5_000_000, 1, 1) + _run_record(8_000_000, 2, 1)
        chunks = list(iter_fiu_chunks(io.StringIO(text), chunk_size=1))
        assert chunks[0].times_us.tolist() == [0.0]
        assert chunks[1].times_us.tolist() == [3000.0]

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            list(iter_fiu_chunks(io.StringIO(SAMPLE), chunk_size=0))


class TestRoundTrip:
    def test_dump_then_load(self, tmp_path):
        requests = [
            IORequest(0.0, OpKind.WRITE, 10, 2, (0xAA, 0xBB)),
            IORequest(50.0, OpKind.READ, 10, 1),
            IORequest(80.0, OpKind.TRIM, 10, 1),  # dropped: format has no TRIM
            IORequest(100.0, OpKind.WRITE, 99, 1, (0xAA,)),
        ]
        trace = Trace.from_requests(requests)
        path = tmp_path / "dump.blk"
        dump_fiu_trace(trace, path)
        loaded = load_fiu_trace(path)
        stats = loaded.stats()
        assert stats.write_requests == 2
        assert stats.read_requests == 1
        assert stats.trim_requests == 0
        # content identity preserved
        assert loaded.fps_flat.tolist() == [0xAA, 0xBB, 0xAA]
