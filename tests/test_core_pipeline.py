"""Tests for the CAGC GC pipeline timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TimingConfig
from repro.core.pipeline import GCPipeline
from repro.flash.timing import FlashTiming


def timing(**kwargs) -> FlashTiming:
    return FlashTiming(TimingConfig(**kwargs))


class TestBasics:
    def test_empty_block_is_erase_only(self):
        t = timing()
        assert GCPipeline(t).finish() == t.erase_us

    def test_single_dedup_hit_costs_read_hash(self):
        t = timing()
        pipe = GCPipeline(t)
        pipe.process_page(write=False)
        assert pipe.finish() == t.read_us + t.hash_us + t.lookup_us + t.erase_us

    def test_single_write_adds_program(self):
        t = timing()
        pipe = GCPipeline(t)
        pipe.process_page(write=True)
        expected = t.read_us + t.hash_us + t.lookup_us + t.write_us + t.erase_us
        assert pipe.finish() == expected

    def test_hash_overlaps_reads(self):
        """For all-dedup blocks the makespan is dominated by max(read
        chain, hash chain), not their sum."""
        t = timing()
        pipe = GCPipeline(t)
        n = 20
        for _ in range(n):
            pipe.process_page(write=False)
        serial = n * (t.read_us + t.hash_us + t.lookup_us) + t.erase_us
        assert pipe.finish() < serial
        # lower bound: the hash engine itself
        assert pipe.finish() >= n * (t.hash_us + t.lookup_us) + t.erase_us

    def test_extra_copy_no_hash(self):
        t = timing()
        pipe = GCPipeline(t)
        pipe.extra_copy()
        assert pipe.finish() == t.read_us + t.write_us + t.erase_us


class TestVsBaseline:
    @pytest.mark.parametrize("n_pages", [1, 4, 16, 64])
    def test_never_slower_than_copy_all_plus_hash(self, n_pages):
        """CAGC's pipelined GC beats the naive serial read+hash+write."""
        t = timing()
        pipe = GCPipeline(t)
        for _ in range(n_pages):
            pipe.process_page(write=True)
        serial = n_pages * (
            t.read_us + t.hash_us + t.lookup_us + t.write_us
        ) + t.erase_us
        assert pipe.finish() <= serial

    def test_all_dedup_block_much_cheaper_than_baseline(self):
        t = timing()
        pipe = GCPipeline(t)
        for _ in range(64):
            pipe.process_page(write=False)
        assert pipe.finish() < t.gc_migrate_us(64) * 0.8

    def test_hash_hidden_when_erase_dominates(self):
        """The paper's parallelism claim: with a small page count, the
        whole dedup pass hides behind the erase latency budget."""
        t = timing()
        pipe = GCPipeline(t)
        for _ in range(8):
            pipe.process_page(write=False)
        overhead = pipe.finish() - t.erase_us
        assert overhead < t.erase_us * 0.15


class TestProperties:
    @given(
        verdicts=st.lists(st.booleans(), max_size=128),
        read=st.floats(1.0, 50.0),
        write=st.floats(1.0, 50.0),
        hash_us=st.floats(0.0, 50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_makespan_bounds(self, verdicts, read, write, hash_us):
        t = timing(read_us=read, write_us=write, hash_us=hash_us, lookup_us=0.0)
        pipe = GCPipeline(t)
        for v in verdicts:
            pipe.process_page(write=v)
        total = pipe.finish()
        n = len(verdicts)
        writes = sum(verdicts)
        # lower bounds: each stage alone
        assert total >= n * read + t.erase_us - 1e-9
        assert total >= n * hash_us + t.erase_us - 1e-9
        assert total >= writes * write + t.erase_us - 1e-9
        # upper bound: fully serial execution
        assert total <= n * (read + hash_us) + writes * write + t.erase_us + 1e-9

    @given(verdicts=st.lists(st.booleans(), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_pages(self, verdicts):
        t = timing()
        pipe_all = GCPipeline(t)
        pipe_fewer = GCPipeline(t)
        for v in verdicts:
            pipe_all.process_page(write=v)
        for v in verdicts[:-1]:
            pipe_fewer.process_page(write=v)
        assert pipe_all.finish() >= pipe_fewer.finish()
