"""Tests for latency recording, counters, CDFs and report helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.cdf import cdf_at, empirical_cdf, quantile
from repro.metrics.counters import GCCounters, IOCounters
from repro.metrics.latency import LatencyRecorder
from repro.metrics.report import format_table, normalize, reduction_pct


class TestLatencyRecorder:
    def test_record_and_summary(self):
        rec = LatencyRecorder()
        for v in (10.0, 20.0, 30.0):
            rec.record(v)
        s = rec.summary()
        assert s.count == 3
        assert s.mean_us == 20.0
        assert s.median_us == 20.0
        assert s.max_us == 30.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_empty_summary_zeroes(self):
        s = LatencyRecorder().summary()
        assert s.count == 0
        assert s.mean_us == 0.0

    def test_growth_beyond_capacity(self):
        rec = LatencyRecorder(capacity=4)
        for i in range(1000):
            rec.record(float(i))
        assert len(rec) == 1000
        assert rec.samples()[-1] == 999.0

    def test_percentiles_ordered(self):
        rec = LatencyRecorder()
        for i in range(1, 1001):
            rec.record(float(i))
        s = rec.summary()
        assert s.median_us <= s.p95_us <= s.p99_us <= s.p999_us <= s.max_us

    def test_summary_as_dict(self):
        rec = LatencyRecorder()
        rec.record(5.0)
        d = rec.summary().as_dict()
        assert d["count"] == 1 and d["mean_us"] == 5.0

    def test_cdf_shortcut(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(float(i))
        xs, fs = rec.cdf(points=50)
        assert len(xs) == 50
        assert fs[-1] == 1.0


class TestCDF:
    def test_empirical_cdf_endpoints(self):
        xs, fs = empirical_cdf(np.array([1.0, 2.0, 3.0]), points=10)
        assert xs[0] == 0.0
        assert xs[-1] == 3.0
        assert fs[-1] == 1.0

    def test_cdf_monotone(self):
        rng = np.random.default_rng(0)
        xs, fs = empirical_cdf(rng.exponential(10.0, 500), points=64)
        assert (np.diff(fs) >= 0).all()

    def test_empty_input(self):
        xs, fs = empirical_cdf(np.array([]))
        assert len(xs) == 0 and len(fs) == 0

    def test_points_validation(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([1.0]), points=1)

    def test_cdf_at(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert cdf_at(samples, 2.5) == 0.5
        assert cdf_at(samples, 0.0) == 0.0
        assert cdf_at(np.array([]), 1.0) == 0.0

    def test_quantile(self):
        samples = np.arange(101, dtype=float)
        assert quantile(samples, 0.5) == 50.0
        assert quantile(np.array([]), 0.5) == 0.0
        with pytest.raises(ValueError):
            quantile(samples, 1.5)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cdf_property_bounds(self, values):
        xs, fs = empirical_cdf(np.array(values), points=16)
        assert (fs >= 0).all() and (fs <= 1).all()
        assert fs[-1] == pytest.approx(1.0)


class TestCounters:
    def test_merge_block(self):
        gc = GCCounters()
        gc.merge_block(pages_examined=10, pages_migrated=7, dedup_skipped=3, duration_us=50.0)
        gc.merge_block(pages_examined=5, pages_migrated=5)
        assert gc.blocks_erased == 2
        assert gc.pages_examined == 15
        assert gc.pages_migrated == 12
        assert gc.dedup_skipped == 3
        assert gc.gc_busy_us == 50.0

    def test_waf_counts_gc_writes(self):
        io = IOCounters(logical_pages_written=100, user_pages_programmed=100)
        gc = GCCounters(pages_migrated=50)
        assert io.write_amplification(gc) == 1.5

    def test_waf_with_inline_dedup_below_one(self):
        io = IOCounters(logical_pages_written=100, user_pages_programmed=40)
        assert io.write_amplification(GCCounters()) == 0.4

    def test_waf_no_writes(self):
        assert IOCounters().write_amplification(GCCounters()) == 0.0


class TestReport:
    def test_normalize(self):
        norm = normalize({"a": 10.0, "b": 5.0}, "a")
        assert norm == {"a": 1.0, "b": 0.5}

    def test_normalize_zero_baseline(self):
        assert normalize({"a": 0.0, "b": 5.0}, "a") == {"a": 0.0, "b": 0.0}

    def test_reduction_pct(self):
        assert reduction_pct(100, 25) == 75.0
        assert reduction_pct(0, 10) == 0.0

    def test_format_table_alignment(self):
        out = format_table(["x", "yy"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[1] and "yy" in lines[1]
        assert len(lines) == 5

    def test_format_table_bad_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
