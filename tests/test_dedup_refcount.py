"""Tests for refcount lifecycle statistics (Fig 6 machinery)."""

from hypothesis import given, strategies as st

from repro.dedup.fingerprint import fingerprint_bytes
from repro.dedup.refcount import InvalidationHistogram, RefcountTracker


class TestHistogram:
    def test_buckets(self):
        h = InvalidationHistogram()
        for peak in (1, 1, 2, 3, 4, 9):
            h.record(peak)
        assert h.ref1 == 2
        assert h.ref2 == 1
        assert h.ref3 == 1
        assert h.ref_gt3 == 2
        assert h.total == 6

    def test_zero_peak_counts_as_one(self):
        h = InvalidationHistogram()
        h.record(0)
        assert h.ref1 == 1

    def test_fractions_sum_to_one(self):
        h = InvalidationHistogram()
        for peak in (1, 2, 2, 3, 5, 5, 5):
            h.record(peak)
        assert abs(sum(h.fractions()) - 1.0) < 1e-12

    def test_fractions_empty(self):
        assert InvalidationHistogram().fractions() == (0.0, 0.0, 0.0, 0.0)

    def test_as_rows_labels(self):
        rows = InvalidationHistogram().as_rows()
        assert [label for label, _ in rows] == ["1", "2", "3", ">3"]

    @given(peaks=st.lists(st.integers(min_value=1, max_value=50)))
    def test_total_matches_records(self, peaks):
        h = InvalidationHistogram()
        for p in peaks:
            h.record(p)
        assert h.total == len(peaks)


class TestTracker:
    def test_observe_tracks_peak(self):
        t = RefcountTracker()
        t.observe(1, 2)
        t.observe(1, 5)
        t.observe(1, 3)  # drop below peak
        t.invalidated(1)
        assert t.histogram.ref_gt3 == 1

    def test_invalidate_unobserved_defaults_to_one(self):
        t = RefcountTracker()
        t.invalidated(99)
        assert t.histogram.ref1 == 1

    def test_rekey_carries_history(self):
        t = RefcountTracker()
        t.observe(1, 3)
        t.rekey(1, 2)
        t.invalidated(2)
        assert t.histogram.ref3 == 1
        assert 1 not in t.peaks

    def test_rekey_takes_max_of_both(self):
        t = RefcountTracker()
        t.observe(1, 2)
        t.observe(2, 4)
        t.rekey(1, 2)
        t.invalidated(2)
        assert t.histogram.ref_gt3 == 1

    def test_invalidated_clears_state(self):
        t = RefcountTracker()
        t.observe(1, 2)
        t.invalidated(1)
        t.invalidated(1)  # second death of same key: default peak
        assert t.histogram.ref2 == 1
        assert t.histogram.ref1 == 1


class TestFingerprintBytes:
    def test_deterministic(self):
        assert fingerprint_bytes(b"abc") == fingerprint_bytes(b"abc")

    def test_different_content_differs(self):
        assert fingerprint_bytes(b"abc") != fingerprint_bytes(b"abd")

    def test_fits_in_int64(self):
        fp = fingerprint_bytes(b"\xff" * 4096)
        assert 0 <= fp < 2**63
