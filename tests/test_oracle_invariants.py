"""Each promoted invariant must fire on hand-broken state.

``repro.oracle.invariants.check_all`` is only a safety net if every
check in it actually trips when its structure is corrupted.  Each test
here populates a real scheme with GC-pressure fuzz traffic, breaks one
structure by hand, and asserts the net catches it with a message
naming the right invariant.
"""

from __future__ import annotations

import pytest

from repro.device.ssd import SSD
from repro.oracle import build_scheme, check_all, fuzz_config, fuzz_trace
from repro.oracle.invariants import check_accounting, check_index_agreement
from repro.workloads.request import OpKind


def _populated_scheme(scheme_name: str = "inline-dedupe"):
    """A scheme driven through enough fuzz traffic to exercise GC."""
    config = fuzz_config()
    scheme = build_scheme(scheme_name, "greedy", config)
    op_write, op_read, op_trim = int(OpKind.WRITE), int(OpKind.READ), int(OpKind.TRIM)
    for now, op, lpn, npages, fps in fuzz_trace(2, config).iter_rows():
        if op == op_write:
            if scheme.needs_gc():
                scheme.run_gc(now)
            scheme.write_request(lpn, fps, now)
        elif op == op_read:
            scheme.read_request(lpn, npages)
        elif op == op_trim:
            scheme.trim_request(lpn, npages, now)
    check_all(scheme)  # sanity: clean state passes
    return scheme


def test_clean_state_passes_on_device_and_scheme():
    """check_all accepts both an SSD-like device and a bare scheme."""
    config = fuzz_config()
    ssd = SSD(build_scheme("cagc", "greedy", config))
    ssd.replay(fuzz_trace(0, config))
    check_all(ssd)
    check_all(ssd.scheme)


def test_program_conservation_fires():
    scheme = _populated_scheme()
    scheme.flash.total_programs += 1
    with pytest.raises(AssertionError, match="program conservation"):
        check_all(scheme)
    with pytest.raises(AssertionError, match="program conservation"):
        check_accounting(scheme)


def test_erase_conservation_fires():
    scheme = _populated_scheme()
    scheme.gc_counters.blocks_erased += 1
    with pytest.raises(AssertionError, match="erase conservation"):
        check_all(scheme)


def test_accounting_opt_out_skips_conservation():
    """accounting=False must skip exactly the conservation checks."""
    scheme = _populated_scheme()
    scheme.flash.total_programs += 1
    check_all(scheme, accounting=False)  # broken counter, but opted out


def test_mapping_forward_reverse_desync_fires():
    scheme = _populated_scheme()
    ppn = next(iter(scheme.mapping.mapped_ppns()))
    lpn = scheme.mapping.lpns_of(ppn)[0]
    other = next(p for p in scheme.mapping.mapped_ppns() if p != ppn)
    scheme.mapping._fwd[lpn] = other  # corrupt the forward column
    with pytest.raises(AssertionError):
        check_all(scheme)


def test_fingerprint_index_asymmetry_fires():
    scheme = _populated_scheme()
    assert len(scheme.index) > 0, "dedup index unexpectedly empty"
    ppn = next(p for p in scheme.mapping.mapped_ppns() if scheme.index.contains_ppn(p))
    scheme.index._ppn_fp[ppn] = scheme.index.fp_of(ppn) + 1  # corrupt the reverse column
    with pytest.raises(AssertionError, match="asymmetric"):
        check_all(scheme)


def test_victim_index_stale_bucket_fires():
    scheme = _populated_scheme()
    vi = scheme.victim_index
    candidates = vi.sorted_candidates()
    assert len(candidates) > 0, "no GC candidates after fuzz traffic"
    block = int(candidates[0])
    true_inv = vi._bucket_of[block]
    vi._remove(block)
    vi._add(block, max(1, true_inv - 1) if true_inv > 1 else true_inv + 1)
    with pytest.raises(AssertionError, match="indexed at invalid"):
        check_all(scheme)


def test_page_fp_dangling_entry_fires():
    scheme = _populated_scheme()
    n_pages = scheme.flash.blocks * scheme.flash.pages_per_block
    dead = next(
        p
        for p in range(n_pages - 1, -1, -1)
        if scheme.mapping.refcount(p) == 0 and p not in scheme.page_fp
    )
    scheme.page_fp[dead] = 0xDEAD
    with pytest.raises(AssertionError, match="dead ppn"):
        check_all(scheme)


def test_index_page_fp_disagreement_fires():
    """The cross-structure check no single component sees on its own."""
    scheme = _populated_scheme()
    ppn = next(p for p in scheme.mapping.mapped_ppns() if scheme.index.contains_ppn(p))
    scheme.page_fp[ppn] = scheme.page_fp[ppn] + 1
    with pytest.raises(AssertionError, match="index says ppn"):
        check_index_agreement(scheme)
    with pytest.raises(AssertionError):
        check_all(scheme)


def test_mapped_page_invalidated_behind_ftl_fires():
    scheme = _populated_scheme("baseline")
    ppn = next(iter(scheme.mapping.mapped_ppns()))
    scheme.flash.invalidate(ppn)
    with pytest.raises(AssertionError):
        check_all(scheme)


def test_allocator_free_pool_corruption_fires():
    scheme = _populated_scheme()
    pool = scheme.allocator._free
    assert len(pool) > 0, "free pool unexpectedly empty after fuzz traffic"
    pool.append(pool[0])
    with pytest.raises(AssertionError, match="duplicate block in free pool"):
        check_all(scheme)
