"""Streaming trace pipeline: chunked/memmap access and constant memory.

The contract under test: every streaming access path (chunked FIU
parsing, chunked CSV parsing, memory-mapped npz columns) yields *exactly*
the same request sequence as materializing the trace — same floats, same
fingerprints — so replay trajectories are bit-identical; and replaying a
streamed trace holds peak RSS constant regardless of trace length.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.config import small_config
from repro.device.ssd import SSD, run_trace
from repro.metrics.latency import LatencyRecorder
from repro.schemes import make_scheme
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.fiu_format import dump_fiu_trace, iter_fiu_chunks, load_fiu_trace
from repro.workloads.stream import (
    StreamingTrace,
    concat_traces,
    iter_csv_chunks,
    open_trace,
)
from repro.workloads.trace import Trace


def _sample_trace(n: int = 3000) -> Trace:
    return build_fiu_trace("mail", small_config(), n_requests=n)


def _assert_rows_equal(a, b) -> None:
    rows_a = list(a.iter_rows())
    rows_b = list(b.iter_rows())
    assert len(rows_a) == len(rows_b)
    for ra, rb in zip(rows_a, rows_b):
        assert ra[:4] == rb[:4]
        if ra[4] is None:
            assert rb[4] is None
        else:
            assert np.array_equal(ra[4], rb[4])


class TestSliceAndChunks:
    def test_slice_window(self):
        t = _sample_trace(500)
        window = t.slice(100, 200)
        assert len(window) == 100
        _assert_rows_equal(window, Trace.from_requests(list(t)[100:200]))

    def test_slice_clamps_bounds(self):
        t = _sample_trace(50)
        assert len(t.slice(-5, 10_000)) == 50
        assert len(t.slice(60, 70)) == 0

    def test_chunks_cover_trace_exactly(self):
        t = _sample_trace(1000)
        for size in (1, 7, 999, 1000, 5000):
            chunks = list(t.iter_chunks(size))
            assert sum(len(c) for c in chunks) == len(t)
            _assert_rows_equal(concat_traces(chunks, t.name), t)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ValueError):
            list(_sample_trace(10).iter_chunks(0))

    def test_iter_requests_chunked_equals_plain(self):
        t = _sample_trace(800)
        assert list(t.iter_requests()) == list(t.iter_requests(chunk_size=97))


class TestNpz:
    @pytest.mark.parametrize("mmap", (True, False))
    def test_round_trip(self, tmp_path, mmap):
        t = _sample_trace()
        path = tmp_path / "t.npz"
        t.save_npz(path)
        loaded = Trace.load_npz(path, mmap=mmap)
        assert loaded.name == "t"
        _assert_rows_equal(t, loaded)

    def test_mmap_columns_are_file_backed(self, tmp_path):
        t = _sample_trace()
        path = tmp_path / "t.npz"
        t.save_npz(path)
        loaded = Trace.load_npz(path)
        for field in Trace._NPZ_FIELDS:
            col = getattr(loaded, field)
            assert isinstance(col.base, np.memmap) or isinstance(col, np.memmap)

    def test_rejects_non_trace_npz(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.arange(4))
        with pytest.raises(ValueError, match="missing"):
            Trace.load_npz(path)

    def test_replay_from_mmap_matches_materialized(self, tmp_path):
        t = _sample_trace()
        path = tmp_path / "t.npz"
        t.save_npz(path)
        cfg = small_config()
        a = run_trace(make_scheme("cagc", cfg), t)
        b = run_trace(make_scheme("cagc", cfg), Trace.load_npz(path))
        assert np.array_equal(a.response_times_us, b.response_times_us)


class TestStreamingSources:
    def test_fiu_chunks_concat_equals_load(self, tmp_path):
        t = _sample_trace(1200)
        path = tmp_path / "t.fiu"
        dump_fiu_trace(t, path)
        whole = load_fiu_trace(path)
        for size in (1, 13, 1200, 100_000):
            chunks = list(iter_fiu_chunks(path, chunk_size=size))
            _assert_rows_equal(concat_traces(chunks, whole.name), whole)

    def test_csv_chunks_concat_equals_load(self, tmp_path):
        t = _sample_trace(900)
        path = tmp_path / "t.csv"
        t.save_csv(path)
        whole = Trace.load_csv(path)
        for size in (1, 57, 5000):
            chunks = list(iter_csv_chunks(path, chunk_size=size))
            _assert_rows_equal(concat_traces(chunks, whole.name), whole)

    def test_open_trace_dispatch(self, tmp_path):
        t = _sample_trace(300)
        csv_p, npz_p, fiu_p = (
            tmp_path / "t.csv", tmp_path / "t.npz", tmp_path / "t.trace"
        )
        t.save_csv(csv_p)
        t.save_npz(npz_p)
        dump_fiu_trace(t, fiu_p)
        for path in (csv_p, npz_p, fiu_p):
            _assert_rows_equal(open_trace(path), open_trace(path, stream=True))

    def test_streaming_trace_is_restartable(self, tmp_path):
        t = _sample_trace(200)
        path = tmp_path / "t.csv"
        t.save_csv(path)
        stream = open_trace(path, stream=True, chunk_size=64)
        assert isinstance(stream, StreamingTrace)
        first = list(stream.iter_rows())
        second = list(stream.iter_rows())
        assert len(first) == len(second) == len(t)

    def test_streaming_replay_trajectory_sha256_equal(self, tmp_path):
        """The end-to-end guarantee: streamed and materialized replays of
        the same on-disk trace are byte-identical trajectories."""
        t = _sample_trace(2500)
        path = tmp_path / "t.fiu"
        dump_fiu_trace(t, path)

        def digest(trace) -> str:
            cfg = small_config()
            result = run_trace(make_scheme("cagc", cfg), trace)
            h = hashlib.sha256()
            h.update(result.response_times_us.tobytes())
            h.update(
                json.dumps(
                    {
                        "erased": result.gc.blocks_erased,
                        "migrated": result.gc.pages_migrated,
                        "programs": result.io.user_pages_programmed,
                        "simulated_us": result.simulated_us,
                    },
                    sort_keys=True,
                ).encode()
            )
            return h.hexdigest()

        materialized = digest(load_fiu_trace(path))
        streamed = digest(open_trace(path, stream=True, chunk_size=333))
        assert materialized == streamed


class TestHistogramLatency:
    def test_histogram_mode_summary_close_to_exact(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=3.5, sigma=1.0, size=20_000)
        exact = LatencyRecorder()
        binned = LatencyRecorder(keep_samples=False)
        for s in samples:
            exact.record(float(s))
            binned.record(float(s))
        e, b = exact.summary(), binned.summary()
        assert b.count == e.count
        assert b.max_us == pytest.approx(e.max_us)
        assert b.mean_us == pytest.approx(e.mean_us, rel=1e-9)
        for field in ("median_us", "p95_us", "p99_us", "p999_us"):
            assert getattr(b, field) == pytest.approx(getattr(e, field), rel=0.02)

    def test_histogram_mode_keeps_no_samples(self):
        rec = LatencyRecorder(keep_samples=False)
        for i in range(1000):
            rec.record(float(i + 1))
        assert len(rec) == 1000
        assert rec.samples().size == 0

    def test_device_keep_samples_false_empty_result_samples(self):
        cfg = small_config()
        trace = _sample_trace(400)
        ssd = SSD(make_scheme("baseline", cfg), keep_samples=False)
        result = ssd.replay(trace)
        assert result.response_times_us.size == 0
        assert result.latency.count == 400
        # The summary must still track an exact-sample run; tail
        # percentiles of only 400 samples are bin-quantized, so the
        # tight accuracy bound lives in the 20k-sample test above.
        exact = run_trace(make_scheme("baseline", cfg), _sample_trace(400))
        assert result.latency.mean_us == pytest.approx(exact.latency.mean_us, rel=1e-9)
        assert result.latency.median_us == pytest.approx(exact.latency.median_us, rel=0.05)
        assert result.latency.p99_us == pytest.approx(exact.latency.p99_us, rel=0.15)


_REPLAY_CHILD = textwrap.dedent(
    """
    import resource, sys
    sys.path.insert(0, sys.argv[3])
    from repro.config import small_config
    from repro.device.ssd import SSD
    from repro.schemes import make_scheme
    from repro.workloads.stream import open_trace

    trace = open_trace(sys.argv[1], stream=True, chunk_size=65536)
    cfg = small_config(blocks=64, pages_per_block=32)
    ssd = SSD(make_scheme("baseline", cfg), keep_samples=False)
    result = ssd.replay(trace)
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(result.latency.count, peak_kb)
    """
)


def _write_synthetic_fiu(path: Path, n_requests: int) -> None:
    """Emit an FIU text trace cheaply: mostly reads over a small LPN
    span (fast to replay), a write every 16th request so the FTL does
    real work.  One record per request (no coalescing runs).  Arrivals
    are spaced 500 µs apart — comfortably slower than the device's
    service rate, so the admission queue stays near-empty and measured
    memory is the pipeline's, not genuine request backlog."""
    span = 1024
    with open(path, "w") as fh:
        for i in range(n_requests):
            lpn = (i * 37) % span
            if i % 16 == 0:
                fh.write(f"{i * 500_000} 1 synth {lpn} 1 W 8 0 {i % 4096:032x}\n")
            else:
                fh.write(f"{i * 500_000} 1 synth {lpn} 1 R 8 0 {'0' * 32}\n")


@pytest.mark.slow
def test_streaming_replay_constant_memory(tmp_path):
    """Peak RSS of a streamed replay must not scale with trace length.

    Two fresh subprocesses replay 250k- and 1M-request synthetic FIU
    traces through the streaming pipeline.  Materialized, the 1M trace
    costs ~4x the memory of the 250k one; streamed, both must peak at
    essentially the same RSS (interpreter + device state + one chunk).
    """
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    peaks = {}
    for n in (250_000, 1_000_000):
        path = tmp_path / f"synthetic-{n}.fiu"
        _write_synthetic_fiu(path, n)
        out = subprocess.run(
            [sys.executable, "-c", _REPLAY_CHILD, str(path), str(n), src_root],
            capture_output=True,
            text=True,
            check=True,
        )
        count, peak_kb = out.stdout.split()
        assert int(count) == n, f"replay consumed {count} of {n} requests"
        peaks[n] = int(peak_kb)
        path.unlink()  # keep tmp usage bounded
    ratio = peaks[1_000_000] / peaks[250_000]
    assert ratio < 1.35, (
        f"peak RSS grew with trace length: {peaks[250_000]}kB -> "
        f"{peaks[1_000_000]}kB (x{ratio:.2f})"
    )
