"""Public API surface checks."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.config",
            "repro.sim",
            "repro.flash",
            "repro.flash.endurance",
            "repro.ftl",
            "repro.ftl.gc",
            "repro.dedup",
            "repro.core",
            "repro.schemes",
            "repro.device",
            "repro.workloads",
            "repro.workloads.fiu_format",
            "repro.workloads.analysis",
            "repro.metrics",
            "repro.metrics.timeline",
            "repro.experiments",
            "repro.obs",
            "repro.obs.trace",
            "repro.obs.telemetry",
            "repro.obs.log",
            "repro.obs.heartbeat",
            "repro.obs.hooks",
            "repro.cli",
        ],
    )
    def test_modules_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "package",
        ["repro.sim", "repro.flash", "repro.ftl", "repro.dedup", "repro.schemes",
         "repro.device", "repro.workloads", "repro.metrics", "repro.obs"],
    )
    def test_package_all_resolves(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name}"

    def test_every_public_symbol_documented(self):
        """Every class/function reachable from repro.__all__ has a
        docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestCompareCommand:
    def test_compare_runs(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "compare",
                "--preset",
                "homes",
                "--blocks",
                "64",
                "--pages-per-block",
                "16",
                "--fill-factor",
                "2.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for scheme in ("baseline", "inline-dedupe", "cagc", "lba-hotcold"):
            assert scheme in out
