"""Array differential oracle: every device of the array agrees with the
naive model, under every GC-coordination policy.

The array harness (:mod:`repro.oracle.arraydiff`) re-splits a
multi-tenant trace with the pure range router and diffs each lane's end
state against an independent :class:`OracleSSD` — so NCQ admission and
cross-device GC coordination must be *state-invisible*: they may move
collection work in time, never change what any device's flash ends up
holding.

The bug-detection half closes the loop exactly as the single-device
suite does: with the victim-index off-by-one re-injected the array
harness MUST report the divergence, and the committed shrunk trace
(``tests/regress/array-victim-index-off-by-one.csv``) must both replay
cleanly today and still trigger the re-injected bug.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.array import COORDINATIONS
from repro.oracle import (
    ARRAY_DEVICE_COUNTS,
    diff_array,
    fuzz_config,
    fuzz_trace,
    make_array_divergence_predicate,
    shrink_trace,
)
from repro.oracle.arraydiff import array_pages_per_device
from repro.workloads.trace import Trace

from tests._oracle_helpers import victim_index_off_by_one

REGRESS_DIR = Path(__file__).parent / "regress"
ARRAY_REGRESS = REGRESS_DIR / "array-victim-index-off-by-one.csv"


@pytest.fixture(scope="module")
def fuzz_cfg():
    return fuzz_config()


class TestArrayProfile:
    def test_extents_route_cleanly_at_every_device_count(self, fuzz_cfg):
        """The ``array`` profile keeps every extent inside one tenant
        quarter, so the router splits it for 1, 2 and 4 devices."""
        from repro.array.router import RangeRouter

        for seed in range(5):
            trace = fuzz_trace(seed, fuzz_cfg, profile="array")
            for devices in ARRAY_DEVICE_COUNTS:
                size = array_pages_per_device(fuzz_cfg, devices)
                parts = RangeRouter(devices, size).split(trace)
                assert sum(len(sub) for sub, _ in parts) == len(trace)

    def test_profile_touches_every_device(self, fuzz_cfg):
        from repro.array.router import RangeRouter

        trace = fuzz_trace(0, fuzz_cfg, profile="array")
        size = array_pages_per_device(fuzz_cfg, 4)
        parts = RangeRouter(4, size).split(trace)
        assert all(len(sub) > 0 for sub, _ in parts)


class TestNoDivergence:
    @pytest.mark.parametrize("coordination", COORDINATIONS)
    def test_blocking_gc_all_coordinations(self, coordination, fuzz_cfg):
        for seed in range(3):
            trace = fuzz_trace(seed, fuzz_cfg, profile="array")
            devices = ARRAY_DEVICE_COUNTS[seed % len(ARRAY_DEVICE_COUNTS)]
            divergence = diff_array(
                trace,
                devices=devices,
                scheme="cagc",
                config=fuzz_cfg,
                coordination=coordination,
            )
            assert divergence is None, str(divergence)

    @pytest.mark.parametrize("scheme", ("baseline", "inline-dedupe"))
    def test_other_schemes(self, scheme, fuzz_cfg):
        for seed in range(2):
            trace = fuzz_trace(seed, fuzz_cfg, profile="array")
            divergence = diff_array(
                trace, devices=4, scheme=scheme, config=fuzz_cfg
            )
            assert divergence is None, str(divergence)

    def test_preemptive_gc(self):
        cfg = fuzz_config(gc_mode="preemptive")
        for seed in range(2):
            trace = fuzz_trace(seed, cfg, profile="array")
            divergence = diff_array(trace, devices=4, scheme="cagc", config=cfg)
            assert divergence is None, str(divergence)

    def test_tight_ncq_depth(self, fuzz_cfg):
        """Admission pressure (depth 1) must stay state-invisible too."""
        trace = fuzz_trace(1, fuzz_cfg, profile="array")
        divergence = diff_array(
            trace, devices=2, scheme="cagc", config=fuzz_cfg, ncq_depth=1
        )
        assert divergence is None, str(divergence)


class TestBugDetection:
    def test_injected_bug_caught_on_array(self, fuzz_cfg):
        with victim_index_off_by_one():
            hits = []
            for seed in range(3):
                divergence = diff_array(
                    fuzz_trace(seed, fuzz_cfg, profile="array"),
                    devices=4,
                    scheme="baseline",
                    config=fuzz_cfg,
                )
                if divergence is not None:
                    hits.append(divergence)
        assert hits, "corrupted victim index escaped the array harness"
        assert any(d.kind == "invariant" for d in hits)

    def test_injected_bug_shrinks_to_at_most_10_requests(self, fuzz_cfg):
        """Full pipeline on the array: fuzz -> diff_array -> ddmin."""
        with victim_index_off_by_one():
            trace = None
            for seed in range(10):
                candidate = fuzz_trace(seed, fuzz_cfg, profile="array")
                if (
                    diff_array(
                        candidate, devices=4, scheme="baseline", config=fuzz_cfg
                    )
                    is not None
                ):
                    trace = candidate
                    break
            assert trace is not None, "bug never diverged across 10 seeds"
            predicate = make_array_divergence_predicate(
                devices=4, scheme="baseline", policy="greedy", config=fuzz_cfg
            )
            minimal = shrink_trace(trace, predicate)
            assert predicate(minimal), "shrunk trace no longer diverges"
            assert len(minimal) <= 10
        # Clean code replays the minimal trace without divergence.
        assert (
            diff_array(minimal, devices=4, scheme="baseline", config=fuzz_cfg)
            is None
        )


class TestCommittedRegression:
    @pytest.mark.parametrize("coordination", COORDINATIONS)
    def test_regress_trace_stays_clean_on_array(self, coordination, fuzz_cfg):
        trace = Trace.load_csv(ARRAY_REGRESS, name=ARRAY_REGRESS.stem)
        divergence = diff_array(
            trace,
            devices=4,
            scheme="baseline",
            config=fuzz_cfg,
            coordination=coordination,
        )
        assert divergence is None, str(divergence)

    def test_regress_trace_still_triggers_bug(self, fuzz_cfg):
        trace = Trace.load_csv(ARRAY_REGRESS, name=ARRAY_REGRESS.stem)
        with victim_index_off_by_one():
            divergence = diff_array(
                trace, devices=4, scheme="baseline", config=fuzz_cfg
            )
        assert divergence is not None and divergence.kind == "invariant"
