"""Tests for reference-count-based placement."""

import pytest

from repro.config import GeometryConfig, SSDConfig
from repro.core.placement import PlacementPolicy
from repro.flash.chip import FlashArray
from repro.ftl.allocator import BlockAllocator, Region


@pytest.fixture
def cfg() -> SSDConfig:
    return SSDConfig(
        geometry=GeometryConfig(channels=2, pages_per_block=4, blocks=8),
        cold_threshold=2,
        cold_region_ratio=0.25,  # cap: 2 blocks
    )


@pytest.fixture
def alloc(cfg) -> BlockAllocator:
    return BlockAllocator(FlashArray(cfg.geometry))


class TestClassification:
    def test_refcount_one_is_hot(self, cfg):
        assert not PlacementPolicy(cfg).is_cold(1)

    def test_threshold_and_above_is_cold(self, cfg):
        p = PlacementPolicy(cfg)
        assert p.is_cold(2)
        assert p.is_cold(10)

    def test_higher_threshold(self, cfg):
        import dataclasses

        p = PlacementPolicy(dataclasses.replace(cfg, cold_threshold=4))
        assert not p.is_cold(3)
        assert p.is_cold(4)


class TestRegionFor:
    def test_hot_refcount_goes_hot(self, cfg, alloc):
        assert PlacementPolicy(cfg).region_for(1, alloc) == Region.HOT

    def test_cold_refcount_goes_cold(self, cfg, alloc):
        assert PlacementPolicy(cfg).region_for(3, alloc) == Region.COLD

    def test_cold_overflow_falls_back_to_hot(self, cfg, alloc):
        p = PlacementPolicy(cfg)
        # consume the cold budget (2 blocks of 4 pages)
        for _ in range(8):
            alloc.allocate_page(Region.COLD)
        assert alloc.region_blocks[Region.COLD] == 2
        assert p.region_for(5, alloc) == Region.HOT


class TestPromotion:
    def test_promote_when_threshold_reached_in_hot(self, cfg, alloc):
        p = PlacementPolicy(cfg)
        assert p.should_promote(2, Region.HOT, alloc)

    def test_no_promote_below_threshold(self, cfg, alloc):
        assert not PlacementPolicy(cfg).should_promote(1, Region.HOT, alloc)

    def test_no_promote_if_already_cold(self, cfg, alloc):
        assert not PlacementPolicy(cfg).should_promote(5, Region.COLD, alloc)

    def test_no_promote_when_cold_full(self, cfg, alloc):
        p = PlacementPolicy(cfg)
        for _ in range(8):
            alloc.allocate_page(Region.COLD)
        assert not p.should_promote(5, Region.HOT, alloc)
