"""Array-level differential equivalence.

Two exact claims anchor the SSD-array tier to the single-device
simulator the rest of the repo validates:

* **pass-through** — an N=1 array replaying a trace is
  sha256-trajectory-identical to the bare :class:`SSD`, across the full
  scheme x policy matrix and under an actively-blocking NCQ gate (a
  bounded queue ahead of a FIFO work-conserving server never moves a
  completion time);
* **independence** — under ``independent`` coordination, every device
  of an N=4 array with disjoint per-tenant LPN ranges produces exactly
  the trajectory of a solo replay of that tenant's trace on a bare
  device: the shared event heap interleaves the lanes without coupling
  them.

Either digest drifting means the array changed device *behaviour*, not
just orchestration — the one thing it must never do.
"""

import hashlib

import pytest

from repro.array import SSDArray
from repro.config import small_config
from repro.device.ssd import SSD
from repro.oracle.diff import build_scheme
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.multiplex import multiplex_traces

SCHEMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")
POLICIES = ("greedy", "cost-benefit", "random")


def _trajectory_digest(result, scheme) -> str:
    h = hashlib.sha256()
    h.update(result.response_times_us.tobytes())
    h.update(repr(result.gc).encode())
    h.update(repr(result.io).encode())
    h.update(repr(result.wear).encode())
    h.update(repr(result.simulated_us).encode())
    h.update(repr(sorted(scheme.state_snapshot().content.items())).encode())
    return h.hexdigest()


def _config(**overrides):
    return small_config(blocks=64, pages_per_block=16, **overrides)


class TestSingleDevicePassThrough:
    """N=1 array == bare SSD, digest for digest."""

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_combos_identical(self, scheme_name, policy):
        cfg = _config(gc_mode="blocking")
        trace = build_fiu_trace(
            "mail", cfg, n_requests=1200, fill_factor=3.0, seed=5
        )
        bare_scheme = build_scheme(scheme_name, policy, cfg)
        bare = SSD(bare_scheme).replay(trace)
        lane_scheme = build_scheme(scheme_name, policy, cfg)
        # Depth 8 on this GC-heavy trace blocks hundreds of admissions;
        # the trajectory must not notice.
        result = SSDArray([lane_scheme], ncq_depth=8).replay(trace)
        assert _trajectory_digest(bare, bare_scheme) == _trajectory_digest(
            result.devices[0], lane_scheme
        )

    @pytest.mark.parametrize("gc_mode", ("blocking", "preemptive"))
    @pytest.mark.parametrize("ncq_depth", (1, 4, 1024))
    def test_ncq_depth_invariant(self, gc_mode, ncq_depth):
        """Completion trajectories are invariant in the NCQ depth,
        including depth 1 (fully serialized admission) and a depth the
        queue never reaches."""
        cfg = _config(gc_mode=gc_mode)
        trace = build_fiu_trace(
            "mail", cfg, n_requests=800, fill_factor=3.0, seed=6
        )
        bare_scheme = build_scheme("cagc", "greedy", cfg)
        bare = SSD(bare_scheme).replay(trace)
        lane_scheme = build_scheme("cagc", "greedy", cfg)
        result = SSDArray([lane_scheme], ncq_depth=ncq_depth).replay(trace)
        assert _trajectory_digest(bare, bare_scheme) == _trajectory_digest(
            result.devices[0], lane_scheme
        )
        assert result.ncq_peaks[0] <= ncq_depth

    def test_gate_actually_blocks(self):
        """Guard against the gate silently never engaging (which would
        make the depth-invariance test vacuous)."""
        cfg = _config(gc_mode="blocking")
        trace = build_fiu_trace(
            "mail", cfg, n_requests=1200, fill_factor=3.0, seed=5
        )
        result = SSDArray(
            [build_scheme("cagc", "greedy", cfg)], ncq_depth=4
        ).replay(trace)
        assert result.ncq_held[0] > 0
        assert result.ncq_peaks[0] == 4


class TestPerDeviceIndependence:
    """N=4 independent array == four solo replays, device for device."""

    @pytest.mark.parametrize("scheme_name", ("baseline", "cagc"))
    @pytest.mark.parametrize("gc_mode", ("blocking", "preemptive"))
    def test_disjoint_tenants_match_solo(self, scheme_name, gc_mode):
        cfg = _config(gc_mode=gc_mode)
        tenant_traces = [
            build_fiu_trace(
                "mail", cfg, n_requests=700, fill_factor=3.0, seed=300 + t
            )
            for t in range(4)
        ]
        solo_digests = []
        for trace in tenant_traces:
            scheme = build_scheme(scheme_name, "greedy", cfg)
            solo_digests.append(
                _trajectory_digest(SSD(scheme).replay(trace), scheme)
            )
        schemes = [build_scheme(scheme_name, "greedy", cfg) for _ in range(4)]
        merged = multiplex_traces(
            tenant_traces, devices=4, pages_per_device=cfg.logical_pages
        )
        result = SSDArray(
            schemes, coordination="independent", ncq_depth=8
        ).replay(merged)
        for device in range(4):
            assert (
                _trajectory_digest(result.devices[device], schemes[device])
                == solo_digests[device]
            ), f"device {device} diverged from its solo replay"

    def test_coordination_changes_trajectories(self):
        """Sanity inversion: coordinated modes *should* differ from the
        solo trajectories (they move GC around) — if they did not, the
        coordination axis would be dead code."""
        cfg = _config(gc_mode="blocking")
        tenant_traces = [
            build_fiu_trace(
                "mail", cfg, n_requests=700, fill_factor=3.0, seed=300 + t
            )
            for t in range(4)
        ]
        digests = {}
        for coord in ("independent", "staggered"):
            schemes = [build_scheme("cagc", "greedy", cfg) for _ in range(4)]
            merged = multiplex_traces(
                tenant_traces, devices=4, pages_per_device=cfg.logical_pages
            )
            result = SSDArray(
                schemes, coordination=coord, ncq_depth=8
            ).replay(merged)
            digests[coord] = tuple(
                _trajectory_digest(r, s)
                for r, s in zip(result.devices, schemes)
            )
        assert digests["independent"] != digests["staggered"]


class TestKernelFallback:
    """Eligible vectorized configs take the epoch kernel untagged;
    anything outside the epoch model must fall back *with a reason
    tag*, never silently."""

    def test_eligible_config_takes_kernel_untagged(self):
        cfg = _config(kernel="vectorized")
        trace = build_fiu_trace("mail", cfg, n_requests=200)
        result = SSDArray([build_scheme("cagc", "greedy", cfg)]).replay(trace)
        assert result.kernel_fallback_reason is None

    def test_unmodelled_fallback_is_reason_tagged(self):
        from repro.kernel.arrayepoch import FALLBACK_UNMODELLED

        cfg = _config(kernel="vectorized", gc_mode="preemptive")
        trace = build_fiu_trace("mail", cfg, n_requests=200)
        result = SSDArray([build_scheme("cagc", "greedy", cfg)]).replay(trace)
        assert result.kernel_fallback_reason == FALLBACK_UNMODELLED

    def test_reference_config_untagged(self):
        cfg = _config(kernel="reference")
        trace = build_fiu_trace("mail", cfg, n_requests=200)
        result = SSDArray([build_scheme("cagc", "greedy", cfg)]).replay(trace)
        assert result.kernel_fallback_reason is None

    def test_vectorized_matches_reference_array(self):
        """And the fallback must still be bit-identical to an array
        built on an explicit reference config."""
        digests = {}
        for kernel in ("reference", "vectorized"):
            cfg = _config(kernel=kernel)
            trace = build_fiu_trace(
                "mail", cfg, n_requests=800, fill_factor=3.0, seed=9
            )
            scheme = build_scheme("cagc", "greedy", cfg)
            result = SSDArray([scheme]).replay(trace)
            digests[kernel] = _trajectory_digest(result.devices[0], scheme)
        assert digests["reference"] == digests["vectorized"]
