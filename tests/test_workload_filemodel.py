"""Tests for the file-level workload model."""

import pytest

from repro.workloads.filemodel import FileModelTrace, FileStore
from repro.workloads.request import OpKind


class TestFileStore:
    def test_write_allocates_extent(self):
        store = FileStore()
        req = store.write_file("f", ["A", "B", "C"])
        assert req.op == OpKind.WRITE
        assert req.npages == 3
        assert store.files["f"] == (0, 3)

    def test_extents_append_only(self):
        store = FileStore()
        store.write_file("a", ["A"])
        store.write_file("b", ["B", "C"])
        assert store.files["b"] == (1, 2)

    def test_same_content_same_fingerprint(self):
        store = FileStore()
        r1 = store.write_file("a", ["X", "Y"])
        r2 = store.write_file("b", ["X", "Z"])
        assert r1.fingerprints[0] == r2.fingerprints[0]
        assert r1.fingerprints[1] != r2.fingerprints[1]

    def test_bytes_and_int_content_supported(self):
        store = FileStore()
        req = store.write_file("a", [b"raw", 12345])
        assert req.fingerprints[1] == 12345

    def test_unsupported_content_rejected(self):
        with pytest.raises(TypeError):
            FileStore().write_file("a", [3.14])

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            FileStore().write_file("a", [])

    def test_delete_emits_trim(self):
        store = FileStore()
        store.write_file("f", ["A", "B"])
        req = store.delete_file("f")
        assert req.op == OpKind.TRIM
        assert (req.lpn, req.npages) == (0, 2)
        assert "f" not in store.files

    def test_delete_unknown_rejected(self):
        with pytest.raises(KeyError):
            FileStore().delete_file("ghost")

    def test_overwrite_deletes_old_extent_first(self):
        store = FileStore()
        store.write_file("f", ["A"])
        store.write_file("f", ["B", "C"])
        assert store.files["f"] == (1, 2)

    def test_read_file(self):
        store = FileStore()
        store.write_file("f", ["A", "B"])
        req = store.read_file("f")
        assert req.op == OpKind.READ
        assert req.npages == 2

    def test_times_monotone(self):
        store = FileStore(op_gap_us=2.0)
        r1 = store.write_file("a", ["A"])
        r2 = store.write_file("b", ["B"])
        assert r2.time_us == r1.time_us + 2.0

    def test_logical_pages_in_use(self):
        store = FileStore()
        store.write_file("a", ["A", "B"])
        store.write_file("b", ["C"])
        store.delete_file("a")
        assert store.logical_pages_in_use() == 1

    def test_unique_contents_fig1(self):
        """The Fig 1 example: 4 files, 7 unique content pages."""
        store = FileStore()
        store.write_file("file1", ["A", "B", "C", "D"])
        store.write_file("file2", ["E", "B", "F"])
        store.write_file("file3", ["D", "A", "B"])
        store.write_file("file4", ["B", "G"])
        assert store.unique_contents() == 7


class TestFileModelTrace:
    def test_builder_chains(self):
        trace = (
            FileModelTrace()
            .write_file("a", ["A", "B"])
            .write_file("b", ["B"])
            .delete_file("a")
            .build(name="demo")
        )
        assert trace.name == "demo"
        ops = [int(op) for _, op, _, _, _ in trace.iter_rows()]
        assert ops == [int(OpKind.WRITE), int(OpKind.WRITE), int(OpKind.TRIM)]

    def test_trace_replayable_on_scheme(self, tiny_config):
        from repro.schemes import make_scheme

        trace = (
            FileModelTrace()
            .write_file("a", ["A", "B", "C"])
            .write_file("b", ["A", "D"])
            .delete_file("a")
            .build()
        )
        scheme = make_scheme("cagc", tiny_config)
        for _, op, lpn, npages, fps in trace.iter_rows():
            if op == int(OpKind.WRITE):
                scheme.write_request(lpn, fps, 0.0)
            elif op == int(OpKind.TRIM):
                scheme.trim_request(lpn, npages, 0.0)
        assert scheme.live_logical_pages() == 2
        scheme.check_invariants()
