"""Epoch-kernel properties and digest identity with the reference array.

Two layers pin ``repro.kernel.arrayepoch`` to the reference event loop:

* **structural properties** (Hypothesis) — the epoch splitter is a true
  partition of the merged stream that preserves per-device order, and
  the stable completion merge is barrier-invariant: merging each side
  of *any* epoch boundary separately and concatenating equals the full
  merge, so epoch barriers can never reorder cross-device completions;
* **trajectory identity** — a 4-device / 4-tenant replay produces
  sha256-identical per-device trajectories on both kernels at NCQ
  depths {1, 4, 32} under every GC-coordination policy (depth 1 forces
  the scalar admission-gate replay, depth 32 the analytic counters).
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import SSDArray
from repro.array.router import RangeRouter
from repro.config import small_config
from repro.kernel.arrayepoch import (
    merge_completions,
    ncq_occupancy,
    split_epoch_streams,
)
from repro.oracle.diff import build_scheme
from repro.workloads.fiu import build_fiu_trace
from repro.workloads.multiplex import multiplex_traces
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

# ------------------------------------------------------------ strategies


@st.composite
def array_traces(draw):
    """A random routable trace plus the router that owns its space."""
    devices = draw(st.integers(min_value=1, max_value=4))
    ppd = draw(st.integers(min_value=4, max_value=32))
    n = draw(st.integers(min_value=0, max_value=40))
    router = RangeRouter(devices, ppd)
    ops = np.array(
        draw(
            st.lists(
                st.sampled_from(
                    [int(OpKind.WRITE), int(OpKind.READ), int(OpKind.TRIM)]
                ),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.uint8,
    )
    npages = np.array(
        draw(st.lists(st.integers(1, 3), min_size=n, max_size=n)),
        dtype=np.int32,
    )
    # Extent start chosen so no request straddles a device boundary.
    lpns = np.empty(n, dtype=np.int64)
    for i in range(n):
        dev = draw(st.integers(0, devices - 1))
        off = draw(st.integers(0, ppd - int(npages[i])))
        lpns[i] = dev * ppd + off
    gaps = np.array(
        draw(
            st.lists(
                st.floats(0.0, 50.0, allow_nan=False), min_size=n, max_size=n
            )
        ),
        dtype=np.float64,
    )
    times = np.cumsum(gaps)
    counts = np.where(ops == int(OpKind.WRITE), npages, 0).astype(np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    fps = np.array(
        draw(
            st.lists(
                st.integers(1, 40), min_size=total, max_size=total
            )
        ),
        dtype=np.int64,
    )
    return router, Trace(times, ops, lpns, npages, fps, offsets, name="hyp")


completion_columns = st.lists(
    st.lists(st.floats(0.0, 100.0, allow_nan=False), max_size=20).map(sorted),
    max_size=4,
)


# ------------------------------------------------------- property suite


class TestSplitterProperties:
    @settings(deadline=None, max_examples=60)
    @given(array_traces())
    def test_split_is_a_partition(self, rt):
        router, trace = rt
        splits = split_epoch_streams(router, trace)
        assert len(splits) == router.devices
        all_idx = np.concatenate(
            [idx for _, _, idx in splits]
        ) if splits else np.zeros(0, dtype=np.int64)
        # Every merged position lands on exactly one device...
        assert sorted(all_idx.tolist()) == list(range(len(trace)))
        for device, (_, _, idx) in enumerate(splits):
            # ...its home device...
            assert np.all(trace.lpns[idx] // router.pages_per_device == device)
            # ...and per-device order is the merged order (stable).
            assert np.all(np.diff(idx) > 0) or idx.size <= 1

    @settings(deadline=None, max_examples=60)
    @given(array_traces())
    def test_split_preserves_rows(self, rt):
        router, trace = rt
        for device, (sub, _, idx) in enumerate(split_epoch_streams(router, trace)):
            assert np.array_equal(sub.times_us, trace.times_us[idx])
            assert np.array_equal(sub.ops, trace.ops[idx])
            assert np.array_equal(sub.npages, trace.npages[idx])
            assert np.array_equal(
                sub.lpns, trace.lpns[idx] - device * router.pages_per_device
            )
            # Fingerprint payloads survive row for row.
            for k, j in enumerate(idx):
                assert np.array_equal(
                    sub.fps_flat[sub.fp_offsets[k] : sub.fp_offsets[k + 1]],
                    trace.fps_flat[
                        trace.fp_offsets[j] : trace.fp_offsets[j + 1]
                    ],
                )

    @settings(deadline=None, max_examples=80)
    @given(completion_columns, st.floats(0.0, 100.0, allow_nan=False))
    def test_barriers_never_reorder_completions(self, columns, barrier):
        """Merging each side of an arbitrary epoch barrier separately
        and concatenating equals the one-shot merge — the invariant
        that makes epoch-at-a-time replay order-safe."""
        cols = [np.asarray(c, dtype=np.float64) for c in columns]
        full_t, full_d = merge_completions(cols)
        before = [c[c <= barrier] for c in cols]
        after = [c[c > barrier] for c in cols]
        bt, bd = merge_completions(before)
        at, ad = merge_completions(after)
        assert np.array_equal(np.concatenate([bt, at]), full_t)
        assert np.array_equal(np.concatenate([bd, ad]), full_d)

    @settings(deadline=None, max_examples=80)
    @given(completion_columns)
    def test_merge_is_time_sorted_and_device_stable(self, columns):
        cols = [np.asarray(c, dtype=np.float64) for c in columns]
        times, devices = merge_completions(cols)
        assert np.all(np.diff(times) >= 0) or times.size <= 1
        # Equal-time runs drain in device order (lane scheduling order).
        for d, col in enumerate(cols):
            assert np.array_equal(times[devices == d], col)
        for i in range(1, len(times)):
            if times[i] == times[i - 1]:
                assert devices[i] >= devices[i - 1]


class TestNCQOccupancy:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(st.floats(0.0, 30.0, allow_nan=False), max_size=15).map(sorted),
        st.data(),
    )
    def test_analytic_matches_gate_replay(self, arrivals, data):
        """An open gate's analytic peak equals a full scalar replay at
        unbounded depth, and a bounded gate never exceeds its depth."""
        a = np.asarray(arrivals, dtype=np.float64)
        durs = [
            data.draw(st.floats(0.1, 10.0, allow_nan=False))
            for _ in range(len(arrivals))
        ]
        c = np.empty_like(a)
        t = 0.0
        for i in range(len(a)):
            t = max(a[i], t) + durs[i]
            c[i] = t
        open_peak, open_held, _ = ncq_occupancy(a, c, depth=10_000)
        assert open_held == 0
        for depth in (1, 2, 4):
            peak, held, scalar = ncq_occupancy(a, c, depth)
            assert peak <= max(depth, open_peak)
            if not scalar:
                assert peak == open_peak and held == 0


# -------------------------------------------------- trajectory identity


def _trajectory_digest(result, scheme) -> str:
    h = hashlib.sha256()
    h.update(result.response_times_us.tobytes())
    h.update(repr(result.gc).encode())
    h.update(repr(result.io).encode())
    h.update(repr(result.wear).encode())
    h.update(repr(result.simulated_us).encode())
    h.update(repr(sorted(scheme.state_snapshot().content.items())).encode())
    return h.hexdigest()


def _replay_digests(kernel, coordination, ncq_depth, scheme_name="cagc"):
    cfg = small_config(
        blocks=64, pages_per_block=16, gc_mode="blocking", kernel=kernel
    )
    tenant_traces = [
        build_fiu_trace(
            "mail", cfg, n_requests=500, fill_factor=3.0, seed=700 + t
        )
        for t in range(4)
    ]
    merged = multiplex_traces(
        tenant_traces, devices=4, pages_per_device=cfg.logical_pages
    )
    schemes = [build_scheme(scheme_name, "greedy", cfg) for _ in range(4)]
    result = SSDArray(
        schemes, coordination=coordination, ncq_depth=ncq_depth
    ).replay(merged)
    digests = tuple(
        _trajectory_digest(r, s) for r, s in zip(result.devices, schemes)
    )
    return result, digests


class TestEpochDigestIdentity:
    """Epoch replay == reference array loop, digest for digest."""

    @pytest.mark.parametrize(
        "coordination", ("independent", "staggered", "global-token")
    )
    @pytest.mark.parametrize("ncq_depth", (1, 4, 32))
    def test_identical_across_depths_and_coordinations(
        self, coordination, ncq_depth
    ):
        ref, ref_digests = _replay_digests("reference", coordination, ncq_depth)
        vec, vec_digests = _replay_digests("vectorized", coordination, ncq_depth)
        assert vec.kernel_fallback_reason is None
        assert ref_digests == vec_digests
        assert ref.ncq_peaks == vec.ncq_peaks
        assert ref.ncq_held == vec.ncq_held
        assert ref.coord_stats == vec.coord_stats
        assert ref.simulated_us == vec.simulated_us

    def test_identical_with_inline_dedupe(self):
        ref, ref_digests = _replay_digests(
            "reference", "staggered", 8, scheme_name="inline-dedupe"
        )
        vec, vec_digests = _replay_digests(
            "vectorized", "staggered", 8, scheme_name="inline-dedupe"
        )
        assert vec.kernel_fallback_reason is None
        assert ref_digests == vec_digests

    def test_epoch_kernel_reports_gc_stats(self):
        vec, _ = _replay_digests("vectorized", "independent", 32)
        assert len(vec.kernel_gc) == 4
        assert any(any(stats.values()) for stats in vec.kernel_gc)


# ------------------------------------------------------------ metrics


def _replay_metered(kernel, coordination):
    from repro.obs.metrics import ArrayMetrics

    cfg = small_config(
        blocks=64, pages_per_block=16, gc_mode="blocking", kernel=kernel
    )
    tenant_traces = [
        build_fiu_trace(
            "mail", cfg, n_requests=300, fill_factor=3.0, seed=700 + t
        )
        for t in range(4)
    ]
    merged = multiplex_traces(
        tenant_traces, devices=4, pages_per_device=cfg.logical_pages
    )
    schemes = [build_scheme("cagc", "greedy", cfg) for _ in range(4)]
    metrics = ArrayMetrics()
    result = SSDArray(
        schemes, coordination=coordination, ncq_depth=4, metrics=metrics
    ).replay(merged)
    return result, metrics


class TestMetricsEquivalence:
    """An attached ArrayMetrics bundle stays observational on the epoch
    kernel: the run remains kernel-eligible, and every kernel-independent
    aggregate — the global request counter and latency histogram plus all
    per-device and per-tenant children — matches the reference loop's
    per-completion accounting (bucket counts / totals / maxima exactly,
    sums to float fold-order tolerance).  Time-series sample counts are
    deliberately not compared: the kernels clock the recorder differently
    (per completion vs per batch boundary) by design.
    """

    @pytest.mark.parametrize(
        "coordination", ("independent", "staggered", "global-token")
    )
    def test_aggregates_match_reference(self, coordination):
        ref, rm = _replay_metered("reference", coordination)
        vec, vm = _replay_metered("vectorized", coordination)
        assert vec.kernel_fallback_reason is None
        assert vec.metrics is not None
        assert vm.kernel_batches.value > 0
        assert rm.requests.value == vm.requests.value
        for ra, rb in zip(
            rm._device_req + rm._tenant_req, vm._device_req + vm._tenant_req
        ):
            assert ra.value == rb.value
        pairs = [(rm.latency.hist, vm.latency.hist)]
        pairs += list(
            zip(rm._device_hist + rm._tenant_hist,
                vm._device_hist + vm._tenant_hist)
        )
        for rh, vh in pairs:
            assert np.array_equal(rh.counts, vh.counts)
            assert rh.total == vh.total
            assert rh.max_us == vh.max_us
            assert rh.sum_us == pytest.approx(vh.sum_us, rel=1e-9, abs=1e-6)
