#!/usr/bin/env python
"""Capture a throughput snapshot of the simulator hot loop.

Runs the same workloads as ``benchmarks/bench_simulator_throughput.py``
(one trace replay per scheme, plus trace generation) under a plain
``time.perf_counter`` harness and writes the median microseconds per
operation to ``BENCH_throughput.json`` at the repository root.  The
committed snapshot is the perf-trajectory baseline that
``scripts/check_bench_regression.py`` (and the opt-in ``benchguard``
pytest marker) compare fresh runs against.  Each baseline-writing run
also appends a one-line summary (schema, git sha, UTC timestamp,
per-case µs/op medians) to ``BENCH_history.jsonl``, so per-op cost is
traceable across commits rather than only in the latest snapshot.

Each case runs in its own spawned child interpreter so that
``peak_rss_mb`` (the child's ``ru_maxrss`` high-water mark) measures
that case alone, not whatever earlier cases left in the allocator.
``--no-isolate`` runs everything in-process (faster, but RSS values are
then cumulative high-water marks and not comparable to the committed
baseline).

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py            # write baseline
    PYTHONPATH=src python tools/bench_snapshot.py --out -    # print to stdout
    PYTHONPATH=src python tools/bench_snapshot.py --rounds 7
    PYTHONPATH=src python tools/bench_snapshot.py --cases baseline@64x,cagc@64x --out -
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import log  # noqa: E402

#: Bump when the benchmark workload itself changes (snapshots are then
#: incomparable and the guard refuses to compare them).  Schema 3 runs
#: each case in an isolated child process and records ``peak_rss_mb``
#: per case, and adds the production-scale ``<scheme>@64x`` replays.
#: Schema 4 replays through the vectorized kernel (``kernel:
#: vectorized``) — the production replay configuration once the batch
#: kernels landed; the reference path keeps its own guard via the
#: ``benchguard`` kernel-speedup ratio test.  Schema 5 moves the array
#: cases onto the vectorized kernel too (the epoch-batched array
#: orchestrator), so their numbers are not comparable to schema-4
#: snapshots taken on the reference array loop.
SNAPSHOT_SCHEMA = 5

#: replay case name -> (scheme, blocks multiplier).  The scaled cases
#: (the two schemes the victim-index acceptance criteria pin down;
#: inline-dedupe adds nothing GC-side) exist to catch asymptotic
#: blowups: a selection pass that is O(blocks) per GC, or per-op state
#: that boxes every table entry, shows up as super-linear us/op or RSS
#: growth across the scale jumps.
REPLAY_CASES: Dict[str, Tuple[str, int]] = {
    "baseline": ("baseline", 1),
    "inline-dedupe": ("inline-dedupe", 1),
    "cagc": ("cagc", 1),
    "baseline@8x": ("baseline", 8),
    "cagc@8x": ("cagc", 8),
    "baseline@64x": ("baseline", 64),
    "cagc@64x": ("cagc", 64),
}
#: array case name -> GC coordination.  Four tenants on four devices
#: through the epoch-batched array kernel (``kernel: vectorized``), so
#: these cases guard the per-epoch cost of the array tier: the stream
#: splitter, analytic NCQ counters, per-tenant telemetry folds, and —
#: in the staggered case — the coordinator's window/deferral
#: machinery driving the epoch barriers.  The reference array loop
#: keeps its own floor via the ``benchguard`` array-speedup ratio
#: test.
ARRAY_CASES: Dict[str, str] = {
    "array@4": "independent",
    "array@4-staggered": "staggered",
}
TRACE_GEN_CASE = "trace-generation"
ALL_CASES: Tuple[str, ...] = (
    tuple(REPLAY_CASES) + tuple(ARRAY_CASES) + (TRACE_GEN_CASE,)
)

REPLAY_REQUESTS = 5_000
DEFAULT_BLOCKS = 128
TRACE_GEN_REQUESTS = 20_000
DEFAULT_OUT = REPO_ROOT / "BENCH_throughput.json"
HISTORY_OUT = REPO_ROOT / "BENCH_history.jsonl"


def _rounds_for(factor: int, rounds: int) -> int:
    # Scaled cases replay auto-sized traces (~`factor`x the requests);
    # they exist to catch asymptotic blowups, not percent-level drift,
    # so fewer rounds keep the snapshot affordable.
    if factor >= 64:
        return min(rounds, 2)
    if factor > 1:
        return min(rounds, 3)
    return rounds


#: Minimum wall time of one timing round.  Cases whose single run is
#: shorter get looped (pyperf-style calibration): on shared boxes a
#: 0.15 s round can land entirely inside a quiet scheduling window
#: while a 13 s round cannot, which would bias any cross-case ratio
#: (notably the @64x-vs-default flatness criterion) toward the short
#: case.  Equal-length rounds sample the same steal distribution.
MIN_ROUND_S = 1.0


def _median_us_per_op(
    fn: Callable[[], object], ops: int, rounds: int, single_run_s: float
) -> Dict[str, float]:
    repeats = max(1, round(MIN_ROUND_S / max(single_run_s, 1e-9)))
    walls: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        walls.append(time.perf_counter() - start)
    median = statistics.median(walls)
    total_ops = ops * repeats
    return {
        "median_us_per_op": median * 1e6 / total_ops,
        "median_wall_s": median,
        "min_wall_s": min(walls),
        "ops": total_ops,
        "repeats": repeats,
        "rounds": rounds,
    }


def _peak_rss_mb() -> float:
    # Linux reports ru_maxrss in kilobytes.
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1)


def run_case(name: str, rounds: int) -> Dict[str, float]:
    """Run one benchmark case in this process and return its stats.

    ``peak_rss_mb`` is this process's high-water mark after the case, so
    the number is only meaningful when the case runs in a fresh child
    (see :func:`take_snapshot`).
    """
    from repro.config import small_config
    from repro.device.ssd import run_trace
    from repro.schemes import make_scheme
    from repro.workloads.fiu import build_fiu_trace

    if name == TRACE_GEN_CASE:
        cfg = small_config(blocks=DEFAULT_BLOCKS, pages_per_block=32)
        start = time.perf_counter()  # warm-up doubles as the calibration run
        build_fiu_trace("web-vm", cfg, n_requests=TRACE_GEN_REQUESTS)
        single = time.perf_counter() - start
        stats = _median_us_per_op(
            lambda: build_fiu_trace("web-vm", cfg, n_requests=TRACE_GEN_REQUESTS),
            ops=TRACE_GEN_REQUESTS,
            rounds=rounds,
            single_run_s=single,
        )
    elif name in ARRAY_CASES:
        from repro.array import SSDArray
        from repro.workloads.multiplex import multiplex_traces

        coordination = ARRAY_CASES[name]
        devices = tenants = 4
        cfg = small_config(
            blocks=DEFAULT_BLOCKS, pages_per_block=32, kernel="vectorized"
        )
        tenant_traces = [
            build_fiu_trace(
                "mail", cfg, n_requests=REPLAY_REQUESTS // tenants, seed=100 + t
            )
            for t in range(tenants)
        ]
        merged = multiplex_traces(
            tenant_traces, devices=devices, pages_per_device=cfg.logical_pages
        )

        def replay_array():
            schemes = [make_scheme("cagc", cfg) for _ in range(devices)]
            return SSDArray(
                schemes, coordination=coordination, ncq_depth=16
            ).replay(merged)

        start = time.perf_counter()  # warm-up doubles as calibration
        replay_array()
        single = time.perf_counter() - start
        stats = _median_us_per_op(
            replay_array,
            ops=len(merged),
            rounds=rounds,
            single_run_s=single,
        )
    else:
        scheme_name, factor = REPLAY_CASES[name]
        cfg = small_config(
            blocks=DEFAULT_BLOCKS * factor, pages_per_block=32, kernel="vectorized"
        )
        # factor>1: trace auto-sized by fill factor so GC pressure
        # matches the default-geometry case.
        trace = build_fiu_trace(
            "mail", cfg, n_requests=REPLAY_REQUESTS if factor == 1 else 0
        )
        # Warm up allocator/numpy one-time costs outside the measured
        # rounds (doubles as the round-length calibration run); at 64x
        # a full warm-up replay costs as much as a round, so a slice
        # suffices and the round length is estimated from it.
        warm = trace if factor < 64 else trace.slice(0, REPLAY_REQUESTS)
        start = time.perf_counter()
        run_trace(make_scheme(scheme_name, cfg), warm)
        single = (time.perf_counter() - start) * (len(trace) / len(warm))
        stats = _median_us_per_op(
            lambda: run_trace(make_scheme(scheme_name, cfg), trace),
            ops=len(trace),
            rounds=_rounds_for(factor, rounds),
            single_run_s=single,
        )
    stats["peak_rss_mb"] = _peak_rss_mb()
    return stats


def _run_case_isolated(name: str, rounds: int) -> Dict[str, float]:
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--run-case", name, "--rounds", str(rounds)],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark case {name!r} failed in child process:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def _typical_attempt(attempts: List[Dict[str, float]]) -> Dict[str, float]:
    # Keep the attempt from the *typical* scheduling window (median of
    # the per-attempt medians): committing the quietest attempt would
    # set a baseline fresh guard runs can rarely reproduce, and the
    # loudest would hide regressions.  Timing min is the true min
    # across all attempts, and RSS the leanest observed — ru_maxrss
    # only varies with allocator luck, never with CPU steal.
    ranked = sorted(attempts, key=lambda a: a["median_wall_s"] / a["ops"])
    typical = dict(ranked[(len(ranked) - 1) // 2])
    # Attempts can calibrate different repeat counts, so the cross-
    # attempt minimum is taken per-op and rescaled to this attempt's
    # op count to keep `min_wall_s * 1e6 / ops` (the guard's formula)
    # correct.
    best_per_op = min(a["min_wall_s"] / a["ops"] for a in attempts)
    typical["min_wall_s"] = best_per_op * typical["ops"]
    typical["peak_rss_mb"] = min(a["peak_rss_mb"] for a in attempts)
    return typical


def take_snapshot(
    rounds: int = 5,
    cases: Optional[Sequence[str]] = None,
    isolate: bool = True,
    attempts: int = 1,
) -> dict:
    """Run the selected benchmark cases and return the snapshot document.

    ``cases`` filters by name (default: all).  With ``isolate`` each
    case runs in a spawned child interpreter so ``peak_rss_mb`` is
    per-case; without it, cases share this process and RSS values are
    cumulative (fine for timing-only comparisons).  ``attempts`` runs
    every case that many times and keeps, per case, the attempt from the
    quietest scheduling window — on shared/virtualized boxes a single
    attempt can be 25% slow purely from CPU steal, which would poison a
    committed baseline.
    """
    selected = list(ALL_CASES) if cases is None else list(cases)
    unknown = sorted(set(selected) - set(ALL_CASES))
    if unknown:
        raise ValueError(f"unknown benchmark case(s): {', '.join(unknown)}")

    observed: Dict[str, List[Dict[str, float]]] = {name: [] for name in selected}
    for attempt in range(max(attempts, 1)):
        for name in selected:
            log.info("running case %s (attempt %d) ...", name, attempt + 1)
            stats = _run_case_isolated(name, rounds) if isolate else run_case(name, rounds)
            observed[name].append(stats)
    replay = {
        name: _typical_attempt(runs)
        for name, runs in observed.items()
        if name != TRACE_GEN_CASE
    }
    trace_gen = (
        _typical_attempt(observed[TRACE_GEN_CASE])
        if TRACE_GEN_CASE in observed
        else None
    )

    doc = {
        "schema": SNAPSHOT_SCHEMA,
        "benchmark": "bench_simulator_throughput",
        "replay_requests": REPLAY_REQUESTS,
        "isolated": isolate,
        "python": platform.python_version(),
        "replay": replay,
    }
    if trace_gen is not None:
        doc["trace_generation"] = trace_gen
    return doc


def _git_sha() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except Exception:
        return None
    return proc.stdout.strip() or None if proc.returncode == 0 else None


def append_history(snapshot: dict, path: Path = HISTORY_OUT) -> dict:
    """Append one compact perf-trajectory row to ``BENCH_history.jsonl``.

    The snapshot file is overwritten per run; the history file is
    append-only, one JSON object per line, so perf drift stays
    inspectable across commits (``schema``, the git sha the numbers
    were taken at, a UTC timestamp, and the per-case µs/op medians).
    """
    row = {
        "schema": snapshot.get("schema", SNAPSHOT_SCHEMA),
        "git_sha": _git_sha(),
        "taken_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": snapshot.get("python"),
        "cases": {
            name: round(case["median_us_per_op"], 3)
            for name, case in snapshot.get("replay", {}).items()
        },
    }
    if "trace_generation" in snapshot:
        row["cases"][TRACE_GEN_CASE] = round(
            snapshot["trace_generation"]["median_us_per_op"], 3
        )
    with path.open("a") as fp:
        fp.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5, help="timing rounds per case")
    parser.add_argument(
        "--attempts",
        type=int,
        default=1,
        help="independent attempts per case; the quietest window wins (default 1)",
    )
    parser.add_argument(
        "--cases",
        default=None,
        help=f"comma-separated case filter (choices: {', '.join(ALL_CASES)})",
    )
    parser.add_argument(
        "--no-isolate",
        action="store_true",
        help="run cases in-process (faster; peak_rss_mb becomes cumulative)",
    )
    parser.add_argument(
        "--run-case",
        default=None,
        metavar="NAME",
        help=argparse.SUPPRESS,  # internal: child-process entry point
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help="output path, or '-' for stdout (default: BENCH_throughput.json)",
    )
    log.add_verbosity_args(parser)
    args = parser.parse_args(argv)
    log.setup_from_args(args)

    if args.run_case is not None:
        stats = run_case(args.run_case, rounds=args.rounds)
        json.dump(stats, sys.stdout)
        return 0

    cases = args.cases.split(",") if args.cases else None
    snapshot = take_snapshot(
        rounds=args.rounds,
        cases=cases,
        isolate=not args.no_isolate,
        attempts=args.attempts,
    )
    payload = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        Path(args.out).write_text(payload)
        for scheme_name, case in snapshot["replay"].items():
            log.info(
                "%16s: %6.1f us/op  %7.1f MB peak",
                scheme_name,
                case["median_us_per_op"],
                case["peak_rss_mb"],
            )
        log.info("wrote %s", args.out)
        append_history(snapshot)
        log.info("appended %s", HISTORY_OUT)
    return 0


if __name__ == "__main__":
    sys.exit(main())
