#!/usr/bin/env python
"""Capture a throughput snapshot of the simulator hot loop.

Runs the same workloads as ``benchmarks/bench_simulator_throughput.py``
(one trace replay per scheme, plus trace generation) under a plain
``time.perf_counter`` harness and writes the median microseconds per
operation to ``BENCH_throughput.json`` at the repository root.  The
committed snapshot is the perf-trajectory baseline that
``scripts/check_bench_regression.py`` (and the opt-in ``benchguard``
pytest marker) compare fresh runs against.

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py            # write baseline
    PYTHONPATH=src python tools/bench_snapshot.py --out -    # print to stdout
    PYTHONPATH=src python tools/bench_snapshot.py --rounds 7
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import small_config  # noqa: E402
from repro.device.ssd import run_trace  # noqa: E402
from repro.obs import log  # noqa: E402
from repro.schemes import make_scheme  # noqa: E402
from repro.workloads.fiu import build_fiu_trace  # noqa: E402

#: Bump when the benchmark workload itself changes (snapshots are then
#: incomparable and the guard refuses to compare them).  Schema 2 adds
#: the scaled-geometry replay cases (``<scheme>@8x``) and a per-case
#: ``ops`` count so us/op is computable without global constants.
SNAPSHOT_SCHEMA = 2

SCHEMES = ("baseline", "inline-dedupe", "cagc")
#: Schemes replayed at the scaled geometry (the two the victim-index
#: acceptance criteria pin down; inline-dedupe adds nothing GC-side).
SCALED_SCHEMES = ("baseline", "cagc")
REPLAY_REQUESTS = 5_000
#: Scaled geometry: 8x the default block count at the same
#: pages-per-block.  A selection pass that is O(blocks) per GC would
#: show up as a super-linear us/op blowup here; the incremental victim
#: index keeps per-op replay cost roughly flat across the scale jump.
SCALED_BLOCKS_FACTOR = 8
DEFAULT_BLOCKS = 128
TRACE_GEN_REQUESTS = 20_000
DEFAULT_OUT = REPO_ROOT / "BENCH_throughput.json"


def _median_us_per_op(fn: Callable[[], object], ops: int, rounds: int) -> Dict[str, float]:
    walls: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    median = statistics.median(walls)
    return {
        "median_us_per_op": median * 1e6 / ops,
        "median_wall_s": median,
        "min_wall_s": min(walls),
        "ops": ops,
        "rounds": rounds,
    }


def take_snapshot(rounds: int = 5) -> dict:
    """Run every benchmark case and return the snapshot document."""
    cfg = small_config(blocks=DEFAULT_BLOCKS, pages_per_block=32)
    trace = build_fiu_trace("mail", cfg, n_requests=REPLAY_REQUESTS)

    cases: Dict[str, Dict[str, float]] = {}
    for scheme_name in SCHEMES:
        # Warm-up once so allocator/numpy one-time costs stay out of the
        # measured rounds.
        run_trace(make_scheme(scheme_name, cfg), trace)
        cases[scheme_name] = _median_us_per_op(
            lambda: run_trace(make_scheme(scheme_name, cfg), trace),
            ops=len(trace),
            rounds=rounds,
        )

    # Scaled geometry: same workload shape, 8x the blocks, trace
    # auto-sized by fill factor so GC pressure matches the default case.
    # Fewer rounds — each round replays ~8x the requests, and the case
    # exists to catch asymptotic blowups, not percent-level drift.
    scaled_cfg = small_config(
        blocks=DEFAULT_BLOCKS * SCALED_BLOCKS_FACTOR, pages_per_block=32
    )
    scaled_trace = build_fiu_trace("mail", scaled_cfg, n_requests=0)
    scaled_rounds = min(rounds, 3)
    for scheme_name in SCALED_SCHEMES:
        label = f"{scheme_name}@{SCALED_BLOCKS_FACTOR}x"
        run_trace(make_scheme(scheme_name, scaled_cfg), scaled_trace)
        cases[label] = _median_us_per_op(
            lambda: run_trace(make_scheme(scheme_name, scaled_cfg), scaled_trace),
            ops=len(scaled_trace),
            rounds=scaled_rounds,
        )

    build_fiu_trace("web-vm", cfg, n_requests=TRACE_GEN_REQUESTS)
    trace_gen = _median_us_per_op(
        lambda: build_fiu_trace("web-vm", cfg, n_requests=TRACE_GEN_REQUESTS),
        ops=TRACE_GEN_REQUESTS,
        rounds=rounds,
    )

    return {
        "schema": SNAPSHOT_SCHEMA,
        "benchmark": "bench_simulator_throughput",
        "replay_requests": REPLAY_REQUESTS,
        "scaled_blocks_factor": SCALED_BLOCKS_FACTOR,
        "python": platform.python_version(),
        "replay": cases,
        "trace_generation": trace_gen,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5, help="timing rounds per case")
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help="output path, or '-' for stdout (default: BENCH_throughput.json)",
    )
    log.add_verbosity_args(parser)
    args = parser.parse_args(argv)
    log.setup_from_args(args)
    snapshot = take_snapshot(rounds=args.rounds)
    payload = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        Path(args.out).write_text(payload)
        for scheme_name, case in snapshot["replay"].items():
            log.info("%14s: %.1f us/op", scheme_name, case["median_us_per_op"])
        log.info("wrote %s", args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
