#!/usr/bin/env python
"""GC pressure over time: free space and reclamation activity.

Replays the Mail workload under Baseline and CAGC and renders the
device's free-space fraction and cumulative GC activity as text
timelines — showing *when* pressure builds, how the watermark regulates
it, and how CAGC's dedup stretches the interval between GC bursts.

Run:  python examples/gc_timeline.py
"""

import numpy as np

from repro import build_fiu_trace, make_scheme, small_config
from repro.device.ssd import SSD

BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, lo: float, hi: float) -> str:
    if values.size == 0:
        return "(no samples)"
    span = max(hi - lo, 1e-12)
    idx = np.clip(((values - lo) / span * (len(BARS) - 1)).astype(int), 0, len(BARS) - 1)
    return "".join(BARS[i] for i in idx)


def main() -> None:
    config = small_config(blocks=256, pages_per_block=64, channels=4)
    trace = build_fiu_trace("mail", config, n_requests=0, fill_factor=3.0)
    print(f"replaying {len(trace):,} mail requests on a 64 MB device\n")

    for name in ("baseline", "cagc"):
        ssd = SSD(make_scheme(name, config))
        result = ssd.replay(trace)
        _, free = ssd.timeline.resample("free_fraction", points=72)
        _, erased = ssd.timeline.resample("blocks_erased", points=72)
        print(f"[{name}]")
        print(f"  free space  |{sparkline(free, 0.0, 0.5)}|  (0..50%)")
        print(f"  erases      |{sparkline(erased, 0.0, float(erased.max() or 1))}|  "
              f"(cumulative, final={result.blocks_erased})")
        first_gc_us = ssd.timeline.series("free_fraction")[0]
        print(
            f"  first GC at {first_gc_us[0] / 1e6:.2f}s simulated, "
            f"{result.gc.gc_invocations} bursts, "
            f"GC busy {result.gc.gc_busy_us / 1e6:.2f}s "
            f"of {result.simulated_us / 1e6:.2f}s total\n"
        )
    print(
        "reading the timelines: free space saw-tooths around the 20%\n"
        "watermark once the drive fills; CAGC's curve stays higher and its\n"
        "erase ramp is flatter because GC-time dedup frees more per burst."
    )


if __name__ == "__main__":
    main()
