#!/usr/bin/env python
"""Latency study: where should dedup live on an ultra-low-latency SSD?

Replays the same workloads in two regimes:

1. **GC-quiet** (fresh drive, light utilization) — the paper's Fig 2
   motivation: inline dedup's hash+lookup tax dominates and the ULL
   advantage evaporates.
2. **GC-churn** (nearly full drive, sustained overwrites) — the paper's
   Figs 11/12: GC stalls dominate; CAGC shortens and rarefies them.

Prints mean/percentile response times and a coarse text CDF per scheme.

Run:  python examples/ull_latency_study.py
"""

import numpy as np

from repro import build_fiu_trace, make_scheme, run_trace, small_config
from repro.metrics.cdf import cdf_at
from repro.metrics.report import format_table

SCHEMES = ("baseline", "inline-dedupe", "cagc")


def run_regime(title, config, **trace_kwargs):
    print(f"=== {title} ===")
    for workload in ("homes", "mail"):
        trace = build_fiu_trace(workload, config, **trace_kwargs)
        rows = []
        samples = {}
        for name in SCHEMES:
            r = run_trace(make_scheme(name, config), trace)
            samples[name] = r.response_times_us
            s = r.latency
            rows.append(
                (
                    name,
                    f"{s.mean_us:.0f}",
                    f"{s.median_us:.0f}",
                    f"{s.p95_us:.0f}",
                    f"{s.p99_us:.0f}",
                    r.gc.gc_invocations,
                )
            )
        print(
            format_table(
                ("Scheme", "mean us", "p50", "p95", "p99", "GC bursts"),
                rows,
                title=f"[{workload}]",
            )
        )
        # coarse CDF: fraction of requests faster than a few budgets
        budgets = (50.0, 100.0, 500.0, 2000.0)
        cdf_rows = [
            (name, *(f"{cdf_at(samples[name], b):.1%}" for b in budgets))
            for name in SCHEMES
        ]
        print(
            format_table(
                ("Scheme",) + tuple(f"<{int(b)}us" for b in budgets),
                cdf_rows,
                title="fraction of requests completing within budget",
            )
        )
        print()


def main() -> None:
    config = small_config(blocks=256, pages_per_block=64, channels=4)
    run_regime(
        "GC-quiet regime (fig 2: the inline dedup tax)",
        config,
        n_requests=0,
        fill_factor=0.5,
        lpn_utilization=0.5,
    )
    run_regime(
        "GC-churn regime (figs 11/12: GC interference)",
        config,
        n_requests=0,
        fill_factor=3.0,
    )
    print(
        "takeaway: inline dedup is the wrong place for hashing on a ULL\n"
        "device (it taxes every write even when GC is idle), while CAGC\n"
        "pays the hash cost only inside GC where the 1.5 ms erase hides it."
    )


if __name__ == "__main__":
    main()
