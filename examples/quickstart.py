#!/usr/bin/env python
"""Quickstart: simulate the three schemes on an FIU-like Mail workload.

Builds a scaled-down ultra-low-latency SSD (Table I timing), generates a
synthetic trace matching the paper's Mail characteristics (Table II),
replays it under Baseline, Inline-Dedupe and CAGC, and prints the
GC-efficiency and latency comparison of Figs 9-11.

Run:  python examples/quickstart.py
"""

from repro import build_fiu_trace, make_scheme, run_trace, small_config
from repro.metrics.report import format_table, reduction_pct


def main() -> None:
    # A 64 MB device keeps the demo fast; Table I latencies are intact.
    config = small_config(blocks=256, pages_per_block=64, channels=4)
    print(
        f"device: {config.geometry.physical_bytes // 2**20} MB physical, "
        f"{config.geometry.blocks} blocks x {config.geometry.pages_per_block} pages, "
        f"OP {config.op_ratio:.0%}, GC watermark {config.gc_watermark:.0%}"
    )

    trace = build_fiu_trace("mail", config, n_requests=0, fill_factor=3.0)
    stats = trace.stats()
    print(
        f"trace: {stats.requests:,} requests, write ratio {stats.write_ratio:.1%}, "
        f"dedup ratio {stats.dedup_ratio:.1%}, mean request {stats.avg_req_kb:.1f} KB\n"
    )

    results = {}
    for name in ("baseline", "inline-dedupe", "cagc"):
        results[name] = run_trace(make_scheme(name, config), trace)

    base = results["baseline"]
    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                r.blocks_erased,
                r.pages_migrated,
                f"{r.latency.mean_us:.0f}us",
                f"{r.latency.p99_us:.0f}us",
                f"{r.write_amplification():.2f}",
            )
        )
    print(
        format_table(
            ("Scheme", "Blocks erased", "Pages migrated", "Mean resp", "p99 resp", "WAF"),
            rows,
            title="Mail workload, greedy victim selection",
        )
    )

    cagc = results["cagc"]
    print(
        f"\nCAGC vs Baseline: "
        f"-{reduction_pct(base.blocks_erased, cagc.blocks_erased):.1f}% blocks erased, "
        f"-{reduction_pct(base.pages_migrated, cagc.pages_migrated):.1f}% pages migrated, "
        f"-{reduction_pct(base.latency.mean_us, cagc.latency.mean_us):.1f}% mean response time"
    )
    print(
        f"GC-time dedup eliminated {cagc.gc.dedup_skipped:,} redundant page "
        f"writes; {cagc.gc.promotions:,} pages promoted to the cold region."
    )


if __name__ == "__main__":
    main()
