#!/usr/bin/env python
"""Bring-your-own-workload: craft, persist and replay a custom trace.

Shows the three ways to produce traces for the simulator:

1. the synthetic generator with custom knobs (``TraceSpec``);
2. the file-level model (write/delete named files);
3. hand-built ``IORequest`` lists, round-tripped through CSV.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import (
    IORequest,
    OpKind,
    Trace,
    TraceSpec,
    generate_trace,
    make_scheme,
    run_trace,
    small_config,
)
from repro.workloads.filemodel import FileModelTrace


def synthetic() -> None:
    spec = TraceSpec(
        name="bursty-dedup",
        n_requests=20_000,
        write_ratio=0.9,
        dedup_ratio=0.75,
        avg_req_pages=2.0,
        lpn_space=40_000,
        hot_frac=0.1,
        hot_prob=0.9,        # extreme spatial skew
        popular_pool=256,    # few, very popular contents
        seed=7,
    )
    trace = generate_trace(spec)
    stats = trace.stats()
    print(
        f"[synthetic] {stats.requests:,} requests, dedup {stats.dedup_ratio:.1%}, "
        f"write {stats.write_ratio:.1%}"
    )
    config = small_config(blocks=128, pages_per_block=64)
    result = run_trace(make_scheme("cagc", config), trace)
    print(
        f"[synthetic] cagc: {result.blocks_erased} erases, "
        f"{result.gc.dedup_skipped:,} GC dedup hits, "
        f"mean {result.latency.mean_us:.0f}us\n"
    )


def file_level() -> None:
    builder = FileModelTrace()
    builder.write_file("report.doc", ["hdr", "body1", "body2"])
    builder.write_file("report-v2.doc", ["hdr", "body1", "body2-edited"])
    builder.write_file("backup.doc", ["hdr", "body1", "body2"])
    builder.delete_file("report.doc")
    trace = builder.build("versioned-files")
    config = small_config(blocks=64, pages_per_block=16)
    scheme = make_scheme("inline-dedupe", config)
    result = run_trace(scheme, trace)
    print(
        f"[file-level] {len(trace)} ops; inline dedup stored "
        f"{scheme.flash.total_programs} physical pages for "
        f"{trace.written_page_count()} logical page writes "
        f"(index holds {len(scheme.index)} unique contents)\n"
    )


def hand_built_and_csv() -> None:
    requests = [
        IORequest(0.0, OpKind.WRITE, lpn=0, npages=2, fingerprints=(0xAAAA, 0xBBBB)),
        IORequest(40.0, OpKind.READ, lpn=0, npages=2),
        IORequest(90.0, OpKind.WRITE, lpn=0, npages=1, fingerprints=(0xCCCC,)),
        IORequest(150.0, OpKind.TRIM, lpn=1, npages=1),
    ]
    trace = Trace.from_requests(requests, name="hand-built")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "hand-built.csv"
        trace.save_csv(path)
        reloaded = Trace.load_csv(path)
    assert list(reloaded.iter_requests()) == requests
    result = run_trace(make_scheme("baseline", small_config(blocks=64)), reloaded)
    print(
        f"[csv] round-tripped {len(reloaded)} requests through {path.name}; "
        f"mean response {result.latency.mean_us:.1f}us"
    )


def main() -> None:
    synthetic()
    file_level()
    hand_built_and_csv()


if __name__ == "__main__":
    main()
