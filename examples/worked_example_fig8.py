#!/usr/bin/env python
"""The paper's Fig 8 worked example, narrated step by step.

Four files share content pages (File1 = A B C D, File2 = E B F,
File3 = D A B, File4 = B G).  We write them, force a space-pressure
compaction GC, then delete Files 2 and 4 — once under traditional GC
and once under CAGC — and show where the 12-vs-7 page-write gap and the
post-delete space advantage come from.

Run:  python examples/worked_example_fig8.py
"""

from repro.config import GeometryConfig, SSDConfig
from repro.experiments.fig8_example import FIG8_FILES, run_scenario
from repro.schemes import make_scheme
from repro.workloads.filemodel import FileStore


def show_files() -> None:
    print("files to write (letters are page contents):")
    for name, pages in FIG8_FILES.items():
        print(f"  {name}: {' '.join(pages)}")
    store = FileStore()
    for name, pages in FIG8_FILES.items():
        store.write_file(name, pages)
    print(
        f"  -> {store.logical_pages_in_use()} logical pages, "
        f"{store.unique_contents()} unique contents\n"
    )


def narrate(scheme_name: str, label: str) -> dict:
    result = run_scenario(scheme_name)
    print(f"{label}:")
    print(
        f"  GC migration writes : {result['gc_page_writes']}"
        + (f"  (+{result['promotion_copies']} cold-region promotions)"
           if result["promotion_copies"] else "")
    )
    print(f"  blocks erased       : {result['gc_blocks_erased']}")
    print(f"  live physical pages : {result['physical_pages_after_gc']} after GC")
    print(
        f"  delete files 2 & 4  : frees {result['pages_freed_by_delete']} pages "
        f"-> {result['physical_pages_after_delete']} live"
    )
    print()
    return result


def main() -> None:
    show_files()
    trad = narrate("baseline", "Traditional GC (content-blind)")
    cagc = narrate("cagc", "CAGC (dedup inside GC + refcount placement)")
    saved = trad["gc_page_writes"] - cagc["gc_page_writes"]
    print(
        f"CAGC wrote {saved} fewer pages during GC (paper: 12 vs 7) because "
        "every duplicate of A, B and D was resolved by a fingerprint hit\n"
        "instead of a flash program; after deletion, shared page B survives "
        "via its remaining references instead of being stored twice."
    )
    # show the dedup state CAGC built during GC
    config = SSDConfig(
        geometry=GeometryConfig(channels=1, pages_per_block=4, blocks=16),
        cold_region_ratio=0.5,
    )
    scheme = make_scheme("cagc", config)
    store = FileStore()
    for name, pages in FIG8_FILES.items():
        req = store.write_file(name, pages)
        scheme.write_request(req.lpn, req.fingerprints, 0.0)
    print(
        f"\nbefore GC: {len(scheme.page_fp)} physical pages for "
        f"{scheme.live_logical_pages()} logical pages (duplicates coexist; "
        "the fingerprint index is still empty: "
        f"{len(scheme.index)} entries)"
    )


if __name__ == "__main__":
    main()
