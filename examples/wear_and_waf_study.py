#!/usr/bin/env python
"""Endurance study: write amplification and wear under each scheme.

The paper argues CAGC improves SSD *reliability* by erasing fewer
blocks.  This example quantifies that: for each scheme and victim
policy it reports write amplification (WAF), total erases, the maximum
per-block erase count, and the evenness of wear (coefficient of
variation) — the quantities an endurance model would consume.

Run:  python examples/wear_and_waf_study.py
"""

from repro import build_fiu_trace, make_scheme, run_trace, small_config
from repro.ftl.gc import make_policy
from repro.metrics.report import format_table

POLICIES = ("random", "greedy", "cost-benefit")


def main() -> None:
    config = small_config(blocks=256, pages_per_block=64, channels=4)
    trace = build_fiu_trace("web-vm", config, n_requests=0, fill_factor=3.0)
    stats = trace.stats()
    print(
        f"workload web-vm: {stats.written_pages:,} pages written "
        f"({stats.dedup_ratio:.0%} duplicate content)\n"
    )

    rows = []
    for policy_name in POLICIES:
        for scheme_name in ("baseline", "cagc"):
            scheme = make_scheme(scheme_name, config, policy=make_policy(policy_name))
            result = run_trace(scheme, trace)
            wear = result.wear
            rows.append(
                (
                    policy_name,
                    scheme_name,
                    f"{result.write_amplification():.2f}",
                    wear.total_erases,
                    wear.max_erase,
                    f"{wear.cov:.2f}",
                )
            )
    print(
        format_table(
            ("Policy", "Scheme", "WAF", "Total erases", "Max erase/block", "Wear CoV"),
            rows,
            title="Write amplification and wear (lower is better)",
        )
    )
    print(
        "\nCAGC lowers total erases under every policy — fewer program/erase\n"
        "cycles means longer flash life.  The cost-benefit policy trades a\n"
        "few extra migrations for more even wear (lower CoV) than greedy."
    )


if __name__ == "__main__":
    main()
