"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs cannot build; keeping a
``setup.py`` (and no ``[build-system]`` table) lets ``pip install -e .``
take the legacy ``develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
