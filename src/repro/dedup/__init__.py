"""Deduplication substrate: fingerprints, index, refcount lifecycle."""

from repro.dedup.fingerprint import Fingerprint, fingerprint_bytes
from repro.dedup.index import FingerprintIndex
from repro.dedup.refcount import RefcountTracker, InvalidationHistogram

__all__ = [
    "Fingerprint",
    "fingerprint_bytes",
    "FingerprintIndex",
    "RefcountTracker",
    "InvalidationHistogram",
]
