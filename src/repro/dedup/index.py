"""Fingerprint index: content fingerprint <-> canonical physical page.

The index answers the dedup question "is this content already stored,
and where?".  Reference counts (how many LPNs share the canonical page)
live in the :class:`repro.ftl.mapping.MappingTable` reverse columns —
one source of truth; the index only tracks the fp <-> PPN bijection and
the statistics the evaluation reports (hits, misses, memory footprint).

Representation: the forward direction is an open-addressing hash table
over two flat ``array('q')`` columns — the 64-bit digest prefix (a
fingerprint *is* a 63-bit digest prefix, see
:mod:`repro.dedup.fingerprint`) and the canonical PPN — probed with a
Fibonacci-scrambled linear scan.  16 bytes per slot at <=2/3 load
instead of ~100+ bytes per dict slot of boxed ints.  The reverse
direction is one flat PPN-indexed digest column.  Fingerprints the flat
table cannot represent (negative values, which collide with the
EMPTY/TOMBSTONE sentinels) spill into a collision-fallback dict pair —
never exercised by trace replay (trace digests are non-negative by
construction) but kept for API completeness.

``memory_bytes()`` reports the *actual* footprint of all of this —
columns at allocated capacity plus the fallback dicts — the figure a
real FTL's DRAM budget would be judged on (and the number the paper's
overhead table and the ``report`` subcommand surface).
"""

from __future__ import annotations

import sys
from array import array
from typing import List, Optional, Tuple

from repro.dedup.fingerprint import Fingerprint

_EMPTY = -1
_TOMBSTONE = -2
#: 64-bit Fibonacci multiplier: scrambles digest prefixes (and the
#: sequential content ids of synthetic traces) into uniform slots.
_GOLD = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

#: CPython dict per-entry cost (key + value + slot), used to price the
#: fallback dicts honestly.
_DICT_SLOT_BYTES = 104


class IndexError_(RuntimeError):
    """Inconsistent index operation (duplicate insert, missing entry)."""


def _filled(typecode: str, fill: int, n: int) -> array:
    return array(typecode, [fill]) * n


class FingerprintIndex:
    """Bidirectional fingerprint <-> canonical-PPN map (columnar)."""

    __slots__ = (
        "_keys",
        "_vals",
        "_mask",
        "_used",
        "_filled",
        "_ppn_fp",
        "_fallback",
        "_fallback_ppn",
        "hits",
        "misses",
    )

    def __init__(self, physical_pages: int = 0, initial_slots: int = 256) -> None:
        cap = 1 << max(initial_slots - 1, 15).bit_length()
        self._keys = _filled("q", _EMPTY, cap)
        self._vals = _filled("q", 0, cap)
        self._mask = cap - 1
        self._used = 0  # live entries in the flat table
        self._filled = 0  # live entries + tombstones
        #: PPN -> digest prefix reverse column (-1 = not canonical).
        self._ppn_fp = _filled("q", _EMPTY, max(physical_pages, 16))
        #: collision-fallback for digests the flat table cannot hold.
        self._fallback: dict = {}
        self._fallback_ppn: dict = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._used + len(self._fallback)

    # -- probing ---------------------------------------------------------------

    def _slot_of(self, fp: int) -> int:
        """Slot holding ``fp``, or -1 if absent."""
        keys = self._keys
        mask = self._mask
        slot = ((fp * _GOLD) & _MASK64) & mask
        while True:
            k = keys[slot]
            if k == fp:
                return slot
            if k == _EMPTY:
                return -1
            slot = (slot + 1) & mask

    def _insert_slot(self, fp: int) -> int:
        """First reusable slot on ``fp``'s probe path (fp known absent)."""
        keys = self._keys
        mask = self._mask
        slot = ((fp * _GOLD) & _MASK64) & mask
        while True:
            k = keys[slot]
            if k == _EMPTY or k == _TOMBSTONE:
                return slot
            slot = (slot + 1) & mask

    def _maybe_grow(self) -> None:
        cap = self._mask + 1
        if (self._filled + 1) * 3 <= cap * 2:
            return
        old_keys = self._keys
        old_vals = self._vals
        new_cap = cap * 2 if (self._used + 1) * 3 > cap else cap
        self._keys = _filled("q", _EMPTY, new_cap)
        self._vals = _filled("q", 0, new_cap)
        self._mask = new_cap - 1
        self._filled = self._used
        keys = self._keys
        vals = self._vals
        mask = self._mask
        for i, fp in enumerate(old_keys):
            if fp >= 0:
                slot = ((fp * _GOLD) & _MASK64) & mask
                while keys[slot] != _EMPTY:
                    slot = (slot + 1) & mask
                keys[slot] = fp
                vals[slot] = old_vals[i]

    def _grow_ppn(self, ppn: int) -> None:
        col = self._ppn_fp
        need = max(ppn + 1, len(col) * 2)
        col.extend(_filled("q", _EMPTY, need - len(col)))

    # -- queries ---------------------------------------------------------------

    def lookup(self, fp: Fingerprint) -> Optional[int]:
        """Canonical PPN storing ``fp``'s content, or ``None`` (counts
        hit/miss statistics)."""
        ppn = self.peek(fp)
        if ppn is None:
            self.misses += 1
        else:
            self.hits += 1
        return ppn

    def peek(self, fp: Fingerprint) -> Optional[int]:
        """Like :meth:`lookup` but without touching the statistics."""
        if fp < 0:
            return self._fallback.get(fp)
        keys = self._keys
        mask = self._mask
        slot = ((fp * _GOLD) & _MASK64) & mask
        while True:
            k = keys[slot]
            if k == fp:
                return self._vals[slot]
            if k == _EMPTY:
                return None
            slot = (slot + 1) & mask

    def fp_of(self, ppn: int) -> Optional[Fingerprint]:
        if ppn in self._fallback_ppn:
            return self._fallback_ppn[ppn]
        if ppn < 0 or ppn >= len(self._ppn_fp):
            return None
        fp = self._ppn_fp[ppn]
        return None if fp == _EMPTY else fp

    def contains_ppn(self, ppn: int) -> bool:
        if 0 <= ppn < len(self._ppn_fp) and self._ppn_fp[ppn] != _EMPTY:
            return True
        return ppn in self._fallback_ppn

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def memory_bytes(self) -> int:
        """Actual DRAM footprint of the index.

        Counts the flat columns at their allocated capacity (hash slots
        are paid for whether occupied or not) plus the fallback dicts.
        """
        table = (
            len(self._keys) * self._keys.itemsize
            + len(self._vals) * self._vals.itemsize
            + len(self._ppn_fp) * self._ppn_fp.itemsize
        )
        fallback = sys.getsizeof(self._fallback) + sys.getsizeof(self._fallback_ppn)
        fallback += (len(self._fallback) + len(self._fallback_ppn)) * _DICT_SLOT_BYTES
        return table + fallback

    # -- mutations ---------------------------------------------------------------

    def insert(self, fp: Fingerprint, ppn: int) -> None:
        """Register ``ppn`` as the canonical page for ``fp``."""
        if self.peek(fp) is not None:
            raise IndexError_(f"fingerprint {fp:#x} already indexed")
        if self.contains_ppn(ppn):
            raise IndexError_(f"ppn {ppn} already canonical for another fp")
        if ppn < 0:
            raise IndexError_(f"negative ppn {ppn}")
        if fp < 0:
            self._fallback[fp] = ppn
            self._fallback_ppn[ppn] = fp
            return
        self._maybe_grow()
        slot = self._insert_slot(fp)
        if self._keys[slot] == _EMPTY:
            self._filled += 1
        self._keys[slot] = fp
        self._vals[slot] = ppn
        self._used += 1
        if ppn >= len(self._ppn_fp):
            self._grow_ppn(ppn)
        self._ppn_fp[ppn] = fp

    def remove_ppn(self, ppn: int) -> Optional[Fingerprint]:
        """Drop the entry whose canonical page is ``ppn`` (page died)."""
        fp = self._fallback_ppn.pop(ppn, None)
        if fp is not None:
            del self._fallback[fp]
            return fp
        if ppn < 0 or ppn >= len(self._ppn_fp):
            return None
        fp = self._ppn_fp[ppn]
        if fp == _EMPTY:
            return None
        self._ppn_fp[ppn] = _EMPTY
        slot = self._slot_of(fp)
        self._keys[slot] = _TOMBSTONE
        self._vals[slot] = 0
        self._used -= 1
        return fp

    def move(self, old_ppn: int, new_ppn: int) -> None:
        """Canonical page migrated during GC: re-point its index entry."""
        fp = self.fp_of(old_ppn)
        if fp is None:
            raise IndexError_(f"ppn {old_ppn} is not canonical for any fp")
        if self.contains_ppn(new_ppn):
            raise IndexError_(f"ppn {new_ppn} already canonical")
        if new_ppn < 0:
            raise IndexError_(f"negative ppn {new_ppn}")
        if fp < 0:
            del self._fallback_ppn[old_ppn]
            self._fallback[fp] = new_ppn
            self._fallback_ppn[new_ppn] = fp
            return
        self._ppn_fp[old_ppn] = _EMPTY
        if new_ppn >= len(self._ppn_fp):
            self._grow_ppn(new_ppn)
        self._ppn_fp[new_ppn] = fp
        self._vals[self._slot_of(fp)] = new_ppn

    # -- inspection ----------------------------------------------------------------

    def entries(self) -> List[Tuple[Fingerprint, int]]:
        """All (fp, canonical ppn) pairs (test/debug; copies)."""
        out = [(fp, self._vals[i]) for i, fp in enumerate(self._keys) if fp >= 0]
        out.extend(self._fallback.items())
        return out

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        forward = 0
        for i, fp in enumerate(self._keys):
            if fp < 0:
                continue
            forward += 1
            ppn = self._vals[i]
            if ppn < 0 or ppn >= len(self._ppn_fp) or self._ppn_fp[ppn] != fp:
                raise AssertionError(f"asymmetric entry fp={fp:#x} ppn={ppn}")
        if forward != self._used:
            raise AssertionError("flat-table occupancy count drifted")
        reverse = sum(1 for fp in self._ppn_fp if fp != _EMPTY)
        if reverse != self._used:
            raise AssertionError("fp/ppn map sizes differ")
        for ppn, fp in self._ppn_fp_items():
            slot = self._slot_of(fp)
            if slot < 0 or self._vals[slot] != ppn:
                raise AssertionError(f"asymmetric entry fp={fp:#x} ppn={ppn}")
        if len(self._fallback) != len(self._fallback_ppn):
            raise AssertionError("fp/ppn map sizes differ")
        for fp, ppn in self._fallback.items():
            if self._fallback_ppn.get(ppn) != fp:
                raise AssertionError(f"asymmetric entry fp={fp:#x} ppn={ppn}")

    def _ppn_fp_items(self):
        for ppn, fp in enumerate(self._ppn_fp):
            if fp != _EMPTY:
                yield ppn, fp
