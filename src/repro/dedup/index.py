"""Fingerprint index: content fingerprint <-> canonical physical page.

The index answers the dedup question "is this content already stored,
and where?".  Reference counts (how many LPNs share the canonical page)
live in the :class:`repro.ftl.mapping.MappingTable` reverse map — one
source of truth; the index only tracks the fp <-> PPN bijection and the
statistics the evaluation reports (hits, misses, memory footprint).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dedup.fingerprint import Fingerprint


class IndexError_(RuntimeError):
    """Inconsistent index operation (duplicate insert, missing entry)."""


class FingerprintIndex:
    """Bidirectional fingerprint <-> canonical-PPN map."""

    def __init__(self) -> None:
        self._by_fp: Dict[Fingerprint, int] = {}
        self._by_ppn: Dict[int, Fingerprint] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._by_fp)

    # -- queries ---------------------------------------------------------------

    def lookup(self, fp: Fingerprint) -> Optional[int]:
        """Canonical PPN storing ``fp``'s content, or ``None`` (counts
        hit/miss statistics)."""
        ppn = self._by_fp.get(fp)
        if ppn is None:
            self.misses += 1
        else:
            self.hits += 1
        return ppn

    def peek(self, fp: Fingerprint) -> Optional[int]:
        """Like :meth:`lookup` but without touching the statistics."""
        return self._by_fp.get(fp)

    def fp_of(self, ppn: int) -> Optional[Fingerprint]:
        return self._by_ppn.get(ppn)

    def contains_ppn(self, ppn: int) -> bool:
        return ppn in self._by_ppn

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def memory_bytes(self) -> int:
        """Estimated DRAM footprint of the index.

        Per entry: the fingerprint (8 B), the PPN (4 B), and both hash-
        table slots with load-factor overhead (~2x) — the figure a real
        FTL's memory budget would be judged on.
        """
        return len(self._by_fp) * 2 * (8 + 4) * 2

    # -- mutations ---------------------------------------------------------------

    def insert(self, fp: Fingerprint, ppn: int) -> None:
        """Register ``ppn`` as the canonical page for ``fp``."""
        if fp in self._by_fp:
            raise IndexError_(f"fingerprint {fp:#x} already indexed")
        if ppn in self._by_ppn:
            raise IndexError_(f"ppn {ppn} already canonical for another fp")
        self._by_fp[fp] = ppn
        self._by_ppn[ppn] = fp

    def remove_ppn(self, ppn: int) -> Optional[Fingerprint]:
        """Drop the entry whose canonical page is ``ppn`` (page died)."""
        fp = self._by_ppn.pop(ppn, None)
        if fp is not None:
            del self._by_fp[fp]
        return fp

    def move(self, old_ppn: int, new_ppn: int) -> None:
        """Canonical page migrated during GC: re-point its index entry."""
        fp = self._by_ppn.pop(old_ppn, None)
        if fp is None:
            raise IndexError_(f"ppn {old_ppn} is not canonical for any fp")
        if new_ppn in self._by_ppn:
            raise IndexError_(f"ppn {new_ppn} already canonical")
        self._by_ppn[new_ppn] = fp
        self._by_fp[fp] = new_ppn

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        if len(self._by_fp) != len(self._by_ppn):
            raise AssertionError("fp/ppn map sizes differ")
        for fp, ppn in self._by_fp.items():
            if self._by_ppn.get(ppn) != fp:
                raise AssertionError(f"asymmetric entry fp={fp:#x} ppn={ppn}")
