"""Content fingerprints.

In the real system a fingerprint is a SHA-1/SHA-256 digest of a 4 KB
page.  Traces (both the FIU originals and our synthetic equivalents)
carry one fingerprint per page, so inside the simulator a fingerprint is
just an opaque integer content id — collision-free by construction, the
same assumption the paper's trace replay makes.  ``fingerprint_bytes``
hashes real buffers for the file-model example and for tests that
round-trip actual data.

:class:`PageFingerprints` is the columnar PPN -> fingerprint store every
scheme carries (the "what content does this physical page hold" side
table): one flat ``array('q')`` indexed by PPN instead of a dict of
boxed ints, with a dict-compatible surface so existing call sites and
the oracle's agreement checks read it unchanged.  Its :meth:`gather`
hands GC the whole victim block's fingerprints in one vectorized pass.
"""

from __future__ import annotations

import hashlib
import sys
from array import array
from typing import Iterator, List, Optional, Tuple

import numpy as np

#: Type alias: a fingerprint is an opaque non-negative integer.
Fingerprint = int

_ABSENT = -1
#: Column sentinel for "present but negative fp, see overflow dict".
#: Negative fingerprints never come from traces (63-bit digests); the
#: spill keeps hand-constructed values exact anyway.
_NEGATIVE = -2


def fingerprint_bytes(data: bytes) -> Fingerprint:
    """Fingerprint a real data buffer (SHA-1, truncated to 63 bits).

    Truncation keeps the value inside a signed 64-bit integer (traces
    store fingerprints in int64 arrays); 63 bits is ample for
    simulation-scale page populations (collision probability < 1e-9 for
    10^5 unique pages).
    """
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def fingerprint_pages(data: bytes, page_size: int) -> List[Fingerprint]:
    """Fingerprint a buffer page by page (one digest per ``page_size``
    slice) — the batched form the GC hash engine models: all of a
    victim's pages hashed in one pass."""
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    return [
        fingerprint_bytes(data[off : off + page_size])
        for off in range(0, len(data), page_size)
    ]


class PageFingerprints:
    """Flat PPN -> fingerprint column with a dict-compatible surface.

    8 bytes per physical page, preallocated to the device geometry, in
    place of a dict entry (~100 bytes) per *live* page — smaller beyond
    ~8 % occupancy and O(1) with no rehashing ever.  ``-1`` marks an
    unmapped page.  The dict protocol subset every call site uses
    (``[]``, ``get``, ``pop``, ``in``, ``len``, iteration) is preserved,
    so the store drops in for the old ``Dict[int, int]`` unchanged.
    """

    __slots__ = ("_col", "_negative")

    def __init__(self, physical_pages: int = 0) -> None:
        self._col = array("q", [_ABSENT]) * max(physical_pages, 16)
        #: PPN -> negative fingerprint spill (normally always empty).
        self._negative: dict = {}

    # -- dict protocol ---------------------------------------------------------

    def __getitem__(self, ppn: int) -> Fingerprint:
        if 0 <= ppn < len(self._col):
            fp = self._col[ppn]
            if fp >= 0:
                return fp
            if fp == _NEGATIVE:
                return self._negative[ppn]
        raise KeyError(ppn)

    def __setitem__(self, ppn: int, fp: Fingerprint) -> None:
        if ppn < 0:
            raise KeyError(f"negative ppn {ppn}")
        col = self._col
        if ppn >= len(col):
            col.extend(array("q", [_ABSENT]) * (max(ppn + 1, 2 * len(col)) - len(col)))
        if fp >= 0:
            if col[ppn] == _NEGATIVE:
                del self._negative[ppn]
            col[ppn] = fp
        else:
            col[ppn] = _NEGATIVE
            self._negative[ppn] = fp

    def get(self, ppn: int, default: Optional[Fingerprint] = None):
        if 0 <= ppn < len(self._col):
            fp = self._col[ppn]
            if fp >= 0:
                return fp
            if fp == _NEGATIVE:
                return self._negative[ppn]
        return default

    def pop(self, ppn: int, default=KeyError):
        if 0 <= ppn < len(self._col):
            fp = self._col[ppn]
            if fp != _ABSENT:
                self._col[ppn] = _ABSENT
                return self._negative.pop(ppn) if fp == _NEGATIVE else fp
        if default is KeyError:
            raise KeyError(ppn)
        return default

    def __contains__(self, ppn: int) -> bool:
        return 0 <= ppn < len(self._col) and self._col[ppn] != _ABSENT

    def __len__(self) -> int:
        view = np.frombuffer(self._col, dtype=np.int64)
        n = int(np.count_nonzero(view != _ABSENT))
        del view  # transient: a live export would pin the buffer
        return n

    def __iter__(self) -> Iterator[int]:
        view = np.frombuffer(self._col, dtype=np.int64)
        live = np.nonzero(view != _ABSENT)[0].tolist()
        del view
        return iter(live)

    def items(self) -> Iterator[Tuple[int, Fingerprint]]:
        for ppn in self:
            yield ppn, self[ppn]

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- columnar extras -------------------------------------------------------

    def column(self) -> array:
        """The raw fingerprint column, for trusted hot-path writers.

        Direct indexing skips the dict-protocol dispatch on the per-page
        program path; callers must only store non-negative fingerprints
        at in-range PPNs (the trace-replay invariant).
        """
        return self._col

    def gather(self, ppns: np.ndarray) -> np.ndarray:
        """Fingerprints of ``ppns`` in one vectorized pass.

        The GC batched-hash model: a victim block's valid pages are all
        fingerprinted before the migrate loop runs, the way the hash
        engine in the pipeline chews through the block's pages, instead
        of one store probe per page inside the loop.
        """
        view = np.frombuffer(self._col, dtype=np.int64)
        out = view[ppns]  # fancy indexing copies; the view stays transient
        del view
        if self._negative and (out == _NEGATIVE).any():
            for i, ppn in enumerate(ppns.tolist()):
                if out[i] == _NEGATIVE:
                    out[i] = self._negative[ppn]
        return out

    def memory_bytes(self) -> int:
        """Actual footprint: the column plus the (normally empty) spill."""
        return (
            len(self._col) * self._col.itemsize
            + sys.getsizeof(self._negative)
            + len(self._negative) * 104
        )
