"""Content fingerprints.

In the real system a fingerprint is a SHA-1/SHA-256 digest of a 4 KB
page.  Traces (both the FIU originals and our synthetic equivalents)
carry one fingerprint per page, so inside the simulator a fingerprint is
just an opaque integer content id — collision-free by construction, the
same assumption the paper's trace replay makes.  ``fingerprint_bytes``
hashes real buffers for the file-model example and for tests that
round-trip actual data.
"""

from __future__ import annotations

import hashlib

#: Type alias: a fingerprint is an opaque non-negative integer.
Fingerprint = int


def fingerprint_bytes(data: bytes) -> Fingerprint:
    """Fingerprint a real data buffer (SHA-1, truncated to 63 bits).

    Truncation keeps the value inside a signed 64-bit integer (traces
    store fingerprints in int64 arrays); 63 bits is ample for
    simulation-scale page populations (collision probability < 1e-9 for
    10^5 unique pages).
    """
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest[:8], "big") >> 1
