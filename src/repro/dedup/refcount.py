"""Reference-count lifecycle statistics (paper Fig 6).

Fig 6 buckets every page-invalidation event by the reference count the
page reached during its lifetime, showing that >80 % of invalidations
hit refcount-1 pages while pages that ever reached refcount > 3 almost
never die — the empirical basis for CAGC's hot/cold placement.

:class:`RefcountTracker` is key-agnostic: schemes key it by PPN, the
standalone trace analyzer keys it by fingerprint.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass, field
from typing import Iterator, List, MutableMapping, Tuple


@dataclass
class InvalidationHistogram:
    """Counts of invalidation events bucketed by lifetime peak refcount."""

    #: Buckets follow the paper's Fig 6 x-axis: 1, 2, 3, >3.
    ref1: int = 0
    ref2: int = 0
    ref3: int = 0
    ref_gt3: int = 0

    @property
    def total(self) -> int:
        return self.ref1 + self.ref2 + self.ref3 + self.ref_gt3

    def record(self, peak_refcount: int) -> None:
        if peak_refcount <= 1:
            self.ref1 += 1
        elif peak_refcount == 2:
            self.ref2 += 1
        elif peak_refcount == 3:
            self.ref3 += 1
        else:
            self.ref_gt3 += 1

    def fractions(self) -> Tuple[float, float, float, float]:
        """(f1, f2, f3, f>3) fractions of all invalidations; zeros when
        no event was recorded."""
        total = self.total
        if total == 0:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            self.ref1 / total,
            self.ref2 / total,
            self.ref3 / total,
            self.ref_gt3 / total,
        )

    def as_rows(self) -> List[Tuple[str, float]]:
        f1, f2, f3, fg = self.fractions()
        return [("1", f1), ("2", f2), ("3", f3), (">3", fg)]


class PeakStore:
    """Flat peak-refcount column for PPN-keyed trackers.

    Peaks are always >= 1, so ``0`` doubles as the absence marker and
    the whole store is one ``array('i')`` over the physical page range —
    4 bytes per page instead of a dict entry per live page.  Implements
    the dict-protocol subset :class:`RefcountTracker` uses, so schemes
    swap it in via the ``peaks`` field; the fingerprint-keyed trace
    analyzer keeps a plain dict (its key space is not dense).
    """

    __slots__ = ("_col",)

    def __init__(self, physical_pages: int = 0) -> None:
        self._col = array("i", [0]) * max(physical_pages, 16)

    def _grow(self, key: int) -> None:
        col = self._col
        col.extend(array("i", [0]) * (max(key + 1, 2 * len(col)) - len(col)))

    def __getitem__(self, key: int) -> int:
        if 0 <= key < len(self._col):
            peak = self._col[key]
            if peak:
                return peak
        raise KeyError(key)

    def __setitem__(self, key: int, peak: int) -> None:
        if key < 0 or peak < 1:
            raise ValueError(f"peak store needs key >= 0 and peak >= 1, "
                             f"got [{key}] = {peak}")
        if key >= len(self._col):
            self._grow(key)
        self._col[key] = peak

    def get(self, key: int, default=None):
        if 0 <= key < len(self._col):
            peak = self._col[key]
            if peak:
                return peak
        return default

    def pop(self, key: int, default=KeyError):
        if 0 <= key < len(self._col):
            peak = self._col[key]
            if peak:
                self._col[key] = 0
                return peak
        if default is KeyError:
            raise KeyError(key)
        return default

    def __contains__(self, key: int) -> bool:
        return 0 <= key < len(self._col) and self._col[key] != 0

    def __len__(self) -> int:
        return sum(1 for peak in self._col if peak)

    def __iter__(self) -> Iterator[int]:
        return (key for key, peak in enumerate(self._col) if peak)

    def column(self) -> array:
        """The raw column for trusted hot-path writers (bulk program
        loop); callers must only store peaks >= 1 at in-range keys."""
        return self._col

    def memory_bytes(self) -> int:
        return len(self._col) * self._col.itemsize + sys.getsizeof(self)


@dataclass
class RefcountTracker:
    """Tracks lifetime peak reference count per live page/content key."""

    #: key -> lifetime peak refcount; a plain dict by default (sparse,
    #: fingerprint-keyed analyzers) or a :class:`PeakStore` when the
    #: key space is the dense physical page range.
    peaks: MutableMapping[int, int] = field(default_factory=dict)
    histogram: InvalidationHistogram = field(default_factory=InvalidationHistogram)

    def observe(self, key: int, refcount: int) -> None:
        """Record that ``key`` currently has ``refcount`` referrers."""
        prev = self.peaks.get(key, 0)
        if refcount > prev:
            self.peaks[key] = refcount

    def rekey(self, old: int, new: int) -> None:
        """Carry a live page's history across a GC migration."""
        if old in self.peaks:
            self.peaks[new] = max(self.peaks.pop(old), self.peaks.get(new, 0))

    def invalidated(self, key: int) -> None:
        """``key``'s page lost its last referrer: bucket the event."""
        peak = self.peaks.pop(key, 1)
        self.histogram.record(peak)
