"""Reference-count lifecycle statistics (paper Fig 6).

Fig 6 buckets every page-invalidation event by the reference count the
page reached during its lifetime, showing that >80 % of invalidations
hit refcount-1 pages while pages that ever reached refcount > 3 almost
never die — the empirical basis for CAGC's hot/cold placement.

:class:`RefcountTracker` is key-agnostic: schemes key it by PPN, the
standalone trace analyzer keys it by fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class InvalidationHistogram:
    """Counts of invalidation events bucketed by lifetime peak refcount."""

    #: Buckets follow the paper's Fig 6 x-axis: 1, 2, 3, >3.
    ref1: int = 0
    ref2: int = 0
    ref3: int = 0
    ref_gt3: int = 0

    @property
    def total(self) -> int:
        return self.ref1 + self.ref2 + self.ref3 + self.ref_gt3

    def record(self, peak_refcount: int) -> None:
        if peak_refcount <= 1:
            self.ref1 += 1
        elif peak_refcount == 2:
            self.ref2 += 1
        elif peak_refcount == 3:
            self.ref3 += 1
        else:
            self.ref_gt3 += 1

    def fractions(self) -> Tuple[float, float, float, float]:
        """(f1, f2, f3, f>3) fractions of all invalidations; zeros when
        no event was recorded."""
        total = self.total
        if total == 0:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            self.ref1 / total,
            self.ref2 / total,
            self.ref3 / total,
            self.ref_gt3 / total,
        )

    def as_rows(self) -> List[Tuple[str, float]]:
        f1, f2, f3, fg = self.fractions()
        return [("1", f1), ("2", f2), ("3", f3), (">3", fg)]


@dataclass
class RefcountTracker:
    """Tracks lifetime peak reference count per live page/content key."""

    peaks: Dict[int, int] = field(default_factory=dict)
    histogram: InvalidationHistogram = field(default_factory=InvalidationHistogram)

    def observe(self, key: int, refcount: int) -> None:
        """Record that ``key`` currently has ``refcount`` referrers."""
        prev = self.peaks.get(key, 0)
        if refcount > prev:
            self.peaks[key] = refcount

    def rekey(self, old: int, new: int) -> None:
        """Carry a live page's history across a GC migration."""
        if old in self.peaks:
            self.peaks[new] = max(self.peaks.pop(old), self.peaks.get(new, 0))

    def invalidated(self, key: int) -> None:
        """``key``'s page lost its last referrer: bucket the event."""
        peak = self.peaks.pop(key, 1)
        self.histogram.record(peak)
