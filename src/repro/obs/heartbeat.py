"""Wall-clock progress heartbeat for long replays.

A multi-million-request FIU replay can run for minutes with nothing on
the terminal.  :class:`Heartbeat` prints a short line to stderr every
``interval_s`` wall seconds with the simulated time reached, requests
completed, and the wall-clock event rate — enough to distinguish "slow
but moving" from "hung".

The device calls :meth:`tick` once per completed request *only when a
heartbeat was requested* (a single ``is not None`` predicated call on
the hot path).  ``tick`` itself is one ``time.monotonic()`` compare in
the common case.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class Heartbeat:
    """Rate-limited progress reporter (wall-clock driven)."""

    __slots__ = ("interval_s", "stream", "_start", "_next_due", "_last_events", "beats")

    def __init__(self, interval_s: float = 5.0, stream: Optional[IO[str]] = None) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        self._next_due = self._start + interval_s
        self._last_events = 0
        self.beats = 0

    def tick(self, sim_now_us: float, events: int, requests: int) -> None:
        """Called per completed request; prints when a beat is due."""
        now = time.monotonic()
        if now < self._next_due:
            return
        elapsed = now - self._start
        rate = (events - self._last_events) / max(
            now - (self._next_due - self.interval_s), 1e-9
        )
        self.stream.write(
            f"[{elapsed:7.1f}s] sim {sim_now_us / 1e6:9.3f}s  "
            f"{requests:,} reqs  {rate:,.0f} ev/s\n"
        )
        self.stream.flush()
        self._last_events = events
        self._next_due = now + self.interval_s
        self.beats += 1

    def finish(self, sim_now_us: float, events: int, requests: int) -> None:
        """Final summary line (always printed)."""
        elapsed = max(time.monotonic() - self._start, 1e-9)
        self.stream.write(
            f"[{elapsed:7.1f}s] done: sim {sim_now_us / 1e6:.3f}s, "
            f"{requests:,} reqs, {events / elapsed:,.0f} ev/s overall\n"
        )
        self.stream.flush()
