"""Wall-clock progress heartbeat for long replays.

A multi-million-request FIU replay can run for minutes with nothing on
the terminal.  :class:`Heartbeat` prints a short line to stderr every
``interval_s`` wall seconds with the simulated time reached, requests
completed, the wall-clock event rate, the rolling request throughput
(ops/s over the last beat window), the GC collect count so far, and —
when the caller declared the trace length via :meth:`expect` — an ETA
extrapolated from the rolling throughput: enough to distinguish "slow
but moving" from "hung" and "GC death spiral".

The device calls :meth:`tick` once per completed request *only when a
heartbeat was requested* (a single ``is not None`` predicated call on
the hot path).  ``tick`` itself is one ``time.monotonic()`` compare in
the common case.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class Heartbeat:
    """Rate-limited progress reporter (wall-clock driven)."""

    __slots__ = (
        "interval_s",
        "stream",
        "_start",
        "_next_due",
        "_last_events",
        "_last_requests",
        "total_requests",
        "beats",
    )

    def __init__(self, interval_s: float = 5.0, stream: Optional[IO[str]] = None) -> None:
        if interval_s < 0:
            raise ValueError("interval_s must be non-negative")
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        self._next_due = self._start + interval_s
        self._last_events = 0
        self._last_requests = 0
        self.total_requests = 0
        self.beats = 0

    def expect(self, total_requests: int) -> None:
        """Declare the trace length so ticks can print an ETA."""
        self.total_requests = int(total_requests)

    def tick(
        self,
        sim_now_us: float,
        events: int,
        requests: int,
        gc_collects: int = 0,
    ) -> None:
        """Called per completed request; prints when a beat is due."""
        now = time.monotonic()
        if now < self._next_due:
            return
        elapsed = now - self._start
        window = max(now - (self._next_due - self.interval_s), 1e-9)
        rate = (events - self._last_events) / window
        ops = (requests - self._last_requests) / window
        if self.total_requests > requests and ops > 0:
            eta = f"eta {(self.total_requests - requests) / ops:5.0f}s"
        else:
            eta = "eta     -"
        self.stream.write(
            f"[{elapsed:7.1f}s] sim {sim_now_us / 1e6:9.3f}s  "
            f"{requests:,} reqs  {rate:,.0f} ev/s  {ops:,.0f} ops/s  "
            f"gc {gc_collects:,}  {eta}\n"
        )
        self.stream.flush()
        self._last_events = events
        self._last_requests = requests
        self._next_due = now + self.interval_s
        self.beats += 1

    def finish(
        self,
        sim_now_us: float,
        events: int,
        requests: int,
        gc_collects: int = 0,
    ) -> None:
        """Final summary line (always printed)."""
        elapsed = max(time.monotonic() - self._start, 1e-9)
        self.stream.write(
            f"[{elapsed:7.1f}s] done: sim {sim_now_us / 1e6:.3f}s, "
            f"{requests:,} reqs, {events / elapsed:,.0f} ev/s overall, "
            f"gc {gc_collects:,}\n"
        )
        self.stream.flush()
