"""Unified metrics registry: typed handles, labels, snapshots.

The registry follows the same zero-overhead-when-disabled contract as
the :class:`~repro.obs.trace.Tracer`: every instrumentation site on the
hot path is one predicated ``x is not None`` test, and when metrics
*are* attached the handles (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) have been resolved once at attach time, so the
per-event cost is a bare attribute increment — no name lookups, no
label hashing, no dict traffic inside the replay loop.

Three handle types:

* :class:`Counter` — monotonically increasing float; ``inc``/``add``.
* :class:`Gauge` — either set explicitly or *callback-backed*: a lazy
  gauge stores a zero-argument callable that is only invoked when the
  registry is sampled (time-series ticks, end-of-run collection), so
  instrumenting allocator occupancy, victim-index depth or GC phase
  busy time costs literally nothing on the request path.
* :class:`Histogram` — wraps the log-bucket
  :class:`~repro.obs.telemetry.LatencyHistogram`; ``observe_many``
  folds whole batches exactly (the vectorized kernel's path).

Label dimensions come from :class:`CounterVec` / :class:`HistogramVec`:
a vec owns one child per label value, resolved once (``vec.labels(i)``)
and cached.  Children are independent — a vec's :meth:`CounterVec.sum`
is the fold over its children, which is how the array tier's
per-device and per-tenant families *partition* their global parents
(the property the metrics test suite pins with hypothesis).

:class:`MetricsSnapshot` is the frozen end-of-run view — final scalar
values plus the :class:`~repro.obs.series.TimeSeriesRecorder`'s
columnar series — and is what the runner cache persists (npz arrays +
JSON meta) and the exporters render.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.telemetry import LatencyHistogram

#: metric-name prefix shared by every built-in instrument.
PREFIX = "cagc"

#: default simulated-time sampling interval for the time series.
DEFAULT_INTERVAL_US = 10_000.0


def sample_id(name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> str:
    """Flat sample identifier, Prometheus-style: ``name{key="value"}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter handle (resolve once, then ``inc``/``add``)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    #: bulk alias — the batch-folded form reads better at call sites.
    add = inc

    def sample(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value: explicit ``set`` or callback-backed.

    A callback gauge is read only when sampled, so registering one has
    zero hot-path cost — the preferred way to expose state that the
    simulator already tracks (allocator free fraction, GC counters,
    write-buffer occupancy).
    """

    __slots__ = ("name", "labels", "fn", "_value", "sampled")

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], float]] = None,
        labels: Tuple[Tuple[str, str], ...] = (),
        sampled: bool = True,
    ) -> None:
        self.name = name
        self.labels = labels
        self.fn = fn
        self._value = 0.0
        #: sampled=False gauges appear in the final values but are kept
        #: out of the time series (for reads that are not O(1), e.g.
        #: wear statistics over all blocks).
        self.sampled = sampled

    def set(self, value: float) -> None:
        self._value = value

    def sample(self) -> float:
        return float(self.fn()) if self.fn is not None else self._value


class Histogram:
    """Log-bucket distribution handle over :class:`LatencyHistogram`."""

    __slots__ = ("name", "labels", "hist")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self.hist = LatencyHistogram()

    def observe(self, value: float) -> None:
        self.hist.record(value)

    def observe_many(self, values: np.ndarray) -> None:
        """Exact batch fold (same counts/sum/max as per-event observes)."""
        self.hist.record_many(values)

    def percentile(self, p: float) -> float:
        return self.hist.percentile(p)

    def value_rows(self) -> List[Tuple[str, float]]:
        """Derived scalar samples for the values dict / exporters."""
        hist = self.hist
        return [
            (sample_id(f"{self.name}_count", self.labels), float(hist.total)),
            (sample_id(f"{self.name}_sum", self.labels), hist.sum_us),
            (sample_id(f"{self.name}_max", self.labels), hist.max_us),
            (sample_id(f"{self.name}_p50", self.labels), hist.percentile(50.0)),
            (sample_id(f"{self.name}_p99", self.labels), hist.percentile(99.0)),
            (sample_id(f"{self.name}_p999", self.labels), hist.percentile(99.9)),
        ]


class CounterVec:
    """One counter per label value; children resolved once and cached."""

    __slots__ = ("name", "label_key", "_children")

    def __init__(self, name: str, label_key: str) -> None:
        self.name = name
        self.label_key = label_key
        self._children: Dict[str, Counter] = {}

    def labels(self, value) -> Counter:
        key = str(value)
        child = self._children.get(key)
        if child is None:
            child = Counter(self.name, labels=((self.label_key, key),))
            self._children[key] = child
        return child

    def children(self) -> List[Counter]:
        return [self._children[key] for key in sorted(self._children)]

    def sum(self) -> float:
        """Fold over children — equals the global parent when every
        recording site feeds exactly one child (the partition law)."""
        return math.fsum(child.value for child in self._children.values())


class HistogramVec:
    """One histogram per label value (per-tenant / per-device SLOs)."""

    __slots__ = ("name", "label_key", "_children")

    def __init__(self, name: str, label_key: str) -> None:
        self.name = name
        self.label_key = label_key
        self._children: Dict[str, Histogram] = {}

    def labels(self, value) -> Histogram:
        key = str(value)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name, labels=((self.label_key, key),))
            self._children[key] = child
        return child

    def children(self) -> List[Histogram]:
        return [self._children[key] for key in sorted(self._children)]


class MetricsRegistry:
    """Flat, ordered collection of instruments.

    Registration happens at attach time (``DeviceMetrics.bind`` and
    friends); the replay loop only touches the returned handles.  Names
    are unique per (name, label-key) — registering the same instrument
    twice returns the existing handle, so idempotent binds are safe.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str], object] = {}

    def _register(self, kind, key: Tuple[str, str], factory):
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {key[0]!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument
        instrument = factory()
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._register(Counter, (name, ""), lambda: Counter(name))

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], float]] = None,
        labels: Tuple[Tuple[str, str], ...] = (),
        sampled: bool = True,
    ) -> Gauge:
        return self._register(
            Gauge,
            (sample_id(name, labels), ""),
            lambda: Gauge(name, fn=fn, labels=labels, sampled=sampled),
        )

    def histogram(self, name: str) -> Histogram:
        return self._register(Histogram, (name, ""), lambda: Histogram(name))

    def counter_vec(self, name: str, label_key: str) -> CounterVec:
        return self._register(
            CounterVec, (name, label_key), lambda: CounterVec(name, label_key)
        )

    def histogram_vec(self, name: str, label_key: str) -> HistogramVec:
        return self._register(
            HistogramVec, (name, label_key), lambda: HistogramVec(name, label_key)
        )

    # ------------------------------------------------------------ sampling

    def iter_scalars(
        self, sampled_only: bool = False
    ) -> Iterator[Tuple[str, float]]:
        """``(sample_id, value)`` pairs in registration order.

        Counters and gauges yield one sample each, vecs one per child.
        Histograms are excluded — their derived summary rows only
        belong in the final values view (see :meth:`sample_values`),
        not the per-tick series (the windowed percentiles live there
        instead).
        """
        for instrument in self._instruments.values():
            if isinstance(instrument, Counter):
                yield sample_id(instrument.name, instrument.labels), instrument.value
            elif isinstance(instrument, Gauge):
                if sampled_only and not instrument.sampled:
                    continue
                yield (
                    sample_id(instrument.name, instrument.labels),
                    instrument.sample(),
                )
            elif isinstance(instrument, CounterVec):
                for child in instrument.children():
                    yield sample_id(child.name, child.labels), child.value

    def sample_values(self) -> Dict[str, float]:
        """The full final-values view: scalars plus histogram summaries."""
        values: Dict[str, float] = dict(self.iter_scalars())
        for instrument in self._instruments.values():
            if isinstance(instrument, Histogram):
                values.update(instrument.value_rows())
            elif isinstance(instrument, HistogramVec):
                for child in instrument.children():
                    if child.hist.total:
                        values.update(child.value_rows())
        return values


@dataclass
class MetricsSnapshot:
    """Frozen end-of-run metrics: final values + columnar time series.

    ``times_us`` and every column of ``series`` share one length; the
    runner cache stores the arrays verbatim (npz) and the values dict
    as JSON, so a cached snapshot round-trips bit-for-bit.
    """

    values: Dict[str, float] = field(default_factory=dict)
    times_us: np.ndarray = field(default_factory=lambda: np.zeros(0))
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    interval_us: float = DEFAULT_INTERVAL_US

    @property
    def samples(self) -> int:
        return int(self.times_us.size)

    def column(self, name: str) -> np.ndarray:
        return self.series[name]


class DeviceMetrics:
    """The resolved-handle bundle one :class:`~repro.device.ssd.SSD`
    drives.

    ``bind`` runs once in the device constructor: it registers the live
    request counter + latency histogram (the only per-event handles),
    lazy gauges over every counter the FTL stack already maintains
    (GC/IO counters, allocator occupancy, victim-index depth, write
    buffer, wear), and the kernel batch/fallback counters the
    vectorized orchestrator bumps at batch boundaries.  Per request the
    device pays one counter ``inc``, one histogram ``record`` and one
    float compare for the time-series cadence — everything else is read
    lazily at sample time.
    """

    def __init__(
        self,
        interval_us: float = DEFAULT_INTERVAL_US,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        from repro.obs.series import TimeSeriesRecorder

        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = TimeSeriesRecorder(interval_us=interval_us)
        self.requests: Optional[Counter] = None
        self.latency: Optional[Histogram] = None
        self.kernel_batches: Optional[Counter] = None
        self.kernel_batched_requests: Optional[Counter] = None
        self.kernel_fallbacks: Optional[CounterVec] = None
        self._bound = False

    # -------------------------------------------------------------- bind

    def bind(self, ssd) -> None:
        """Resolve every handle against ``ssd`` (idempotent)."""
        if self._bound:
            return
        self._bound = True
        reg = self.registry
        self.requests = reg.counter(f"{PREFIX}_requests_total")
        self.latency = reg.histogram(f"{PREFIX}_request_latency_us")
        self.kernel_batches = reg.counter(f"{PREFIX}_kernel_batches_total")
        self.kernel_batched_requests = reg.counter(
            f"{PREFIX}_kernel_batched_requests_total"
        )
        self.kernel_fallbacks = reg.counter_vec(
            f"{PREFIX}_kernel_fallback_requests_total", "reason"
        )
        self._bind_scheme(ssd.scheme)
        if ssd.buffer is not None:
            stats = ssd.buffer.stats
            reg.gauge(
                f"{PREFIX}_buffer_pages_buffered_total",
                lambda: float(stats.pages_buffered),
            )
            reg.gauge(
                f"{PREFIX}_buffer_pages_destaged_total",
                lambda: float(stats.pages_destaged),
            )
            reg.gauge(
                f"{PREFIX}_buffer_overwrite_hits_total",
                lambda: float(stats.overwrite_hits),
            )
        self.recorder.bind(reg, window_hist=self.latency.hist)

    def _bind_scheme(self, scheme) -> None:
        reg = self.registry
        gc = scheme.gc_counters
        io = scheme.io_counters
        allocator = scheme.allocator
        for fname in (
            "blocks_erased",
            "pages_migrated",
            "pages_examined",
            "dedup_skipped",
            "promotions",
            "gc_invocations",
            "gc_busy_us",
            "gc_read_us",
            "gc_hash_us",
            "gc_write_us",
            "gc_erase_us",
        ):
            # blocks_erased -> cagc_gc_blocks_erased_total, but the
            # fields already carrying the gc_ prefix keep a single one.
            short = fname[3:] if fname.startswith("gc_") else fname
            reg.gauge(
                f"{PREFIX}_gc_{short}_total",
                (lambda g=gc, f=fname: float(getattr(g, f))),
            )
        for fname in (
            "logical_pages_written",
            "user_pages_programmed",
            "inline_dedup_hits",
            "read_requests",
            "write_requests",
            "trim_requests",
            "pages_read",
        ):
            reg.gauge(
                f"{PREFIX}_io_{fname}_total",
                (lambda i=io, f=fname: float(getattr(i, f))),
            )
        reg.gauge(
            f"{PREFIX}_waf",
            (lambda i=io, g=gc: i.write_amplification(g)),
        )
        reg.gauge(
            f"{PREFIX}_free_blocks", lambda: float(allocator.free_blocks)
        )
        reg.gauge(f"{PREFIX}_free_fraction", allocator.free_fraction)
        index = getattr(scheme, "victim_index", None)
        if index is not None:
            reg.gauge(
                f"{PREFIX}_victim_candidates",
                (lambda ix=index: float(len(ix))),
            )
        # Wear is O(blocks) to summarize: values-only, never per tick.
        reg.gauge(
            f"{PREFIX}_wear_max_erase",
            (lambda s=scheme: float(s.wear().max_erase)),
            sampled=False,
        )

    # ---------------------------------------------------------- hot path

    def on_complete(self, now_us: float, latency_us: float, ssd) -> None:
        """Per-request hook (single predicated call from the device)."""
        self.requests.value += 1.0
        self.latency.hist.record(latency_us)
        recorder = self.recorder
        if now_us >= recorder.next_due_us:
            recorder.sample(now_us)

    def on_batch(self, latencies_us: np.ndarray, end_us: float, ssd) -> None:
        """Batch-folded form for the vectorized kernel (exact)."""
        self.requests.value += float(latencies_us.size)
        self.latency.hist.record_many(latencies_us)
        self.kernel_batches.value += 1.0
        self.kernel_batched_requests.value += float(latencies_us.size)
        recorder = self.recorder
        if end_us >= recorder.next_due_us:
            recorder.sample(end_us)

    def on_fallback(self, reason: str) -> None:
        """One reference-path request inside a vectorized replay."""
        self.kernel_fallbacks.labels(reason).value += 1.0

    def finish(self, now_us: float, ssd) -> None:
        """Final boundary sample at end of replay."""
        self.recorder.sample(now_us)

    # ---------------------------------------------------------- snapshot

    def snapshot(self) -> MetricsSnapshot:
        times_us, series = self.recorder.arrays()
        return MetricsSnapshot(
            values=self.registry.sample_values(),
            times_us=times_us,
            series=series,
            interval_us=self.recorder.interval_us,
        )


class ArrayMetrics(DeviceMetrics):
    """Array-tier bundle: the device handles plus per-device and
    per-tenant label dimensions.

    Every completion feeds the global counter/histogram *and* exactly
    one ``device`` child and one ``tenant`` child, so each labeled
    family partitions its global parent exactly — same law as
    :class:`~repro.array.telemetry.ArrayTelemetry`, now expressed in
    registry form (and pinned by a hypothesis property test).
    """

    def __init__(
        self,
        interval_us: float = DEFAULT_INTERVAL_US,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(interval_us=interval_us, registry=registry)
        self.device_requests: Optional[CounterVec] = None
        self.tenant_requests: Optional[CounterVec] = None
        self.device_latency: Optional[HistogramVec] = None
        self.tenant_latency: Optional[HistogramVec] = None
        self._device_req: List[Counter] = []
        self._tenant_req: List[Counter] = []
        self._device_hist: List[LatencyHistogram] = []
        self._tenant_hist: List[LatencyHistogram] = []

    def bind_array(self, array, devices: int, tenants: int) -> None:
        """Resolve the global handles plus one child per label value."""
        reg = self.registry
        if not self._bound:
            self._bound = True
            self.requests = reg.counter(f"{PREFIX}_requests_total")
            self.latency = reg.histogram(f"{PREFIX}_request_latency_us")
            self.kernel_batches = reg.counter(
                f"{PREFIX}_kernel_batches_total"
            )
            self.kernel_batched_requests = reg.counter(
                f"{PREFIX}_kernel_batched_requests_total"
            )
            self.kernel_fallbacks = reg.counter_vec(
                f"{PREFIX}_kernel_fallback_requests_total", "reason"
            )
            self.recorder.bind(reg, window_hist=self.latency.hist)
        self.device_requests = reg.counter_vec(
            f"{PREFIX}_requests_total", "device"
        )
        self.tenant_requests = reg.counter_vec(
            f"{PREFIX}_requests_total", "tenant"
        )
        self.device_latency = reg.histogram_vec(
            f"{PREFIX}_request_latency_us", "device"
        )
        self.tenant_latency = reg.histogram_vec(
            f"{PREFIX}_request_latency_us", "tenant"
        )
        #: dense child handles: the hot path indexes, never hashes.
        self._device_req = [
            self.device_requests.labels(i) for i in range(devices)
        ]
        self._tenant_req = [
            self.tenant_requests.labels(t) for t in range(tenants)
        ]
        self._device_hist = [
            self.device_latency.labels(i).hist for i in range(devices)
        ]
        self._tenant_hist = [
            self.tenant_latency.labels(t).hist for t in range(tenants)
        ]
        for i, lane in enumerate(array.lanes):
            gc = lane.scheme.gc_counters
            reg.gauge(
                f"{PREFIX}_gc_blocks_erased_total",
                (lambda g=gc: float(g.blocks_erased)),
                labels=(("device", str(i)),),
            )
            reg.gauge(
                f"{PREFIX}_gc_busy_us_total",
                (lambda g=gc: float(g.gc_busy_us)),
                labels=(("device", str(i)),),
            )
        reg.gauge(
            f"{PREFIX}_gc_blocks_erased_total",
            (
                lambda lanes=array.lanes: float(
                    sum(l.scheme.gc_counters.blocks_erased for l in lanes)
                )
            ),
        )

    def on_array_complete(
        self, device: int, tenant: int, now_us: float, latency_us: float
    ) -> None:
        """One finished request on ``device`` belonging to ``tenant``."""
        self.requests.value += 1.0
        self.latency.hist.record(latency_us)
        self._device_req[device].value += 1.0
        self._tenant_req[tenant].value += 1.0
        self._device_hist[device].record(latency_us)
        self._tenant_hist[tenant].record(latency_us)
        recorder = self.recorder
        if now_us >= recorder.next_due_us:
            recorder.sample(now_us)

    def on_array_batch(
        self,
        device: int,
        tenant_ids: np.ndarray,
        latencies_us: np.ndarray,
        end_us: float,
    ) -> None:
        """Batch-folded form for the epoch array kernel: one device's
        run of completions with their per-request tenant ids.

        Counter increments and histogram bucket counts are exact
        (``record_many`` is a fold of the same per-sample updates);
        the time-series recorder clocks at batch boundaries, the same
        deliberate cadence difference the single-device kernel has.
        """
        n = latencies_us.size
        if not n:
            return
        self.requests.value += float(n)
        self.latency.hist.record_many(latencies_us)
        self.kernel_batches.value += 1.0
        self.kernel_batched_requests.value += float(n)
        self._device_req[device].value += float(n)
        self._device_hist[device].record_many(latencies_us)
        for tenant in np.unique(tenant_ids):
            mask = tenant_ids == tenant
            self._tenant_req[int(tenant)].value += float(mask.sum())
            self._tenant_hist[int(tenant)].record_many(latencies_us[mask])
        recorder = self.recorder
        if end_us >= recorder.next_due_us:
            recorder.sample(end_us)


__all__ = [
    "ArrayMetrics",
    "Counter",
    "CounterVec",
    "DEFAULT_INTERVAL_US",
    "DeviceMetrics",
    "Gauge",
    "Histogram",
    "HistogramVec",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PREFIX",
    "sample_id",
]
