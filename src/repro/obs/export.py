"""Render a :class:`~repro.obs.metrics.MetricsSnapshot` for consumers.

Two families:

* :func:`prometheus_text` — OpenMetrics-style text snapshot of the
  final values: one ``# TYPE`` line per metric family (counter for the
  ``_total`` convention, gauge otherwise) followed by every sample in
  registration order.  This is the scrape-shaped view.
* :func:`series_jsonl` / :func:`series_csv` — the time series as one
  record per simulated-time sample, columns exactly as the
  :class:`~repro.obs.series.TimeSeriesRecorder` laid them out.

All output is deterministic (ordering follows registration order, and
floats are rendered with shortest-round-trip ``repr``), which is what
lets the test suite pin golden files from a seeded run.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterator, List

from repro.obs.metrics import MetricsSnapshot


def format_value(value: float) -> str:
    """Shortest deterministic rendering: integral floats lose the
    trailing ``.0``, everything else is shortest-round-trip repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _family(sample: str) -> str:
    return sample.split("{", 1)[0]


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """OpenMetrics-style text exposition of the final values."""
    lines: List[str] = []
    seen_families = set()
    for sample, value in snapshot.values.items():
        family = _family(sample)
        if family not in seen_families:
            seen_families.add(family)
            kind = "counter" if family.endswith("_total") else "gauge"
            lines.append(f"# TYPE {family} {kind}")
        lines.append(f"{sample} {format_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _series_rows(snapshot: MetricsSnapshot) -> Iterator[dict]:
    columns = list(snapshot.series)
    times = snapshot.times_us
    for i in range(snapshot.samples):
        row = {"t_us": float(times[i])}
        for name in columns:
            row[name] = float(snapshot.series[name][i])
        yield row


def series_jsonl(snapshot: MetricsSnapshot) -> str:
    """Time series as JSON Lines, one sample per line."""
    return "".join(
        json.dumps(row, separators=(",", ":")) + "\n"
        for row in _series_rows(snapshot)
    )


def series_csv(snapshot: MetricsSnapshot) -> str:
    """Time series as CSV with a ``t_us``-first header row."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    columns = list(snapshot.series)
    writer.writerow(["t_us"] + columns)
    times = snapshot.times_us
    for i in range(snapshot.samples):
        writer.writerow(
            [format_value(float(times[i]))]
            + [format_value(float(snapshot.series[name][i])) for name in columns]
        )
    return out.getvalue()


__all__ = ["format_value", "prometheus_text", "series_csv", "series_jsonl"]
