"""Hook fan-out so independent observers share one callback slot.

``SSD.gc_hook`` fires after every GC episode.  Before this module there
was exactly one slot, so the differential oracle's invariant checker
and any telemetry consumer fought over it.  :class:`HookMux` is a
callable list: the device owns one, observers register, and a single
``if hooks:`` test on the GC path dispatches to all of them in
registration order.

The mux is intentionally dumb — no priorities, no exception swallowing.
An invariant checker *wants* its ``AssertionError`` to propagate and
kill the run at the GC that broke the state; telemetry hooks should
never raise at all.
"""

from __future__ import annotations

from typing import Callable, List


class HookMux:
    """An ordered, callable collection of ``fn(ssd)`` hooks."""

    __slots__ = ("_hooks",)

    def __init__(self) -> None:
        self._hooks: List[Callable] = []

    def add(self, hook: Callable) -> Callable:
        """Register ``hook``; returns it (decorator-friendly)."""
        self._hooks.append(hook)
        return hook

    def remove(self, hook: Callable) -> None:
        """Unregister ``hook`` (ValueError if absent)."""
        self._hooks.remove(hook)

    def __call__(self, *args, **kwargs) -> None:
        for hook in self._hooks:
            hook(*args, **kwargs)

    def __len__(self) -> int:
        return len(self._hooks)

    def __bool__(self) -> bool:
        return bool(self._hooks)

    def __contains__(self, hook: Callable) -> bool:
        return hook in self._hooks
