"""Declarative SLO monitors over a metrics snapshot.

An :class:`SLObjective` names either a *series* target (a windowed
column of the time series, e.g. ``window_p99_us``: evaluated per
simulated-time window with rolling burn-rate) or a *value* target (a
final scalar, e.g. the ``cagc_waf`` gauge: a single end-of-run check).

Burn-rate semantics follow the SRE convention: each objective carries
an error *budget* — the fraction of windows allowed to violate the
limit.  ``burn_rate`` is the worst observed rolling-window violation
fraction divided by that budget, so 1.0 means the run consumed budget
exactly as fast as allowed and anything above means the tail was
burning hot.  The overall ``status`` is ``breach`` when the whole-run
violation fraction exceeds the budget.

:func:`gc_spike_annotations` closes the loop the paper cares about: it
correlates each violating window with the GC activity inside it (delta
of the sampled collect counter), so a p99 excursion is attributable to
a collect event rather than eyeballed from two separate plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.obs.metrics import MetricsSnapshot


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective against a snapshot."""

    name: str
    #: series column (kind="series") or final-values key (kind="value").
    target: str
    #: violation when the observed value exceeds this.
    limit: float
    kind: str = "series"
    #: allowed violating fraction of windows (the error budget).
    budget: float = 0.01
    #: rolling horizon, in samples, for burn-rate evaluation.
    burn_window: int = 8


def default_objectives(
    p99_us: float = 500.0, p999_us: float = 2_000.0, waf: float = 4.0
) -> List[SLObjective]:
    """The stock latency + WAF objectives the CLI evaluates."""
    return [
        SLObjective("p99-latency", "window_p99_us", p99_us),
        SLObjective("p999-latency", "window_p999_us", p999_us, budget=0.001),
        SLObjective("waf", "cagc_waf", waf, kind="value", budget=0.0),
    ]


def _rolling_worst_fraction(violating: np.ndarray, window: int) -> float:
    """Max violating fraction over any ``window`` consecutive samples."""
    n = violating.size
    if n == 0:
        return 0.0
    window = max(1, min(window, n))
    hits = np.convolve(violating.astype(np.float64), np.ones(window), "valid")
    return float(hits.max()) / window


def evaluate_slo(snapshot: MetricsSnapshot, objective: SLObjective) -> Dict:
    """One result row: worst value, violations, burn rate, status."""
    if objective.kind == "value":
        observed = float(snapshot.values.get(objective.target, 0.0))
        violations = int(observed > objective.limit)
        fraction = float(violations)
        worst_rolling = fraction
        windows = 1
        worst = observed
    else:
        column = snapshot.series.get(objective.target)
        if column is None or column.size == 0:
            column = np.zeros(0)
        violating = column > objective.limit
        windows = int(column.size)
        violations = int(violating.sum())
        fraction = violations / windows if windows else 0.0
        worst_rolling = _rolling_worst_fraction(violating, objective.burn_window)
        worst = float(column.max()) if windows else 0.0
    budget = objective.budget
    burn_rate = worst_rolling / budget if budget > 0 else float(violations)
    status = "breach" if fraction > budget else "ok"
    return {
        "objective": objective.name,
        "target": objective.target,
        "kind": objective.kind,
        "limit": objective.limit,
        "worst": worst,
        "windows": windows,
        "violations": violations,
        "violation_fraction": fraction,
        "budget": budget,
        "burn_rate": burn_rate,
        "status": status,
    }


def evaluate_slos(
    snapshot: MetricsSnapshot, objectives: Optional[List[SLObjective]] = None
) -> List[Dict]:
    if objectives is None:
        objectives = default_objectives()
    return [evaluate_slo(snapshot, objective) for objective in objectives]


#: sampled collect counters, in preference order, used to attribute a
#: tail excursion to GC activity inside the same window.
_GC_COLUMNS = (
    "cagc_gc_invocations_total",
    "cagc_gc_blocks_erased_total",
)


def gc_spike_annotations(
    snapshot: MetricsSnapshot,
    column: str = "window_p99_us",
    limit: float = 500.0,
) -> List[Dict]:
    """Annotate every window where ``column`` exceeds ``limit`` with the
    GC collects that landed inside it."""
    series = snapshot.series.get(column)
    if series is None or series.size == 0:
        return []
    gc_column = None
    for name in _GC_COLUMNS:
        if name in snapshot.series:
            gc_column = snapshot.series[name]
            break
    annotations: List[Dict] = []
    for i in np.flatnonzero(series > limit):
        i = int(i)
        gc_delta = 0.0
        if gc_column is not None:
            prev = float(gc_column[i - 1]) if i > 0 else 0.0
            gc_delta = float(gc_column[i]) - prev
        annotations.append(
            {
                "t_us": float(snapshot.times_us[i]),
                "value": float(series[i]),
                "gc_delta": gc_delta,
                "correlated": gc_delta > 0.0,
            }
        )
    return annotations


__all__ = [
    "SLObjective",
    "default_objectives",
    "evaluate_slo",
    "evaluate_slos",
    "gc_spike_annotations",
]
