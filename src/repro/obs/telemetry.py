"""Run-level telemetry: bounded-memory percentiles and GC attribution.

Two pieces:

* :class:`LatencyHistogram` — fixed log-spaced buckets covering 0.1 µs
  to ~100 s.  Recording is O(log buckets), memory is constant, and any
  percentile is answerable afterwards to within one bucket's relative
  width (~7%) — p50/p95/p99/p999 without storing half a million floats.
* :class:`RunTelemetry` — the aggregator the device layer feeds.  It
  subsumes the scattered end-of-run counters into one view: latency
  percentiles (histogram), per-phase GC time attribution (read / hash /
  write / erase busy time, carried by :class:`~repro.metrics.counters.
  GCCounters` since the phase fields landed there), and periodic
  sim-time snapshots into the device's existing
  :class:`~repro.metrics.timeline.TimelineRecorder`, uniform across all
  four schemes.

``RunTelemetry.from_result`` builds the same view from a cached
:class:`~repro.device.ssd.RunResult` (the ``cagc-repro report`` path),
so live runs and cache hits render identically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Histogram geometry: bucket upper edges grow by ``_GROWTH`` per step
#: from ``_FIRST_US``; values above the last edge land in an overflow
#: bucket whose midpoint is the max recorded value.
_FIRST_US = 0.1
_GROWTH = 1.07
_BUCKETS = 400  # 0.1us * 1.07^400 ~= 5.5e10 us >> any simulated run


def _bucket_edges() -> np.ndarray:
    return _FIRST_US * np.power(_GROWTH, np.arange(1, _BUCKETS + 1))


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile queries."""

    _EDGES = _bucket_edges()

    __slots__ = ("counts", "total", "max_us", "sum_us")

    def __init__(self) -> None:
        self.counts = np.zeros(_BUCKETS + 1, dtype=np.int64)  # +overflow
        self.total = 0
        self.max_us = 0.0
        self.sum_us = 0.0

    def record(self, latency_us: float) -> None:
        """Add one sample (O(log buckets))."""
        idx = int(np.searchsorted(self._EDGES, latency_us, side="left"))
        self.counts[idx] += 1
        self.total += 1
        self.sum_us += latency_us
        if latency_us > self.max_us:
            self.max_us = latency_us

    def record_many(self, latencies_us: np.ndarray) -> None:
        """Fold a batch of samples; exact vs. per-sample :meth:`record`.

        Bucket counts come from one searchsorted + bincount pass, the
        max from one reduction.  ``sum_us`` is folded with ``cumsum``
        seeded by the running sum — a strict left-to-right accumulation,
        so the result is bit-identical to repeated ``+=`` (a pairwise
        ``arr.sum()`` would not be).
        """
        arr = np.ascontiguousarray(latencies_us, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self._EDGES, arr, side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.total += int(arr.size)
        self.sum_us = float(
            np.cumsum(np.concatenate(([self.sum_us], arr)))[-1]
        )
        m = float(arr.max())
        if m > self.max_us:
            self.max_us = m

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyHistogram":
        """Bulk-build from an array (one vectorized pass)."""
        hist = cls()
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            return hist
        idx = np.searchsorted(cls._EDGES, arr, side="left")
        np.add.at(hist.counts, idx, 1)
        hist.total = int(arr.size)
        hist.sum_us = float(arr.sum())
        hist.max_us = float(arr.max())
        return hist

    def merge(self, other: "LatencyHistogram") -> None:
        self.counts += other.counts
        self.total += other.total
        self.sum_us += other.sum_us
        self.max_us = max(self.max_us, other.max_us)

    # ------------------------------------------------------------------ queries

    @property
    def mean_us(self) -> float:
        return self.sum_us / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100), to bucket resolution.

        Returns the upper edge of the bucket holding the p-th sample
        (the overflow bucket reports the recorded max).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of range")
        if self.total == 0:
            return 0.0
        rank = math.ceil(self.total * p / 100.0)
        rank = max(rank, 1)
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, rank, side="left"))
        if idx >= _BUCKETS:
            return self.max_us
        return float(min(self._EDGES[idx], self.max_us))

    def quantiles(self, ps: Sequence[float]) -> List[float]:
        return [self.percentile(p) for p in ps]

    def to_dict(self) -> dict:
        """Sparse export: only occupied buckets."""
        occupied = np.nonzero(self.counts)[0]
        return {
            "total": self.total,
            "max_us": self.max_us,
            "sum_us": self.sum_us,
            "buckets": {int(i): int(self.counts[i]) for i in occupied},
        }


#: GC phases in attribution order (matches the pipeline's resources).
GC_PHASES: Tuple[str, ...] = ("read", "hash", "write", "erase")


class RunTelemetry:
    """Live aggregator attached to a device (or built from a result).

    When attached to an :class:`~repro.device.ssd.SSD` the device calls
    :meth:`on_complete` once per finished request — a single predicated
    call, only when telemetry was requested — which feeds the latency
    histogram and, every ``snapshot_every_us`` of simulated time, a
    uniform state snapshot into the device's timeline:
    ``free_fraction``, ``blocks_erased``, ``pages_migrated``,
    ``gc_busy_us`` — the same series for every scheme.
    """

    def __init__(self, snapshot_every_us: Optional[float] = None) -> None:
        self.hist = LatencyHistogram()
        self.snapshot_every_us = snapshot_every_us
        self._next_snapshot_us = 0.0 if snapshot_every_us else math.inf
        self.snapshots = 0

    # ------------------------------------------------------------------ live path

    def on_complete(self, now_us: float, latency_us: float, ssd) -> None:
        """Per-request hook (device layer calls this when attached)."""
        self.hist.record(latency_us)
        if now_us >= self._next_snapshot_us:
            self.snapshot(now_us, ssd)
            # Skip ahead past any idle gap instead of emitting a backlog.
            interval = self.snapshot_every_us or math.inf
            self._next_snapshot_us = now_us + interval

    def on_batch(self, latencies_us: np.ndarray, end_us: float, ssd) -> None:
        """Batched form of :meth:`on_complete` for the vectorized replay.

        The histogram fold is exact (same counts, sum and max as the
        per-request path); state snapshots clock at the batch boundary
        — between batches the device state is identical to the event
        engine's, so a boundary snapshot matches a reference snapshot
        taken at the same simulated time.
        """
        self.hist.record_many(latencies_us)
        if end_us >= self._next_snapshot_us:
            self.snapshot(end_us, ssd)
            interval = self.snapshot_every_us or math.inf
            self._next_snapshot_us = end_us + interval

    def snapshot(self, now_us: float, ssd) -> None:
        """Sample the uniform state series into the device timeline."""
        scheme = ssd.scheme
        timeline = ssd.timeline
        timeline.sample("free_fraction", now_us, scheme.allocator.free_fraction())
        gc = scheme.gc_counters
        timeline.sample("blocks_erased", now_us, float(gc.blocks_erased))
        timeline.sample("pages_migrated", now_us, float(gc.pages_migrated))
        timeline.sample("gc_busy_us", now_us, gc.gc_busy_us)
        self.snapshots += 1

    # ------------------------------------------------------------------ reporting

    @classmethod
    def from_result(cls, result) -> "RunTelemetry":
        """Build the reporting view from a (possibly cached)
        :class:`~repro.device.ssd.RunResult`."""
        telemetry = cls()
        telemetry.hist = LatencyHistogram.from_samples(result.response_times_us)
        return telemetry

    @staticmethod
    def gc_phase_breakdown(gc) -> Dict[str, float]:
        """Per-phase GC busy time (µs) from a :class:`GCCounters`."""
        return {
            "read": gc.gc_read_us,
            "hash": gc.gc_hash_us,
            "write": gc.gc_write_us,
            "erase": gc.gc_erase_us,
        }

    @staticmethod
    def summary_rows(result) -> List[Tuple[str, str]]:
        """(metric, value) rows for the ``report`` table."""
        gc = result.gc
        io = result.io
        lat = result.latency
        hist = LatencyHistogram.from_samples(result.response_times_us)
        phases = RunTelemetry.gc_phase_breakdown(gc)
        phase_total = sum(phases.values())
        rows: List[Tuple[str, str]] = [
            ("requests", f"{lat.count:,}"),
            ("simulated time", f"{result.simulated_us / 1e6:.2f}s"),
            ("mean / p50 response", f"{lat.mean_us:.1f} / {lat.median_us:.1f}us"),
            (
                "p95 / p99 / p999",
                f"{lat.p95_us:.0f} / {lat.p99_us:.0f} / {lat.p999_us:.0f}us",
            ),
            (
                "p99 (histogram)",
                f"{hist.percentile(99.0):.0f}us ({hist.total:,} samples, "
                f"{int(np.count_nonzero(hist.counts))} buckets)",
            ),
            ("write amplification", f"{result.write_amplification():.3f}"),
            (
                "GC dedup ratio",
                f"{gc.dedup_skipped / gc.pages_examined:.1%}"
                if gc.pages_examined
                else "n/a",
            ),
            (
                "inline dedup ratio",
                f"{io.inline_dedup_hits / io.logical_pages_written:.1%}"
                if io.logical_pages_written
                else "n/a",
            ),
            ("blocks erased", f"{gc.blocks_erased:,}"),
            ("pages migrated", f"{gc.pages_migrated:,}"),
            ("promotions", f"{gc.promotions:,}"),
            ("GC invocations", f"{gc.gc_invocations:,}"),
            ("GC busy (makespan)", f"{gc.gc_busy_us / 1e3:.1f}ms"),
        ]
        for phase in GC_PHASES:
            us = phases[phase]
            share = f" ({us / phase_total:.0%})" if phase_total else ""
            rows.append((f"GC {phase} busy", f"{us / 1e3:.1f}ms{share}"))
        if result.buffer is not None:
            rows.append(
                ("buffer absorption", f"{result.buffer.absorption_ratio:.1%}")
            )
        return rows
