"""Structured run observability: tracing, telemetry, logging.

The simulator's core claim is a *timing-overlap* claim — CAGC hides the
fingerprint cost inside erase windows — so end-of-run aggregates are not
enough to trust it.  This package adds the instrumentation layer the
rest of the stack threads through:

* :class:`Tracer` (``repro.obs.trace``) — typed spans and instant events
  in simulated-time coordinates, one track per pipeline resource
  (foreground I/O, GC phases, each hash lane), exportable as JSONL or
  Chrome trace-event JSON loadable in Perfetto / ``chrome://tracing``;
* :class:`RunTelemetry` + :class:`LatencyHistogram`
  (``repro.obs.telemetry``) — fixed-bucket latency percentiles and
  per-phase GC time attribution without storing every sample;
* :mod:`repro.obs.log` — the one logger the CLI and scripts share
  (``--quiet`` / ``--verbose``);
* :class:`Heartbeat` (``repro.obs.heartbeat``) — wall-clock progress
  lines (sim time, events/sec, rolling ops/s, GC collects, ETA) to
  stderr for long replays;
* :class:`HookMux` (``repro.obs.hooks``) — fan-out for ``SSD.gc_hook``
  so oracle invariant checks and telemetry snapshots coexist;
* :class:`DeviceMetrics` / :class:`ArrayMetrics` (``repro.obs.metrics``)
  — the unified metrics registry: typed Counter/Gauge/Histogram handles
  resolved once at attach time, per-device/per-tenant label dimensions,
  a simulated-time :class:`~repro.obs.series.TimeSeriesRecorder`, and
  on top of it the exporters (``repro.obs.export``), declarative SLO
  monitors with burn-rate evaluation (``repro.obs.slo``) and cross-run
  regression diffing (``repro.obs.compare``).

Every instrumentation site in the hot path is a single
``if tracer is not None`` predicated call, so a run without a tracer
pays one attribute test per site and nothing more — the property the
``benchguard`` overhead test pins against ``BENCH_throughput.json``.
"""

from repro.obs.compare import compare_snapshots
from repro.obs.export import prometheus_text, series_csv, series_jsonl
from repro.obs.heartbeat import Heartbeat
from repro.obs.hooks import HookMux
from repro.obs.metrics import (
    ArrayMetrics,
    DeviceMetrics,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.series import TimeSeriesRecorder
from repro.obs.slo import SLObjective, default_objectives, evaluate_slos
from repro.obs.telemetry import LatencyHistogram, RunTelemetry
from repro.obs.trace import (
    TRACK_GC,
    TRACK_GC_READ,
    TRACK_GC_WRITE,
    TRACK_IO,
    TRACK_KERNEL,
    TraceEvent,
    Tracer,
    hash_lane_track,
    kernel_attribution,
    validate_chrome_trace,
)

__all__ = [
    "ArrayMetrics",
    "DeviceMetrics",
    "Heartbeat",
    "HookMux",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RunTelemetry",
    "SLObjective",
    "TimeSeriesRecorder",
    "compare_snapshots",
    "default_objectives",
    "evaluate_slos",
    "prometheus_text",
    "series_csv",
    "series_jsonl",
    "TRACK_GC",
    "TRACK_GC_READ",
    "TRACK_GC_WRITE",
    "TRACK_IO",
    "TRACK_KERNEL",
    "kernel_attribution",
    "TraceEvent",
    "Tracer",
    "hash_lane_track",
    "validate_chrome_trace",
]
