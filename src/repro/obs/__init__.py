"""Structured run observability: tracing, telemetry, logging.

The simulator's core claim is a *timing-overlap* claim — CAGC hides the
fingerprint cost inside erase windows — so end-of-run aggregates are not
enough to trust it.  This package adds the instrumentation layer the
rest of the stack threads through:

* :class:`Tracer` (``repro.obs.trace``) — typed spans and instant events
  in simulated-time coordinates, one track per pipeline resource
  (foreground I/O, GC phases, each hash lane), exportable as JSONL or
  Chrome trace-event JSON loadable in Perfetto / ``chrome://tracing``;
* :class:`RunTelemetry` + :class:`LatencyHistogram`
  (``repro.obs.telemetry``) — fixed-bucket latency percentiles and
  per-phase GC time attribution without storing every sample;
* :mod:`repro.obs.log` — the one logger the CLI and scripts share
  (``--quiet`` / ``--verbose``);
* :class:`Heartbeat` (``repro.obs.heartbeat``) — wall-clock progress
  lines (sim time, events/sec) to stderr for long replays;
* :class:`HookMux` (``repro.obs.hooks``) — fan-out for ``SSD.gc_hook``
  so oracle invariant checks and telemetry snapshots coexist.

Every instrumentation site in the hot path is a single
``if tracer is not None`` predicated call, so a run without a tracer
pays one attribute test per site and nothing more — the property the
``benchguard`` overhead test pins against ``BENCH_throughput.json``.
"""

from repro.obs.heartbeat import Heartbeat
from repro.obs.hooks import HookMux
from repro.obs.telemetry import LatencyHistogram, RunTelemetry
from repro.obs.trace import (
    TRACK_GC,
    TRACK_GC_READ,
    TRACK_GC_WRITE,
    TRACK_IO,
    TRACK_KERNEL,
    TraceEvent,
    Tracer,
    hash_lane_track,
    kernel_attribution,
    validate_chrome_trace,
)

__all__ = [
    "Heartbeat",
    "HookMux",
    "LatencyHistogram",
    "RunTelemetry",
    "TRACK_GC",
    "TRACK_GC_READ",
    "TRACK_GC_WRITE",
    "TRACK_IO",
    "TRACK_KERNEL",
    "kernel_attribution",
    "TraceEvent",
    "Tracer",
    "hash_lane_track",
    "validate_chrome_trace",
]
