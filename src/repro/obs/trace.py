"""Span tracing in simulated-time coordinates.

A :class:`Tracer` collects three kinds of events, all timestamped in
simulation microseconds:

* **spans** — an interval of work on a *track* (``name``, ``ts_us``,
  ``dur_us``): a request's service window, one page read inside GC, one
  hash-lane occupancy, one erase;
* **instants** — a point event (GC victim selection, a promotion);
* **counters** — a sampled numeric series (free blocks over time).

Tracks are plain strings naming the resource the event occupies.  The
stack expects the conventional tracks below; anything else is legal and
simply becomes another row in the viewer:

=================  ====================================================
``io``             foreground request service (reads/writes/trims,
                   write-buffer destages)
``gc``             GC bursts, per-victim collection spans, erases
``gc.read``        the GC read path (one page read at a time)
``gc.write``       the GC write path (migration programs)
``hash-lane-<i>``  one track per hash-engine lane (hash + lookup spans)
=================  ====================================================

Spans can be recorded two ways: :meth:`Tracer.span` with a known
duration (the simulator computes durations analytically, so this is the
common form), or :meth:`Tracer.begin` / :meth:`Tracer.end` which keep a
per-track stack and therefore guarantee well-nested spans — used for GC
bursts whose duration is only known at the end.

Exports: :meth:`Tracer.write` emits either JSONL (one event object per
line, schema mirroring :class:`TraceEvent`) or Chrome trace-event JSON
(the ``{"traceEvents": [...]}`` form), which loads directly in Perfetto
or ``chrome://tracing``.  :func:`validate_chrome_trace` checks a
document against the trace-event schema — the acceptance test for the
export path.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, Iterator, List, NamedTuple, Optional, Tuple, Union

TRACK_IO = "io"
TRACK_GC = "gc"
TRACK_GC_READ = "gc.read"
TRACK_GC_WRITE = "gc.write"
#: Batched-replay instrumentation: per-run ``batch`` spans (args carry
#: the request/page counts and wall time) plus ``batch-size`` and
#: ``fallback-rate`` counters, emitted by ``repro.kernel`` instead of
#: per-request ``io`` spans when the vectorized kernel is active.
TRACK_KERNEL = "kernel"
#: Array-level coordination events (``repro.array``): GC deferral
#: instants, token grants, stagger-window rotations, NCQ admission
#: stalls — everything that happens *between* devices rather than
#: inside one.
TRACK_ARRAY = "array"


def hash_lane_track(lane: int) -> str:
    """Track name for hash-engine lane ``lane`` (one track per lane)."""
    return f"hash-lane-{lane}"


class TraceEvent(NamedTuple):
    """One recorded event.  ``dur_us`` is ``None`` for instants and
    ``value`` is ``None`` for everything but counters."""

    kind: str  # "span" | "instant" | "counter"
    track: str
    name: str
    ts_us: float
    dur_us: Optional[float]
    value: Optional[float]
    args: Optional[Dict[str, Any]]


#: Chrome trace-event phase codes the exporter emits.
_PH_COMPLETE = "X"
_PH_INSTANT = "i"
_PH_COUNTER = "C"
_PH_METADATA = "M"


class Tracer:
    """Append-only event recorder with per-track begin/end stacks.

    ``limit`` bounds memory on very long replays: once reached, further
    events are counted (``dropped``) but not stored, so a runaway trace
    degrades gracefully instead of eating the heap.
    """

    __slots__ = ("_events", "_stacks", "limit", "dropped")

    def __init__(self, limit: Optional[int] = None) -> None:
        #: raw event rows, in record order (monotone ts per track).
        self._events: List[TraceEvent] = []
        #: open begin/end spans per track: (name, ts_us, args).
        self._stacks: Dict[str, List[Tuple[str, float, Optional[dict]]]] = {}
        self.limit = limit
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def _push(self, event: TraceEvent) -> None:
        if self.limit is not None and len(self._events) >= self.limit:
            self.dropped += 1
            return
        self._events.append(event)

    # ------------------------------------------------------------------ record

    def span(
        self, track: str, name: str, ts_us: float, dur_us: float, **args: Any
    ) -> None:
        """Record a complete span (duration known up front)."""
        self._push(TraceEvent("span", track, name, ts_us, dur_us, None, args or None))

    def instant(self, track: str, name: str, ts_us: float, **args: Any) -> None:
        """Record a point event."""
        self._push(TraceEvent("instant", track, name, ts_us, None, None, args or None))

    def counter(self, track: str, name: str, ts_us: float, value: float) -> None:
        """Record one sample of a numeric series."""
        self._push(TraceEvent("counter", track, name, ts_us, None, float(value), None))

    def begin(self, track: str, name: str, ts_us: float, **args: Any) -> None:
        """Open a span on ``track``; close it with :meth:`end`.

        Begin/end pairs nest per track (a stack), so spans recorded this
        way can never partially overlap on their track.
        """
        self._stacks.setdefault(track, []).append((name, ts_us, args or None))

    def end(self, track: str, ts_us: float, **args: Any) -> None:
        """Close the innermost open span on ``track``."""
        try:
            name, start_us, open_args = self._stacks[track].pop()
        except (KeyError, IndexError):
            raise ValueError(f"end() with no open span on track {track!r}") from None
        merged = open_args
        if args:
            merged = dict(open_args or ())
            merged.update(args)
        self._push(TraceEvent("span", track, name, start_us, ts_us - start_us, None, merged))

    def open_spans(self, track: str) -> int:
        """Number of spans currently open on ``track`` (tests/debug)."""
        return len(self._stacks.get(track, ()))

    def add_counters_from(self, series: Dict[str, Dict[str, List[float]]],
                          track: str = "timeline") -> None:
        """Fold a :meth:`TimelineRecorder.to_dict` export into counter
        events, so device time-series ride along in the same file."""
        for name, data in sorted(series.items()):
            for t, v in zip(data["times_us"], data["values"]):
                self.counter(track, name, t, v)

    # ------------------------------------------------------------------ read

    def kernel_attribution(self) -> Dict[str, float]:
        """Summarize the ``kernel`` track (see :func:`kernel_attribution`)."""
        return kernel_attribution(self)

    def events(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def tracks(self) -> List[str]:
        """Distinct tracks in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self._events:
            if event.track not in seen:
                seen[event.track] = None
        return list(seen)

    def spans(self, track: Optional[str] = None) -> List[TraceEvent]:
        return [
            e
            for e in self._events
            if e.kind == "span" and (track is None or e.track == track)
        ]

    # ------------------------------------------------------------------ export

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (``chrome://tracing`` /
        Perfetto ``JSON`` format): one thread (tid) per track, named via
        ``thread_name`` metadata events; spans as complete (``X``)
        events, instants as ``i``, counters as ``C``."""
        pid = 1
        tids: Dict[str, int] = {}
        out: List[dict] = []
        for track in self.tracks():
            tid = tids[track] = len(tids) + 1
            out.append(
                {
                    "ph": _PH_METADATA,
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        for e in self._events:
            row: Dict[str, Any] = {
                "name": e.name,
                "cat": e.track,
                "pid": pid,
                "tid": tids[e.track],
                "ts": e.ts_us,
            }
            if e.kind == "span":
                row["ph"] = _PH_COMPLETE
                row["dur"] = e.dur_us
            elif e.kind == "instant":
                row["ph"] = _PH_INSTANT
                row["s"] = "t"  # thread-scoped
            else:
                row["ph"] = _PH_COUNTER
                row["args"] = {e.name: e.value}
            if e.args:
                row.setdefault("args", {}).update(e.args)
            out.append(row)
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def write_chrome(self, fp: IO[str]) -> None:
        json.dump(self.to_chrome(), fp, separators=(",", ":"), sort_keys=True)
        fp.write("\n")

    def write_jsonl(self, fp: IO[str]) -> None:
        for e in self._events:
            doc: Dict[str, Any] = {
                "kind": e.kind,
                "track": e.track,
                "name": e.name,
                "ts_us": e.ts_us,
            }
            if e.dur_us is not None:
                doc["dur_us"] = e.dur_us
            if e.value is not None:
                doc["value"] = e.value
            if e.args:
                doc["args"] = e.args
            fp.write(json.dumps(doc, sort_keys=True))
            fp.write("\n")

    def write(self, path: Union[str, "os.PathLike"], fmt: str = "chrome") -> None:
        """Write the trace to ``path`` as ``chrome`` or ``jsonl``."""
        if fmt not in ("chrome", "jsonl"):
            raise ValueError(f"unknown trace format {fmt!r}")
        with open(str(path), "w", encoding="utf-8") as fp:
            if fmt == "chrome":
                self.write_chrome(fp)
            else:
                self.write_jsonl(fp)


def kernel_attribution(tracer: "Tracer") -> Dict[str, float]:
    """Attribute replay work between the vectorized and fallback paths.

    Folds the ``kernel`` track — ``batch`` spans from the vectorized
    kernels, ``fallback`` spans for every request the orchestrator
    routed through the reference slow path — into one summary dict:
    request counts per path, the host wall time each path consumed
    (from the spans' ``wall_us`` arg), the mean batch size, and the
    fallback rate.  Fallback spans carry a ``reason`` tag
    (``gc-trigger``, ``trim``, ``negative-fp``) folded into
    ``fallback_requests[<reason>]`` keys, and the GC kernels' own
    ``gc_fallback`` instants fold into ``gc_fallbacks[<reason>]`` —
    the per-reason attribution the ``report`` command surfaces.
    Empty track -> all-zero dict, so report surfaces can render it
    unconditionally.
    """
    batches = 0
    batched_requests = 0
    batched_pages = 0
    fallback_requests = 0
    vectorized_wall_us = 0.0
    fallback_wall_us = 0.0
    by_reason: Dict[str, int] = {}
    gc_by_reason: Dict[str, int] = {}
    for event in tracer.events():
        if event.track != TRACK_KERNEL:
            continue
        args = event.args or {}
        if event.kind == "instant":
            if event.name == "gc_fallback":
                reason = str(args.get("reason", "unspecified"))
                gc_by_reason[reason] = gc_by_reason.get(reason, 0) + 1
            continue
        if event.kind != "span":
            continue
        if event.name == "batch":
            batches += 1
            batched_requests += int(args.get("requests", 0))
            batched_pages += int(args.get("pages", 0))
            vectorized_wall_us += float(args.get("wall_us", 0.0))
        elif event.name == "fallback":
            count = int(args.get("requests", 1))
            fallback_requests += count
            fallback_wall_us += float(args.get("wall_us", 0.0))
            reason = str(args.get("reason", "unspecified"))
            by_reason[reason] = by_reason.get(reason, 0) + count
    total = batched_requests + fallback_requests
    out = {
        "batches": float(batches),
        "batched_requests": float(batched_requests),
        "batched_pages": float(batched_pages),
        "fallback_requests": float(fallback_requests),
        "fallback_rate": (fallback_requests / total) if total else 0.0,
        "mean_batch_requests": (batched_requests / batches) if batches else 0.0,
        "vectorized_wall_us": vectorized_wall_us,
        "fallback_wall_us": fallback_wall_us,
    }
    for reason in sorted(by_reason):
        out[f"fallback_requests[{reason}]"] = float(by_reason[reason])
    for reason in sorted(gc_by_reason):
        out[f"gc_fallbacks[{reason}]"] = float(gc_by_reason[reason])
    return out


def validate_chrome_trace(doc: dict) -> List[str]:
    """Schema-check a Chrome trace-event document.

    Returns the track names declared by ``thread_name`` metadata, or
    raises ``ValueError`` describing the first violation.  Checks the
    subset of the trace-event format the viewers actually require:
    ``traceEvents`` list, per-event ``ph``/``pid``/``tid``/``name``,
    ``ts``+``dur`` on complete events, a scope on instants, numeric args
    on counters, and consistent thread naming.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    tracks: Dict[Tuple[int, int], str] = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise ValueError(f"event {i} is not an object")
        ph = e.get("ph")
        if ph not in (_PH_COMPLETE, _PH_INSTANT, _PH_COUNTER, _PH_METADATA):
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        for key in ("pid", "tid", "name"):
            if key not in e:
                raise ValueError(f"event {i}: missing {key!r}")
        if ph == _PH_METADATA:
            if e["name"] == "thread_name":
                tracks[(e["pid"], e["tid"])] = e["args"]["name"]
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i}: bad ts {ts!r}")
        if ph == _PH_COMPLETE:
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i}: complete event with bad dur {dur!r}")
        if ph == _PH_INSTANT and e.get("s") not in ("t", "p", "g"):
            raise ValueError(f"event {i}: instant without scope")
        if ph == _PH_COUNTER:
            args = e.get("args")
            if not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(f"event {i}: counter without numeric args")
        if (e["pid"], e["tid"]) not in tracks:
            raise ValueError(f"event {i}: tid {e['tid']} has no thread_name")
    return list(tracks.values())
