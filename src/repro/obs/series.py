"""Simulated-time sampling of a metrics registry into columnar arrays.

:class:`TimeSeriesRecorder` is the bridge between the live
:class:`~repro.obs.metrics.MetricsRegistry` and the persisted
:class:`~repro.obs.metrics.MetricsSnapshot`: every ``interval_us`` of
*simulated* time (clocked by request completions / batch boundaries, so
replays are deterministic regardless of host speed or worker fan-out)
it appends one row of samples — every counter, every sampled gauge,
plus three derived **windowed** columns from the main latency
histogram:

* ``window_ops`` — requests completed since the previous sample;
* ``window_p99_us`` / ``window_p999_us`` — tail percentiles of *only*
  that window, computed from the bucket-count delta between samples
  (O(buckets) per tick, no sample storage) — the series the SLO
  monitors run burn-rate evaluation over, and the one that makes GC
  latency spikes visible instead of being averaged into the cumulative
  distribution.

Memory is bounded: past ``max_samples`` rows the recorder halves its
resolution in place (keeps every other row, doubles the interval), so
an arbitrarily long replay yields a compact, uniformly-spaced series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.telemetry import LatencyHistogram

from repro.obs.metrics import DEFAULT_INTERVAL_US

#: decimation bound: the series never holds more rows than this.
MAX_SAMPLES = 4096


def percentile_from_counts(
    counts: np.ndarray, total: int, max_us: float, p: float
) -> float:
    """Percentile of an arbitrary bucket-count vector over the shared
    log-bucket geometry (the windowed-delta variant of
    :meth:`LatencyHistogram.percentile`)."""
    if total <= 0:
        return 0.0
    rank = max(math.ceil(total * p / 100.0), 1)
    cum = np.cumsum(counts)
    idx = int(np.searchsorted(cum, rank, side="left"))
    edges = LatencyHistogram._EDGES
    if idx >= edges.size:
        return max_us
    return float(min(edges[idx], max_us)) if max_us > 0.0 else float(edges[idx])


class TimeSeriesRecorder:
    """Columnar simulated-time series over a metrics registry."""

    def __init__(
        self,
        interval_us: float = DEFAULT_INTERVAL_US,
        max_samples: int = MAX_SAMPLES,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        if max_samples < 8:
            raise ValueError("max_samples must be >= 8")
        self.interval_us = float(interval_us)
        self.max_samples = int(max_samples)
        #: the device compares against this on the hot path; sampling
        #: advances it past idle gaps instead of emitting a backlog.
        self.next_due_us = 0.0
        self.samples = 0
        self._registry = None
        self._window_hist: Optional[LatencyHistogram] = None
        self._last_counts: Optional[np.ndarray] = None
        self._last_total = 0
        #: (column name, instrument) pairs, frozen at the first sample.
        self._columns: Optional[List[Tuple[str, object]]] = None
        self._times = np.zeros(64)
        self._data: Dict[str, np.ndarray] = {}

    def bind(self, registry, window_hist: Optional[LatencyHistogram] = None) -> None:
        self._registry = registry
        self._window_hist = window_hist
        if window_hist is not None:
            self._last_counts = window_hist.counts.copy()
            self._last_total = window_hist.total

    # ------------------------------------------------------------ sampling

    def _freeze_columns(self) -> None:
        """Fix the column set: every plain counter and sampled gauge.

        Label-vec children are deliberately excluded — they can appear
        lazily mid-run (e.g. the first ``negative-fp`` kernel fallback),
        which would tear the columnar layout; their finals live in the
        snapshot's values dict instead.
        """
        from repro.obs.metrics import Counter, Gauge

        columns: List[Tuple[str, object]] = []
        if self._registry is not None:
            for instrument in self._registry._instruments.values():
                if isinstance(instrument, Counter):
                    columns.append((instrument.name, instrument))
                elif isinstance(instrument, Gauge) and instrument.sampled:
                    from repro.obs.metrics import sample_id

                    columns.append(
                        (sample_id(instrument.name, instrument.labels), instrument)
                    )
        self._columns = columns
        size = self._times.size
        for name, _ in columns:
            self._data[name] = np.zeros(size)
        if self._window_hist is not None:
            for name in ("window_ops", "window_p99_us", "window_p999_us"):
                self._data[name] = np.zeros(size)

    def sample(self, now_us: float) -> None:
        """Append one row and re-arm the cadence."""
        if self._columns is None:
            self._freeze_columns()
        n = self.samples
        if n == self._times.size:
            self._grow_or_decimate()
            n = self.samples
        self._times[n] = now_us
        for name, instrument in self._columns:
            self._data[name][n] = instrument.sample()
        hist = self._window_hist
        if hist is not None:
            delta = hist.counts - self._last_counts
            ops = hist.total - self._last_total
            self._data["window_ops"][n] = float(ops)
            self._data["window_p99_us"][n] = percentile_from_counts(
                delta, ops, hist.max_us, 99.0
            )
            self._data["window_p999_us"][n] = percentile_from_counts(
                delta, ops, hist.max_us, 99.9
            )
            self._last_counts = hist.counts.copy()
            self._last_total = hist.total
        self.samples = n + 1
        self.next_due_us = now_us + self.interval_us

    def _grow_or_decimate(self) -> None:
        size = self._times.size
        if size < self.max_samples:
            new = min(size * 2, self.max_samples)
            self._times = np.resize(self._times, new)
            for name in self._data:
                self._data[name] = np.resize(self._data[name], new)
            return
        # At the bound: halve resolution in place.  Keeping the odd
        # rows (1, 3, 5, ...) preserves the most recent sample and the
        # doubled-interval spacing.
        half = size // 2
        self._times[:half] = self._times[1::2]
        for name in self._data:
            col = self._data[name]
            col[:half] = col[1::2]
        self.samples = half
        self.interval_us *= 2.0

    # ------------------------------------------------------------- export

    def arrays(self) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Trimmed copies: ``(times_us, {column: values})``."""
        n = self.samples
        return (
            self._times[:n].copy(),
            {name: col[:n].copy() for name, col in self._data.items()},
        )


__all__ = ["MAX_SAMPLES", "TimeSeriesRecorder", "percentile_from_counts"]
