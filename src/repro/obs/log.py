"""The one logger the CLI, scripts and tools share.

Status and diagnostic chatter goes through here (stderr, level-gated by
``--quiet`` / ``--verbose``); *results* — report tables, experiment
output — stay on stdout, because they are the program's product, not
commentary about producing it.

Usage::

    from repro.obs import log
    log.setup(verbosity=args.verbose - args.quiet)
    log.info("warmed %d runs in %.1fs", n, wall)

``setup`` is idempotent and safe to call from tests; handlers attach to
the ``"cagc"`` logger only, never the root, so embedding applications
keep control of global logging.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

logger = logging.getLogger("cagc")

debug = logger.debug
info = logger.info
warning = logger.warning
error = logger.error

_HANDLER: Optional[logging.Handler] = None


def setup(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install the stderr handler and set the level.

    ``verbosity`` is ``--verbose`` count minus ``--quiet`` count:
    ``<= -1`` shows warnings and errors only, ``0`` (default) shows
    info, ``>= 1`` shows debug.
    """
    global _HANDLER
    if verbosity <= -1:
        level = logging.WARNING
    elif verbosity == 0:
        level = logging.INFO
    else:
        level = logging.DEBUG
    if _HANDLER is not None:
        logger.removeHandler(_HANDLER)
    _HANDLER = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _HANDLER.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(_HANDLER)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def add_verbosity_args(parser) -> None:
    """Attach the shared ``-q`` / ``-v`` flags to an argparse parser."""
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="show debug-level status messages",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="only show warnings and errors",
    )


def setup_from_args(args) -> logging.Logger:
    """``setup`` from the flags ``add_verbosity_args`` installed."""
    return setup(verbosity=getattr(args, "verbose", 0) - getattr(args, "quiet", 0))
