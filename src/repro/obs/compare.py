"""Cross-run regression diffing over two metrics snapshots.

``report --compare RUN_A RUN_B`` resolves both runs through the cache,
aligns their snapshots metric-by-metric, and renders the rows produced
here: absolute and relative deltas for every final value, plus
``max``/``mean`` aggregates of each time-series column (so a tail
excursion that never moves the end-of-run aggregate — a transient GC
spike — still shows up in the diff).  A row is *flagged* when its
relative delta exceeds the threshold, or when the metric exists on only
one side; comparing a run against itself flags nothing, which CI pins.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsSnapshot

#: default relative-delta flagging threshold — far tighter than the
#: bench guard's 25% wall-clock bar because simulated metrics carry no
#: timing noise: any drift is a behavioral change.
DEFAULT_THRESHOLD = 0.05


def _aligned_rows(
    a: Dict[str, float], b: Dict[str, float]
) -> List[Dict]:
    rows: List[Dict] = []
    names = list(a) + [name for name in b if name not in a]
    for name in names:
        in_a = name in a
        in_b = name in b
        va = a.get(name)
        vb = b.get(name)
        delta = (vb - va) if in_a and in_b else None
        if delta is not None:
            base = abs(va)
            rel = (delta / base) if base > 0 else (0.0 if delta == 0.0 else math.inf)
        else:
            rel = None
        rows.append(
            {"metric": name, "a": va, "b": vb, "delta": delta, "rel": rel}
        )
    return rows


def _series_aggregates(snapshot: MetricsSnapshot) -> Dict[str, float]:
    aggregates: Dict[str, float] = {}
    for name, column in snapshot.series.items():
        if column.size == 0:
            continue
        aggregates[f"series:{name}:max"] = float(column.max())
        aggregates[f"series:{name}:mean"] = float(column.mean())
    return aggregates


def compare_snapshots(
    a: MetricsSnapshot,
    b: MetricsSnapshot,
    threshold: float = DEFAULT_THRESHOLD,
    include_series: bool = True,
) -> List[Dict]:
    """Aligned per-metric delta rows, flagged against ``threshold``."""
    values_a = dict(a.values)
    values_b = dict(b.values)
    if include_series:
        values_a.update(_series_aggregates(a))
        values_b.update(_series_aggregates(b))
    rows = _aligned_rows(values_a, values_b)
    for row in rows:
        if row["delta"] is None:
            row["flagged"] = True  # present on one side only
        else:
            row["flagged"] = bool(row["rel"] > threshold or row["rel"] < -threshold)
    return rows


def flagged(rows: List[Dict]) -> List[Dict]:
    return [row for row in rows if row["flagged"]]


def summarize(rows: List[Dict], threshold: float = DEFAULT_THRESHOLD) -> Dict:
    hot = flagged(rows)
    return {
        "metrics": len(rows),
        "flagged": len(hot),
        "threshold": threshold,
        "clean": not hot,
    }


__all__ = [
    "DEFAULT_THRESHOLD",
    "compare_snapshots",
    "flagged",
    "summarize",
]
