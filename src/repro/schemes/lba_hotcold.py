"""LBA-based hot/cold separation (the related-work comparator).

The paper's related work (section V) notes that prior GC optimizations
identify hot and cold data from *spatial* locality — logical block
addresses — whereas CAGC uses *content* locality via reference counts.
This scheme implements the spatial alternative so the two signals can
be compared head-to-head: no deduplication anywhere; during GC
migration, pages whose LPN has historically been rewritten at least
``hot_write_threshold`` times go to the hot region, all others to the
cold region.

The comparison (``ablation-separation``) shows where each signal wins:
LBA separation helps every workload a little, while refcount separation
plus GC-dedup helps in proportion to the workload's content redundancy.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.config import SSDConfig
from repro.ftl.allocator import Region
from repro.ftl.gc.policy import VictimPolicy
from repro.schemes.base import FTLScheme, WriteOutcome

_ONE_PROGRAM = WriteOutcome(programs=1, hashed_pages=0, dedup_hits=0)


class LBAHotColdScheme(FTLScheme):
    """Baseline + spatial (write-frequency) hot/cold separation."""

    name = "lba-hotcold"
    #: Foreground writes always program hot (heat only matters at GC
    #: migration time), so the bulk fast path applies; the per-LPN write
    #: counting moves into :meth:`_note_user_writes`.
    bulk_user_writes = True

    def __init__(
        self,
        config: SSDConfig,
        policy: Optional[VictimPolicy] = None,
        hot_write_threshold: int = 2,
    ) -> None:
        super().__init__(config, policy=policy)
        if hot_write_threshold < 1:
            raise ValueError("hot_write_threshold must be >= 1")
        self.hot_write_threshold = hot_write_threshold
        #: lifetime write count per LPN — the spatial heat signal.
        self.lpn_writes: Dict[int, int] = defaultdict(int)
        self._max_cold_blocks = int(config.geometry.blocks * config.cold_region_ratio)

    def write_page(self, lpn: int, fp: int, now_us: float) -> WriteOutcome:
        self.lpn_writes[lpn] += 1
        self._program_new(lpn, fp, Region.HOT, now_us)
        return _ONE_PROGRAM

    def _note_user_writes(self, lpn: int, npages: int) -> None:
        lpn_writes = self.lpn_writes
        for offset in range(npages):
            lpn_writes[lpn + offset] += 1

    def trim_request(self, lpn: int, npages: int, now_us: float) -> int:
        for offset in range(npages):
            self.lpn_writes.pop(lpn + offset, None)
        return super().trim_request(lpn, npages, now_us)

    def _is_hot_lpn(self, lpn: int) -> bool:
        return self.lpn_writes.get(lpn, 0) >= self.hot_write_threshold

    def _migration_region(self, ppn: int) -> int:
        """Spatial placement decision at GC migration time.

        A physical page maps to exactly one LPN here (no dedup), so the
        page's heat is its LPN's write frequency.  Cold placement is
        capped like CAGC's to keep the comparison fair.
        """
        lpns = self.mapping.lpns_of(ppn)
        hot = any(self._is_hot_lpn(lpn) for lpn in lpns)
        if hot:
            return Region.HOT
        if self.allocator.region_blocks[Region.COLD] >= self._max_cold_blocks:
            return Region.HOT
        return Region.COLD
