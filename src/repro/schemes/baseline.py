"""Baseline scheme: a plain ULL SSD with no deduplication anywhere.

Every logical page write programs a fresh physical page; overwrites
invalidate the old page; GC copies valid pages verbatim (Fig 3's
traditional workflow).  This is the paper's "Baseline" bar.
"""

from __future__ import annotations

from repro.ftl.allocator import Region
from repro.schemes.base import FTLScheme, WriteOutcome

_ONE_PROGRAM = WriteOutcome(programs=1, hashed_pages=0, dedup_hits=0)


class BaselineScheme(FTLScheme):
    """No dedup: one program per logical page write."""

    name = "baseline"
    bulk_user_writes = True  # plain hot-region programs: bulk-run eligible

    def write_page(self, lpn: int, fp: int, now_us: float) -> WriteOutcome:
        self._program_new(lpn, fp, Region.HOT, now_us)
        return _ONE_PROGRAM
