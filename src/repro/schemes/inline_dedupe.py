"""Inline deduplication on the foreground write path.

Every incoming page is hashed and looked up in the fingerprint index
*before* the flash program — the classic CA-SSD/CAFTL design the paper
uses as the "Inline-Dedupe" comparison point.  Duplicate pages skip the
program entirely (metadata-only write), but every page pays the hash +
lookup latency serially on the critical path, which is what erodes an
ultra-low-latency device's advantage (paper Fig 2).
"""

from __future__ import annotations

from repro.ftl.allocator import Region
from repro.schemes.base import FTLScheme, WriteOutcome

_HIT = WriteOutcome(programs=0, hashed_pages=1, dedup_hits=1)
_MISS = WriteOutcome(programs=1, hashed_pages=1, dedup_hits=0)


class InlineDedupeScheme(FTLScheme):
    """Hash-before-write dedup (CA-SSD / CAFTL style)."""

    name = "inline-dedupe"

    def write_page(self, lpn: int, fp: int, now_us: float) -> WriteOutcome:
        canonical = self.index.lookup(fp)
        if canonical is not None:
            old = self.mapping.bind(lpn, canonical)
            self.tracker.observe(canonical, self.mapping.refcount(canonical))
            if old is not None and old != canonical:
                self._release_if_dead(old)
            return _HIT
        ppn = self._program_new(lpn, fp, Region.HOT, now_us)
        self.index.insert(fp, ppn)
        return _MISS
