"""FTL schemes: Baseline, Inline-Dedupe, and (in repro.core) CAGC."""

from repro.schemes.base import FTLScheme, WriteOutcome, GCBlockOutcome
from repro.schemes.baseline import BaselineScheme
from repro.schemes.inline_dedupe import InlineDedupeScheme
from repro.schemes.lba_hotcold import LBAHotColdScheme


def make_scheme(name: str, config, policy=None):
    """Instantiate a scheme by name: ``baseline``, ``inline-dedupe``,
    ``cagc``, or the related-work comparator ``lba-hotcold``."""
    from repro.core.cagc import CAGCScheme

    schemes = {
        "baseline": BaselineScheme,
        "inline-dedupe": InlineDedupeScheme,
        "cagc": CAGCScheme,
        "lba-hotcold": LBAHotColdScheme,
    }
    try:
        cls = schemes[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(schemes)}"
        ) from None
    return cls(config, policy=policy)


__all__ = [
    "FTLScheme",
    "WriteOutcome",
    "GCBlockOutcome",
    "BaselineScheme",
    "InlineDedupeScheme",
    "LBAHotColdScheme",
    "make_scheme",
]
