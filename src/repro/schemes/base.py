"""Common FTL machinery shared by all three schemes.

An :class:`FTLScheme` owns the full FTL state — flash array, block
allocator, mapping table, fingerprint index, refcount tracker — and
implements the state transitions for user I/O and garbage collection.
Subclasses specialize three points:

* :meth:`write_page` — what happens on one logical page write
  (Baseline: always program; Inline-Dedupe: hash-then-maybe-program;
  CAGC: program, dedup deferred to GC);
* :meth:`collect_block` — how a victim block's valid pages migrate
  (Baseline/Inline: plain copy; CAGC: dedup + refcount placement with
  the overlapped hash pipeline);
* service-time composition hooks used by the device layer.

The scheme mutates state and reports *structural* outcomes (pages
programmed, pages hashed, GC durations); the device layer turns those
into response times.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SSDConfig
from repro.dedup.fingerprint import PageFingerprints
from repro.dedup.index import FingerprintIndex
from repro.dedup.refcount import PeakStore, RefcountTracker
from repro.flash.chip import FlashArray, PageState
from repro.flash.timing import FlashTiming
from repro.ftl.allocator import BlockAllocator, Region, WearAwareAllocator
from repro.ftl.gc import make_policy
from repro.ftl.gc.index import VictimIndex
from repro.ftl.gc.policy import VictimPolicy
from repro.ftl.mapping import MappingTable
from repro.ftl.wear import WearStats, wear_stats
from repro.metrics.counters import GCCounters, IOCounters


@dataclass(frozen=True)
class WriteOutcome:
    """Structural result of one user write request."""

    #: physical page programs performed (drives flash write time).
    programs: int
    #: pages hashed on the critical path (inline dedup only).
    hashed_pages: int
    #: pages satisfied by inline dedup hits.
    dedup_hits: int


@dataclass(frozen=True)
class StateSnapshot:
    """Scheme-independent view of the FTL state for differential
    comparison against :class:`repro.oracle.model.OracleSSD`.

    Everything here is derived from the live structures at call time
    (O(live pages)); nothing is cached, so a snapshot is always honest.
    """

    #: LPN -> content fingerprint for every live logical page.
    content: Dict[int, int]
    #: content fingerprint -> total LPN referrers across all physical
    #: copies of that content.
    content_referrers: Dict[int, int]
    #: live (mapped) physical pages.
    live_pages: int
    write_requests: int
    read_requests: int
    trim_requests: int
    logical_pages_written: int
    pages_read: int
    user_pages_programmed: int
    inline_dedup_hits: int
    total_programs: int
    total_erases: int
    blocks_erased: int
    pages_migrated: int
    free_blocks: int


@dataclass(frozen=True)
class GCBlockOutcome:
    """Structural + timing result of collecting one victim block."""

    victim: int
    duration_us: float
    pages_examined: int
    pages_migrated: int
    dedup_skipped: int
    promotions: int
    #: per-resource busy-time attribution (µs) for this block — how long
    #: the read path / hash lanes / write path / erase were occupied.
    #: Computed analytically from the page counts, so it costs nothing
    #: on the hot path; folds into ``GCCounters.gc_*_us``.
    read_us: float = 0.0
    hash_us: float = 0.0
    write_us: float = 0.0
    erase_us: float = 0.0


def _watermark_blocks(watermark: float, blocks: int) -> int:
    """Smallest free-block count at/above ``watermark``.

    Returns ``t`` such that ``free < t  <=>  free / blocks < watermark``
    for every integer ``free`` — the exact integer form of the float
    fraction comparison, so the hot path can test a plain ``int`` per
    write instead of dividing.
    """
    t = int(watermark * blocks)
    while t > 0 and (t - 1) / blocks >= watermark:
        t -= 1
    while t < blocks and t / blocks < watermark:
        t += 1
    return t


class FTLScheme(abc.ABC):
    """Base FTL: state, bookkeeping, and the GC driver loop."""

    name: str = "abstract"

    #: Schemes whose foreground write path is "always program into the
    #: hot region" (no per-page hashing) set this to take the bulk
    #: write_request fast path: contiguous pages program in block-sized
    #: runs with one mapping-bind sweep instead of a per-page call chain.
    bulk_user_writes: bool = False

    def __init__(
        self,
        config: SSDConfig,
        policy: Optional[VictimPolicy] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.timing = FlashTiming(config.timing)
        self.flash = FlashArray(config.geometry)
        allocator_cls = (
            WearAwareAllocator if config.wear_aware_allocation else BlockAllocator
        )
        self.allocator = allocator_cls(self.flash)
        # Columnar state, preallocated to the device geometry: the flat
        # arrays never rehash or grow during replay, and the footprint
        # is the geometry-proportional figure a real FTL would budget.
        n_pages = config.geometry.total_pages
        self.mapping = MappingTable(
            logical_pages=config.logical_pages, physical_pages=n_pages
        )
        self.index = FingerprintIndex(physical_pages=n_pages)
        self.tracker = RefcountTracker(peaks=PeakStore(n_pages))
        #: content fingerprint of every live physical page.
        self.page_fp = PageFingerprints(n_pages)
        self.policy = policy if policy is not None else make_policy("greedy")
        #: Optional :class:`repro.obs.Tracer`.  The device layer sets
        #: this when the run is traced; every instrumentation site below
        #: is predicated on ``tracer is not None`` so an untraced run
        #: pays one attribute test per site.
        self.tracer = None
        #: Incremental GC candidate index; kept in sync by the flash
        #: array's mutation hooks from here on.
        self.victim_index = VictimIndex(self.flash)
        self.flash.victim_index = self.victim_index
        self.gc_counters = GCCounters()
        self.io_counters = IOCounters()
        # Integer free-block thresholds equivalent to the configured
        # watermark fractions (checked on every write; see needs_gc).
        blocks = self.flash.blocks
        self._gc_trigger_blocks = _watermark_blocks(config.gc_watermark, blocks)
        self._gc_stop_blocks = _watermark_blocks(config.gc_stop_watermark, blocks)

    # ------------------------------------------------------------------ user I/O

    def write_request(self, lpn: int, fps: Sequence[int], now_us: float) -> WriteOutcome:
        """Apply an n-page write; returns the aggregate outcome."""
        # One bulk ndarray -> list conversion instead of one int() boxing
        # per page (fps is a view into the trace's flat fingerprint array).
        values = fps.tolist() if hasattr(fps, "tolist") else list(fps)
        if self.bulk_user_writes:
            programs = self._bulk_program_hot(lpn, values, now_us)
            hashed = 0
            hits = 0
        else:
            programs = 0
            hashed = 0
            hits = 0
            write_page = self.write_page
            for offset, fp in enumerate(values):
                out = write_page(lpn + offset, fp, now_us)
                programs += out.programs
                hashed += out.hashed_pages
                hits += out.dedup_hits
        io = self.io_counters
        io.write_requests += 1
        io.logical_pages_written += len(values)
        io.user_pages_programmed += programs
        io.inline_dedup_hits += hits
        return WriteOutcome(programs=programs, hashed_pages=hashed, dedup_hits=hits)

    def _bulk_program_hot(self, lpn: int, values: Sequence[int], now_us: float) -> int:
        """Program ``values`` into the hot region in block-sized runs.

        The fast path for schemes without foreground hashing: the flash
        programs land as one :meth:`BlockAllocator.allocate_run` sweep
        per active-block stretch, then a single loop binds mappings,
        records fingerprints and releases overwritten pages — the same
        state transitions as per-page :meth:`write_page` calls, minus
        the per-page call chain and NumPy scalar traffic.
        """
        n = len(values)
        self._note_user_writes(lpn, n)
        allocator = self.allocator
        bind = self.mapping.bind
        # Raw columns: allocated PPNs are in range by construction and
        # trace fingerprints are non-negative, so the flat stores can be
        # indexed directly instead of through their dict-protocol shims.
        fp_col = self.page_fp.column()
        peak_col = self.tracker.peaks.column()
        release_if_dead = self._release_if_dead
        done = 0
        while done < n:
            base, count = allocator.allocate_run(Region.HOT, n - done, now_us)
            for i in range(count):
                ppn = base + i
                old = bind(lpn + done + i, ppn)
                fp_col[ppn] = values[done + i]
                if peak_col[ppn] < 1:  # tracker.observe(ppn, 1), inlined
                    peak_col[ppn] = 1
                if old is not None and old != ppn:
                    release_if_dead(old)
            done += count
        return n

    def _note_user_writes(self, lpn: int, npages: int) -> None:
        """Hook for per-LPN bookkeeping on the bulk write path (the
        spatial hot/cold scheme counts write frequency here)."""

    def destage(self, pages: Sequence[Tuple[int, int]], now_us: float) -> WriteOutcome:
        """Apply write-buffer destages: ``(lpn, fp)`` pairs, possibly
        discontiguous.  Accounted like user page writes (they are the
        flash-visible write traffic)."""
        programs = 0
        hashed = 0
        hits = 0
        for lpn, fp in pages:
            out = self.write_page(lpn, fp, now_us)
            programs += out.programs
            hashed += out.hashed_pages
            hits += out.dedup_hits
        self.io_counters.logical_pages_written += len(pages)
        self.io_counters.user_pages_programmed += programs
        self.io_counters.inline_dedup_hits += hits
        return WriteOutcome(programs=programs, hashed_pages=hashed, dedup_hits=hits)

    def read_request(self, lpn: int, npages: int) -> int:
        """Apply an n-page read; returns pages that are actually mapped."""
        self.io_counters.read_requests += 1
        self.io_counters.pages_read += npages
        return self.mapping.mapped_count(lpn, npages)

    def trim_request(self, lpn: int, npages: int, now_us: float) -> int:
        """Drop mappings for an extent (file delete); returns pages trimmed."""
        self.io_counters.trim_requests += 1
        trimmed = 0
        for offset in range(npages):
            old = self.mapping.unbind(lpn + offset)
            if old is not None:
                self._release_if_dead(old)
                trimmed += 1
        return trimmed

    @abc.abstractmethod
    def write_page(self, lpn: int, fp: int, now_us: float) -> WriteOutcome:
        """Apply a single logical page write."""

    # ------------------------------------------------------------------ GC driver

    def needs_gc(self) -> bool:
        return self.allocator.free_blocks < self._gc_trigger_blocks

    def needs_background_gc(self) -> bool:
        """Idle-time GC runs until the stop watermark (preemptive mode)."""
        return self.allocator.free_blocks < self._gc_stop_blocks

    def run_gc(self, now_us: float) -> float:
        """Run a GC burst until the stop watermark; returns busy time."""
        if not self.needs_gc():
            return 0.0
        self.gc_counters.gc_invocations += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("gc", "gc-burst", now_us, free_blocks=self.allocator.free_blocks)
        duration = 0.0
        stop = self._gc_stop_blocks
        burst = 0
        while (
            self.allocator.free_blocks < stop
            and burst < self.config.gc_burst_blocks
        ):
            burst += 1
            victim = self.policy.select_indexed(
                self.flash, self.victim_index, now_us + duration
            )
            if victim is None:
                break
            if tracer is not None:
                tracer.instant("gc", "victim-select", now_us + duration, victim=victim)
            outcome = self.collect_block(victim, now_us + duration)
            duration += outcome.duration_us
        if tracer is not None:
            tracer.end(
                "gc", now_us + duration,
                blocks=burst, free_blocks=self.allocator.free_blocks,
            )
        return duration

    def collect_next(self, now_us: float) -> float:
        """Collect exactly one victim block; returns its duration.

        The incremental unit of preemptive/idle GC: the device calls
        this repeatedly in gaps between user requests instead of running
        a multi-block blocking burst.  Returns 0.0 when no victim is
        eligible.
        """
        victim = self.policy.select_indexed(self.flash, self.victim_index, now_us)
        if victim is None:
            return 0.0
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("gc", "victim-select", now_us, victim=victim, idle=True)
        return self.collect_block(victim, now_us).duration_us

    def reserve_blocks(self) -> int:
        """Free-block floor preemptive GC restores before a write."""
        return max(4, self.flash.blocks // 100)

    def collect_block(self, victim: int, now_us: float) -> GCBlockOutcome:
        """Migrate valid pages out of ``victim`` and erase it.

        Base implementation is the traditional GC of Fig 3: copy every
        valid page (read + write), then erase.  No content awareness.
        """
        valid = self.flash.valid_ppns_in(victim)
        for ppn in valid:
            self._migrate_page(ppn, self._migration_region(ppn), now_us)
        self._erase_victim(victim)
        timing = self.timing
        n = len(valid)
        outcome = GCBlockOutcome(
            victim=victim,
            duration_us=timing.gc_migrate_us(n),
            pages_examined=n,
            pages_migrated=n,
            dedup_skipped=0,
            promotions=0,
            read_us=n * timing.read_us,
            hash_us=0.0,
            write_us=n * timing.write_us,
            erase_us=timing.erase_us,
        )
        tracer = self.tracer
        if tracer is not None:
            # Traditional serial GC (Fig 3): each page is read then
            # rewritten back-to-back, so one copy span plus the erase
            # tells the whole per-block story.
            copy_us = n * (timing.read_us + timing.write_us)
            tracer.span("gc", "copy-valid", now_us, copy_us, victim=victim, pages=n)
            tracer.span("gc", "erase", now_us + copy_us, timing.erase_us, victim=victim)
        self._account_gc(outcome)
        return outcome

    # ------------------------------------------------------------------ helpers

    def _account_gc(self, outcome: GCBlockOutcome) -> None:
        """Fold one collected block into the run's GC counters."""
        self.gc_counters.merge_block(
            pages_examined=outcome.pages_examined,
            pages_migrated=outcome.pages_migrated,
            dedup_skipped=outcome.dedup_skipped,
            promotions=outcome.promotions,
            duration_us=outcome.duration_us,
            read_us=outcome.read_us,
            hash_us=outcome.hash_us,
            write_us=outcome.write_us,
            erase_us=outcome.erase_us,
        )

    def _migration_region(self, ppn: int) -> int:
        """Region a migrated page is rewritten into (default: keep)."""
        region = self.allocator.region_of(self.flash.geometry.ppn_to_block(ppn))
        return region if region in (Region.HOT, Region.COLD) else Region.HOT

    def _migrate_page(self, ppn: int, region: int, now_us: float) -> int:
        """Copy one valid page to ``region``; all metadata follows it."""
        new_ppn = self.allocator.allocate_page(region, now_us)
        self.mapping.remap_ppn(ppn, new_ppn)
        if self.index.contains_ppn(ppn):
            self.index.move(ppn, new_ppn)
        fp = self.page_fp.pop(ppn, None)
        if fp is not None:
            self.page_fp[new_ppn] = fp
        self.tracker.rekey(ppn, new_ppn)
        self.flash.invalidate(ppn)
        return new_ppn

    def _erase_victim(self, victim: int) -> None:
        self.flash.erase(victim)
        self.allocator.release_block(victim)

    def _program_new(self, lpn: int, fp: int, region: int, now_us: float) -> int:
        """Program a fresh page for ``lpn`` and bind it; handles the old
        page's reference bookkeeping."""
        ppn = self.allocator.allocate_page(region, now_us)
        old = self.mapping.bind(lpn, ppn)
        self.page_fp[ppn] = fp
        self.tracker.observe(ppn, 1)
        if old is not None and old != ppn:
            self._release_if_dead(old)
        return ppn

    def _release_if_dead(self, ppn: int) -> None:
        """Invalidate a physical page once its last referrer is gone."""
        if self.mapping.refcount(ppn) == 0:
            self.flash.invalidate(ppn)
            self.index.remove_ppn(ppn)
            self.tracker.invalidated(ppn)
            self.page_fp.pop(ppn, None)

    # ------------------------------------------------------------------ inspection

    def live_logical_pages(self) -> int:
        return len(self.mapping)

    def wear(self) -> WearStats:
        return wear_stats(self.flash)

    def logical_content(self) -> Dict[int, int]:
        """LPN -> content fingerprint for every mapped page.

        The read-back oracle for correctness tests: whatever the scheme,
        GC activity and dedup must never change this map (other than by
        user writes/trims themselves).
        """
        return {
            lpn: self.page_fp[ppn]
            for ppn in self.mapping.mapped_ppns()
            for lpn in self.mapping.lpns_of(ppn)
        }

    def state_snapshot(self) -> StateSnapshot:
        """Capture the comparable state for the differential oracle."""
        mapping = self.mapping
        page_fp = self.page_fp
        referrers: Dict[int, int] = {}
        live = 0
        for ppn in mapping.mapped_ppns():
            live += 1
            fp = page_fp[ppn]
            referrers[fp] = referrers.get(fp, 0) + mapping.refcount(ppn)
        io = self.io_counters
        gc = self.gc_counters
        return StateSnapshot(
            content=self.logical_content(),
            content_referrers=referrers,
            live_pages=live,
            write_requests=io.write_requests,
            read_requests=io.read_requests,
            trim_requests=io.trim_requests,
            logical_pages_written=io.logical_pages_written,
            pages_read=io.pages_read,
            user_pages_programmed=io.user_pages_programmed,
            inline_dedup_hits=io.inline_dedup_hits,
            total_programs=self.flash.total_programs,
            total_erases=self.flash.total_erases,
            blocks_erased=gc.blocks_erased,
            pages_migrated=gc.pages_migrated,
            free_blocks=self.allocator.free_blocks,
        )

    def check_invariants(self) -> None:
        """Full cross-structure consistency check (tests only: O(pages))."""
        self.flash.check_invariants()
        self.allocator.check_invariants()
        self.mapping.check_invariants()
        self.index.check_invariants()
        self.victim_index.check_consistency(self.allocator)
        for ppn in self.mapping.mapped_ppns():
            if self.flash.state_of(ppn) != PageState.VALID:
                raise AssertionError(f"mapped ppn {ppn} not VALID in flash")
            if ppn not in self.page_fp:
                raise AssertionError(f"mapped ppn {ppn} has no fingerprint")
        for ppn in self.page_fp:
            if self.mapping.refcount(ppn) == 0:
                raise AssertionError(f"page_fp holds dead ppn {ppn}")
