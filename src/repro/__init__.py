"""CAGC reproduction: content-aware garbage collection for ULL SSDs.

Public API tour
---------------

Configuration (Table I)::

    from repro import SSDConfig, paper_config, small_config

Schemes (the paper's three bars)::

    from repro import BaselineScheme, InlineDedupeScheme, CAGCScheme, make_scheme

Workloads (Table II presets + synthetic generator)::

    from repro import build_fiu_trace, TraceSpec, generate_trace

Running::

    from repro import run_trace
    result = run_trace(make_scheme("cagc", small_config()), trace)
    print(result.blocks_erased, result.latency.mean_us)

Experiments (one per paper table/figure)::

    from repro.experiments import run_experiment
    report = run_experiment("fig9")
"""

from repro.array import ArrayResult, SSDArray
from repro.config import (
    GeometryConfig,
    SSDConfig,
    TimingConfig,
    paper_config,
    paper_geometry,
    small_config,
)
from repro.core.cagc import CAGCScheme
from repro.core.pipeline import GCPipeline
from repro.core.placement import PlacementPolicy
from repro.device.ssd import SSD, RunResult, run_trace
from repro.device.parallel import ParallelSSD
from repro.ftl.gc import make_policy
from repro.schemes import BaselineScheme, InlineDedupeScheme, make_scheme
from repro.workloads import (
    FIU_PRESETS,
    FileModelTrace,
    IORequest,
    MultiplexedTrace,
    OpKind,
    Trace,
    TraceSpec,
    build_fiu_trace,
    generate_trace,
    multiplex_traces,
)

__version__ = "1.0.0"

__all__ = [
    "GeometryConfig",
    "SSDConfig",
    "TimingConfig",
    "paper_config",
    "paper_geometry",
    "small_config",
    "CAGCScheme",
    "GCPipeline",
    "PlacementPolicy",
    "SSD",
    "SSDArray",
    "ArrayResult",
    "ParallelSSD",
    "RunResult",
    "run_trace",
    "make_policy",
    "BaselineScheme",
    "InlineDedupeScheme",
    "make_scheme",
    "FIU_PRESETS",
    "FileModelTrace",
    "IORequest",
    "OpKind",
    "Trace",
    "TraceSpec",
    "build_fiu_trace",
    "generate_trace",
    "MultiplexedTrace",
    "multiplex_traces",
    "__version__",
]
