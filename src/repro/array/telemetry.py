"""Per-tenant / per-device SLO telemetry for the SSD array.

Every completed request is recorded three times into the existing
log-bucket :class:`~repro.obs.telemetry.LatencyHistogram` machinery:
once into the array-wide histogram, once into its device's and once
into its tenant's.  The per-tenant and per-device families therefore
*partition* the global histogram — bucket counts, totals and maxima
fold back exactly (integer sums and maxima are order-independent;
``sum_us`` matches to float fold-order, which the telemetry tests pin
with a tight relative bound).

Percentile queries are answered from bucket counts, so per-tenant
p99/p999 SLO rows are exact partitions of the array-wide view — the
numbers ``cagc-repro report`` prints per tenant add up to the global
distribution by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.obs.telemetry import LatencyHistogram


def fold_histograms(hists: Sequence[LatencyHistogram]) -> LatencyHistogram:
    """Merge ``hists`` (in order) into a fresh histogram."""
    out = LatencyHistogram()
    for hist in hists:
        out.merge(hist)
    return out


class ArrayTelemetry:
    """Always-on SLO aggregator of one array replay."""

    def __init__(self, devices: int, tenants: int) -> None:
        if devices < 1 or tenants < 1:
            raise ValueError("devices and tenants must be >= 1")
        self.hist = LatencyHistogram()
        self.device_hists = [LatencyHistogram() for _ in range(devices)]
        self.tenant_hists = [LatencyHistogram() for _ in range(tenants)]

    @property
    def devices(self) -> int:
        return len(self.device_hists)

    @property
    def tenants(self) -> int:
        return len(self.tenant_hists)

    def on_complete(self, device: int, tenant: int, latency_us: float) -> None:
        """One finished request on ``device`` belonging to ``tenant``."""
        self.hist.record(latency_us)
        self.device_hists[device].record(latency_us)
        self.tenant_hists[tenant].record(latency_us)

    # ------------------------------------------------------------ queries

    def folded_by_tenant(self) -> LatencyHistogram:
        return fold_histograms(self.tenant_hists)

    def folded_by_device(self) -> LatencyHistogram:
        return fold_histograms(self.device_hists)

    def tenant_percentiles(
        self, ps: Sequence[float] = (99.0, 99.9)
    ) -> List[Tuple[int, List[float]]]:
        """``(tenant, [percentile values])`` for every tenant with traffic."""
        return [
            (t, hist.quantiles(ps))
            for t, hist in enumerate(self.tenant_hists)
            if hist.total
        ]

    def slo_rows(self) -> List[Tuple[str, str]]:
        """``(metric, value)`` rows for the ``report`` table.

        One array-wide p99/p999 row plus one per tenant — the SLO view
        a multi-tenant serving tier is judged on.
        """
        rows: List[Tuple[str, str]] = [
            (
                "array p99 / p999",
                f"{self.hist.percentile(99.0):.0f} / "
                f"{self.hist.percentile(99.9):.0f}us "
                f"({self.hist.total:,} requests)",
            )
        ]
        for tenant, (p99, p999) in self.tenant_percentiles():
            hist = self.tenant_hists[tenant]
            rows.append(
                (
                    f"tenant {tenant} p99 / p999",
                    f"{p99:.0f} / {p999:.0f}us ({hist.total:,} requests)",
                )
            )
        return rows

    # ------------------------------------------------------ serialization

    def to_arrays(self) -> dict:
        """Histogram state as plain arrays (runner-cache layout)."""

        def pack(hists: Sequence[LatencyHistogram]) -> dict:
            return {
                "counts": np.stack([h.counts for h in hists]),
                "total": np.array([h.total for h in hists], dtype=np.int64),
                "sum_us": np.array([h.sum_us for h in hists]),
                "max_us": np.array([h.max_us for h in hists]),
            }

        return {
            "global": pack([self.hist]),
            "device": pack(self.device_hists),
            "tenant": pack(self.tenant_hists),
        }

    @classmethod
    def from_arrays(cls, data: dict) -> "ArrayTelemetry":
        def unpack(hists: Sequence[LatencyHistogram], packed: dict) -> None:
            for i, hist in enumerate(hists):
                hist.counts = np.array(packed["counts"][i], dtype=np.int64)
                hist.total = int(packed["total"][i])
                hist.sum_us = float(packed["sum_us"][i])
                hist.max_us = float(packed["max_us"][i])

        telemetry = cls(
            devices=len(data["device"]["total"]),
            tenants=len(data["tenant"]["total"]),
        )
        unpack([telemetry.hist], data["global"])
        unpack(telemetry.device_hists, data["device"])
        unpack(telemetry.tenant_hists, data["tenant"])
        return telemetry


__all__ = ["ArrayTelemetry", "fold_histograms"]
