"""SSD-array multi-tenant serving tier.

``SSDArray`` replays a (usually multiplexed, multi-tenant) trace over
N independent :class:`~repro.device.ssd.SSD` lanes behind a
deterministic LPN-range router on one shared simulated clock, with
NCQ-bounded admission and a pluggable array-level GC-coordination
policy (``independent`` / ``staggered`` / ``global-token``).
"""

from repro.array.coord import (
    COORDINATIONS,
    GCCoordinator,
    StaggeredCoordinator,
    TokenCoordinator,
    make_coordinator,
)
from repro.array.device import ARRAY_KERNEL_FALLBACK, ArrayResult, SSDArray
from repro.array.router import RangeRouter, RoutingError
from repro.array.telemetry import ArrayTelemetry, fold_histograms

__all__ = [
    "ARRAY_KERNEL_FALLBACK",
    "ArrayResult",
    "ArrayTelemetry",
    "COORDINATIONS",
    "GCCoordinator",
    "RangeRouter",
    "RoutingError",
    "SSDArray",
    "StaggeredCoordinator",
    "TokenCoordinator",
    "fold_histograms",
    "make_coordinator",
]
