"""SSD array: N independent devices behind a range router, one clock.

The serving-tier model: a multi-tenant request stream (usually a
:class:`~repro.workloads.multiplex.MultiplexedTrace`) is split by the
:class:`~repro.array.router.RangeRouter` into per-device sub-streams,
and every device replays its share as an ordinary event-driven
:class:`~repro.device.ssd.SSD` — same scheme code, same service-time
model, same GC drivers — on one shared :class:`Simulator` so the
devices' timelines interleave on a common clock.

Two array-only mechanisms sit on top:

* **NCQ admission** — each lane bounds its in-flight window (queued +
  in-service) at ``ncq_depth``, the native-command-queue model.  A
  bounded queue ahead of a FIFO work-conserving server never changes
  completion times (service start is ``max(arrival, prev completion)``
  either way), which is why an ``ncq_depth``-bounded lane is
  trajectory-identical to the unbounded bare device — the equivalence
  suite pins exactly this.
* **GC coordination** — the policies in :mod:`repro.array.coord`.
  ``independent`` leaves every lane on the stock single-SSD path
  (per-device trajectories equal solo replays, bit for bit);
  ``staggered`` and ``global-token`` bound foreground stalls and move
  bulk reclamation into coordinated idle windows.

Per-request completions are attributed to tenants positionally: a
lane's completions are FIFO in arrival order, so the *i*-th completion
on a lane belongs to the *i*-th row of that lane's sub-trace — no
tenant bookkeeping on the hot path beyond one array lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.array.coord import GCCoordinator, make_coordinator
from repro.array.router import RangeRouter
from repro.array.telemetry import ArrayTelemetry
from repro.device.ssd import SSD, RunResult
from repro.obs.trace import TRACK_ARRAY
from repro.schemes.base import FTLScheme
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventKind
from repro.workloads.trace import Trace

#: Legacy wholesale-fallback tag from before the epoch-batched array
#: kernel (``repro.kernel.arrayepoch``) existed; kept only so old
#: serialized results remain readable.  Live vectorized replays either
#: run the epoch kernel (``kernel_fallback_reason`` stays ``None``) or
#: tag one of its reasons (``array-unmodelled`` wholesale;
#: ``array-coord-grant`` / ``array-ncq-stall`` per-epoch in the trace
#: attribution).
ARRAY_KERNEL_FALLBACK = "array-event-loop"


@dataclass(frozen=True)
class ArrayResult:
    """Everything one array replay produced."""

    coordination: str
    trace: str
    #: per-device :class:`RunResult`, index = device id.
    devices: Tuple[RunResult, ...]
    tenants: int
    telemetry: ArrayTelemetry
    #: shared-clock end time (max over devices' last events).
    simulated_us: float
    ncq_depth: int
    #: per-device peak in-flight window occupancy.
    ncq_peaks: Tuple[int, ...]
    #: per-device count of arrivals held at the admission gate.
    ncq_held: Tuple[int, ...]
    #: coordinator counters (deferrals, idle bursts, grants, ...).
    coord_stats: Dict[str, float] = field(default_factory=dict)
    #: set when a vectorized-kernel request fell back to the event loop.
    kernel_fallback_reason: Optional[str] = None
    #: present when the array ran with an ArrayMetrics registry
    #: attached (global + per-device/per-tenant labeled families).
    metrics: Optional[object] = None
    #: per-device ``kernel_gc_stats`` dicts (batched-vs-scalar collect
    #: outcomes) when the epoch kernel replayed the array; empty on the
    #: reference loop.
    kernel_gc: Tuple[Dict[str, int], ...] = ()

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def requests_completed(self) -> int:
        return int(self.telemetry.hist.total)

    def percentile(self, p: float) -> float:
        """Array-wide latency percentile from the global histogram."""
        return self.telemetry.hist.percentile(p)


class _ArrayLane(SSD):
    """One device of the array: a stock SSD plus NCQ + coordination.

    Every override either narrows admission (NCQ) or routes a GC
    decision through the coordinator; a lane with ``_coord is None``
    and effectively-unbounded depth executes exactly the inherited
    code path.
    """

    def __init__(
        self,
        index: int,
        array: "SSDArray",
        scheme: FTLScheme,
        sim: Simulator,
        ncq_depth: int,
        coord: Optional[GCCoordinator],
        tracer=None,
        keep_samples: bool = True,
    ) -> None:
        super().__init__(
            scheme, sim=sim, tracer=tracer, keep_samples=keep_samples
        )
        self.index = index
        self._array = array
        self._ncq_depth = ncq_depth
        self._coord = coord
        self._inflight = 0
        self._ncq_blocked: Optional[tuple] = None
        self._tenants: Optional[np.ndarray] = None
        self._completed = 0
        #: this lane's own last activity on the shared clock — the
        #: per-device ``simulated_us`` (``sim.now`` covers the array).
        self.last_event_us = 0.0
        self.ncq_peak = 0
        self.ncq_held = 0
        self.rows_done = False
        #: set to the epoch runner while the vectorized array kernel
        #: drives this lane (idle-burst completions route to it).
        self._epoch = None

    @property
    def busy(self) -> bool:
        return self._busy

    # --------------------------------------------------- NCQ admission

    def _schedule_next_arrival(self) -> None:
        assert self._rows is not None
        while True:
            row = next(self._rows, None)
            if row is None:
                self.rows_done = True
                return
            now = self.sim.now
            if row[0] <= now and self._inflight > 0:
                # The admission chain fell behind real time while the
                # gate was closed: take every already-due row
                # synchronously — the bare device would have queued
                # them at their timestamps, and idle-GC decisions key
                # off queue emptiness, so they must be *in the queue*
                # (not pending as events) by the time the inherited
                # completion logic looks.  The chain pauses when a row
                # parks at the full gate.
                if self._inflight >= self._ncq_depth:
                    self._ncq_blocked = row
                    self.ncq_held += 1
                    return
                self._inflight += 1
                if self._inflight > self.ncq_peak:
                    self.ncq_peak = self._inflight
                self._queue.append(row)
                continue
            self.sim.schedule_at(
                max(row[0], now),
                EventKind.REQUEST_ARRIVAL,
                row,
                self._on_arrival,
            )
            return

    def _on_arrival(self, event: Event) -> None:
        if self._inflight >= self._ncq_depth:
            self._ncq_blocked = event.payload
            self.ncq_held += 1
            return
        self._admit(event.payload)

    def _admit(self, row: tuple) -> None:
        self._inflight += 1
        if self._inflight > self.ncq_peak:
            self.ncq_peak = self._inflight
        self._queue.append(row)
        self._schedule_next_arrival()
        if not self._busy:
            self._start_service()

    def _on_complete(self, event: Event) -> None:
        self._inflight -= 1
        self.last_event_us = self.sim.now
        tenants = self._tenants
        tenant = int(tenants[self._completed]) if tenants is not None else 0
        self._completed += 1
        self._array._on_lane_complete(
            self, tenant, self.sim.now - event.payload
        )
        if self._ncq_blocked is not None:
            # Re-open the gate *before* the inherited completion logic
            # pops the queue: the queue then holds exactly what the
            # bare device's would, so idle-GC decisions cannot diverge.
            row = self._ncq_blocked
            self._ncq_blocked = None
            self._admit(row)
        super()._on_complete(event)

    # ------------------------------------------------- GC coordination

    def _gc_before_write(self, now: float) -> float:
        if self._coord is None or self._preemptive:
            return super()._gc_before_write(now)
        gc_us = self._coord.foreground_gc(self, now)
        if gc_us > 0.0:
            self._sample_gc_state(now + gc_us)
            if self.hooks:
                self.hooks(self)
        return gc_us

    def _maybe_background_gc(self) -> None:
        if self._coord is not None and not self._preemptive:
            self._coord.on_idle(self)
            return
        super()._maybe_background_gc()

    def start_idle_collection(self, duration: float) -> None:
        """Occupy the lane for a coordinator-granted idle burst."""
        self._busy = True
        self.background_gc_chunks += 1
        self.sim.schedule(
            duration, EventKind.GC_COMPLETE, None, self._on_bg_gc_done
        )

    def _on_bg_gc_done(self, event: Event) -> None:
        self.last_event_us = self.sim.now
        if self._coord is not None:
            self._coord.on_collection_done(self, self.sim.now)
        if self._epoch is not None:
            # Epoch-kernel mode keeps no event-queue rows; the runner
            # owns the queue-or-idle decision the inherited handler
            # would make.
            self._epoch.on_bg_gc_done(self)
            return
        super()._on_bg_gc_done(event)

    # ------------------------------------------------------- lifecycle

    def start(self, sub_trace: Trace, tenant_ids: np.ndarray) -> None:
        self._rows = sub_trace.iter_rows()
        self._trace_name = sub_trace.name
        self._tenants = tenant_ids
        self.rows_done = False
        self._schedule_next_arrival()

    def finish(self) -> RunResult:
        return RunResult(
            scheme=self.scheme.name,
            trace=self._trace_name,
            latency=self.latency.summary(),
            response_times_us=self.latency.samples().copy(),
            gc=self.scheme.gc_counters,
            io=self.scheme.io_counters,
            wear=self.scheme.wear(),
            simulated_us=self.last_event_us,
        )

    def pending(self) -> bool:
        return (
            not self.rows_done
            or bool(self._queue)
            or self._busy
            or self._ncq_blocked is not None
        )


class SSDArray:
    """N devices, one clock, one router, one coordination policy."""

    def __init__(
        self,
        schemes: Sequence[FTLScheme],
        coordination: str = "independent",
        ncq_depth: int = 32,
        pages_per_device: Optional[int] = None,
        tracer=None,
        heartbeat=None,
        metrics=None,
        keep_samples: bool = True,
        window_us: Optional[float] = None,
    ) -> None:
        if not schemes:
            raise ValueError("need at least one device scheme")
        if ncq_depth < 1:
            raise ValueError(f"ncq_depth must be >= 1, got {ncq_depth}")
        if any(s.config.write_buffer_pages > 0 for s in schemes):
            raise ValueError(
                "SSDArray does not model per-device DRAM write buffers"
            )
        if pages_per_device is None:
            pages_per_device = schemes[0].config.logical_pages
        self.sim = Simulator()
        self.router = RangeRouter(len(schemes), pages_per_device)
        self.coordination = coordination
        self.coordinator = make_coordinator(coordination, window_us=window_us)
        self.ncq_depth = ncq_depth
        self.tracer = tracer
        self.heartbeat = heartbeat
        #: ArrayMetrics bundle; bound in replay() once the tenant count
        #: is known (label children are resolved per device/tenant).
        self.metrics = metrics
        self.telemetry: Optional[ArrayTelemetry] = None
        self.lanes: List[_ArrayLane] = [
            _ArrayLane(
                index=i,
                array=self,
                scheme=scheme,
                sim=self.sim,
                ncq_depth=ncq_depth,
                coord=self.coordinator,
                tracer=tracer,
                keep_samples=keep_samples,
            )
            for i, scheme in enumerate(schemes)
        ]
        if self.coordinator is not None:
            self.coordinator.bind(self)
        self.kernel_fallback_reason: Optional[str] = None

    @property
    def devices(self) -> int:
        return len(self.lanes)

    # ---------------------------------------------------------- replay

    def replay(self, trace: Trace) -> ArrayResult:
        """Split ``trace`` across the lanes and run the shared clock dry."""
        config = self.lanes[0].scheme.config
        placements = getattr(trace, "placements", None)
        tenant_ids = getattr(trace, "tenant_ids", None)
        if placements is not None:
            tenants = len(placements)
        elif tenant_ids is not None and len(tenant_ids):
            tenants = int(np.max(tenant_ids)) + 1
        else:
            tenants = 1
        self.telemetry = ArrayTelemetry(self.devices, tenants)
        if self.metrics is not None:
            self.metrics.bind_array(self, self.devices, tenants)
        if config.kernel == "vectorized":
            from repro.kernel.arrayepoch import (
                array_kernel_eligible,
                replay_array_vectorized,
            )

            reason = array_kernel_eligible(self, trace)
            if reason is None:
                return replay_array_vectorized(self, trace, tenants)
            # Something in the replay is outside the epoch model; run
            # the reference loop and tag the fallback so kernel-matrix
            # CI can tell "reference on purpose" from "silently slow".
            self.kernel_fallback_reason = reason
            if self.tracer is not None:
                self.tracer.instant(
                    TRACK_ARRAY,
                    "kernel-fallback",
                    0.0,
                    reason=reason,
                )
        if self.heartbeat is not None:
            try:
                self.heartbeat.expect(len(trace))
            except TypeError:
                pass  # streaming traces have no known length (no ETA)
        for lane, (sub, lane_tenants) in zip(
            self.lanes, self.router.split(trace)
        ):
            lane.start(sub, lane_tenants)
        from repro.array.coord import StaggeredCoordinator

        if isinstance(self.coordinator, StaggeredCoordinator):
            self._schedule_window(self.coordinator.window_us)
        self.sim.run()
        coord_stats = (
            self.coordinator.stats() if self.coordinator is not None else {}
        )
        if self.metrics is not None:
            self.metrics.finish(self.sim.now, self)
        if self.heartbeat is not None:
            self.heartbeat.finish(
                self.sim.now,
                self.sim.events_processed,
                self.telemetry.hist.total,
                gc_collects=self._gc_collects(),
            )
        return ArrayResult(
            coordination=self.coordination,
            trace=trace.name,
            devices=tuple(lane.finish() for lane in self.lanes),
            tenants=tenants,
            telemetry=self.telemetry,
            simulated_us=max(
                [lane.last_event_us for lane in self.lanes] + [0.0]
            ),
            ncq_depth=self.ncq_depth,
            ncq_peaks=tuple(lane.ncq_peak for lane in self.lanes),
            ncq_held=tuple(lane.ncq_held for lane in self.lanes),
            coord_stats=coord_stats,
            kernel_fallback_reason=self.kernel_fallback_reason,
            metrics=(
                self.metrics.snapshot() if self.metrics is not None else None
            ),
        )

    # ----------------------------------------------------------- hooks

    def _gc_collects(self) -> int:
        return sum(
            lane.scheme.gc_counters.gc_invocations for lane in self.lanes
        )

    def _on_lane_complete(
        self, lane: _ArrayLane, tenant: int, latency_us: float
    ) -> None:
        self.telemetry.on_complete(lane.index, tenant, latency_us)
        if self.metrics is not None:
            self.metrics.on_array_complete(
                lane.index, tenant, self.sim.now, latency_us
            )
        if self.heartbeat is not None:
            self.heartbeat.tick(
                self.sim.now,
                self.sim.events_processed,
                self.telemetry.hist.total,
                gc_collects=self._gc_collects(),
            )

    def _schedule_window(self, window_us: float) -> None:
        """Staggered mode: tick the coordinator at every window edge.

        Re-arms itself only while any lane still has work, so the event
        heap drains once the last request (and trailing idle burst)
        completes.
        """
        next_edge = (self.sim.now // window_us + 1.0) * window_us
        self.sim.schedule_at(
            next_edge, EventKind.GENERIC, None, self._on_window
        )

    def _on_window(self, event: Event) -> None:
        self.coordinator.on_window(self.sim.now)
        if any(lane.pending() for lane in self.lanes):
            self._schedule_window(self.coordinator.window_us)


__all__ = ["ARRAY_KERNEL_FALLBACK", "ArrayResult", "SSDArray", "_ArrayLane"]
