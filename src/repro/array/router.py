"""Deterministic LPN-range router for the SSD array.

Device ``i`` owns the contiguous global range
``[i * pages_per_device, (i + 1) * pages_per_device)``.  Routing is a
pure function of the LPN — no state, no request history — which is the
property the array's equivalence proofs (and the Hypothesis suite)
lean on: splitting a merged stream per device and replaying the pieces
independently is exactly the same computation as routing request by
request.

Requests must not straddle a device boundary; the workload multiplexer
guarantees that by construction (tenant windows never cross devices)
and :meth:`RangeRouter.split` verifies it for arbitrary traces.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.trace import Trace


class RoutingError(ValueError):
    """A request extent crosses a device boundary (or leaves the array)."""


class RangeRouter:
    """Pure LPN -> (device, local LPN) map over contiguous ranges."""

    def __init__(self, devices: int, pages_per_device: int) -> None:
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        if pages_per_device < 1:
            raise ValueError(
                f"pages_per_device must be >= 1, got {pages_per_device}"
            )
        self.devices = devices
        self.pages_per_device = pages_per_device

    def device_of(self, lpn: int) -> int:
        """Home device of ``lpn`` (pure, total on the exported space)."""
        if not 0 <= lpn < self.devices * self.pages_per_device:
            raise RoutingError(
                f"LPN {lpn} outside array space "
                f"[0, {self.devices * self.pages_per_device})"
            )
        return lpn // self.pages_per_device

    def route(self, lpn: int, npages: int = 1) -> Tuple[int, int]:
        """``(device, local_lpn)`` for one extent; rejects boundary crossers."""
        device = self.device_of(lpn)
        if npages > 1 and self.device_of(lpn + npages - 1) != device:
            raise RoutingError(
                f"extent ({lpn}, {npages}) straddles devices "
                f"{device} and {self.device_of(lpn + npages - 1)}"
            )
        return device, lpn - device * self.pages_per_device

    def split(self, trace: Trace) -> List[Tuple[Trace, np.ndarray]]:
        """Partition ``trace`` into per-device sub-traces (local LPNs).

        Returns one ``(sub_trace, tenant_ids)`` pair per device, each
        preserving the merged stream's relative order.  ``tenant_ids``
        comes from a :class:`~repro.workloads.multiplex.MultiplexedTrace`
        column when present, else all zeros (single implicit tenant).
        The check that no extent crosses a device boundary is
        vectorized over the whole trace.
        """
        lpns = trace.lpns
        npages = np.maximum(trace.npages, 1).astype(np.int64)
        size = self.pages_per_device
        first = lpns // size
        last = (lpns + npages - 1) // size
        if len(trace):
            if int(lpns.min()) < 0 or int(last.max()) >= self.devices:
                bad = int(np.argmax((lpns < 0) | (last >= self.devices)))
                raise RoutingError(
                    f"request {bad} extent ({int(lpns[bad])}, "
                    f"{int(npages[bad])}) outside array space"
                )
            if not np.array_equal(first, last):
                bad = int(np.argmax(first != last))
                raise RoutingError(
                    f"request {bad} extent ({int(lpns[bad])}, "
                    f"{int(npages[bad])}) straddles a device boundary"
                )
        tenants = getattr(trace, "tenant_ids", None)
        if tenants is None:
            tenants = np.zeros(len(trace), dtype=np.int32)
        out: List[Tuple[Trace, np.ndarray]] = []
        for device in range(self.devices):
            mask = first == device
            idx = np.nonzero(mask)[0]
            counts = trace.fp_offsets[1:] - trace.fp_offsets[:-1]
            sub_counts = counts[idx]
            sub_offsets = np.zeros(len(idx) + 1, dtype=np.int64)
            np.cumsum(sub_counts, out=sub_offsets[1:])
            total = int(sub_offsets[-1])
            if total:
                starts = np.repeat(trace.fp_offsets[:-1][idx], sub_counts)
                within = np.arange(total, dtype=np.int64) - np.repeat(
                    sub_offsets[:-1], sub_counts
                )
                sub_fps = trace.fps_flat[starts + within]
            else:
                sub_fps = np.empty(0, dtype=np.int64)
            sub = Trace(
                trace.times_us[idx],
                trace.ops[idx],
                lpns[idx] - device * size,
                trace.npages[idx],
                sub_fps,
                sub_offsets,
                name=f"{trace.name}@dev{device}",
            )
            out.append((sub, tenants[idx]))
        return out


__all__ = ["RangeRouter", "RoutingError"]
