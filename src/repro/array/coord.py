"""Array-level GC coordination policies.

The research hook ("Optimize Unsynchronized Garbage Collection in an
SSD Array", Zheng/Burns/Szalay): when every device in an array runs its
foreground GC independently, the merged request stream sees each
device's multi-block stall — the array-wide tail latency is inflated
far past any single device's.  The fix is scheduling: bound what a
foreground write may reclaim and move bulk reclamation into coordinated
windows.

Three policies, orthogonal to the per-device victim-selection policies:

* ``independent`` — no coordination.  Every lane keeps the stock
  single-SSD behaviour (full blocking bursts at the watermark), which
  is both the uncoordinated baseline the experiment measures *and* the
  mode under which per-device trajectories are bit-identical to solo
  replays (the array equivalence suite pins this).
* ``staggered`` — foreground writes may only restore the small
  free-block reserve (the semi-preemptive minimum); bulk reclamation
  happens in a rotating per-device window: device ``floor(t / W) % N``
  owns window ``t`` and drains up to one burst per idle gap inside it.
* ``global-token`` — same bounded foreground reclamation, with bulk
  idle GC serialized by a single array-wide token: at most one device
  performs an idle burst at any moment.

Coordinated lanes therefore never stall a write for more than a
reserve-restoring collection, and the deferral is visible on the
``array`` tracer track plus the coordinator's stats.

Determinism: all three policies are pure functions of the shared
simulated clock and the lanes' own state — replaying the same merged
trace yields the same decisions, event for event.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.trace import TRACK_ARRAY

COORDINATIONS = ("independent", "staggered", "global-token")


def _restore_reserve(lane, now: float) -> float:
    """Minimal foreground reclamation: free blocks back to the reserve.

    The same loop as the device's semi-preemptive foreground path — a
    deferred lane is never allowed to run out of allocatable blocks, so
    coordination can only ever change *timing*, not reachability.
    """
    scheme = lane.scheme
    reserve = scheme.reserve_blocks()
    duration = 0.0
    while scheme.allocator.free_blocks < reserve:
        chunk = scheme.collect_next(now + duration)
        if chunk <= 0.0:
            break
        duration += chunk
    return duration


def _idle_burst(lane, now: float) -> float:
    """One bounded idle-time burst: up to ``gc_burst_blocks`` victims."""
    scheme = lane.scheme
    duration = 0.0
    blocks = 0
    while blocks < scheme.config.gc_burst_blocks and scheme.needs_background_gc():
        chunk = scheme.collect_next(now + duration)
        if chunk <= 0.0:
            break
        duration += chunk
        blocks += 1
    return duration


class GCCoordinator:
    """Base/no-op coordinator (= ``independent``).

    Lanes under ``independent`` bypass the coordinator entirely (their
    ``_coord`` slot is ``None``), so this class only carries the common
    machinery: binding, stats, tracer access.
    """

    name = "independent"

    def __init__(self) -> None:
        self.array = None
        self.deferrals = 0
        self.idle_bursts = 0
        self.idle_busy_us = 0.0

    def bind(self, array) -> None:
        self.array = array

    # -- hooks (coordinated lanes only) ---------------------------------

    def foreground_gc(self, lane, now: float) -> float:
        """Foreground GC decision for a write on ``lane`` at ``now``."""
        raise NotImplementedError

    def on_idle(self, lane) -> None:
        """``lane`` just went idle (empty queue, nothing in service)."""

    def on_collection_done(self, lane, now: float) -> None:
        """An idle collection scheduled by this coordinator finished."""

    # -- common helpers -------------------------------------------------

    def _defer(self, lane, now: float) -> float:
        self.deferrals += 1
        duration = _restore_reserve(lane, now)
        tracer = self.array.tracer if self.array is not None else None
        if tracer is not None:
            tracer.instant(
                TRACK_ARRAY,
                "gc-deferred",
                now,
                device=lane.index,
                emergency_us=duration,
            )
        return duration

    def _start_idle_burst(self, lane) -> float:
        now = lane.sim.now
        duration = _idle_burst(lane, now)
        if duration > 0.0:
            self.idle_bursts += 1
            self.idle_busy_us += duration
            tracer = self.array.tracer if self.array is not None else None
            if tracer is not None:
                tracer.span(
                    TRACK_ARRAY,
                    f"idle-gc-dev{lane.index}",
                    now,
                    duration,
                    policy=self.name,
                )
            lane.start_idle_collection(duration)
        return duration

    def stats(self) -> Dict[str, float]:
        return {
            "coordination": self.name,
            "gc_deferrals": self.deferrals,
            "idle_bursts": self.idle_bursts,
            "idle_busy_us": self.idle_busy_us,
        }


class StaggeredCoordinator(GCCoordinator):
    """Rotating per-device GC windows on the shared clock.

    Window ``k`` (time ``[k*W, (k+1)*W)``) is owned by device
    ``k % N``; only the owner may run idle bursts during it.  The
    window length ``W`` defaults to the cost of one full burst on the
    lane's timing config, so a device that needs GC can drain roughly
    one burst per turn of the rotation.
    """

    name = "staggered"

    def __init__(self, window_us: Optional[float] = None) -> None:
        super().__init__()
        self.window_us = window_us
        self.windows_fired = 0

    def bind(self, array) -> None:
        super().bind(array)
        if self.window_us is None:
            config = array.lanes[0].scheme.config
            timing = config.timing
            per_block = timing.erase_us + config.geometry.pages_per_block * (
                timing.read_us + timing.write_us
            )
            self.window_us = config.gc_burst_blocks * per_block

    def owner(self, now: float) -> int:
        return int(now // self.window_us) % len(self.array.lanes)

    def foreground_gc(self, lane, now: float) -> float:
        if not lane.scheme.needs_gc():
            return 0.0
        return self._defer(lane, now)

    def on_idle(self, lane) -> None:
        if self.owner(lane.sim.now) != lane.index:
            return
        if lane.scheme.needs_background_gc():
            self._start_idle_burst(lane)

    def on_window(self, now: float) -> None:
        """Window-rotation tick: give the new owner its idle slot."""
        self.windows_fired += 1
        lane = self.array.lanes[self.owner(now)]
        if not lane.busy and lane.scheme.needs_background_gc():
            self._start_idle_burst(lane)

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out["window_us"] = self.window_us
        out["windows_fired"] = self.windows_fired
        return out


class TokenCoordinator(GCCoordinator):
    """Array-wide mutual exclusion of bulk GC via a single token.

    A lane going idle takes the token (if free) and runs one bounded
    burst; the token is released when the burst completes.  Foreground
    writes everywhere are limited to the reserve-restoring minimum, so
    at any instant at most one device in the array is doing bulk
    reclamation — unsynchronized simultaneous bursts cannot happen.
    """

    name = "global-token"

    def __init__(self) -> None:
        super().__init__()
        self.holder = None
        self.grants = 0

    def foreground_gc(self, lane, now: float) -> float:
        if not lane.scheme.needs_gc():
            return 0.0
        return self._defer(lane, now)

    def on_idle(self, lane) -> None:
        if self.holder is not None:
            return
        if not lane.scheme.needs_background_gc():
            return
        if self._start_idle_burst(lane) > 0.0:
            self.holder = lane
            self.grants += 1
            tracer = self.array.tracer if self.array is not None else None
            if tracer is not None:
                tracer.instant(
                    TRACK_ARRAY, "token-grant", lane.sim.now, device=lane.index
                )

    def on_collection_done(self, lane, now: float) -> None:
        if self.holder is lane:
            self.holder = None

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out["token_grants"] = self.grants
        return out


def make_coordinator(
    name: str, window_us: Optional[float] = None
) -> Optional[GCCoordinator]:
    """Coordinator instance for ``name``; ``None`` for ``independent``.

    ``independent`` returns ``None`` on purpose: uncoordinated lanes
    run the stock single-SSD code path untouched, which is what makes
    the per-device solo-replay equivalence exact.
    """
    if name == "independent":
        return None
    if name == "staggered":
        return StaggeredCoordinator(window_us=window_us)
    if name == "global-token":
        return TokenCoordinator()
    raise ValueError(
        f"unknown coordination {name!r}; choose from {COORDINATIONS}"
    )


__all__ = [
    "COORDINATIONS",
    "GCCoordinator",
    "StaggeredCoordinator",
    "TokenCoordinator",
    "make_coordinator",
]
