"""Batch-vectorized user-write kernel.

Applies a whole *run* of bulk-scheme write requests (no GC trigger, no
trim in between — the orchestrator guarantees both) to the FTL state in
one pass over raw columns, producing exactly the state a per-request
:meth:`FTLScheme.write_request` loop would: same mapping columns, same
flash counters, same refcount histogram, same victim-index membership.

The decomposition exploits that within a run every program goes to the
hot region and every page's fate is decided by occurrence order alone:

* **placement** — one ``allocate_run`` per active-block stretch (a thin
  Python loop over blocks, not pages); each block is touched by exactly
  one stretch per run, so stamping it with the service start of the
  request owning the stretch's last page reproduces the reference's
  final ``last_write_us``;
* **pre-run overwrites** — for every distinct LPN written, the page it
  mapped to before the run loses that referrer.  Initially-solo pages
  (refcount 1 — the overwhelming majority, paper Fig 6) die in one
  vectorized scatter; initially-shared pages take a short Python loop
  through the reference ``_drop_ref`` / ``_release_if_dead`` path;
* **in-run rewrites** — every non-final occurrence of an LPN is a page
  born dead inside the run: its bind and drop cancel exactly (net-zero
  refcount/fingerprint/peak), leaving only the flash invalidation and
  one refcount-1 histogram event;
* **final occurrences** — one scatter each for the forward map,
  refcount, solo-referrer, fingerprint and peak columns;
* **victim index** — programs and invalidations apply out of order
  above, so per-event index maintenance is skipped and every touched
  block is reconciled once at the end via
  :meth:`VictimIndex.sync_block` (final membership depends only on the
  block's final fullness and invalid count).
"""

from __future__ import annotations

import numpy as np

from repro.flash.chip import PageState
from repro.ftl.allocator import Region
from repro.kernel.views import ColumnViews
from repro.schemes.base import FTLScheme

_NO_PPN = -1
_FP_ABSENT = -1
_FP_NEGATIVE = -2
_IDX_EMPTY = -1


def apply_write_run(
    scheme: FTLScheme,
    views: ColumnViews,
    wlpns: np.ndarray,
    wpages: np.ndarray,
    fps: np.ndarray,
    wstarts: np.ndarray,
) -> None:
    """Apply one run of write requests to the scheme's state.

    ``wlpns``/``wpages``/``wstarts`` are per-request columns (int64 /
    int64 / float64); ``fps`` is the concatenated fingerprint stream of
    all requests (``wpages`` entries each, ``wpages.sum()`` total).
    Page counts come from the fingerprint spans — the authoritative
    write size in the reference path.  The caller guarantees: bulk
    scheme, all fingerprints non-negative, no GC trigger inside the
    run.
    """
    P = int(wpages.sum())
    nreq = len(wlpns)
    mapping = scheme.mapping
    flash = scheme.flash
    allocator = scheme.allocator
    tracker = scheme.tracker
    index = scheme.index
    ppb = flash.pages_per_block

    # Per-LPN bookkeeping hook (spatial hot/cold write counting): only
    # pay the per-request loop when a scheme actually overrides it.
    if type(scheme)._note_user_writes is not FTLScheme._note_user_writes:
        note = scheme._note_user_writes
        lp = wlpns.tolist()
        np_ = wpages.tolist()
        for i in range(nreq):
            note(lp[i], np_[i])

    io = scheme.io_counters
    io.write_requests += nreq
    io.logical_pages_written += P
    io.user_pages_programmed += P

    if P == 0:
        return

    # ---- flat page stream ------------------------------------------------
    ends = np.cumsum(wpages)
    req_of_page = np.repeat(np.arange(nreq, dtype=np.int64), wpages)
    within = np.arange(P, dtype=np.int64) - np.repeat(ends - wpages, wpages)
    lpn_p = np.repeat(wlpns, wpages) + within

    # ---- placement: one allocate_run call per block stretch --------------
    page_now = wstarts[req_of_page]
    ppn_p = np.empty(P, dtype=np.int64)
    pos = 0
    hot = Region.HOT
    active = allocator._active
    active_free = allocator._active_free
    touched_blocks = set()
    while pos < P:
        af = active_free[hot] if active[hot] is not None else ppb
        take = af if af < P - pos else P - pos
        # The reference stamps a block once per request touching it; the
        # final stamp is the service start of the last such request.
        stamp = float(page_now[pos + take - 1])
        base, count = allocator.allocate_run(hot, P - pos, stamp)
        assert count == take, "allocate_run cap drifted from prediction"
        ppn_p[pos : pos + count] = np.arange(base, base + count, dtype=np.int64)
        touched_blocks.add(base // ppb)
        pos += count

    # ---- occurrence analysis --------------------------------------------
    uniq, first_pos = np.unique(lpn_p, return_index=True)
    if uniq.size == P:
        # No LPN written twice in the run (the common case): every page
        # survives, nothing is born dead.
        last_pos = first_pos
        live_ppns = ppn_p[last_pos]
        born_dead = ppn_p[:0]
    else:
        _, rev_pos = np.unique(lpn_p[::-1], return_index=True)
        last_pos = P - 1 - rev_pos  # aligned with uniq (both sorted by LPN)
        live_ppns = ppn_p[last_pos]
        dead_mask = np.ones(P, dtype=bool)
        dead_mask[last_pos] = False
        born_dead = ppn_p[dead_mask]

    # Pre-grow the forward map before taking its view: array.array
    # refuses to extend while a NumPy export is alive.
    max_lpn = int(lpn_p.max())
    if max_lpn >= len(mapping._fwd):
        mapping._grow_lpn(max_lpn)

    ref_view = views.ref
    solo_view = views.solo
    fp_view = views.fp
    peak_view = views.peak
    fwd_view = views.fwd()

    # Previous mapping of each distinct LPN (gathered before any drop
    # mutates the reverse columns).
    old0 = fwd_view[uniq]
    mapped_sel = old0 >= 0
    prev_ppns = old0[mapped_sel]
    refs0 = ref_view[prev_ppns]
    shared_sel = refs0 >= 2

    # ---- initially-shared overwrites: reference path ---------------------
    if shared_sel.any():
        drop = mapping._drop_ref
        release = scheme._release_if_dead
        for lpn, ppn in zip(
            uniq[mapped_sel][shared_sel].tolist(), prev_ppns[shared_sel].tolist()
        ):
            drop(ppn, lpn)
            release(ppn)

    # ---- vectorized effects ----------------------------------------------
    # Initially-solo overwrites die wholesale (distinct PPNs: a
    # refcount-1 page has exactly one referrer).
    dying = prev_ppns[~shared_sel]
    hist = tracker.histogram
    inval = born_dead
    if dying.size:
        ref_view[dying] = 0
        solo_view[dying] = -1
        _bucket_invalidations(hist, np.maximum(peak_view[dying], 1))
        peak_view[dying] = 0
        negative = scheme.page_fp._negative
        if negative:  # hand-built negative fps: exact path
            fpd = fp_view[dying]
            for ppn in dying[fpd == _FP_NEGATIVE].tolist():
                negative.pop(ppn, None)
        fp_view[dying] = _FP_ABSENT
        _remove_canonical(index, views, dying)
        flash.page_state[dying] = PageState.INVALID
        inval = np.concatenate([born_dead, dying])

    # In-run born-dead pages: bind and drop cancel; only the flash
    # invalidation and the refcount-1 histogram event remain.
    if born_dead.size:
        _bucket_invalidations(hist, np.maximum(peak_view[born_dead], 1))
        peak_view[born_dead] = 0
        _remove_canonical(index, views, born_dead)
        flash.page_state[born_dead] = PageState.INVALID

    # Per-block valid/invalid counter deltas in one bincount.
    if inval.size:
        inval_blocks = inval // ppb
        delta = np.bincount(inval_blocks, minlength=flash.blocks).astype(np.int32)
        flash.valid_count -= delta
        flash.invalid_count += delta
        touched_blocks.update(inval_blocks.tolist())

    # Final occurrences: one scatter per column.
    fwd_view[uniq] = live_ppns
    ref_view[live_ppns] = 1
    solo_view[live_ppns] = uniq
    fp_view[live_ppns] = fps[last_pos]
    peak_view[live_ppns] = np.maximum(peak_view[live_ppns], 1)
    mapping._len += int(uniq.size) - int(prev_ppns.size)
    del fwd_view

    # ---- victim-index reconciliation -------------------------------------
    sync = scheme.victim_index.sync_block
    tb = np.fromiter(touched_blocks, dtype=np.int64, count=len(touched_blocks))
    inv = flash.invalid_count[tb]
    full = flash.write_ptr[tb] == ppb
    for block, invalid, is_full in zip(tb.tolist(), inv.tolist(), full.tolist()):
        sync(block, invalid, is_full)


def _bucket_invalidations(hist, peaks: np.ndarray) -> None:
    """Fold a batch of lifetime peaks into the Fig 6 histogram."""
    hist.ref1 += int(np.count_nonzero(peaks <= 1))
    hist.ref2 += int(np.count_nonzero(peaks == 2))
    hist.ref3 += int(np.count_nonzero(peaks == 3))
    hist.ref_gt3 += int(np.count_nonzero(peaks > 3))


def _remove_canonical(index, views: ColumnViews, ppns: np.ndarray) -> None:
    """Drop index entries for any of ``ppns`` that are canonical.

    Bulk foreground writes never make pages canonical, so the common
    case (empty index) is two O(1) checks and no work; pages a GC pass
    promoted to canonical go through the reference removal (tombstone
    handling).
    """
    if len(index) == 0:
        return
    if index._fallback_ppn:
        for ppn in ppns.tolist():
            index.remove_ppn(ppn)
        return
    hits = ppns[views.rev[ppns] != _IDX_EMPTY]
    if hits.size:
        for ppn in hits.tolist():
            index.remove_ppn(ppn)
