"""Vectorized batch ``peek`` over the open-addressed fingerprint table.

The :class:`repro.dedup.index.FingerprintIndex` flat table is probed
with a Fibonacci-scrambled linear scan; :func:`probe_many` runs that
scan for a whole batch of fingerprints at once with masked NumPy
gathers — at the table's <=2/3 load factor almost every probe resolves
within the first couple of rounds, so the loop iterates a handful of
times over a shrinking pending set instead of once per fingerprint.

Only valid for non-negative fingerprints (negative digests live in the
index's fallback dicts and never appear in trace replays).  The views
taken here are transient: any insert can grow/reallocate the columns,
so results must be consumed before the index is mutated.
"""

from __future__ import annotations

import numpy as np

from repro.dedup.index import _EMPTY, _GOLD

_GOLD_U64 = np.uint64(_GOLD)


def probe_many(index, fps: np.ndarray) -> np.ndarray:
    """Canonical PPN per fingerprint (int64; -1 = absent).

    Bit-identical to ``[index.peek(fp) for fp in fps]`` for
    non-negative ``fps``, without touching the hit/miss statistics.
    """
    n = fps.shape[0]
    out = np.full(n, -1, dtype=np.int64)
    if n == 0 or index._used == 0:
        return out
    keys = np.frombuffer(index._keys, dtype=np.int64)
    vals = np.frombuffer(index._vals, dtype=np.int64)
    mask_u = np.uint64(index._mask)
    mask_i = index._mask
    slot = ((fps.astype(np.uint64) * _GOLD_U64) & mask_u).astype(np.int64)
    pending = np.arange(n)
    while pending.size:
        k = keys[slot[pending]]
        found = k == fps[pending]
        if found.any():
            hit = pending[found]
            out[hit] = vals[slot[hit]]
        live = ~(found | (k == _EMPTY))
        pending = pending[live]
        if pending.size:
            slot[pending] = (slot[pending] + 1) & mask_i
    return out
