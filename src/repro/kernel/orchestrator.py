"""Batch replay orchestrator: chunked trace -> vectorized kernels.

``replay_vectorized`` reproduces :meth:`repro.device.ssd.SSD.replay`
bit for bit without the event engine.  The FIFO single-server device
makes request timing a pure recurrence — ``completion_i =
max(arrival_i, completion_{i-1}) + duration_i`` — and the replay
factors into *runs* of requests with no GC trigger or trim between
them:

1. slice a chunk of raw trace columns (``Trace.iter_chunks`` /
   ``StreamingTrace.iter_chunks``; the chunk size comes from
   ``SSDConfig.kernel_chunk_requests``);
2. find the run boundary.  For bulk schemes every write programs all
   its pages, so the first GC-triggering write follows from the
   allocator state alone (an exact integer prefix scan over the write
   page counts).  For the inline-dedupe scheme only dedup *misses*
   program, so :func:`repro.kernel.inline.plan_inline_run` resolves
   the window's dedup outcomes read-only — one vectorized index probe
   plus a dict loop — with the same watermark check fused in;
3. everything before that boundary is one run: service times come from
   one elementwise pass (bulk) or the plan's per-request program
   counts (inline), completions from the sequential recurrence
   (njit-compiled when numba is importable), latencies land via
   ``LatencyRecorder.record_many`` (and, when telemetry is attached,
   one exact histogram fold plus boundary-clocked snapshots through
   ``RunTelemetry.on_batch``), and the writes' state effects apply
   through :func:`repro.kernel.write.apply_write_run` or
   :func:`repro.kernel.inline.apply_inline_run`;
4. the boundary request (GC-triggering write, or any trim) goes
   through the reference scheme calls — same ``run_gc`` /
   ``write_request`` / ``trim_request``, same post-GC hook, telemetry
   and timeline sampling — and the scan restarts behind it.

Requests the batched kernels do not model (negative fingerprints in a
chunk) drop to the same per-request reference path, so the fallback is
row-granular, never a mid-run abort.  The ``kernel`` tracer track
records one ``batch`` span per run and one ``fallback`` span per
slow-path request (with host ``wall_us`` attribution and a ``reason``
tag — ``gc-trigger``, ``trim`` or ``negative-fp``), which
``repro.obs.kernel_attribution`` folds into per-reason report rows.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.device.ssd import RunResult, SSD
from repro.ftl.allocator import Region
from repro.kernel._njit import completion_recurrence, first_trigger
from repro.kernel.cagcmig import install_fast_cagc
from repro.kernel.gcmig import install_fast_gc
from repro.kernel.inline import apply_inline_run, plan_inline_run
from repro.kernel.views import ColumnViews
from repro.kernel.write import apply_write_run
from repro.obs.trace import TRACK_KERNEL
from repro.schemes.inline_dedupe import InlineDedupeScheme
from repro.sim.engine import SimulationError
from repro.workloads.request import OpKind

_OP_WRITE = int(OpKind.WRITE)
_OP_READ = int(OpKind.READ)
_OP_TRIM = int(OpKind.TRIM)

#: Inline-dedupe plan window bounds (requests).  The plan re-resolves
#: from scratch after every GC boundary, so the window adapts to the
#: observed run length: big windows amortize the vectorized probe over
#: dedup-heavy traffic, small ones bound the wasted lookahead when GC
#: triggers every few dozen writes.
_PLAN_WINDOW_MIN = 256
_PLAN_WINDOW_MAX = 8192


def kernel_eligible(ssd: SSD, trace) -> bool:
    """Can this (device, trace) pair take the vectorized path?

    The batched kernels model the default replay configuration:
    blocking foreground GC, no DRAM write buffer, and either a
    bulk-write scheme or the inline-dedupe scheme (whose foreground
    hash/lookup path has its own plan/apply kernel).  Post-GC hooks,
    tracers, telemetry, metrics and heartbeats are supported —
    telemetry and metrics fold per-batch with exact histogram counts,
    snapshots/series samples clock at batch boundaries.  Anything else
    silently takes the reference event loop under the same
    ``FTLScheme`` interface.
    """
    scheme = ssd.scheme
    return (
        scheme.config.kernel == "vectorized"
        and scheme.config.gc_mode == "blocking"
        and ssd.buffer is None
        and (scheme.bulk_user_writes or type(scheme) is InlineDedupeScheme)
        and hasattr(trace, "iter_chunks")
    )


def replay_vectorized(ssd: SSD, trace) -> RunResult:
    """Replay ``trace`` through the batched kernels; see module docs."""
    scheme = ssd.scheme
    views = ColumnViews(scheme)
    install_fast_gc(scheme, views) or install_fast_cagc(scheme, views)
    timing = scheme.timing
    channels = scheme.flash.geometry.channels
    lanes = timing.hash_lanes
    allocator = scheme.allocator
    ppb = scheme.flash.pages_per_block
    trigger_blocks = scheme._gc_trigger_blocks
    latency = ssd.latency
    tracer = ssd.tracer
    telemetry = ssd.telemetry
    metrics = ssd.metrics
    heartbeat = ssd.heartbeat
    hot = Region.HOT
    inline = not scheme.bulk_user_writes  # eligibility: inline-dedupe

    try:
        chunks = trace.iter_chunks(scheme.config.kernel_chunk_requests)
    except TypeError:
        chunks = trace.iter_chunks()  # streaming traces fix their own size

    t = 0.0  # completion time of the previous request
    served = False  # at least one request completed (sim clock moved)
    last_time = 0.0
    fallback_requests = 0
    window = 1024  # current inline plan window (requests)

    for chunk in chunks:
        n = len(chunk)
        if n == 0:
            continue
        times = chunk.times_us
        ops = chunk.ops
        lpns = chunk.lpns
        npages = chunk.npages
        offsets = chunk.fp_offsets
        fps_flat = chunk.fps_flat
        if float(times[0]) < last_time or bool((np.diff(times) < 0).any()):
            raise SimulationError(
                "cannot schedule into the past (trace arrivals not monotone)"
            )
        last_time = float(times[-1])
        if bool((ops > _OP_TRIM).any()):
            bad = int(ops[ops > _OP_TRIM][0])
            raise ValueError(f"unknown opcode {bad}")

        is_write = ops == _OP_WRITE
        is_trim = ops == _OP_TRIM
        lengths = offsets[1:] - offsets[:-1]
        # Fingerprint spans are the authoritative write page counts.
        wn_all = np.where(is_write, lengths, 0).astype(np.int64)
        # Slow-path chunk: negative fingerprints (never produced by
        # traces; exactness over speed when hand-built rows carry them).
        if fps_flat.size and bool((fps_flat < 0).any()):
            for i in range(n):
                fview = (
                    fps_flat[offsets[i] : offsets[i + 1]]
                    if is_write[i]
                    else None
                )
                t = _slow_request(
                    ssd, float(times[i]), int(ops[i]), int(lpns[i]),
                    int(npages[i]), fview, t, tracer, "negative-fp",
                )
                fallback_requests += 1
                served = True
            continue
        # Non-write rows with nonzero fingerprint spans would break the
        # contiguous-slice fast path below; route them per-request too.
        contiguous = int(np.where(~is_write, lengths, 0).sum()) == 0

        # Elementwise service durations.  Write durations are
        # state-independent for bulk schemes; for inline-dedupe they
        # depend on the per-request dedup miss count, so the plan
        # scatters them in per run below.
        slots = (npages.astype(np.int64) + (channels - 1)) // channels
        durations = np.where(
            is_write,
            np.where(
                wn_all > 0,
                timing.overhead_us
                + ((wn_all + (channels - 1)) // channels) * timing.write_us,
                timing.overhead_us + timing.lookup_us,
            ),
            np.where(
                is_trim,
                timing.overhead_us + timing.lookup_us * npages,
                np.where(
                    npages > 0,
                    timing.overhead_us + slots * timing.read_us,
                    timing.overhead_us,
                ),
            ),
        )

        trim_positions = np.nonzero(is_trim)[0]
        trim_cursor = 0
        write_positions = np.nonzero(is_write)[0]

        i = 0
        while i < n:
            # Stretch end: the next trim (state-order-dependent, so it
            # splits the run) or the chunk end.
            while trim_cursor < len(trim_positions) and trim_positions[trim_cursor] < i:
                trim_cursor += 1
            stop = (
                int(trim_positions[trim_cursor])
                if trim_cursor < len(trim_positions)
                else n
            )
            reason: Optional[str] = None
            plan = None
            wfps = None
            if inline:
                # Inline plan window: resolve at most `window` requests
                # ahead (the plan restarts after every boundary, so the
                # lookahead bounds wasted work, not correctness — a
                # window edge is just another place a run may split).
                win = stop if stop - i <= window else i + window
                lo = int(np.searchsorted(write_positions, i))
                hi = int(np.searchsorted(write_positions, win))
                w = write_positions[lo:hi]
                e = win
                if w.size:
                    wn = wn_all[w]
                    pages = int(wn.sum())
                    if contiguous:
                        wfps = fps_flat[offsets[i] : offsets[win]]
                    else:
                        wfps = np.concatenate(
                            [
                                fps_flat[offsets[j] : offsets[j + 1]]
                                for j in w.tolist()
                            ]
                        ) if pages else fps_flat[:0]
                    af0 = (
                        allocator._active_free[hot]
                        if allocator._active[hot] is not None
                        else 0
                    )
                    budget = allocator.free_blocks - trigger_blocks
                    jw, plan = plan_inline_run(
                        scheme, views, lpns[w], wn, wfps, af0, budget, ppb
                    )
                    if jw < w.size:
                        e = int(w[jw])
                        reason = "gc-trigger"
                        w = w[:jw]
                        wn = wn[:jw]
                        wfps = wfps[: int(wn.sum())]
                    if w.size:
                        progs = plan.programs[: w.size]
                        base_w = np.where(
                            progs > 0,
                            timing.overhead_us
                            + ((progs + (channels - 1)) // channels)
                            * timing.write_us,
                            timing.overhead_us,
                        )
                        dur_w = base_w + (
                            ((wn + (lanes - 1)) // lanes) * timing.hash_us
                            + wn * timing.lookup_us
                        )
                        durations[w] = dur_w + np.where(
                            progs == 0, timing.lookup_us, 0.0
                        )
                if reason is None and e == stop and stop < n:
                    reason = "trim"
            else:
                # Bulk: the first GC-triggering write in [i, stop) is an
                # exact integer prediction from the allocator state.
                lo = int(np.searchsorted(write_positions, i))
                hi = int(np.searchsorted(write_positions, stop))
                w = write_positions[lo:hi]
                e = stop
                if w.size:
                    wn = wn_all[w]
                    cum_before = np.cumsum(wn) - wn
                    af0 = (
                        allocator._active_free[hot]
                        if allocator._active[hot] is not None
                        else 0
                    )
                    budget = allocator.free_blocks - trigger_blocks
                    jw = first_trigger(cum_before, af0, ppb, budget)
                    if jw >= 0:
                        e = int(w[jw])
                        reason = "gc-trigger"
                        w = w[:jw]
                        wn = wn[:jw]
                if reason is None and e < n:
                    reason = "trim"
            if e > i:
                wall0 = time.perf_counter()
                seg_times = times[i:e]
                completions, t = completion_recurrence(
                    np.ascontiguousarray(seg_times, dtype=np.float64),
                    np.ascontiguousarray(durations[i:e]),
                    t,
                )
                lat_batch = completions - seg_times
                latency.record_many(lat_batch)
                ssd.requests_completed += e - i
                served = True
                if telemetry is not None:
                    telemetry.on_batch(lat_batch, t, ssd)
                if metrics is not None:
                    metrics.on_batch(lat_batch, t, ssd)
                if heartbeat is not None:
                    heartbeat.tick(
                        t,
                        ssd.requests_completed,
                        ssd.requests_completed,
                        gc_collects=scheme.gc_counters.gc_invocations,
                    )
                # Reads: counter-only effects.
                seg_reads = (~is_write[i:e]).sum()  # no trims inside a run
                if seg_reads:
                    io = scheme.io_counters
                    io.read_requests += int(seg_reads)
                    io.pages_read += int(
                        np.where(~is_write[i:e], npages[i:e], 0).sum()
                    )
                pages = 0
                if w.size:
                    pages = int(wn.sum())
                    starts = completions[w - i] - durations[w]
                    if inline:
                        apply_inline_run(
                            scheme, views, lpns[w], wn, wfps, starts, plan
                        )
                    else:
                        if contiguous:
                            # Non-write spans are empty, so the writes'
                            # fingerprints are one contiguous slice.
                            wfps = fps_flat[offsets[i] : offsets[i] + pages]
                        else:
                            wfps = np.concatenate(
                                [
                                    fps_flat[offsets[j] : offsets[j + 1]]
                                    for j in w.tolist()
                                ]
                            ) if pages else fps_flat[:0]
                        apply_write_run(scheme, views, lpns[w], wn, wfps, starts)
                if tracer is not None:
                    ts = float(completions[0] - durations[i])
                    tracer.span(
                        TRACK_KERNEL, "batch", ts, float(t - ts),
                        requests=e - i, pages=pages,
                        wall_us=(time.perf_counter() - wall0) * 1e6,
                    )
                    tracer.counter(TRACK_KERNEL, "batch_requests", ts, e - i)
            if reason is not None and e < n:
                fview = (
                    fps_flat[offsets[e] : offsets[e + 1]] if is_write[e] else None
                )
                t = _slow_request(
                    ssd, float(times[e]), int(ops[e]), int(lpns[e]),
                    int(npages[e]), fview, t, tracer, reason,
                )
                fallback_requests += 1
                served = True
                if tracer is not None:
                    tracer.counter(
                        TRACK_KERNEL, "fallback_requests", t, fallback_requests
                    )
                i = e + 1
            else:
                i = e
            if inline:
                # Adapt the plan window to the observed run length.
                if reason == "gc-trigger":
                    runlen = max(int(e) - i + 1, 1)  # i already advanced
                    window = min(
                        _PLAN_WINDOW_MAX, max(_PLAN_WINDOW_MIN, 2 * runlen)
                    )
                elif window < _PLAN_WINDOW_MAX:
                    window = min(_PLAN_WINDOW_MAX, window * 2)

    ssd.sim.now = t if served else ssd.sim.now
    if telemetry is not None:
        telemetry.snapshot(max(ssd._gc_sample_us, ssd.sim.now), ssd)
    if metrics is not None:
        metrics.finish(ssd.sim.now, ssd)
    if heartbeat is not None:
        heartbeat.finish(
            ssd.sim.now,
            ssd.requests_completed,
            ssd.requests_completed,
            gc_collects=scheme.gc_counters.gc_invocations,
        )
    return RunResult(
        scheme=scheme.name,
        trace=trace.name,
        latency=latency.summary(),
        response_times_us=latency.samples().copy(),
        gc=scheme.gc_counters,
        io=scheme.io_counters,
        wear=scheme.wear(),
        simulated_us=ssd.sim.now,
        buffer=None,
        metrics=metrics.snapshot() if metrics is not None else None,
    )


def _slow_request(
    ssd: SSD,
    arrival: float,
    op: int,
    lpn: int,
    npages: int,
    fps: Optional[np.ndarray],
    t_prev: float,
    tracer,
    reason: str,
) -> float:
    """One request through the reference scheme calls.

    Exactly :meth:`SSD._service` under blocking GC with no write
    buffer: the GC-triggering writes, trims, and any request the
    batched kernels do not model.  ``reason`` tags the fallback span
    for the attribution report.  Returns the completion time.
    """
    wall0 = time.perf_counter()
    scheme = ssd.scheme
    timing = scheme.timing
    now = arrival if arrival > t_prev else t_prev
    ssd.sim.now = now  # post-GC hooks read the service-start clock
    if op == _OP_WRITE:
        gc_us = scheme.run_gc(now) if scheme.needs_gc() else 0.0
        if gc_us > 0.0:
            ssd._sample_gc_state(now + gc_us)
            if ssd.hooks:
                ssd.hooks(ssd)
        outcome = scheme.write_request(lpn, fps, now + gc_us)
        service = timing.write_request_us(
            outcome.programs, scheme.flash.geometry.channels
        )
        if outcome.hashed_pages:
            service += timing.inline_dedup_us(outcome.hashed_pages)
        if outcome.programs == 0:
            service += timing.lookup_us
        duration = gc_us + service
    elif op == _OP_READ:
        scheme.read_request(lpn, npages)
        duration = timing.read_request_us(npages, scheme.flash.geometry.channels)
    else:
        scheme.trim_request(lpn, npages, now)
        duration = timing.overhead_us + timing.lookup_us * npages
    completion = now + duration
    ssd.latency.record(completion - arrival)
    ssd.requests_completed += 1
    if ssd.telemetry is not None:
        # The reference completion event fires with the sim clock at
        # the completion time; the histogram/snapshot view matches.
        ssd.telemetry.on_complete(completion, completion - arrival, ssd)
    if ssd.metrics is not None:
        ssd.metrics.on_complete(completion, completion - arrival, ssd)
        ssd.metrics.on_fallback(reason)
    if ssd.heartbeat is not None:
        ssd.heartbeat.tick(
            completion,
            ssd.requests_completed,
            ssd.requests_completed,
            gc_collects=scheme.gc_counters.gc_invocations,
        )
    if tracer is not None:
        tracer.span(
            TRACK_KERNEL, "fallback", now, duration,
            requests=1, wall_us=(time.perf_counter() - wall0) * 1e6,
            reason=reason,
        )
    return completion
