"""Long-lived NumPy views over the fixed-size FTL columns.

The batched kernels read and scatter into the columnar stores through
``np.frombuffer`` views.  Re-deriving those views on every run/victim
is pure overhead for the columns whose backing buffers can never
reallocate: ``_ref``/``_solo`` (mapping reverse columns), the
fingerprint and peak columns, and the index's reverse column are all
pre-sized to the device's physical page count and only ever mutated in
place.  One :class:`ColumnViews` per replay caches them.

The forward map ``_fwd`` is deliberately **not** cached: it grows
geometrically when a write addresses a new high LPN, and ``array``
refuses to extend while a NumPy export is alive — so a persistent view
would turn a legitimate growth into a ``BufferError``.  Kernels take a
transient ``fwd()`` view after pre-growing and drop it before any
reference-path code can run.
"""

from __future__ import annotations

import numpy as np

from repro.schemes.base import FTLScheme


class ColumnViews:
    """Cached views over the physical-page-indexed columns."""

    __slots__ = ("scheme", "ref", "solo", "fp", "peak", "rev")

    def __init__(self, scheme: FTLScheme) -> None:
        self.scheme = scheme
        mapping = scheme.mapping
        self.ref = np.frombuffer(mapping._ref, dtype=np.int32)
        self.solo = np.frombuffer(mapping._solo, dtype=np.int64)
        self.fp = np.frombuffer(scheme.page_fp._col, dtype=np.int64)
        self.peak = np.frombuffer(scheme.tracker.peaks._col, dtype=np.int32)
        self.rev = np.frombuffer(scheme.index._ppn_fp, dtype=np.int64)

    def fwd(self) -> np.ndarray:
        """Transient forward-map view; never hold across kernel calls."""
        return np.frombuffer(self.scheme.mapping._fwd, dtype=np.int64)
