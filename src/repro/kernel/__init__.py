"""Batch-vectorized replay kernels over the columnar FTL stores.

The kernel/orchestrator split behind ``config.kernel = "vectorized"``:

* :mod:`repro.kernel.orchestrator` — chunked replay driver: slices raw
  trace columns, predicts GC-trigger boundaries, and routes everything
  between them through the batched kernels (and everything else through
  the reference per-request path);
* :mod:`repro.kernel.write` — the write-service kernel: one run of
  bulk-scheme writes as column scatters;
* :mod:`repro.kernel.gcmig` — the GC-migration kernel for plain-copy
  victim collection;
* :mod:`repro.kernel.cagcmig` — the lean scalar collect for CAGC's
  inherently sequential dedup/promotion victim walk;
* :mod:`repro.kernel.views` — cached zero-copy NumPy views over the
  columnar FTL/dedup stores the kernels scatter into;
* :mod:`repro.kernel._njit` — optional numba tier for the two
  irreducibly sequential scalar loops.

Every path is bit-identical to ``kernel = "reference"`` — the
differential oracle diffs the two continuously (the
``kernel-equivalence`` fuzz profile).
"""

from repro.kernel.orchestrator import CHUNK_REQUESTS, kernel_eligible, replay_vectorized

__all__ = ["CHUNK_REQUESTS", "kernel_eligible", "replay_vectorized"]
