"""Batch-vectorized replay kernels over the columnar FTL stores.

The kernel/orchestrator split behind ``config.kernel = "vectorized"``:

* :mod:`repro.kernel.orchestrator` — chunked replay driver: slices raw
  trace columns, finds GC-trigger boundaries, and routes everything
  between them through the batched kernels (and everything else through
  the reference per-request path);
* :mod:`repro.kernel.write` — the write-service kernel: one run of
  bulk-scheme writes as column scatters;
* :mod:`repro.kernel.inline` — the inline-dedupe foreground kernel:
  plan/apply split over a window of hashed writes (vectorized index
  probe, integer-handle resolution loop, net-final state scatters);
* :mod:`repro.kernel.probe` — vectorized batch ``peek`` over the
  open-addressed fingerprint table;
* :mod:`repro.kernel.gcmig` — the GC-migration kernel for plain-copy
  victim collection (baseline and inline-dedupe metadata moves);
* :mod:`repro.kernel.cagcmig` — the batched CAGC victim collection
  (dedup/promotion walk replayed as phases over the pipeline model);
* :mod:`repro.kernel.views` — cached zero-copy NumPy views over the
  columnar FTL/dedup stores the kernels scatter into;
* :mod:`repro.kernel._njit` — optional numba tier for the irreducibly
  sequential scalar recurrences.

Every path is bit-identical to ``kernel = "reference"`` — the
differential oracle diffs the two continuously (the
``kernel-equivalence`` fuzz profile).  The replay chunk size comes from
``SSDConfig.kernel_chunk_requests`` (``REPRO_KERNEL_CHUNK`` env
override).
"""

from repro.kernel.orchestrator import kernel_eligible, replay_vectorized

__all__ = ["kernel_eligible", "replay_vectorized"]
