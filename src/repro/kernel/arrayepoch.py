"""Epoch-batched array replay: vectorized kernels across N lanes.

``replay_array_vectorized`` reproduces :meth:`repro.array.SSDArray
.replay` bit for bit without running every request through the shared
event loop.  The array's coupling surface is narrow by construction:

* the :class:`~repro.array.router.RangeRouter` is a pure function of
  the LPN, so the merged multi-tenant stream splits into per-device
  sub-streams in one vectorized pass (:func:`split_epoch_streams`);
* NCQ admission is trajectory-transparent — a bounded queue ahead of a
  FIFO work-conserving server never changes completion times — so the
  gate's ``peak``/``held`` counters are recomputed analytically from
  the per-device arrival/completion columns after the fact;
* devices interact only through the GC-coordination policy.  Under
  ``independent`` there is no interaction at all and the epochs
  degenerate to full-trace per-device runs through the existing
  single-device kernel (:func:`repro.kernel.orchestrator
  .replay_vectorized`).  Under ``staggered``/``global-token`` each
  lane replays *epochs*: batched runs up to the next cross-device
  synchronization point — the predicted foreground GC grant (the first
  write that would drop free blocks below the reserve), or an idle gap
  with background reclamation pending (where the real coordinator gets
  to decide about windows and tokens) — then advances the shared clock
  to that barrier through the ordinary event heap and repeats.

The coordinated epoch planner leans on one watermark fact: a deferred
foreground GC (``GCCoordinator._defer`` -> ``_restore_reserve``) does
*zero work* while ``free_blocks >= reserve_blocks()`` — it only bumps
the deferral counter and emits a tracer instant.  Free blocks fall
monotonically inside a run (no GC between requests), so both the
deferral onset and the first *working* grant are exact integer prefix
scans over the write page counts, just like the single-device
GC-trigger prediction.  Idle-gap barriers are equally analytic: the
background-need onset is a prefix scan too, and a gap only matters
once ``needs_background_gc()`` is true (before that, ``on_idle`` and
``on_window`` are no-ops for every policy).

Fallback stays reason-tagged at the same three granularities the
single-device kernel established:

* ``array-unmodelled`` — whole-array: a feature the epoch model does
  not cover (preemptive lanes, heartbeat observers, streaming traces,
  coordinated replays with negative fingerprints);
* ``array-coord-grant`` — per-request: a coordination grant boundary
  (the write whose deferral must actually reclaim) re-enters the
  reference scheme calls, composing like ``gc-trigger``/``trim``;
* ``array-ncq-stall`` — per-lane counters: the closed-form NCQ
  occupancy hit an admission tie or a closed gate and the counters
  were re-derived through the scalar gate replay (trajectories are
  gate-independent, so this never touches timing).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.ftl.allocator import Region
from repro.kernel._njit import completion_recurrence, first_trigger
from repro.kernel.cagcmig import install_fast_cagc
from repro.kernel.gcmig import install_fast_gc
from repro.kernel.inline import apply_inline_run, plan_inline_run
from repro.kernel.orchestrator import (
    _PLAN_WINDOW_MAX,
    _PLAN_WINDOW_MIN,
    replay_vectorized,
)
from repro.kernel.views import ColumnViews
from repro.kernel.write import apply_write_run
from repro.obs.trace import TRACK_ARRAY, TRACK_KERNEL
from repro.schemes.inline_dedupe import InlineDedupeScheme
from repro.sim.events import EventKind
from repro.workloads.request import OpKind

_OP_WRITE = int(OpKind.WRITE)
_OP_TRIM = int(OpKind.TRIM)

#: Whole-array fallback reason: some device or observer feature is
#: outside the epoch model and the replay runs the reference loop.
FALLBACK_UNMODELLED = "array-unmodelled"
#: Per-request fallback reason: a coordination grant boundary (the
#: deferral that must actually restore the reserve) went through the
#: reference scheme calls.
FALLBACK_COORD_GRANT = "array-coord-grant"
#: Per-lane counter fallback reason: NCQ peak/held re-derived via the
#: scalar admission-gate replay (closed gate or an arrival/completion
#: tie the closed form cannot order).
FALLBACK_NCQ_STALL = "array-ncq-stall"

ARRAY_FALLBACK_REASONS = (
    FALLBACK_COORD_GRANT,
    FALLBACK_NCQ_STALL,
    FALLBACK_UNMODELLED,
)


# --------------------------------------------------------------- splitter


def split_epoch_streams(router, trace) -> List[Tuple[object, np.ndarray, np.ndarray]]:
    """Split ``trace`` per device, keeping the merged-stream positions.

    Returns one ``(sub_trace, tenant_ids, merged_indices)`` triple per
    device.  ``merged_indices[k]`` is the position in the merged trace
    of the sub-trace's ``k``-th request — ascending per device (the
    router preserves relative order), and the index arrays partition
    ``arange(len(trace))`` exactly (every request lands on exactly one
    device).  The Hypothesis suite pins both properties.
    """
    subs = router.split(trace)
    if len(trace):
        device_ids = trace.lpns // router.pages_per_device
    else:
        device_ids = np.zeros(0, dtype=np.int64)
    out = []
    for device, (sub, tenants) in enumerate(subs):
        idx = np.nonzero(device_ids == device)[0]
        out.append((sub, tenants, idx))
    return out


def merge_completions(
    per_device_completions: List[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable merge of per-device completion columns.

    Returns ``(times, devices)`` ordered by completion time with ties
    broken by device index then per-device order — the order the
    shared event heap would drain same-time completions scheduled in
    lane order.  Stability is what makes epoch barriers safe: merging
    each side of any barrier time separately and concatenating equals
    filtering the full merge, so barriers can never reorder
    cross-device completions (the property suite pins this).
    """
    if not per_device_completions:
        return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int64)
    times = np.concatenate(
        [np.asarray(c, dtype=np.float64) for c in per_device_completions]
    )
    devices = np.concatenate(
        [
            np.full(len(c), d, dtype=np.int64)
            for d, c in enumerate(per_device_completions)
        ]
    )
    order = np.argsort(times, kind="stable")
    return times[order], devices[order]


# ---------------------------------------------------------- NCQ counters


def ncq_occupancy(
    arrivals: np.ndarray, completions: np.ndarray, depth: int
) -> Tuple[int, int, bool]:
    """``(peak, held, scalar)`` for one lane's admission gate.

    When the unbounded in-flight window never reaches ``depth`` and no
    completion lands exactly on an arrival instant, the closed form is
    exact: occupancy just after arrival ``i`` is ``i + 1`` minus the
    completions strictly before it, and nothing is ever held.  Any
    closed gate or tie drops to :func:`_gate_replay` (``scalar`` is
    then True, reported as ``array-ncq-stall`` in the attribution).
    """
    n = int(arrivals.size)
    if n == 0:
        return 0, 0, False
    a = np.ascontiguousarray(arrivals, dtype=np.float64)
    c = np.ascontiguousarray(completions, dtype=np.float64)
    freed = np.searchsorted(c, a, side="left")
    peak = int((np.arange(1, n + 1) - freed).max())
    tie = bool(np.isin(a, c).any())
    if peak < depth and not tie:
        return peak, 0, False
    peak, held = _gate_replay(a, c, depth)
    return peak, held, True


def _gate_replay(a: np.ndarray, c: np.ndarray, depth: int) -> Tuple[int, int]:
    """Faithful scalar replay of ``_ArrayLane``'s admission mechanics.

    Ports the reference chain exactly: the catch-up loop admits every
    already-due row synchronously, a row arriving at a full gate parks
    (one ``held`` count, chain paused), and a completion frees a slot
    and re-admits the parked row before anything else.  Completion
    events are ordered against pending arrival events by (time,
    schedule order); the completion for request ``k`` is scheduled at
    its service start ``max(a_k, c_{k-1})``, which is what breaks
    exact-time ties the same way the event heap does.
    """
    n = int(a.size)
    al = a.tolist()
    cl = c.tolist()
    inflight = 0
    peak = 0
    held = 0
    r = 0  # next row to admit/schedule
    blocked = False
    pend_t: Optional[float] = None  # pending arrival event time
    pend_sched = 0.0  # when that arrival event was scheduled

    def chain(now: float) -> None:
        nonlocal r, blocked, pend_t, pend_sched, inflight, peak, held
        while r < n:
            ar = al[r]
            if ar <= now and inflight > 0:
                if inflight >= depth:
                    blocked = True
                    held += 1
                    return
                inflight += 1
                if inflight > peak:
                    peak = inflight
                r += 1
                continue
            pend_t = ar if ar > now else now
            pend_sched = now
            return
        pend_t = None

    chain(0.0)
    prev_c = 0.0
    for k in range(n):
        ck = cl[k]
        sk = al[k] if al[k] > prev_c else prev_c
        while pend_t is not None and (
            pend_t < ck or (pend_t == ck and pend_sched <= sk)
        ):
            now = pend_t
            pend_t = None
            if inflight >= depth:
                blocked = True
                held += 1
            else:
                inflight += 1
                if inflight > peak:
                    peak = inflight
                r += 1
                chain(now)
        inflight -= 1
        if blocked:
            blocked = False
            inflight += 1
            if inflight > peak:
                peak = inflight
            r += 1
            chain(ck)
        prev_c = ck
    return peak, held


# ------------------------------------------------------- telemetry fold


class _LaneFold:
    """Per-lane telemetry adapter: batched folds into ArrayTelemetry.

    Quacks like ``RunTelemetry`` for the single-device kernel hooks
    (``on_batch``/``on_complete``/``snapshot``) but lands every
    latency in the array's global, per-device and per-tenant
    histograms — the exact counts the reference's per-completion
    ``ArrayTelemetry.on_complete`` calls produce, folded per batch.
    It also keeps the lane's latency column so completions (arrival +
    latency) can be reconstructed for the NCQ counters.

    When the array carries an :class:`~repro.obs.metrics.ArrayMetrics`
    bundle the same folds land there too (``on_array_batch`` /
    ``on_array_complete``) — counter increments and histogram bucket
    counts stay exact; only the time-series recorder cadence differs
    (batch boundaries instead of per completion, same deliberate
    trade-off the single-device kernel makes).
    """

    __slots__ = (
        "telemetry", "metrics", "device", "tenants", "cursor", "parts",
    )

    def __init__(
        self, telemetry, device: int, tenants: np.ndarray, metrics=None
    ) -> None:
        self.telemetry = telemetry
        self.metrics = metrics
        self.device = device
        self.tenants = tenants
        self.cursor = 0
        self.parts: List[np.ndarray] = []

    def on_batch(self, latencies_us: np.ndarray, end_us: float, ssd) -> None:
        n = int(latencies_us.size)
        tel = self.telemetry
        tel.hist.record_many(latencies_us)
        tel.device_hists[self.device].record_many(latencies_us)
        tslice = self.tenants[self.cursor : self.cursor + n]
        if len(tel.tenant_hists) == 1:
            tel.tenant_hists[0].record_many(latencies_us)
        else:
            for tenant in np.unique(tslice):
                tel.tenant_hists[int(tenant)].record_many(
                    latencies_us[tslice == tenant]
                )
        if self.metrics is not None:
            self.metrics.on_array_batch(
                self.device, tslice, latencies_us, end_us
            )
        self.cursor += n
        self.parts.append(latencies_us)

    def on_complete(self, now_us: float, latency_us: float, ssd) -> None:
        tel = self.telemetry
        tenant = int(self.tenants[self.cursor]) if self.tenants.size else 0
        tel.on_complete(self.device, tenant, latency_us)
        if self.metrics is not None:
            self.metrics.on_array_complete(
                self.device, tenant, now_us, latency_us
            )
        self.cursor += 1
        self.parts.append(np.array([latency_us], dtype=np.float64))

    def snapshot(self, now_us: float, ssd) -> None:  # boundary no-op
        pass

    def latencies(self) -> np.ndarray:
        if not self.parts:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(self.parts)


# ------------------------------------------------------------ eligibility


def array_kernel_eligible(array, trace) -> Optional[str]:
    """``None`` when the epoch orchestrator models this replay exactly,
    else the ``array-unmodelled`` fallback reason.

    Mirrors the single-device :func:`repro.kernel.orchestrator
    .kernel_eligible` axes per lane (blocking GC, no write buffer,
    bulk or inline-dedupe scheme, a sliceable trace) and adds the
    array-only ones: heartbeat observers clock per completion on the
    shared loop, and coordinated replays of hand-built traces with
    negative fingerprints would interleave per-request fallbacks with
    coordination decisions the planner cannot predict.  An
    :class:`~repro.obs.metrics.ArrayMetrics` bundle is supported — the
    lane folds feed it batch-exactly, so runner-cached array runs stay
    kernel-eligible.
    """
    for lane in array.lanes:
        scheme = lane.scheme
        if scheme.config.kernel != "vectorized":
            return FALLBACK_UNMODELLED
        if scheme.config.gc_mode != "blocking":
            return FALLBACK_UNMODELLED
        if lane.buffer is not None:
            return FALLBACK_UNMODELLED
        if not (
            scheme.bulk_user_writes or type(scheme) is InlineDedupeScheme
        ):
            return FALLBACK_UNMODELLED
    if array.heartbeat is not None:
        return FALLBACK_UNMODELLED
    times = getattr(trace, "times_us", None)
    if times is None or not hasattr(trace, "iter_chunks"):
        return FALLBACK_UNMODELLED  # streaming traces: no random access
    if array.coordinator is not None:
        fps = getattr(trace, "fps_flat", None)
        if fps is not None and fps.size and bool((fps < 0).any()):
            return FALLBACK_UNMODELLED
    return None


# -------------------------------------------------------- independent N


def _replay_independent(array, subs) -> Tuple[list, list, list, int]:
    """Degenerate epochs: one full-trace kernel run per lane.

    Lanes never interact under ``independent`` coordination (no
    coordinator, NCQ trajectory-transparent), so each lane replays its
    sub-stream through the single-device vectorized kernel on its own
    clock; the shared clock only has to end at the latest lane.
    """
    results = []
    folds = []
    completions = []
    scalar_gates = 0
    sim = array.sim
    for lane, (sub, tenants, _idx) in zip(array.lanes, subs):
        fold = _LaneFold(array.telemetry, lane.index, tenants, array.metrics)
        # Assigned post-construction on purpose: the constructor path
        # would also register the GC-snapshot hook, which the batched
        # kernel drives explicitly.
        lane.telemetry = fold
        lane._trace_name = sub.name
        sim.now = 0.0  # each lane replays on its own clock segment
        result = replay_vectorized(lane, sub)
        lane.telemetry = None
        lane.last_event_us = result.simulated_us if len(sub) else 0.0
        lane.rows_done = True
        lats = fold.latencies()
        arr = np.asarray(sub.times_us, dtype=np.float64)
        comp = arr + lats if lats.size == len(sub) else arr
        peak, held, scalar = ncq_occupancy(arr, comp, array.ncq_depth)
        lane.ncq_peak = peak
        lane.ncq_held = held
        scalar_gates += int(scalar)
        if scalar and array.tracer is not None:
            array.tracer.instant(
                TRACK_ARRAY,
                "kernel-fallback",
                float(lane.last_event_us),
                reason=FALLBACK_NCQ_STALL,
                device=lane.index,
            )
        results.append(result)
        folds.append(fold)
        completions.append(comp)
    sim.now = max([lane.last_event_us for lane in array.lanes] + [0.0])
    return results, folds, completions, scalar_gates


# -------------------------------------------------------- coordinated N


class _LaneState:
    """One lane's replay cursor for the coordinated epoch runner."""

    __slots__ = (
        "lane", "sub", "fold", "n", "i", "t", "times", "ops", "lpns",
        "npages", "offsets", "fps_flat", "is_write", "is_trim", "wn_all",
        "cum_pages", "contiguous", "durations", "trim_positions",
        "write_positions", "inline", "views", "window", "resume_pending",
        "run_end",
    )

    def __init__(self, lane, sub, tenants, telemetry, metrics=None) -> None:
        self.lane = lane
        self.sub = sub
        self.fold = _LaneFold(telemetry, lane.index, tenants, metrics)
        lane.telemetry = None
        lane._trace_name = sub.name
        lane.rows_done = False
        scheme = lane.scheme
        self.inline = not scheme.bulk_user_writes
        self.views = ColumnViews(scheme)
        install_fast_gc(scheme, self.views) or install_fast_cagc(
            scheme, self.views
        )
        n = len(sub)
        self.n = n
        self.i = 0
        self.t = 0.0  # completion time of this lane's previous request
        self.window = 1024
        self.resume_pending = False
        self.run_end = 0.0
        times = np.ascontiguousarray(sub.times_us, dtype=np.float64)
        self.times = times
        self.ops = sub.ops
        self.lpns = sub.lpns
        self.npages = sub.npages
        self.offsets = sub.fp_offsets
        self.fps_flat = sub.fps_flat
        is_write = self.ops == _OP_WRITE
        is_trim = self.ops == _OP_TRIM
        self.is_write = is_write
        self.is_trim = is_trim
        lengths = self.offsets[1:] - self.offsets[:-1]
        wn_all = np.where(is_write, lengths, 0).astype(np.int64)
        self.wn_all = wn_all
        #: pages written up to and including each position — the
        #: background-need onset scan keys off the *post*-request state.
        self.cum_pages = np.cumsum(wn_all)
        self.contiguous = int(np.where(~is_write, lengths, 0).sum()) == 0
        timing = scheme.timing
        channels = scheme.flash.geometry.channels
        slots = (self.npages.astype(np.int64) + (channels - 1)) // channels
        self.durations = np.where(
            is_write,
            np.where(
                wn_all > 0,
                timing.overhead_us
                + ((wn_all + (channels - 1)) // channels) * timing.write_us,
                timing.overhead_us + timing.lookup_us,
            ),
            np.where(
                is_trim,
                timing.overhead_us + timing.lookup_us * self.npages,
                np.where(
                    self.npages > 0,
                    timing.overhead_us + slots * timing.read_us,
                    timing.overhead_us,
                ),
            ),
        ).astype(np.float64)
        self.trim_positions = np.nonzero(is_trim)[0]
        self.write_positions = np.nonzero(is_write)[0]


def _pulls(cum: np.ndarray, af0: int, ppb: int) -> np.ndarray:
    """Active-block pulls needed for ``cum`` pages (exact integers)."""
    return np.maximum(0, (cum - af0 + ppb - 1) // ppb)


class _EpochRunner:
    """Coordinated replay: batched epochs on the real event heap.

    Each lane alternates between (a) committing one *run* — a batch of
    requests with no working GC grant, no trim, and no idle gap with
    background need — through the vectorized kernels, and (b) handing
    control back to the shared event heap until the run's completion
    time, so window ticks, token grants and idle bursts fire through
    the stock coordinator code at exactly the reference instants.
    State effects apply at commit time; that is safe because no other
    lane ever reads this lane's scheme state, and every coordinator
    decision about this lane while a run is in flight short-circuits
    on ``busy``.
    """

    def __init__(self, array, subs) -> None:
        self.array = array
        self.sim = array.sim
        self.tracer = array.tracer
        self.states: List[_LaneState] = []
        for lane, (sub, tenants, _idx) in zip(array.lanes, subs):
            state = _LaneState(
                lane, sub, tenants, array.telemetry, array.metrics
            )
            lane._epoch = self
            self.states.append(state)

    def run(self) -> None:
        for state in self.states:
            if state.n:
                self.advance(state)
            else:
                state.lane.rows_done = True
        self.sim.run()
        for state in self.states:
            state.lane._epoch = None

    # ------------------------------------------------------------ events

    def advance(self, state: _LaneState) -> None:
        """Plan the lane's next step at the current shared-clock event."""
        lane = state.lane
        if state.i >= state.n:
            lane.rows_done = True
            return
        now = self.sim.now
        if (
            state.times[state.i] > now
            and lane.scheme.needs_background_gc()
        ):
            # Genuine idle gap with reclamation pending: stay idle so
            # window ticks / token hand-offs happen at real instants,
            # and resume at the next arrival.
            lane._busy = False
            if not state.resume_pending:
                state.resume_pending = True
                self.sim.schedule_at(
                    float(state.times[state.i]),
                    EventKind.GENERIC,
                    state,
                    self._on_resume,
                )
            return
        self._commit_next(state)

    def _on_resume(self, event) -> None:
        state = event.payload
        state.resume_pending = False
        if state.lane.busy or state.i >= state.n:
            return  # an idle burst (and its follow-up) got here first
        self.advance(state)

    def _on_run_start(self, event) -> None:
        # Intermediate hop at the run's *last service start*: the
        # reference schedules the final completion event there, so
        # scheduling RUN_DONE from this instant keeps exact-time ties
        # between lanes (token contention, window edges) in the same
        # heap order as the reference.
        state = event.payload
        self.sim.schedule_at(
            state.run_end, EventKind.OP_COMPLETE, state, self._on_run_done
        )

    def _on_run_done(self, event) -> None:
        state = event.payload
        lane = state.lane
        now = self.sim.now
        lane.last_event_us = now
        lane._busy = False
        if state.i >= state.n:
            lane.rows_done = True
            lane._maybe_background_gc()  # end-of-stream on_idle
            return
        if state.times[state.i] > now:
            lane._maybe_background_gc()  # queue-empty on_idle
            if not lane.busy:
                self.advance(state)
            return
        self._commit_next(state)

    def on_bg_gc_done(self, lane) -> None:
        """Idle-burst completion for an epoch-mode lane.

        Replaces ``SSD._on_bg_gc_done``'s queue-or-idle tail (the
        epoch lanes keep no event-queue rows): after the stock
        bookkeeping, service anything already due, else re-enter the
        idle decision chain exactly like the reference's empty-queue
        branch.
        """
        state = self.states[lane.index]
        now = self.sim.now
        lane._busy = False
        lane._sample_gc_state(now)
        if lane.hooks:
            lane.hooks(lane)
        if now > state.t:
            state.t = now  # the burst occupied the server
        if state.i >= state.n:
            lane.rows_done = True
            lane._maybe_background_gc()
            return
        if state.times[state.i] <= now:
            self._commit_next(state)
            return
        lane._maybe_background_gc()
        if not lane.busy:
            self.advance(state)

    # ------------------------------------------------------------ commit

    def _commit_next(self, state: _LaneState) -> None:
        """Commit one batched run (or one scalar boundary request)."""
        lane = state.lane
        scheme = lane.scheme
        allocator = scheme.allocator
        ppb = scheme.flash.pages_per_block
        hot = Region.HOT
        i = state.i
        n = state.n
        times = state.times
        wall0 = time.perf_counter()

        trim_idx = np.searchsorted(state.trim_positions, i)
        next_trim = (
            int(state.trim_positions[trim_idx])
            if trim_idx < state.trim_positions.size
            else n
        )
        win = min(i + state.window, next_trim, n)
        lo = int(np.searchsorted(state.write_positions, i))
        hi = int(np.searchsorted(state.write_positions, win))
        w = state.write_positions[lo:hi]
        e = win
        reason: Optional[str] = None
        plan = None
        wfps = None
        wn = None
        progs = None
        af0 = (
            allocator._active_free[hot]
            if allocator._active[hot] is not None
            else 0
        )
        free0 = allocator.free_blocks
        budget_reserve = free0 - scheme.reserve_blocks()
        if w.size:
            wn = state.wn_all[w]
            pages = int(wn.sum())
            if state.contiguous:
                wfps = state.fps_flat[state.offsets[i] : state.offsets[win]]
            else:
                wfps = (
                    np.concatenate(
                        [
                            state.fps_flat[
                                state.offsets[j] : state.offsets[j + 1]
                            ]
                            for j in w.tolist()
                        ]
                    )
                    if pages
                    else state.fps_flat[:0]
                )
            if state.inline:
                jw, plan = plan_inline_run(
                    scheme, state.views, state.lpns[w], wn, wfps,
                    af0, budget_reserve, ppb,
                )
                progs = plan.programs
            else:
                cum_before = np.cumsum(wn) - wn
                jw = first_trigger(cum_before, af0, ppb, budget_reserve)
                jw = int(w.size) if jw < 0 else int(jw)
                progs = wn
            if jw < w.size:
                e = int(w[jw])
                reason = FALLBACK_COORD_GRANT
                w = w[:jw]
                wn = wn[:jw]
                progs = progs[:jw]
                wfps = wfps[: int(wn.sum())]
        if reason is None and e == next_trim and e < n:
            reason = "trim"
        if state.inline and w.size:
            timing = scheme.timing
            channels = scheme.flash.geometry.channels
            lanes_ = timing.hash_lanes
            pr = progs[: w.size]
            base_w = np.where(
                pr > 0,
                timing.overhead_us
                + ((pr + (channels - 1)) // channels) * timing.write_us,
                timing.overhead_us,
            )
            state.durations[w] = (
                base_w
                + ((wn + (lanes_ - 1)) // lanes_) * timing.hash_us
                + wn * timing.lookup_us
                + np.where(pr == 0, timing.lookup_us, 0.0)
            )

        if e > i:
            # Idle-gap barrier: the first completion that strictly
            # precedes the next arrival *while background reclamation
            # is needed* hands control to the coordinator.  Before the
            # need onset, on_idle/on_window decline for every policy,
            # so earlier gaps stay inside the run.
            seg_times = times[i:e]
            completions, t_end = completion_recurrence(
                seg_times,
                np.ascontiguousarray(state.durations[i:e]),
                state.t,
            )
            cut = self._bg_gap_cut(
                state, i, e, completions, af0, free0, ppb, progs, w
            )
            if cut is not None:
                e = cut
                reason = None
                completions = completions[: e - i]
                t_end = float(completions[-1])
                keep = int(np.searchsorted(w, e))
                w = w[:keep]
                if wn is not None:
                    wn = wn[:keep]
                    progs = progs[:keep]
                    wfps = wfps[: int(wn.sum())]
                if state.inline and w.size:
                    # Plans aggregate window-level state (refcount and
                    # overlay deltas), so a shortened run re-resolves;
                    # the per-request outcomes are prefix-stable, so
                    # the already-used durations are unchanged.
                    _, plan = plan_inline_run(
                        scheme, state.views, state.lpns[w], wn,
                        wfps, af0, budget_reserve, ppb,
                    )
            self._commit_run(
                state, i, e, completions, t_end, w, wn, wfps, progs,
                plan, af0, free0, wall0,
            )
            return
        # Empty run: request i itself is the boundary (working grant or
        # trim) and goes through the reference scheme calls.
        self._commit_scalar(state, reason or FALLBACK_COORD_GRANT, wall0)

    def _bg_gap_cut(
        self, state, i, e, completions, af0, free0, ppb, progs, w
    ) -> Optional[int]:
        """First index after which an idle gap with background need
        opens inside ``[i, e)``, or ``None`` when the run is whole.

        A gap at position ``k`` (completion ``k`` strictly before
        arrival ``k+1``) matters only once ``needs_background_gc()``
        holds after request ``k`` — before that every policy's
        ``on_idle``/``on_window`` declines.  The need onset is the
        first write whose *inclusive* program count pulls free blocks
        below the stop watermark (free blocks fall monotonically
        inside a run).  The trailing gap (after ``e - 1``) is handled
        by the run-done event, not here.
        """
        if e - i < 2:
            return None
        scheme = state.lane.scheme
        if scheme.needs_background_gc():
            j_bg = i  # background need is already pending at run start
        else:
            if w is None or not w.size:
                return None  # no writes: need cannot arise inside the run
            cum_incl = np.cumsum(progs[: w.size])
            pulls = _pulls(cum_incl, af0, ppb)
            hit = pulls > free0 - scheme._gc_stop_blocks
            if not hit.any():
                return None
            j_bg = int(w[int(np.argmax(hit))])
        if j_bg >= e - 1:
            return None
        gaps = completions[: e - i - 1] < state.times[i + 1 : e]
        rel0 = j_bg - i
        if rel0 > 0:
            gaps = gaps.copy()
            gaps[:rel0] = False
        if not gaps.any():
            return None
        return i + int(np.argmax(gaps)) + 1

    def _commit_run(
        self, state, i, e, completions, t_end, w, wn, wfps, progs,
        plan, af0, free0, wall0,
    ) -> None:
        lane = state.lane
        scheme = lane.scheme
        seg_times = state.times[i:e]
        lat_batch = completions - seg_times
        lane.latency.record_many(lat_batch)
        lane.requests_completed += e - i
        state.fold.on_batch(lat_batch, t_end, lane)
        seg_reads = int((~state.is_write[i:e]).sum())  # no trims in a run
        if seg_reads:
            io = scheme.io_counters
            io.read_requests += seg_reads
            io.pages_read += int(
                np.where(~state.is_write[i:e], state.npages[i:e], 0).sum()
            )
        pages = 0
        last_start = float(t_end - state.durations[e - 1])
        if w.size:
            pages = int(wn.sum())
            starts = completions[w - i] - state.durations[w]
            if state.inline:
                apply_inline_run(
                    scheme, state.views, state.lpns[w], wn, wfps, starts, plan
                )
            else:
                apply_write_run(
                    scheme, state.views, state.lpns[w], wn, wfps, starts
                )
            self._count_deferrals(state, progs[: w.size], starts, af0, free0)
        if self.tracer is not None:
            ts = float(completions[0] - state.durations[i])
            self.tracer.span(
                TRACK_KERNEL, "batch", ts, float(t_end - ts),
                requests=e - i, pages=pages,
                wall_us=(time.perf_counter() - wall0) * 1e6,
            )
            self.tracer.counter(TRACK_KERNEL, "batch_requests", ts, e - i)
        state.i = e
        state.t = float(t_end)
        state.run_end = float(t_end)
        # Adapt the plan window to the observed run length (same policy
        # as the single-device inline planner: boundaries shrink it to
        # ~2x the run, unbroken windows double it).
        run_len = e - i
        if run_len >= state.window:
            if state.window < _PLAN_WINDOW_MAX:
                state.window = min(_PLAN_WINDOW_MAX, state.window * 2)
        else:
            state.window = min(
                _PLAN_WINDOW_MAX, max(_PLAN_WINDOW_MIN, 2 * run_len)
            )
        lane._busy = True
        # Two-hop completion scheduling: hop to the last request's
        # service start first so same-time completion ties across lanes
        # drain in the reference heap's schedule order (the reference
        # schedules each completion event at its service start).
        now = self.sim.now
        self.sim.schedule_at(
            last_start if last_start > now else now,
            EventKind.GENERIC, state, self._on_run_start,
        )

    def _count_deferrals(self, state, progs, starts, af0, free0) -> None:
        """Batch the no-op deferrals the committed writes would log.

        Every coordinated write below the GC-trigger watermark calls
        ``foreground_gc`` -> ``_defer``; inside a run the reserve is
        never breached, so each is one counter bump plus (when traced)
        a ``gc-deferred`` instant with zero emergency time — nothing
        else.  The onset is a prefix scan over the pre-write program
        counts: free blocks only fall inside a run.
        """
        scheme = state.lane.scheme
        cum_before = np.cumsum(progs) - progs
        pulls = _pulls(cum_before, af0, ppb=scheme.flash.pages_per_block)
        deferred = pulls > free0 - scheme._gc_trigger_blocks
        count = int(deferred.sum())
        if not count:
            return
        coord = self.array.coordinator
        coord.deferrals += count
        if self.tracer is not None:
            device = state.lane.index
            for ts in starts[deferred]:
                self.tracer.instant(
                    TRACK_ARRAY,
                    "gc-deferred",
                    float(ts),
                    device=device,
                    emergency_us=0.0,
                )

    def _commit_scalar(self, state, reason: str, wall0: float) -> None:
        """One boundary request through the reference scheme calls."""
        lane = state.lane
        scheme = lane.scheme
        timing = scheme.timing
        i = state.i
        arrival = float(state.times[i])
        start = arrival if arrival > state.t else state.t
        op = int(state.ops[i])
        lpn = int(state.lpns[i])
        npages = int(state.npages[i])
        if op == _OP_WRITE:
            fview = state.fps_flat[state.offsets[i] : state.offsets[i + 1]]
            gc_us = lane._gc_before_write(start)
            outcome = scheme.write_request(lpn, fview, start + gc_us)
            service = timing.write_request_us(
                outcome.programs, scheme.flash.geometry.channels
            )
            if outcome.hashed_pages:
                service += timing.inline_dedup_us(outcome.hashed_pages)
            if outcome.programs == 0:
                service += timing.lookup_us
            duration = gc_us + service
        elif op == _OP_TRIM:
            scheme.trim_request(lpn, npages, start)
            duration = timing.overhead_us + timing.lookup_us * npages
        else:  # pragma: no cover - reads never form boundaries
            scheme.read_request(lpn, npages)
            duration = timing.read_request_us(
                npages, scheme.flash.geometry.channels
            )
        completion = start + duration
        lane.latency.record(completion - arrival)
        lane.requests_completed += 1
        state.fold.on_complete(completion, completion - arrival, lane)
        metrics = self.array.metrics
        if metrics is not None:
            metrics.on_fallback(reason)
        if self.tracer is not None:
            self.tracer.span(
                TRACK_KERNEL, "fallback", start, duration,
                requests=1, wall_us=(time.perf_counter() - wall0) * 1e6,
                reason=reason,
            )
        state.i = i + 1
        state.t = completion
        state.run_end = completion
        lane._busy = True
        self.sim.schedule_at(
            max(start, self.sim.now), EventKind.GENERIC, state,
            self._on_run_start,
        )


# ----------------------------------------------------------- entry point


def replay_array_vectorized(array, trace, tenants: int):
    """Replay ``trace`` through the epoch orchestrator; see module docs.

    The caller (:meth:`SSDArray.replay`) has already verified
    :func:`array_kernel_eligible` and built the telemetry; this
    returns the fully-populated :class:`~repro.array.device
    .ArrayResult` with ``kernel_fallback_reason=None``.
    """
    from repro.array.coord import StaggeredCoordinator
    from repro.array.device import ArrayResult

    subs = split_epoch_streams(array.router, trace)
    if array.coordinator is None:
        _results, folds, completions, _scalars = _replay_independent(
            array, subs
        )
    else:
        runner = _EpochRunner(array, subs)
        if isinstance(array.coordinator, StaggeredCoordinator):
            array._schedule_window(array.coordinator.window_us)
        runner.run()
        folds = [state.fold for state in runner.states]
        completions = []
        for state in runner.states:
            lats = state.fold.latencies()
            comp = (
                state.times + lats
                if lats.size == state.n
                else state.times
            )
            completions.append(comp)
        for lane, comp, (sub, _tens, _idx) in zip(
            array.lanes, completions, subs
        ):
            arr = np.asarray(sub.times_us, dtype=np.float64)
            peak, held, scalar = ncq_occupancy(arr, comp, array.ncq_depth)
            lane.ncq_peak = peak
            lane.ncq_held = held
            if scalar and array.tracer is not None:
                array.tracer.instant(
                    TRACK_ARRAY,
                    "kernel-fallback",
                    float(lane.last_event_us),
                    reason=FALLBACK_NCQ_STALL,
                    device=lane.index,
                )
    coord_stats = (
        array.coordinator.stats() if array.coordinator is not None else {}
    )
    kernel_gc = tuple(
        dict(getattr(lane.scheme, "kernel_gc_stats", {}) or {})
        for lane in array.lanes
    )
    simulated_us = max([lane.last_event_us for lane in array.lanes] + [0.0])
    if array.metrics is not None:
        array.metrics.finish(simulated_us, array)
    return ArrayResult(
        coordination=array.coordination,
        trace=trace.name,
        devices=tuple(lane.finish() for lane in array.lanes),
        tenants=tenants,
        telemetry=array.telemetry,
        simulated_us=simulated_us,
        ncq_depth=array.ncq_depth,
        ncq_peaks=tuple(lane.ncq_peak for lane in array.lanes),
        ncq_held=tuple(lane.ncq_held for lane in array.lanes),
        coord_stats=coord_stats,
        kernel_fallback_reason=None,
        kernel_gc=kernel_gc,
        metrics=(
            array.metrics.snapshot() if array.metrics is not None else None
        ),
    )


__all__ = [
    "ARRAY_FALLBACK_REASONS",
    "FALLBACK_COORD_GRANT",
    "FALLBACK_NCQ_STALL",
    "FALLBACK_UNMODELLED",
    "array_kernel_eligible",
    "merge_completions",
    "ncq_occupancy",
    "replay_array_vectorized",
    "split_epoch_streams",
]
