"""Optional numba tier for the hottest scalar kernels.

The vectorized replay path is NumPy end to end except for a few
irreducibly sequential recurrences:

* the FIFO completion recurrence ``t_i = max(a_i, t_{i-1}) + d_i``
  (float addition is not associative, so a cumsum reformulation would
  not be bit-identical to the event engine);
* the GC-trigger prefix scan locating the first write of a run whose
  block pulls would cross the free-block watermark;
* the hash-lane pipeline recurrence of the Fig 5 GC pipeline (and the
  inline-dedupe foreground hash stage): each page's hash stage starts
  on the first-free lane, so lane occupancy is a sequential min/max
  chain over the per-page read-done times.

When numba is importable both compile with ``@njit(cache=True)``;
otherwise the module degrades silently to pure-Python / NumPy versions
that produce identical results (same IEEE-754 double ops, same integer
arithmetic).  The container this repo targets does not ship numba, so
the fallback path is itself kept fast: the recurrence runs over
``tolist()`` floats (no per-element ndarray boxing) and the trigger
scan is pure vectorized integer math.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken install
    njit = None
    HAVE_NUMBA = False


def _completion_recurrence_py(arrivals, durations, t_prev):
    """Reference implementation: plain Python floats.

    Returns ``(completions, t_final)``; ``completions[i]`` is the
    completion time of request ``i`` under FIFO single-server service —
    exactly what the event engine computes one event at a time.
    """
    n = len(arrivals)
    out = np.empty(n, dtype=np.float64)
    a = arrivals.tolist()
    d = durations.tolist()
    comp = [0.0] * n
    t = t_prev
    for i in range(n):
        ai = a[i]
        start = ai if ai > t else t
        t = start + d[i]
        comp[i] = t
    out[:] = comp
    return out, t


def _first_trigger_py(cum_pages_before, af0, ppb, budget):
    """First write ordinal whose GC check fires, or -1.

    ``cum_pages_before[j]`` is the exclusive prefix sum of the run's
    write page counts.  A write triggers GC when the block pulls its
    predecessors forced leave fewer than the watermark's worth of free
    blocks: ``pulls > budget`` with ``pulls = max(0,
    ceil((cum - af0) / ppb))`` (``af0`` = pages left in the active
    block at run start).  Exact integer form — covers the case where
    the device is already below the watermark at run start (budget < 0
    triggers on the very first write).
    """
    pulls = (cum_pages_before - af0 + (ppb - 1)) // ppb
    np.maximum(pulls, 0, out=pulls)
    mask = pulls > budget
    if not mask.any():
        return -1
    return int(np.argmax(mask))


def _hash_lane_recurrence_py(read_done, hash_us, lookup_us, lanes):
    """Hash-stage completion per page under ``lanes`` parallel engines.

    Reference model (:class:`repro.core.pipeline.GCPipeline`): page
    ``i`` hashes on the first-index least-busy lane, starting when both
    its read and that lane are done; the stage costs ``hash_us`` then
    ``lookup_us`` — two separate float additions, exactly like the
    reference (addition is not associative).  Returns the per-page
    hash-done times; the caller takes ``max`` for the lane makespan.
    """
    n = len(read_done)
    out = np.empty(n, dtype=np.float64)
    rd = read_done.tolist()
    comp = [0.0] * n
    if lanes == 1:
        t = 0.0
        for i in range(n):
            r = rd[i]
            start = r if r > t else t
            t = start + hash_us + lookup_us
            comp[i] = t
        out[:] = comp
        return out
    free = [0.0] * lanes
    for i in range(n):
        lane = 0
        lane_free = free[0]
        for j in range(1, lanes):
            if free[j] < lane_free:
                lane = j
                lane_free = free[j]
        r = rd[i]
        start = r if r > lane_free else lane_free
        done = start + hash_us + lookup_us
        free[lane] = done
        comp[i] = done
    out[:] = comp
    return out


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _completion_recurrence_nb(arrivals, durations, t_prev):
        n = arrivals.shape[0]
        out = np.empty(n, dtype=np.float64)
        t = t_prev
        for i in range(n):
            ai = arrivals[i]
            start = ai if ai > t else t
            t = start + durations[i]
            out[i] = t
        return out, t

    @njit(cache=True)
    def _first_trigger_nb(cum_pages_before, af0, ppb, budget):
        for j in range(cum_pages_before.shape[0]):
            pulls = (cum_pages_before[j] - af0 + (ppb - 1)) // ppb
            if pulls < 0:
                pulls = 0
            if pulls > budget:
                return j
        return -1

    @njit(cache=True)
    def _hash_lane_recurrence_nb(read_done, hash_us, lookup_us, lanes):
        n = read_done.shape[0]
        out = np.empty(n, dtype=np.float64)
        if lanes == 1:
            t = 0.0
            for i in range(n):
                r = read_done[i]
                start = r if r > t else t
                t = start + hash_us + lookup_us
                out[i] = t
            return out
        free = np.zeros(lanes, dtype=np.float64)
        for i in range(n):
            lane = 0
            lane_free = free[0]
            for j in range(1, lanes):
                if free[j] < lane_free:
                    lane = j
                    lane_free = free[j]
            r = read_done[i]
            start = r if r > lane_free else lane_free
            done = start + hash_us + lookup_us
            free[lane] = done
            out[i] = done
        return out

    completion_recurrence = _completion_recurrence_nb
    first_trigger = _first_trigger_nb
    hash_lane_recurrence = _hash_lane_recurrence_nb
else:
    completion_recurrence = _completion_recurrence_py
    first_trigger = _first_trigger_py
    hash_lane_recurrence = _hash_lane_recurrence_py
