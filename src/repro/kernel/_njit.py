"""Optional numba tier for the hottest scalar kernels.

The vectorized replay path is NumPy end to end except for a few
irreducibly sequential recurrences:

* the FIFO completion recurrence ``t_i = max(a_i, t_{i-1}) + d_i``
  (float addition is not associative, so a cumsum reformulation would
  not be bit-identical to the event engine);
* the GC-trigger prefix scan locating the first write of a run whose
  block pulls would cross the free-block watermark.

(The CAGC pipeline-makespan recurrence stays inline in
:mod:`repro.kernel.cagcmig` — it interleaves with state mutation, so it
cannot be hoisted into a standalone jittable function.)

When numba is importable both compile with ``@njit(cache=True)``;
otherwise the module degrades silently to pure-Python / NumPy versions
that produce identical results (same IEEE-754 double ops, same integer
arithmetic).  The container this repo targets does not ship numba, so
the fallback path is itself kept fast: the recurrence runs over
``tolist()`` floats (no per-element ndarray boxing) and the trigger
scan is pure vectorized integer math.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # ImportError, or a broken install
    njit = None
    HAVE_NUMBA = False


def _completion_recurrence_py(arrivals, durations, t_prev):
    """Reference implementation: plain Python floats.

    Returns ``(completions, t_final)``; ``completions[i]`` is the
    completion time of request ``i`` under FIFO single-server service —
    exactly what the event engine computes one event at a time.
    """
    n = len(arrivals)
    out = np.empty(n, dtype=np.float64)
    a = arrivals.tolist()
    d = durations.tolist()
    comp = [0.0] * n
    t = t_prev
    for i in range(n):
        ai = a[i]
        start = ai if ai > t else t
        t = start + d[i]
        comp[i] = t
    out[:] = comp
    return out, t


def _first_trigger_py(cum_pages_before, af0, ppb, budget):
    """First write ordinal whose GC check fires, or -1.

    ``cum_pages_before[j]`` is the exclusive prefix sum of the run's
    write page counts.  A write triggers GC when the block pulls its
    predecessors forced leave fewer than the watermark's worth of free
    blocks: ``pulls > budget`` with ``pulls = max(0,
    ceil((cum - af0) / ppb))`` (``af0`` = pages left in the active
    block at run start).  Exact integer form — covers the case where
    the device is already below the watermark at run start (budget < 0
    triggers on the very first write).
    """
    pulls = (cum_pages_before - af0 + (ppb - 1)) // ppb
    np.maximum(pulls, 0, out=pulls)
    mask = pulls > budget
    if not mask.any():
        return -1
    return int(np.argmax(mask))


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _completion_recurrence_nb(arrivals, durations, t_prev):
        n = arrivals.shape[0]
        out = np.empty(n, dtype=np.float64)
        t = t_prev
        for i in range(n):
            ai = arrivals[i]
            start = ai if ai > t else t
            t = start + durations[i]
            out[i] = t
        return out, t

    @njit(cache=True)
    def _first_trigger_nb(cum_pages_before, af0, ppb, budget):
        for j in range(cum_pages_before.shape[0]):
            pulls = (cum_pages_before[j] - af0 + (ppb - 1)) // ppb
            if pulls < 0:
                pulls = 0
            if pulls > budget:
                return j
        return -1

    completion_recurrence = _completion_recurrence_nb
    first_trigger = _first_trigger_nb
else:
    completion_recurrence = _completion_recurrence_py
    first_trigger = _first_trigger_py
