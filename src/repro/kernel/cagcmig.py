"""Lean GC-collection kernel for CAGC victim collection.

CAGC's :meth:`collect_block` is genuinely sequential — a page's
fingerprint lookup can hit an entry an earlier page of the same pass
inserted, and a merge can push a canonical page over the promotion
threshold mid-pass — so unlike the baseline's plain-copy collection it
cannot be turned into column scatters without changing results.  What
*can* go is the per-page overhead that never affects the outcome:

* **victim-page invalidations are elided.**  Every examined page's
  ``flash.invalidate`` lands on the victim block itself, and the erase
  that ends the pass resets exactly the state those invalidations
  touch (page states, both counters, victim-index membership via the
  erase hook).  Only the valid counter needs zeroing first — it is the
  erase precondition.  Promotion copies keep the real
  :meth:`_migrate_page` path: they can consume a page of the *victim*
  that the loop has not reached yet, and the page-state check depends
  on that invalidation landing for real.
* **the page-state check is gated on promotions.**  Elided and real
  merge/migrate invalidations only ever hit pages the loop already
  examined; a later page can only have gone invalid if a promotion
  consumed it, so until the first promotion the check is skipped.
* **the Fig 5 pipeline is inlined.**  The makespan recurrence runs on
  local floats in the same operation order as
  :class:`repro.core.pipeline.GCPipeline` (same first-free-lane
  tie-break, same left-to-right additions) without per-page method
  dispatch.  Traced runs keep the reference loop — the pipeline spans
  are per-page by contract.

Merges and migrations otherwise perform the reference calls in the
reference order, so trajectories, counters, index statistics and the
open-addressing table layout stay bit-identical.
"""

from __future__ import annotations

from repro.core.cagc import CAGCScheme
from repro.core.placement import NeverColdPlacement, PlacementPolicy
from repro.ftl.allocator import Region
from repro.flash.chip import PageState
from repro.schemes.base import FTLScheme, GCBlockOutcome


def install_fast_cagc(scheme: FTLScheme, views=None) -> bool:
    """Swap in the lean collect_block for the exact CAGC scheme.

    Subclasses (ablations overriding the write path or the migration
    decisions) keep the reference loop.  Returns True when installed.
    """
    if type(scheme) is not CAGCScheme:
        return False
    reference = scheme.collect_block

    def collect_block(victim: int, now_us: float) -> GCBlockOutcome:
        if scheme.tracer is not None:
            return reference(victim, now_us)
        return _collect_block_lean(scheme, victim, now_us)

    scheme.collect_block = collect_block  # type: ignore[method-assign]
    return True


def _collect_block_lean(
    scheme: CAGCScheme, victim: int, now_us: float
) -> GCBlockOutcome:
    """Reference CAGC collection with the no-op work stripped."""
    flash = scheme.flash
    valid = flash.valid_ppns_array(victim)
    fps = scheme.page_fp.gather(valid).tolist()
    valid = valid.tolist()
    mapping = scheme.mapping
    allocator = scheme.allocator
    placement = scheme.placement
    index = scheme.index
    page_fp = scheme.page_fp
    tracker = scheme.tracker
    peek = index.peek
    ref_col = mapping._ref  # every PPN here is in range (physical pages)
    state_of = flash.state_of
    t = scheme.timing
    # Promotion check: for the exact base placement the three conditions
    # of ``should_promote`` inline to array/dict probes on allocator
    # state (the canonical page's block region, the cold-block budget),
    # with the real ``_migrate_page`` only when they all pass —
    # promotions are rare, the checks are not.  The never-cold ablation
    # rejects everything; other placements get the full call every time.
    placement_type = type(placement)
    never_promote = placement_type is NeverColdPlacement
    inline_promote = placement_type is PlacementPolicy
    if inline_promote:
        cold_threshold = placement.cold_threshold
        max_cold = placement._max_cold_blocks
        block_region = allocator.block_region
        region_blocks = allocator.region_blocks
        cold = Region.COLD
        ppb = flash.pages_per_block

    # Inlined GCPipeline state (see repro.core.pipeline for the model).
    read_us = t.read_us
    hash_us = t.hash_us
    lookup_us = t.lookup_us
    write_us = t.write_us
    read_free = 0.0
    lanes_free = [0.0] * t.hash_lanes
    single_lane = t.hash_lanes == 1
    write_free = 0.0

    examined = 0
    migrated = 0
    skipped = 0
    promotions = 0
    hits = 0
    for pos, ppn in enumerate(valid):
        # Only a promotion can consume a page the loop has not reached
        # (canonical living inside the victim); merge/migrate
        # invalidations always land behind the cursor.
        if promotions and state_of(ppn) != PageState.VALID:
            continue
        examined += 1
        fp = fps[pos]
        canonical = peek(fp)
        if canonical is not None:
            hits += 1
        promote = False
        if canonical is not None and canonical != ppn:
            # _dedup_merge with the victim-page invalidation elided.
            mapping.remap_ppn(ppn, canonical)
            rc = ref_col[canonical]
            tracker.observe(canonical, rc)
            tracker.peaks.pop(ppn, None)
            page_fp.pop(ppn, None)
            skipped += 1
            write = False
            if not never_promote:
                if inline_promote:
                    # _maybe_promote, conditions inlined (same order:
                    # region, threshold, budget).
                    if (
                        block_region[canonical // ppb] != cold
                        and rc >= cold_threshold
                        and region_blocks[cold] < max_cold
                    ):
                        scheme._migrate_page(canonical, cold, now_us)
                        promote = True
                        promotions += 1
                elif scheme._maybe_promote(canonical, now_us):
                    promote = True
                    promotions += 1
        else:
            # _migrate_page with the victim-page invalidation elided.
            region = placement.region_for(ref_col[ppn], allocator)
            new_ppn = allocator.allocate_page(region, now_us)
            mapping.remap_ppn(ppn, new_ppn)
            if index.contains_ppn(ppn):
                index.move(ppn, new_ppn)
            moved_fp = page_fp.pop(ppn, None)
            if moved_fp is not None:
                page_fp[new_ppn] = moved_fp
            tracker.rekey(ppn, new_ppn)
            if canonical is None:
                index.insert(fp, new_ppn)
            write = True
            migrated += 1
        # pipeline.process_page(write)
        read_done = read_free + read_us
        read_free = read_done
        if single_lane:
            lane = 0
            lane_free = lanes_free[0]
        else:
            lane = min(range(len(lanes_free)), key=lanes_free.__getitem__)
            lane_free = lanes_free[lane]
        hash_start = read_done if read_done >= lane_free else lane_free
        # Two separate adds, like the reference pipeline (float addition
        # is not associative).
        hash_done = hash_start + hash_us + lookup_us
        lanes_free[lane] = hash_done
        if write:
            write_start = hash_done if hash_done >= write_free else write_free
            write_free = write_start + write_us
        if promote:
            # pipeline.extra_copy()
            read_done = read_free + read_us
            read_free = read_done
            write_start = read_done if read_done >= write_free else write_free
            write_free = write_start + write_us
    # The reference makes one index.lookup per examined page; the loop
    # above probes with peek, so settle the statistics in one shot.
    index.hits += hits
    index.misses += examined - hits
    # The elided invalidations left the examined pages VALID; the erase
    # resets their state either way, so only its precondition needs
    # restoring.
    flash.valid_count[victim] = 0
    scheme._erase_victim(victim)
    makespan = read_free
    for lane_free in lanes_free:
        if lane_free > makespan:
            makespan = lane_free
    if write_free > makespan:
        makespan = write_free
    outcome = GCBlockOutcome(
        victim=victim,
        duration_us=makespan + t.erase_us,
        pages_examined=examined,
        pages_migrated=migrated + promotions,
        dedup_skipped=skipped,
        promotions=promotions,
        read_us=(examined + promotions) * t.read_us,
        hash_us=examined * (t.hash_us + t.lookup_us),
        write_us=(migrated + promotions) * t.write_us,
        erase_us=t.erase_us,
    )
    scheme._account_gc(outcome)
    return outcome
