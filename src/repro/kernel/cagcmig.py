"""Batched GC-collection kernel for CAGC victim collection.

CAGC's :meth:`collect_block` *looks* sequential — a page's fingerprint
lookup can hit an entry an earlier page of the same pass inserted, and
a merge can push a canonical page over the promotion threshold
mid-pass.  But both feedback loops are resolvable up front from the
victim's fingerprint columns alone:

* an in-pass index hit can only come from an **earlier victim page with
  the same fingerprint**, so one ``np.unique`` over the victim's
  fingerprints plus one batch probe of the pre-pass table
  (:func:`repro.kernel.probe.probe_many`) classifies every page as
  migrate-and-insert (first occurrence of an absent fingerprint),
  migrate-and-move (the canonical itself sits in the victim) or merge;
* the canonical's refcount after each merge is the pre-pass refcount
  plus a segmented prefix sum of the merged pages' refcounts (a merge
  remaps *all* referrers, so each one adds the full count), which
  yields the exact cold/hot classification of every migration and a
  **promotion mask** over the merges.  Promotions consume pages
  mid-victim and re-enter the allocator, so any merge that *would*
  promote trips a gate and the pass takes the scalar path instead —
  promotion passes are rare by construction (a canonical crosses the
  threshold once in its lifetime).

With the pass plan known, the mutations collapse into ``allocate_run``
stretches, column scatters (forward map, refcounts, fingerprints,
peaks) and per-group referrer-set unions; the Fig 5 pipeline timing
becomes one ``cumsum`` (reads), the ``_njit`` hash-lane recurrence and
one completion recurrence (writes).  The same elisions as the scalar
path apply: victim-page invalidations are skipped (the erase resets
that state; only ``valid_count`` needs zeroing first) and the
per-page ``index.lookup`` statistics are settled in one shot.

:func:`_collect_block_lean` keeps the scalar reference semantics for
the passes the batched plan declines (promotion candidates, placement
subclasses, negative fingerprints); traced runs keep the full
reference loop — the pipeline spans are per-page by contract.  Every
path is bit-identical in trajectories, counters, index statistics and
open-addressing table layout; per-reason pass counts accumulate in
``scheme.kernel_gc_stats`` and, when traced, as ``gc_fallback``
instants on the kernel track (``report kernel_attribution``).
"""

from __future__ import annotations

import numpy as np

from repro.core.cagc import CAGCScheme
from repro.core.placement import NeverColdPlacement, PlacementPolicy
from repro.ftl.allocator import Region
from repro.flash.chip import PageState
from repro.kernel._njit import completion_recurrence, hash_lane_recurrence
from repro.kernel.probe import probe_many
from repro.obs.trace import TRACK_KERNEL
from repro.schemes.base import FTLScheme, GCBlockOutcome

_FP_ABSENT = -1
_NO_LPN = -1

#: Victims below this many valid pages take the lean scalar pass: the
#: batched plan costs a fixed ~30 NumPy calls per victim, which only
#: amortizes once the column scatters carry enough pages.  Measured
#: crossover on the bench geometry is ~50 pages; 64 keeps a margin.
BATCH_MIN_PAGES = 64

#: ``scheme.kernel_gc_stats`` keys: collection passes per path/reason.
GC_STAT_KEYS = (
    "batched",
    "lean",
    "fallback[traced-pipeline]",
    "fallback[placement-subclass]",
    "fallback[negative-fp]",
    "fallback[promotion-candidate]",
)


def install_fast_cagc(scheme: FTLScheme, views=None) -> bool:
    """Swap in the batched collect_block for the exact CAGC scheme.

    Subclasses (ablations overriding the write path or the migration
    decisions) keep the reference loop.  Returns True when installed.
    """
    if type(scheme) is not CAGCScheme:
        return False
    reference = scheme.collect_block
    stats = {key: 0 for key in GC_STAT_KEYS}
    scheme.kernel_gc_stats = stats  # type: ignore[attr-defined]

    def collect_block(victim: int, now_us: float) -> GCBlockOutcome:
        tracer = scheme.tracer
        if tracer is not None:
            stats["fallback[traced-pipeline]"] += 1
            tracer.instant(
                TRACK_KERNEL, "gc_fallback", now_us, reason="traced-pipeline"
            )
            return reference(victim, now_us)
        if views is not None:
            outcome = _collect_block_batched(scheme, views, victim, now_us, stats)
            if outcome is not None:
                stats["batched"] += 1
                return outcome
        stats["lean"] += 1
        return _collect_block_lean(scheme, victim, now_us)

    scheme.collect_block = collect_block  # type: ignore[method-assign]
    return True


def _collect_block_batched(scheme, views, victim, now_us, stats):
    """One CAGC victim collection as column scatters.

    Returns ``None`` (after bumping the matching ``stats`` reason) when
    the pass needs the scalar path: a placement subclass whose
    region/promotion decisions the plan cannot reproduce, a negative
    fingerprint (dict-spill canonical resolution), or a merge that
    would promote its canonical mid-pass.
    """
    flash = scheme.flash
    if int(flash.valid_count[victim]) < BATCH_MIN_PAGES:
        return None  # lean scalar wins below this size (caller counts it)

    placement = scheme.placement
    placement_type = type(placement)
    if placement_type is PlacementPolicy:
        never_cold = False
    elif placement_type is NeverColdPlacement:
        never_cold = True
    else:
        stats["fallback[placement-subclass]"] += 1
        return None

    index = scheme.index
    mapping = scheme.mapping
    allocator = scheme.allocator
    t = scheme.timing
    ppb = flash.pages_per_block

    valid = flash.valid_ppns_array(victim)  # ascending == examination order
    n = int(valid.size)
    fps = scheme.page_fp.gather(valid)
    if n and int(fps.min()) < 0:
        stats["fallback[negative-fp]"] += 1
        return None

    # -- pass plan: duplicate groups, per-page classification ----------------
    canon0 = probe_many(index, fps)
    uniq, inv, counts = np.unique(fps, return_inverse=True, return_counts=True)
    ngroups = int(uniq.size)
    order = np.argsort(inv, kind="stable")  # group-major, victim order within
    group_start = np.cumsum(counts) - counts
    occ = np.empty(n, dtype=np.int64)  # occurrence ordinal within the group
    occ[order] = np.arange(n, dtype=np.int64) - np.repeat(group_start, counts)

    self_canon = canon0 == valid
    absent = canon0 == -1
    migrate = (absent & (occ == 0)) | self_canon
    merge = ~migrate
    ref0 = views.ref[valid].astype(np.int64)

    # Refcount of each group's canonical before the pass: the pre-pass
    # canonical's count, or (absent fingerprint) the first occurrence's.
    group_c0 = np.empty(ngroups, dtype=np.int64)
    group_c0[inv] = canon0
    canon_occ = np.full(ngroups, -1, dtype=np.int64)
    canon_occ[inv[self_canon]] = occ[self_canon]
    outside = (group_c0 >= 0) & (canon_occ < 0)
    base = np.empty(ngroups, dtype=np.int64)
    if outside.any():
        base[outside] = views.ref[group_c0[outside]]
    base[inv[self_canon]] = ref0[self_canon]
    first_new = absent & (occ == 0)
    base[inv[first_new]] = ref0[first_new]

    # Canonical refcount after each page's step (segmented prefix sum:
    # a merge remaps all its referrers, adding its full count).  For
    # migrations this is the refcount *at* migration — merges add 0.
    add_sorted = np.where(merge[order], ref0[order], 0)
    cum = np.cumsum(add_sorted)
    prior = cum[group_start] - add_sorted[group_start]
    rc_state = np.empty(n, dtype=np.int64)
    rc_state[order] = base[inv[order]] + (cum - np.repeat(prior, counts))

    # -- migration regions: exact replay of region_for's budget checks -------
    mig_idx = np.nonzero(migrate)[0]
    nmig = int(mig_idx.size)
    merge_idx = np.nonzero(merge)[0]
    nmerge = int(merge_idx.size)
    cold = Region.COLD
    regions = [Region.HOT] * nmig
    if not never_cold:
        cold_threshold = placement.cold_threshold
        max_cold = placement._max_cold_blocks
        rc_mig = rc_state[mig_idx]
        cold_mask = rc_mig >= cold_threshold
        if bool(cold_mask.any()):
            cold_blocks = allocator.region_blocks[cold]
            cold_free = (
                allocator._active_free[cold]
                if allocator._active[cold] is not None
                else 0
            )
            for k in np.nonzero(cold_mask)[0].tolist():
                if cold_blocks >= max_cold:
                    continue  # budget full: region_for falls back to HOT
                regions[k] = cold
                if cold_free == 0:
                    cold_blocks += 1  # this allocation pulls a cold block
                    cold_free = ppb
                cold_free -= 1

        # Promotion gate: a merge promotes when the canonical's region at
        # merge time is not COLD, its refcount crossed the threshold and
        # the cold budget is open.  The budget can only close mid-pass
        # (the victim's block is released after the pass), so checking it
        # at pass start is exact-or-conservative.
        if nmerge and allocator.region_blocks[cold] < max_cold:
            risky = rc_state[merge_idx] >= cold_threshold
            if bool(risky.any()):
                block_region = allocator.block_region
                g = inv[merge_idx]
                group_mig_region = np.full(ngroups, Region.HOT, dtype=np.int64)
                if nmig:
                    group_mig_region[inv[mig_idx]] = np.asarray(
                        regions, dtype=np.int64
                    )
                in_victim = canon_occ[g] >= 0
                pre = in_victim & (occ[merge_idx] < canon_occ[g])
                outside_m = ~in_victim & (group_c0[g] >= 0)
                tgt = np.where(
                    pre,
                    int(block_region[victim]),
                    np.where(
                        outside_m,
                        block_region[group_c0[g] // ppb].astype(np.int64),
                        group_mig_region[g],
                    ),
                )
                if bool((risky & (tgt != cold)).any()):
                    stats["fallback[promotion-candidate]"] += 1
                    return None

    # -- mutate: allocation stretches + column scatters ----------------------
    new_ppns = np.empty(nmig, dtype=np.int64)
    pos = 0
    while pos < nmig:
        region = regions[pos]
        end = pos + 1
        while end < nmig and regions[end] == region:
            end += 1
        filled = pos
        while filled < end:
            first, got = allocator.allocate_run(region, end - filled, now_us)
            new_ppns[filled : filled + got] = np.arange(
                first, first + got, dtype=np.int64
            )
            filled += got
        pos = end

    # Final home of every victim page's referrers: its own destination
    # for migrations, the group canonical's final PPN for merges (pre-
    # migration merges land on the old canonical and move with it — the
    # net forward-map target is the same).
    group_final = np.empty(ngroups, dtype=np.int64)
    group_final[outside] = group_c0[outside]
    if nmig:
        group_final[inv[mig_idx]] = new_ppns
    final_home = group_final[inv]

    solo0 = views.solo[valid]  # fancy gather: a copy
    solo_mask = ref0 == 1
    fwd_view = views.fwd()
    solo_idx = np.nonzero(solo_mask)[0]
    if solo_idx.size:
        fwd_view[solo0[solo_idx]] = final_home[solo_idx]
    shared = mapping._shared
    shared_sets = {}
    for p in np.nonzero(~solo_mask)[0].tolist():
        moving = shared.pop(int(valid[p]))
        shared_sets[p] = moving
        fwd_view[np.fromiter(moving, dtype=np.int64, count=len(moving))] = int(
            final_home[p]
        )
    del fwd_view
    views.ref[valid] = 0
    views.solo[valid] = _NO_LPN

    # Referrer structures at the final homes.  Fast path: singleton
    # solo-referenced migrations (the overwhelmingly common case).
    if nmig:
        g_of_mig = inv[mig_idx]
        fast = (counts[g_of_mig] == 1) & solo_mask[mig_idx]
        if bool(fast.any()):
            fast_new = new_ppns[fast]
            views.ref[fast_new] = 1
            views.solo[fast_new] = solo0[mig_idx[fast]]
    need_loop = (counts > 1) | outside
    if nmig:
        need_loop[g_of_mig[~solo_mask[mig_idx]]] = True
    for g in np.nonzero(need_loop)[0].tolist():
        gs = int(group_start[g])
        members = order[gs : gs + int(counts[g])]
        home = int(group_final[g])
        total = 0
        lpn_singles = []
        sets_here = []
        for p in members.tolist():
            r = int(ref0[p])
            total += r
            if r == 1:
                lpn_singles.append(int(solo0[p]))
            else:
                sets_here.append(shared_sets[p])
        r0 = 0
        if outside[g]:
            r0 = int(views.ref[home])
            total += r0
        if r0 >= 2:
            union = shared[home]  # grow the existing set in place
        else:
            union = max(sets_here, key=len) if sets_here else set()
            if r0 == 1:
                union.add(int(views.solo[home]))
            shared[home] = union
        for extra in sets_here:
            if extra is not union:
                union |= extra
        union.update(lpn_singles)
        views.ref[home] = total
        views.solo[home] = _NO_LPN

    # Fingerprints and peaks follow the pages; merged pages vacate both.
    if nmerge:
        merged_ppns = valid[merge_idx]
        views.fp[merged_ppns] = _FP_ABSENT
        views.peak[merged_ppns] = 0
    if nmig:
        mig_old = valid[mig_idx]
        views.fp[new_ppns] = fps[mig_idx]
        views.fp[mig_old] = _FP_ABSENT
        views.peak[new_ppns] = views.peak[mig_old]
        views.peak[mig_old] = 0
        # Index maintenance in examination order: same insert sequence
        # as the reference, so the table layout stays bit-identical.
        sc_list = self_canon[mig_idx].tolist()
        fps_mig = fps[mig_idx].tolist()
        for old, new, fp, is_move in zip(
            mig_old.tolist(), new_ppns.tolist(), fps_mig, sc_list
        ):
            if is_move:
                index.move(old, new)
            else:
                index.insert(fp, new)

    # Peak observations: the canonical's refcount grows monotonically
    # across its merges, so the final observation dominates — one max
    # per group with merges (tracker.observe keeps the running max, and
    # rekey carried the migrated canonical's old peak to its new PPN).
    tot_adds = cum[group_start + counts - 1] - prior
    grew = np.nonzero(tot_adds > 0)[0]
    if grew.size:
        finals = group_final[grew]
        views.peak[finals] = np.maximum(
            views.peak[finals], base[grew] + tot_adds[grew]
        )

    # One index.lookup per examined page in the reference: every page
    # hits except the first occurrence of each absent fingerprint.
    hits = int((canon0 >= 0).sum()) + int((absent & (occ > 0)).sum())
    index.hits += hits
    index.misses += n - hits

    # -- pipeline timing (Fig 5), fully vectorized ---------------------------
    makespan = 0.0
    if n:
        read_done = np.cumsum(np.full(n, t.read_us))
        hash_done = hash_lane_recurrence(read_done, t.hash_us, t.lookup_us, t.hash_lanes)
        makespan = float(read_done[-1])
        hash_max = float(hash_done.max())
        if hash_max > makespan:
            makespan = hash_max
        if nmig:
            _, write_last = completion_recurrence(
                np.ascontiguousarray(hash_done[mig_idx]),
                np.full(nmig, t.write_us),
                0.0,
            )
            if write_last > makespan:
                makespan = write_last

    flash.valid_count[victim] = 0
    scheme._erase_victim(victim)
    outcome = GCBlockOutcome(
        victim=victim,
        duration_us=makespan + t.erase_us,
        pages_examined=n,
        pages_migrated=nmig,
        dedup_skipped=nmerge,
        promotions=0,
        read_us=n * t.read_us,
        hash_us=n * (t.hash_us + t.lookup_us),
        write_us=nmig * t.write_us,
        erase_us=t.erase_us,
    )
    scheme._account_gc(outcome)
    return outcome


def _collect_block_lean(
    scheme: CAGCScheme, victim: int, now_us: float
) -> GCBlockOutcome:
    """Reference CAGC collection with the no-op work stripped."""
    flash = scheme.flash
    valid = flash.valid_ppns_array(victim)
    fps = scheme.page_fp.gather(valid).tolist()
    valid = valid.tolist()
    mapping = scheme.mapping
    allocator = scheme.allocator
    placement = scheme.placement
    index = scheme.index
    page_fp = scheme.page_fp
    tracker = scheme.tracker
    peek = index.peek
    ref_col = mapping._ref  # every PPN here is in range (physical pages)
    state_of = flash.state_of
    t = scheme.timing
    # Promotion check: for the exact base placement the three conditions
    # of ``should_promote`` inline to array/dict probes on allocator
    # state (the canonical page's block region, the cold-block budget),
    # with the real ``_migrate_page`` only when they all pass —
    # promotions are rare, the checks are not.  The never-cold ablation
    # rejects everything; other placements get the full call every time.
    placement_type = type(placement)
    never_promote = placement_type is NeverColdPlacement
    inline_promote = placement_type is PlacementPolicy
    if inline_promote:
        cold_threshold = placement.cold_threshold
        max_cold = placement._max_cold_blocks
        block_region = allocator.block_region
        region_blocks = allocator.region_blocks
        cold = Region.COLD
        ppb = flash.pages_per_block

    # Inlined GCPipeline state (see repro.core.pipeline for the model).
    read_us = t.read_us
    hash_us = t.hash_us
    lookup_us = t.lookup_us
    write_us = t.write_us
    read_free = 0.0
    lanes_free = [0.0] * t.hash_lanes
    single_lane = t.hash_lanes == 1
    write_free = 0.0

    examined = 0
    migrated = 0
    skipped = 0
    promotions = 0
    hits = 0
    for pos, ppn in enumerate(valid):
        # Only a promotion can consume a page the loop has not reached
        # (canonical living inside the victim); merge/migrate
        # invalidations always land behind the cursor.
        if promotions and state_of(ppn) != PageState.VALID:
            continue
        examined += 1
        fp = fps[pos]
        canonical = peek(fp)
        if canonical is not None:
            hits += 1
        promote = False
        if canonical is not None and canonical != ppn:
            # _dedup_merge with the victim-page invalidation elided.
            mapping.remap_ppn(ppn, canonical)
            rc = ref_col[canonical]
            tracker.observe(canonical, rc)
            tracker.peaks.pop(ppn, None)
            page_fp.pop(ppn, None)
            skipped += 1
            write = False
            if not never_promote:
                if inline_promote:
                    # _maybe_promote, conditions inlined (same order:
                    # region, threshold, budget).
                    if (
                        block_region[canonical // ppb] != cold
                        and rc >= cold_threshold
                        and region_blocks[cold] < max_cold
                    ):
                        scheme._migrate_page(canonical, cold, now_us)
                        promote = True
                        promotions += 1
                elif scheme._maybe_promote(canonical, now_us):
                    promote = True
                    promotions += 1
        else:
            # _migrate_page with the victim-page invalidation elided.
            region = placement.region_for(ref_col[ppn], allocator)
            new_ppn = allocator.allocate_page(region, now_us)
            mapping.remap_ppn(ppn, new_ppn)
            if index.contains_ppn(ppn):
                index.move(ppn, new_ppn)
            moved_fp = page_fp.pop(ppn, None)
            if moved_fp is not None:
                page_fp[new_ppn] = moved_fp
            tracker.rekey(ppn, new_ppn)
            if canonical is None:
                index.insert(fp, new_ppn)
            write = True
            migrated += 1
        # pipeline.process_page(write)
        read_done = read_free + read_us
        read_free = read_done
        if single_lane:
            lane = 0
            lane_free = lanes_free[0]
        else:
            lane = min(range(len(lanes_free)), key=lanes_free.__getitem__)
            lane_free = lanes_free[lane]
        hash_start = read_done if read_done >= lane_free else lane_free
        # Two separate adds, like the reference pipeline (float addition
        # is not associative).
        hash_done = hash_start + hash_us + lookup_us
        lanes_free[lane] = hash_done
        if write:
            write_start = hash_done if hash_done >= write_free else write_free
            write_free = write_start + write_us
        if promote:
            # pipeline.extra_copy()
            read_done = read_free + read_us
            read_free = read_done
            write_start = read_done if read_done >= write_free else write_free
            write_free = write_start + write_us
    # The reference makes one index.lookup per examined page; the loop
    # above probes with peek, so settle the statistics in one shot.
    index.hits += hits
    index.misses += examined - hits
    # The elided invalidations left the examined pages VALID; the erase
    # resets their state either way, so only its precondition needs
    # restoring.
    flash.valid_count[victim] = 0
    scheme._erase_victim(victim)
    makespan = read_free
    for lane_free in lanes_free:
        if lane_free > makespan:
            makespan = lane_free
    if write_free > makespan:
        makespan = write_free
    outcome = GCBlockOutcome(
        victim=victim,
        duration_us=makespan + t.erase_us,
        pages_examined=examined,
        pages_migrated=migrated + promotions,
        dedup_skipped=skipped,
        promotions=promotions,
        read_us=(examined + promotions) * t.read_us,
        hash_us=examined * (t.hash_us + t.lookup_us),
        write_us=(migrated + promotions) * t.write_us,
        erase_us=t.erase_us,
    )
    scheme._account_gc(outcome)
    return outcome
