"""Batch-vectorized inline-dedupe write kernel.

The inline-dedupe scheme hashes every incoming page and looks it up in
the fingerprint index *before* programming — each page's fate (dedup
hit vs fresh program) depends on every page before it, so the bulk
write kernel's "every page programs" decomposition does not apply.
What still factors out of the per-request reference chain:

* **plan** (:func:`plan_inline_run`) — resolve the whole run's dedup
  outcomes against a read-only view of the current state: one
  vectorized :func:`~repro.kernel.probe.probe_many` over the run's
  fingerprint stream plus one tight Python loop over plain ints and
  dicts (no index/mapping/flash mutations, no NumPy scalar boxing).
  The loop carries exactly the state the reference carries implicitly:
  the current canonical page per fingerprint, per-page refcounts, the
  forward-map overlay, and which pages died.  Because flash programs
  happen only on dedup misses, the GC watermark check is a running
  miss-count comparison, fused into the same loop — the plan stops at
  the first write request whose check would fire;
* **timing** — per-request service durations follow from the plan's
  per-request program counts; the orchestrator runs the shared
  completion recurrence and batch latency fold;
* **apply** (:func:`apply_inline_run`) — net-final state application:
  programs land in ``allocate_run`` stretches, deaths/births scatter
  into the refcount/fingerprint/peak columns, the fingerprint index is
  updated once per net canonical change (removals before inserts), and
  every touched block reconciles through ``VictimIndex.sync_block``.
  Intermediate states the reference walks through (a page shared then
  solo then dead within one run) collapse to their final values — the
  index *table layout* can differ from the reference's (tombstone
  churn), which no query or invariant observes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.flash.chip import PageState
from repro.ftl.allocator import Region
from repro.kernel.probe import probe_many
from repro.kernel.views import ColumnViews
from repro.kernel.write import _bucket_invalidations
from repro.schemes.base import FTLScheme

_NO_PPN = -1
_FP_ABSENT = -1
_FP_NEGATIVE = -2
_IDX_EMPTY = -1


class InlinePlan:
    """Resolved dedup fate of one run (no scheme state touched yet).

    Handles are integers: a value below ``nb`` (the physical page
    count) is a live pre-run page; ``nb + k`` is the page born by the
    run's ``k``-th dedup miss.
    """

    __slots__ = (
        "nb", "programs", "hits", "misses", "uniq", "old0", "overlay",
        "rc", "obs", "miss_fp", "miss_req", "dead_real", "dead_new",
    )

    def __init__(self, nb: int, nreq: int) -> None:
        self.nb = nb
        self.programs = np.zeros(nreq, dtype=np.int64)
        self.hits = 0
        self.misses = 0
        self.uniq = np.empty(0, dtype=np.int64)
        self.old0 = np.empty(0, dtype=np.int64)
        #: lpn -> current handle (initialized to the pre-run mapping).
        self.overlay: Dict[int, int] = {}
        #: handle -> current refcount (every handle the run touched).
        self.rc: Dict[int, int] = {}
        #: handle -> max refcount observed in-run (tracker.observe calls).
        self.obs: Dict[int, int] = {}
        self.miss_fp: List[int] = []
        self.miss_req: List[int] = []
        self.dead_real: List[int] = []
        self.dead_new: List[int] = []


def plan_inline_run(
    scheme: FTLScheme,
    views: ColumnViews,
    wlpns: np.ndarray,
    wpages: np.ndarray,
    fps: np.ndarray,
    af0: int,
    budget: int,
    ppb: int,
):
    """Resolve a window of inline-dedupe write requests read-only.

    Returns ``(j, plan)``: the first ``j`` requests form a run (no GC
    trigger before any of them); request ``j`` — when ``j <
    len(wlpns)`` — is the one whose pre-write watermark check fires and
    must go through the reference slow path.  ``plan.programs[:j]``
    gives each resolved request's flash program count (its dedup
    misses), which fully determines its service time.
    """
    nreq = len(wlpns)
    plan = InlinePlan(views.ref.size, nreq)
    P_all = int(wpages.sum())

    ends = np.cumsum(wpages)
    within = np.arange(P_all, dtype=np.int64) - np.repeat(ends - wpages, wpages)
    lpn_p = np.repeat(wlpns, wpages) + within

    # Pre-grow the forward map before the gather (and before apply's
    # transient scatter view): array.array cannot extend while exported.
    mapping = scheme.mapping
    if P_all:
        max_lpn = int(lpn_p.max())
        if max_lpn >= len(mapping._fwd):
            mapping._grow_lpn(max_lpn)

    canon0 = probe_many(scheme.index, fps)
    uniq = np.unique(lpn_p)
    fwd_view = views.fwd()
    old0 = fwd_view[uniq]
    del fwd_view
    # Refcounts/reverse entries for every real page the loop can touch:
    # pre-run mapping targets (they lose referrers) and pre-run
    # canonicals (they gain them, and can lose them to later rebinds).
    cands = np.unique(np.concatenate([old0[old0 >= 0], canon0[canon0 >= 0]]))
    cands_l = cands.tolist()
    rc = dict(zip(cands_l, views.ref[cands].tolist()))
    fpof = dict(zip(cands_l, views.rev[cands].tolist()))
    overlay = dict(zip(uniq.tolist(), old0.tolist()))

    nb = plan.nb
    obs = plan.obs
    canon: Dict[int, int] = {}  # in-run overrides of the canonical map
    miss_fp = plan.miss_fp
    miss_req = plan.miss_req
    dead_real = plan.dead_real
    dead_new = plan.dead_new
    programs = plan.programs
    # GC check before each write request: misses-so-far m pulls
    # ceil((m - af0) / ppb) blocks; the check fires when pulls exceed
    # the free-block budget — integer-exact as m > af0 + budget*ppb
    # (budget < 0 means the device is already below the watermark).
    limit = af0 + budget * ppb if budget >= 0 else -1
    hits = 0
    wn_l = wpages.tolist()
    fpl = fps.tolist()
    c0l = canon0.tolist()
    lpnl = lpn_p.tolist()
    k = 0
    j = 0
    while j < nreq:
        if len(miss_fp) > limit:
            break  # request j's pre-write GC check fires
        m0 = len(miss_fp)
        for _ in range(wn_l[j]):
            fp = fpl[k]
            lpn = lpnl[k]
            cur = canon[fp] if fp in canon else c0l[k]
            old = overlay[lpn]
            k += 1
            if cur >= 0:  # dedup hit: rebind lpn to the canonical page
                hits += 1
                if old == cur:
                    r = rc[cur]  # drop + re-add: refcount unchanged
                    if r > obs.get(cur, 0):
                        obs[cur] = r
                    continue
                r = rc[cur] + 1
                rc[cur] = r
                if r > obs.get(cur, 0):
                    obs[cur] = r
                overlay[lpn] = cur
            else:  # miss: program a fresh page, insert as canonical
                h = nb + len(miss_fp)
                canon[fp] = h
                miss_fp.append(fp)
                miss_req.append(j)
                rc[h] = 1
                obs[h] = 1
                overlay[lpn] = h
                if old < 0:
                    continue
            if old >= 0:
                ro = rc[old] - 1
                rc[old] = ro
                if ro == 0:
                    # The page died mid-run: if it was canonical its
                    # fingerprint loses its index entry right now, so
                    # a later write of that content must miss.
                    if old >= nb:
                        dead_new.append(old - nb)
                        canon[miss_fp[old - nb]] = -1
                    else:
                        dead_real.append(old)
                        f = fpof[old]
                        if f != _IDX_EMPTY:
                            canon[f] = -1
        programs[j] = len(miss_fp) - m0
        j += 1

    plan.hits = hits
    plan.misses = len(miss_fp)
    plan.rc = rc
    plan.overlay = overlay
    if k < P_all:  # stopped early: restrict to the pages actually resolved
        uniq_r = np.unique(lpn_p[:k])
        old0 = old0[np.searchsorted(uniq, uniq_r)]
        uniq = uniq_r
    plan.uniq = uniq
    plan.old0 = old0
    return j, plan


def apply_inline_run(
    scheme: FTLScheme,
    views: ColumnViews,
    wlpns: np.ndarray,
    wpages: np.ndarray,
    fps: np.ndarray,
    wstarts: np.ndarray,
    plan: InlinePlan,
) -> None:
    """Apply one resolved run to the scheme's state (net-final).

    Arguments are the run's per-request columns trimmed to the ``j``
    requests :func:`plan_inline_run` resolved, plus each request's
    service start time (programs stamp their block's ``last_write_us``
    with the owning request's start, exactly like the reference's
    per-page ``allocate_page`` calls).
    """
    nreq = len(wlpns)
    P = int(wpages.sum())
    mapping = scheme.mapping
    flash = scheme.flash
    allocator = scheme.allocator
    index = scheme.index
    ppb = flash.pages_per_block

    io = scheme.io_counters
    io.write_requests += nreq
    io.logical_pages_written += P
    io.user_pages_programmed += plan.misses
    io.inline_dedup_hits += plan.hits
    index.hits += plan.hits
    index.misses += plan.misses
    if P == 0:
        return

    nb = plan.nb
    overlay = plan.overlay
    rc = plan.rc
    obs = plan.obs
    uniq = plan.uniq
    old0 = plan.old0

    # ---- placement: misses program in allocate_run stretches -------------
    M = plan.misses
    new_ppns = np.empty(M, dtype=np.int64)
    touched_blocks = set()
    if M:
        miss_req = np.asarray(plan.miss_req, dtype=np.int64)
        page_now = wstarts[miss_req]
        hot = Region.HOT
        active = allocator._active
        active_free = allocator._active_free
        pos = 0
        while pos < M:
            af = active_free[hot] if active[hot] is not None else ppb
            take = af if af < M - pos else M - pos
            stamp = float(page_now[pos + take - 1])
            base, count = allocator.allocate_run(hot, M - pos, stamp)
            assert count == take, "allocate_run cap drifted from prediction"
            new_ppns[pos : pos + count] = np.arange(
                base, base + count, dtype=np.int64
            )
            touched_blocks.add(base // ppb)
            pos += count

    ref_view = views.ref
    solo_view = views.solo
    fp_view = views.fp
    peak_view = views.peak
    hist = scheme.tracker.histogram
    shared = mapping._shared

    # ---- deaths ----------------------------------------------------------
    # Pre-run pages whose last referrer rebound away: peak at death is
    # the stored pre-run peak raised by any in-run observations.
    dead_real = np.asarray(plan.dead_real, dtype=np.int64)
    dead_set = set(plan.dead_real)
    inval = new_ppns[:0]
    if dead_real.size:
        obs_d = np.fromiter(
            (obs.get(p, 0) for p in plan.dead_real),
            dtype=np.int64, count=dead_real.size,
        )
        _bucket_invalidations(
            hist, np.maximum(np.maximum(peak_view[dead_real], obs_d), 1)
        )
        ref_view[dead_real] = 0
        solo_view[dead_real] = -1
        peak_view[dead_real] = 0
        if shared:
            for p in plan.dead_real:
                shared.pop(p, None)
        negative = scheme.page_fp._negative
        if negative:  # hand-built negative fps: exact spill handling
            fpd = fp_view[dead_real]
            for ppn in dead_real[fpd == _FP_NEGATIVE].tolist():
                negative.pop(ppn, None)
        fp_view[dead_real] = _FP_ABSENT
        for p in plan.dead_real:  # no-op for non-canonical pages
            index.remove_ppn(p)
        flash.page_state[dead_real] = PageState.INVALID
        inval = dead_real

    # Pages born and dead inside the run: programmed, then every
    # referrer rebound away.  Their fingerprint/peak/refcount columns
    # were never written, so only the flash invalidation and the
    # histogram event (peak = max refcount the page ever reached) land.
    alive = np.ones(M, dtype=bool)
    if plan.dead_new:
        dn_idx = np.asarray(plan.dead_new, dtype=np.int64)
        alive[dn_idx] = False
        dn = new_ppns[dn_idx]
        obs_dn = np.fromiter(
            (obs[nb + k] for k in plan.dead_new),
            dtype=np.int64, count=dn_idx.size,
        )
        _bucket_invalidations(hist, obs_dn)
        flash.page_state[dn] = PageState.INVALID
        inval = np.concatenate([inval, dn])

    if inval.size:
        inval_blocks = inval // ppb
        delta = np.bincount(inval_blocks, minlength=flash.blocks).astype(np.int32)
        flash.valid_count -= delta
        flash.invalid_count += delta
        touched_blocks.update(inval_blocks.tolist())

    # ---- final mapping and referrer structure ----------------------------
    final_h = np.fromiter(
        (overlay[l] for l in uniq.tolist()), dtype=np.int64, count=uniq.size
    )
    final_p = final_h.copy()
    born = final_h >= nb
    if born.any():
        final_p[born] = new_ppns[final_h[born] - nb]

    # Surviving new pages: group their referrers by handle.  Almost all
    # have exactly one (the missing write's own LPN) — one scatter;
    # pages other LPNs dedup-hit in-run take the set path.
    if M:
        new_sel = born
        h_new = final_h[new_sel] - nb
        l_new = uniq[new_sel]
        order = np.argsort(h_new, kind="stable")
        h_sorted = h_new[order]
        l_sorted = l_new[order]
        uh, uh_start, uh_counts = np.unique(
            h_sorted, return_index=True, return_counts=True
        )
        single = uh_counts == 1
        if single.any():
            sp = new_ppns[uh[single]]
            ref_view[sp] = 1
            solo_view[sp] = l_sorted[uh_start[single]]
        if not single.all():
            for hh, st, ct in zip(
                uh[~single].tolist(),
                uh_start[~single].tolist(),
                uh_counts[~single].tolist(),
            ):
                ppn = int(new_ppns[hh])
                shared[ppn] = set(l_sorted[st : st + ct].tolist())
                ref_view[ppn] = ct
        live_idx = np.nonzero(alive)[0]
        if live_idx.size:
            live_p = new_ppns[live_idx]
            fp_view[live_p] = np.asarray(plan.miss_fp, dtype=np.int64)[live_idx]
            peak_view[live_p] = np.fromiter(
                (obs[nb + int(k)] for k in live_idx),
                dtype=np.int64, count=live_idx.size,
            )

    # Surviving pre-run pages whose referrer set changed: rebuild each
    # from its initial representation plus the net removed/added LPNs
    # (intermediate churn cancels; the refcount the plan tracked must
    # match the final set size).
    rem_sel = (old0 >= 0) & (final_h != old0)
    add_sel = ~born & (final_h != old0)
    touched_real: Dict[int, List[List[int]]] = {}
    for p, lpn in zip(old0[rem_sel].tolist(), uniq[rem_sel].tolist()):
        if p in dead_set:
            continue
        entry = touched_real.get(p)
        if entry is None:
            touched_real[p] = [[lpn], []]
        else:
            entry[0].append(lpn)
    for p, lpn in zip(final_p[add_sel].tolist(), uniq[add_sel].tolist()):
        entry = touched_real.get(p)
        if entry is None:
            touched_real[p] = [[], [lpn]]
        else:
            entry[1].append(lpn)
    for p, (removed, added) in touched_real.items():
        r0 = int(ref_view[p])
        r1 = rc[p]
        refs = {int(solo_view[p])} if r0 == 1 else shared[p]
        if removed:
            refs.difference_update(removed)
        if added:
            refs.update(added)
        if r1 == 1:
            solo_view[p] = next(iter(refs))
            ref_view[p] = 1
            if r0 >= 2:
                del shared[p]
        else:
            if r0 == 1:
                solo_view[p] = -1
                shared[p] = refs
            ref_view[p] = r1

    # Peaks of surviving pre-run pages raised by in-run observations.
    obs_real = [
        (p, v) for p, v in obs.items() if p < nb and p not in dead_set
    ]
    if obs_real:
        op = np.asarray([p for p, _ in obs_real], dtype=np.int64)
        ov = np.asarray([v for _, v in obs_real], dtype=np.int64)
        peak_view[op] = np.maximum(peak_view[op], ov)

    # Forward map: one scatter (view taken after all growth happened).
    fwd_view = views.fwd()
    fwd_view[uniq] = final_p
    del fwd_view
    mapping._len += int(np.count_nonzero(old0 == _NO_PPN))

    # New canonicals enter the index after all removals above (a
    # fingerprint whose pre-run canonical died in-run re-keys to the
    # run's replacement page).  Every surviving born page is canonical.
    if M:
        mfp = plan.miss_fp
        for k in live_idx.tolist():
            index.insert(mfp[k], int(new_ppns[k]))

    # ---- victim-index reconciliation -------------------------------------
    sync = scheme.victim_index.sync_block
    tb = np.fromiter(touched_blocks, dtype=np.int64, count=len(touched_blocks))
    inv = flash.invalid_count[tb]
    full = flash.write_ptr[tb] == ppb
    for block, invalid, is_full in zip(tb.tolist(), inv.tolist(), full.tolist()):
        sync(block, invalid, is_full)
