"""Vectorized GC-migration kernel (baseline victim collection).

The baseline scheme's :meth:`collect_block` is a pure copy loop: every
valid page of the victim moves to the victim's own region, carrying its
mapping, fingerprint and peak history along — no dedup lookups, no
promotions, no mid-pass state feedback.  That makes the whole pass one
mask-classification plus a handful of scatters:

* gather the victim's valid PPNs and classify them in one pass (the
  gate below: every page must be solo-referenced and non-canonical —
  always true for baseline, re-checked per victim so the kernel
  degrades to the reference loop instead of corrupting state if a
  subclass ever changes the invariants);
* allocate destination pages in ``allocate_run`` stretches (same PPN
  order as the reference's per-page ``allocate_page`` calls);
* remap/move fingerprints/rekey peaks with one scatter per column;
* skip the per-page invalidation of the victim: the erase immediately
  after resets the same page states, so only ``valid_count`` needs
  zeroing first (the victim's index membership ends the same way — the
  erase hook removes it).

CAGC's collection keeps the reference per-page loop: its mid-pass index
inserts, promotions and cold-capacity feedback make later pages depend
on earlier ones, which is exactly the content-awareness under test.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ftl.allocator import Region
from repro.kernel.views import ColumnViews
from repro.schemes.base import FTLScheme, GCBlockOutcome
from repro.schemes.baseline import BaselineScheme

_FP_ABSENT = -1
_FP_NEGATIVE = -2
_IDX_EMPTY = -1


def install_fast_gc(scheme: FTLScheme, views: ColumnViews) -> bool:
    """Swap in the vectorized collect_block for plain-copy schemes.

    Only the exact baseline qualifies: subclasses may override the
    migration-region decision (spatial hot/cold) or the whole pass
    (CAGC).  Returns True when installed.
    """
    if type(scheme) is not BaselineScheme:
        return False
    reference = scheme.collect_block

    def collect_block(victim: int, now_us: float) -> GCBlockOutcome:
        outcome = _collect_block_fast(scheme, views, victim, now_us)
        if outcome is None:
            return reference(victim, now_us)
        return outcome

    scheme.collect_block = collect_block  # type: ignore[method-assign]
    return True


def _collect_block_fast(
    scheme: FTLScheme, views: ColumnViews, victim: int, now_us: float
) -> Optional[GCBlockOutcome]:
    """One victim collection as column scatters; None -> take the
    reference loop (gate tripped)."""
    flash = scheme.flash
    valid = flash.valid_ppns_array(victim)
    n = len(valid)
    timing = scheme.timing
    if n == 0:
        _finish_erase(scheme, victim, 0)
        outcome = GCBlockOutcome(
            victim=victim,
            duration_us=timing.gc_migrate_us(0),
            pages_examined=0,
            pages_migrated=0,
            dedup_skipped=0,
            promotions=0,
            read_us=0.0,
            hash_us=0.0,
            write_us=0.0,
            erase_us=timing.erase_us,
        )
        _emit_spans(scheme, victim, 0, now_us, timing)
        scheme._account_gc(outcome)
        return outcome

    ref_view = views.ref
    if bool((ref_view[valid] != 1).any()):
        return None
    # An empty dedup index means no page anywhere is canonical, and an
    # empty negative-fingerprint spill means no page carries one — two
    # O(1) checks that skip the per-victim reverse/fingerprint gathers
    # for the (always, in baseline) common case.
    if len(scheme.index) != 0:
        if bool(scheme.index._fallback_ppn) or bool(
            (views.rev[valid] != _IDX_EMPTY).any()
        ):
            return None
    if scheme.page_fp._negative and bool(
        (views.fp[valid] == _FP_NEGATIVE).any()
    ):
        return None

    region = scheme.allocator.region_of(victim)
    if region not in (Region.HOT, Region.COLD):
        region = Region.HOT

    # Destination placement: same page order as per-page allocate_page,
    # every page stamped with the same now_us.
    allocator = scheme.allocator
    new_ppns = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        base, count = allocator.allocate_run(region, n - pos, now_us)
        new_ppns[pos : pos + count] = np.arange(base, base + count, dtype=np.int64)
        pos += count

    # Remap: all solo pages, all destinations fresh.
    solo_view = views.solo
    fwd_view = views.fwd()
    lpns = solo_view[valid].copy()
    fwd_view[lpns] = new_ppns
    del fwd_view
    ref_view[valid] = 0
    solo_view[valid] = -1
    ref_view[new_ppns] = 1
    solo_view[new_ppns] = lpns

    # Fingerprints follow the pages; peaks rekey onto the new PPNs.
    fp_view = views.fp
    moved_fps = fp_view[valid].copy()
    fp_view[valid] = _FP_ABSENT
    if bool((moved_fps == _FP_ABSENT).any()):
        present = moved_fps != _FP_ABSENT
        fp_view[new_ppns[present]] = moved_fps[present]
    else:
        fp_view[new_ppns] = moved_fps
    peak_view = views.peak
    peaks = peak_view[valid].copy()
    peak_view[valid] = 0
    peak_view[new_ppns] = peaks

    _finish_erase(scheme, victim, n)
    outcome = GCBlockOutcome(
        victim=victim,
        duration_us=timing.gc_migrate_us(n),
        pages_examined=n,
        pages_migrated=n,
        dedup_skipped=0,
        promotions=0,
        read_us=n * timing.read_us,
        hash_us=0.0,
        write_us=n * timing.write_us,
        erase_us=timing.erase_us,
    )
    _emit_spans(scheme, victim, n, now_us, timing)
    scheme._account_gc(outcome)
    return outcome


def _finish_erase(scheme: FTLScheme, victim: int, migrated: int) -> None:
    """Erase the victim without per-page invalidation round-trips.

    The reference invalidates each migrated page and then erases; the
    erase resets the very page states the invalidations set, so only
    the valid counter (the erase precondition) needs zeroing.  The
    victim's index membership ends identically: the erase hook removes
    it whether or not the interim invalidations bumped its bucket.
    """
    if migrated:
        scheme.flash.valid_count[victim] = 0
    scheme._erase_victim(victim)


def _emit_spans(scheme: FTLScheme, victim: int, n: int, now_us: float, timing) -> None:
    tracer = scheme.tracer
    if tracer is None:
        return
    copy_us = n * (timing.read_us + timing.write_us)
    tracer.span("gc", "copy-valid", now_us, copy_us, victim=victim, pages=n)
    tracer.span("gc", "erase", now_us + copy_us, timing.erase_us, victim=victim)
