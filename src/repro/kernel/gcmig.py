"""Vectorized GC-migration kernel (plain-copy victim collection).

The baseline and inline-dedupe schemes collect a victim with the base
:meth:`collect_block` copy loop: every valid page moves to the victim's
own region, carrying its mapping, fingerprint and peak history along —
no dedup lookups, no promotions, no mid-pass state feedback.  That
makes the whole pass one mask-classification plus a handful of
scatters:

* gather the victim's valid PPNs and classify them in one pass (for
  baseline the gate requires every page solo-referenced and
  non-canonical — always true, re-checked per victim so the kernel
  degrades to the reference loop instead of corrupting state if a
  subclass ever changes the invariants; for inline-dedupe shared and
  canonical pages are expected and handled);
* allocate destination pages in ``allocate_run`` stretches (same PPN
  order as the reference's per-page ``allocate_page`` calls);
* remap/move fingerprints/rekey peaks with one scatter per column
  (shared referrer sets transfer wholesale; canonical index entries
  move in-place in victim order);
* skip the per-page invalidation of the victim: the erase immediately
  after resets the same page states, so only ``valid_count`` needs
  zeroing first (the victim's index membership ends the same way — the
  erase hook removes it).

CAGC's batched collection lives in :mod:`repro.kernel.cagcmig` (its
mid-pass index inserts, promotions and cold-capacity feedback need a
replayed pipeline, not plain scatters).  Per-victim path counts land in
``scheme.kernel_gc_stats`` for the attribution report.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ftl.allocator import Region
from repro.kernel.views import ColumnViews
from repro.schemes.base import FTLScheme, GCBlockOutcome
from repro.schemes.baseline import BaselineScheme
from repro.schemes.inline_dedupe import InlineDedupeScheme

_FP_ABSENT = -1
_FP_NEGATIVE = -2
_IDX_EMPTY = -1

#: ``scheme.kernel_gc_stats`` keys: collection passes per path/reason.
GC_STAT_KEYS = (
    "batched",
    "fallback[shared-or-canonical]",
    "fallback[negative-fp]",
)


def install_fast_gc(scheme: FTLScheme, views: ColumnViews) -> bool:
    """Swap in the vectorized collect_block for plain-copy schemes.

    The exact baseline and inline-dedupe schemes qualify: subclasses
    may override the migration-region decision (spatial hot/cold) or
    the whole pass (CAGC).  Returns True when installed.
    """
    plain = type(scheme) is BaselineScheme
    if not plain and type(scheme) is not InlineDedupeScheme:
        return False
    reference = scheme.collect_block
    stats = {key: 0 for key in GC_STAT_KEYS}
    scheme.kernel_gc_stats = stats  # type: ignore[attr-defined]

    def collect_block(victim: int, now_us: float) -> GCBlockOutcome:
        outcome = _collect_block_fast(
            scheme, views, victim, now_us, not plain, stats
        )
        if outcome is None:
            return reference(victim, now_us)
        stats["batched"] += 1
        return outcome

    scheme.collect_block = collect_block  # type: ignore[method-assign]
    return True


def _collect_block_fast(
    scheme: FTLScheme,
    views: ColumnViews,
    victim: int,
    now_us: float,
    dedup_meta: bool,
    stats: Dict[str, int],
) -> Optional[GCBlockOutcome]:
    """One victim collection as column scatters; None -> take the
    reference loop (gate tripped).  ``dedup_meta`` enables the
    inline-dedupe metadata moves (shared referrer sets, canonical
    index entries); without it those same conditions trip the gate."""
    flash = scheme.flash
    valid = flash.valid_ppns_array(victim)
    n = len(valid)
    timing = scheme.timing
    if n == 0:
        _finish_erase(scheme, victim, 0)
        outcome = GCBlockOutcome(
            victim=victim,
            duration_us=timing.gc_migrate_us(0),
            pages_examined=0,
            pages_migrated=0,
            dedup_skipped=0,
            promotions=0,
            read_us=0.0,
            hash_us=0.0,
            write_us=0.0,
            erase_us=timing.erase_us,
        )
        _emit_spans(scheme, victim, 0, now_us, timing)
        scheme._account_gc(outcome)
        return outcome

    ref_view = views.ref
    if not dedup_meta:
        if bool((ref_view[valid] != 1).any()):
            stats["fallback[shared-or-canonical]"] += 1
            return None
        # An empty dedup index means no page anywhere is canonical, and
        # an empty negative-fingerprint spill means no page carries one
        # — two O(1) checks that skip the per-victim reverse/fingerprint
        # gathers for the (always, in baseline) common case.
        if len(scheme.index) != 0:
            if bool(scheme.index._fallback_ppn) or bool(
                (views.rev[valid] != _IDX_EMPTY).any()
            ):
                stats["fallback[shared-or-canonical]"] += 1
                return None
    else:
        # Negative-fp canonicals live in the index's fallback dicts,
        # invisible to the reverse column the scatters below move.
        if scheme.index._fallback_ppn:
            stats["fallback[negative-fp]"] += 1
            return None
    if scheme.page_fp._negative and bool(
        (views.fp[valid] == _FP_NEGATIVE).any()
    ):
        stats["fallback[negative-fp]"] += 1
        return None

    region = scheme.allocator.region_of(victim)
    if region not in (Region.HOT, Region.COLD):
        region = Region.HOT

    # Destination placement: same page order as per-page allocate_page,
    # every page stamped with the same now_us.
    allocator = scheme.allocator
    new_ppns = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        base, count = allocator.allocate_run(region, n - pos, now_us)
        new_ppns[pos : pos + count] = np.arange(base, base + count, dtype=np.int64)
        pos += count

    # Remap: destinations are fresh, so each source page's referrers
    # transfer wholesale (solo pages as column scatters, shared pages
    # by handing the referrer set to the new PPN).
    solo_view = views.solo
    fwd_view = views.fwd()
    if dedup_meta:
        solo_sel = ref_view[valid] == 1
        solo_old = valid[solo_sel]
        solo_new = new_ppns[solo_sel]
        lpns = solo_view[solo_old].copy()
        fwd_view[lpns] = solo_new
        solo_view[solo_old] = -1
        ref_view[solo_old] = 0
        ref_view[solo_new] = 1
        solo_view[solo_new] = lpns
        if not bool(solo_sel.all()):
            shared = scheme.mapping._shared
            for old, new in zip(
                valid[~solo_sel].tolist(), new_ppns[~solo_sel].tolist()
            ):
                referrers = shared.pop(old)
                for moved_lpn in referrers:
                    fwd_view[moved_lpn] = new
                shared[new] = referrers
                ref_view[new] = len(referrers)
                ref_view[old] = 0
        # Canonical index entries move in-place (victim order, exactly
        # the reference's per-page ``index.move`` calls).
        rev_view = views.rev
        canon_sel = rev_view[valid] != _IDX_EMPTY
        if bool(canon_sel.any()):
            move = scheme.index.move
            for old, new in zip(
                valid[canon_sel].tolist(), new_ppns[canon_sel].tolist()
            ):
                move(old, new)
    else:
        lpns = solo_view[valid].copy()
        fwd_view[lpns] = new_ppns
        ref_view[valid] = 0
        solo_view[valid] = -1
        ref_view[new_ppns] = 1
        solo_view[new_ppns] = lpns
    del fwd_view

    # Fingerprints follow the pages; peaks rekey onto the new PPNs.
    fp_view = views.fp
    moved_fps = fp_view[valid].copy()
    fp_view[valid] = _FP_ABSENT
    if bool((moved_fps == _FP_ABSENT).any()):
        present = moved_fps != _FP_ABSENT
        fp_view[new_ppns[present]] = moved_fps[present]
    else:
        fp_view[new_ppns] = moved_fps
    peak_view = views.peak
    peaks = peak_view[valid].copy()
    peak_view[valid] = 0
    peak_view[new_ppns] = peaks

    _finish_erase(scheme, victim, n)
    outcome = GCBlockOutcome(
        victim=victim,
        duration_us=timing.gc_migrate_us(n),
        pages_examined=n,
        pages_migrated=n,
        dedup_skipped=0,
        promotions=0,
        read_us=n * timing.read_us,
        hash_us=0.0,
        write_us=n * timing.write_us,
        erase_us=timing.erase_us,
    )
    _emit_spans(scheme, victim, n, now_us, timing)
    scheme._account_gc(outcome)
    return outcome


def _finish_erase(scheme: FTLScheme, victim: int, migrated: int) -> None:
    """Erase the victim without per-page invalidation round-trips.

    The reference invalidates each migrated page and then erases; the
    erase resets the very page states the invalidations set, so only
    the valid counter (the erase precondition) needs zeroing.  The
    victim's index membership ends identically: the erase hook removes
    it whether or not the interim invalidations bumped its bucket.
    """
    if migrated:
        scheme.flash.valid_count[victim] = 0
    scheme._erase_victim(victim)


def _emit_spans(scheme: FTLScheme, victim: int, n: int, now_us: float, timing) -> None:
    tracer = scheme.tracer
    if tracer is None:
        return
    copy_us = n * (timing.read_us + timing.write_us)
    tracer.span("gc", "copy-valid", now_us, copy_us, victim=victim, pages=n)
    tracer.span("gc", "erase", now_us + copy_us, timing.erase_us, victim=victim)
