"""Exception hierarchy for illegal flash operations.

NAND flash has hard physical rules — pages program once between erases,
erases work on whole blocks — and the model enforces them so FTL bugs
surface as exceptions instead of silently corrupt state.
"""

from __future__ import annotations


class FlashError(RuntimeError):
    """Base class for flash state-machine violations."""


class InvalidAddressError(FlashError):
    """PPN or block index outside the device geometry."""


class ProgramError(FlashError):
    """Attempt to program a page that is not FREE (no overwrite in NAND)."""


class EraseError(FlashError):
    """Attempt to erase a block that still holds VALID pages."""
