"""Address arithmetic for the flash array.

A physical page number (PPN) is a flat index over the whole device.
Blocks are striped round-robin across channels, so consecutive blocks
land on different channels — the standard layout for write parallelism.
"""

from __future__ import annotations

from typing import Tuple

from repro.config import GeometryConfig


class Geometry:
    """Resolved geometry with fast PPN <-> (block, offset) conversion."""

    __slots__ = ("channels", "page_size", "pages_per_block", "blocks", "total_pages")

    def __init__(self, config: GeometryConfig) -> None:
        config.validate()
        self.channels = config.channels
        self.page_size = config.page_size
        self.pages_per_block = config.pages_per_block
        self.blocks = config.blocks
        self.total_pages = config.blocks * config.pages_per_block

    # -- address conversion -------------------------------------------------

    def ppn_to_block(self, ppn: int) -> int:
        return ppn // self.pages_per_block

    def ppn_to_offset(self, ppn: int) -> int:
        return ppn % self.pages_per_block

    def split_ppn(self, ppn: int) -> Tuple[int, int]:
        """Return ``(block, page_offset)`` for a PPN."""
        return divmod(ppn, self.pages_per_block)

    def make_ppn(self, block: int, offset: int) -> int:
        return block * self.pages_per_block + offset

    def block_to_channel(self, block: int) -> int:
        """Channel a block lives on (round-robin striping)."""
        return block % self.channels

    def ppn_to_channel(self, ppn: int) -> int:
        return self.ppn_to_block(ppn) % self.channels

    # -- validation ----------------------------------------------------------

    def check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.total_pages:
            from repro.flash.errors import InvalidAddressError

            raise InvalidAddressError(
                f"PPN {ppn} outside device (total_pages={self.total_pages})"
            )

    def check_block(self, block: int) -> None:
        if not 0 <= block < self.blocks:
            from repro.flash.errors import InvalidAddressError

            raise InvalidAddressError(
                f"block {block} outside device (blocks={self.blocks})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Geometry(channels={self.channels}, blocks={self.blocks}, "
            f"pages_per_block={self.pages_per_block}, page_size={self.page_size})"
        )
