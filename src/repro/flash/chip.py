"""Flash array state machine.

Holds the page-state array and per-block counters for the whole device
in flat NumPy arrays (one entry per page / per block), giving O(1)
programs, invalidations and erases with no per-page Python objects —
the hot-loop discipline the run-time budget requires.

Physical rules enforced:

* a page programs only when FREE, and only at the block's write pointer
  (NAND programs pages in order within a block);
* a block erases only when it holds no VALID pages (the FTL must migrate
  them first);
* erase resets every page in the block to FREE and bumps the block's
  erase counter (the endurance metric reported in Fig 9).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.config import GeometryConfig
from repro.flash.block import BlockInfo
from repro.flash.errors import EraseError, ProgramError
from repro.flash.geometry import Geometry


class PageState:
    """Page states; plain ints for NumPy-array friendliness."""

    FREE = 0
    VALID = 1
    INVALID = 2


class FlashArray:
    """The complete NAND array of one SSD."""

    def __init__(self, config: GeometryConfig) -> None:
        self.geometry = Geometry(config)
        n_pages = self.geometry.total_pages
        n_blocks = self.geometry.blocks
        # Hot-path scalars cached as plain attributes: the mutators below
        # run tens of thousands of times per replay, and property/method
        # dispatch on every call is measurable there.
        self._ppb = self.geometry.pages_per_block
        self._total_pages = n_pages
        self.page_state = np.full(n_pages, PageState.FREE, dtype=np.uint8)
        self.valid_count = np.zeros(n_blocks, dtype=np.int32)
        self.invalid_count = np.zeros(n_blocks, dtype=np.int32)
        self.write_ptr = np.zeros(n_blocks, dtype=np.int32)
        self.erase_count = np.zeros(n_blocks, dtype=np.int64)
        self.last_write_us = np.zeros(n_blocks, dtype=np.float64)
        self.total_programs = 0
        self.total_erases = 0
        #: Optional :class:`repro.ftl.gc.index.VictimIndex` kept in sync
        #: with block transitions (full / invalidate / erase) so GC
        #: victim selection never rescans the whole array.
        self.victim_index = None

    # -- queries -----------------------------------------------------------------

    @property
    def blocks(self) -> int:
        return self.geometry.blocks

    @property
    def pages_per_block(self) -> int:
        return self.geometry.pages_per_block

    def state_of(self, ppn: int) -> int:
        self.geometry.check_ppn(ppn)
        return int(self.page_state[ppn])

    def free_pages_in(self, block: int) -> int:
        self.geometry.check_block(block)
        return self.pages_per_block - int(self.write_ptr[block])

    def block_info(self, block: int) -> BlockInfo:
        self.geometry.check_block(block)
        return BlockInfo(
            block=block,
            valid_pages=int(self.valid_count[block]),
            invalid_pages=int(self.invalid_count[block]),
            free_pages=self.pages_per_block - int(self.write_ptr[block]),
            erase_count=int(self.erase_count[block]),
            last_write_us=float(self.last_write_us[block]),
        )

    def iter_blocks(self) -> Iterator[BlockInfo]:
        for block in range(self.blocks):
            yield self.block_info(block)

    def valid_ppns_in(self, block: int) -> List[int]:
        """PPNs of VALID pages in a block (for GC migration)."""
        self.geometry.check_block(block)
        base = block * self._ppb
        states = self.page_state[base : base + int(self.write_ptr[block])]
        return [base + int(i) for i in np.nonzero(states == PageState.VALID)[0]]

    def valid_ppns_array(self, block: int) -> np.ndarray:
        """PPNs of VALID pages in a block, as an int64 ndarray.

        The vectorized sibling of :meth:`valid_ppns_in` for GC paths
        that gather per-page metadata in one batched pass (content-aware
        migration reads the whole victim's fingerprints at once).
        """
        self.geometry.check_block(block)
        base = block * self._ppb
        states = self.page_state[base : base + int(self.write_ptr[block])]
        return np.nonzero(states == PageState.VALID)[0].astype(np.int64) + base

    # -- mutations ----------------------------------------------------------------

    def program(self, block: int, now_us: float = 0.0) -> int:
        """Program the next free page of ``block``; return its PPN."""
        ppb = self._ppb
        if block < 0 or block >= self.geometry.blocks:
            self.geometry.check_block(block)
        ptr = int(self.write_ptr[block])
        if ptr >= ppb:
            raise ProgramError(f"block {block} is full")
        ppn = block * ppb + ptr
        # write_ptr < pages_per_block guarantees the page is FREE, but a
        # corrupted pointer would silently overwrite — check explicitly.
        if self.page_state[ppn] != PageState.FREE:
            raise ProgramError(f"page {ppn} is not free (state={self.page_state[ppn]})")
        self.page_state[ppn] = PageState.VALID
        self.write_ptr[block] = ptr + 1
        self.valid_count[block] += 1
        self.last_write_us[block] = now_us
        self.total_programs += 1
        if ptr + 1 == ppb and self.victim_index is not None:
            self.victim_index.on_block_full(block, int(self.invalid_count[block]))
        return ppn

    def program_run(self, block: int, count: int, now_us: float = 0.0) -> int:
        """Program ``count`` consecutive pages of ``block`` in one sweep.

        The bulk equivalent of ``count`` back-to-back :meth:`program`
        calls: one slice write over the page-state array and one update
        per block counter, instead of per-page NumPy scalar traffic.
        Returns the first PPN of the run.
        """
        ppb = self._ppb
        if block < 0 or block >= self.geometry.blocks:
            self.geometry.check_block(block)
        ptr = int(self.write_ptr[block])
        if count <= 0:
            raise ProgramError(f"program_run needs a positive count, got {count}")
        if ptr + count > ppb:
            raise ProgramError(
                f"block {block}: run of {count} pages overflows "
                f"(write_ptr={ptr}, pages_per_block={ppb})"
            )
        base = block * ppb + ptr
        span = self.page_state[base : base + count]
        if span.any():  # FREE == 0: any nonzero state forbids the program
            bad = base + int(np.nonzero(span)[0][0])
            raise ProgramError(f"page {bad} is not free (state={self.page_state[bad]})")
        span[:] = PageState.VALID
        self.write_ptr[block] = ptr + count
        self.valid_count[block] += count
        self.last_write_us[block] = now_us
        self.total_programs += count
        if ptr + count == ppb and self.victim_index is not None:
            self.victim_index.on_block_full(block, int(self.invalid_count[block]))
        return base

    def invalidate(self, ppn: int) -> None:
        """Mark a VALID page INVALID (out-of-place update or trim)."""
        if ppn < 0 or ppn >= self._total_pages:
            self.geometry.check_ppn(ppn)
        page_state = self.page_state
        if page_state[ppn] != PageState.VALID:
            raise ProgramError(
                f"cannot invalidate page {ppn}: state={page_state[ppn]}"
            )
        block = ppn // self._ppb
        page_state[ppn] = PageState.INVALID
        self.valid_count[block] -= 1
        invalid = int(self.invalid_count[block]) + 1
        self.invalid_count[block] = invalid
        if self.victim_index is not None:
            self.victim_index.on_invalidate(block, invalid)

    def erase(self, block: int) -> None:
        """Erase a block; all its pages become FREE."""
        if block < 0 or block >= self.geometry.blocks:
            self.geometry.check_block(block)
        if self.valid_count[block] != 0:
            raise EraseError(
                f"block {block} still has {int(self.valid_count[block])} valid pages"
            )
        ppb = self._ppb
        base = block * ppb
        self.page_state[base : base + ppb] = PageState.FREE
        self.invalid_count[block] = 0
        self.write_ptr[block] = 0
        self.erase_count[block] += 1
        self.total_erases += 1
        if self.victim_index is not None:
            self.victim_index.on_erase(block)

    # -- invariants -----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify counters against the page-state array (test hook)."""
        ppb = self.pages_per_block
        states = self.page_state.reshape(self.blocks, ppb)
        valid = (states == PageState.VALID).sum(axis=1)
        invalid = (states == PageState.INVALID).sum(axis=1)
        if not np.array_equal(valid, self.valid_count):
            raise AssertionError("valid_count out of sync with page states")
        if not np.array_equal(invalid, self.invalid_count):
            raise AssertionError("invalid_count out of sync with page states")
        used = valid + invalid
        if not np.array_equal(used, self.write_ptr):
            raise AssertionError("write_ptr out of sync with page states")
