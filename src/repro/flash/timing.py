"""Latency model of the ultra-low latency flash array (Table I).

The model exposes primitive costs (one page read/write, one block erase,
one page hash) plus helpers for multi-page user requests striped over
channels.  All results are microseconds.
"""

from __future__ import annotations

import math

from repro.config import TimingConfig


class FlashTiming:
    """Derives operation latencies from a :class:`TimingConfig`."""

    __slots__ = (
        "read_us",
        "write_us",
        "erase_us",
        "hash_us",
        "hash_lanes",
        "lookup_us",
        "overhead_us",
    )

    def __init__(self, config: TimingConfig) -> None:
        config.validate()
        self.read_us = config.read_us
        self.write_us = config.write_us
        self.erase_us = config.erase_us
        self.hash_us = config.hash_us
        self.hash_lanes = config.hash_lanes
        self.lookup_us = config.lookup_us
        self.overhead_us = config.overhead_us

    # -- user request service times -------------------------------------------

    def read_request_us(self, pages: int, channels: int) -> float:
        """Service time of an n-page read striped over ``channels``.

        Pages on distinct channels transfer in parallel; pages that share
        a channel serialize, so the makespan is ceil(n/channels) page
        slots.
        """
        if pages <= 0:
            return self.overhead_us
        slots = math.ceil(pages / channels)
        return self.overhead_us + slots * self.read_us

    def write_request_us(self, pages: int, channels: int) -> float:
        """Service time of an n-page write striped over ``channels``."""
        if pages <= 0:
            return self.overhead_us
        slots = math.ceil(pages / channels)
        return self.overhead_us + slots * self.write_us

    # -- dedup costs ------------------------------------------------------------

    def inline_dedup_us(self, pages: int) -> float:
        """Critical-path cost inline dedup adds to an n-page write.

        Hashing and index lookup are serial with the flash program on
        the foreground path — this is exactly the overhead the paper's
        Fig 2 measures.  A multi-lane hash engine (coprocessor) hashes
        up to ``hash_lanes`` pages concurrently; lookups stay serial
        (one shared index).
        """
        if pages <= 0:
            return 0.0
        slots = math.ceil(pages / self.hash_lanes)
        return slots * self.hash_us + pages * self.lookup_us

    # -- GC primitive costs ------------------------------------------------------

    def gc_migrate_us(self, valid_pages: int) -> float:
        """Baseline GC migration for one victim block: copy then erase."""
        return valid_pages * (self.read_us + self.write_us) + self.erase_us

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FlashTiming(read={self.read_us}us, write={self.write_us}us, "
            f"erase={self.erase_us}us, hash={self.hash_us}us)"
        )
