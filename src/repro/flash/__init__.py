"""Flash array model: geometry, timing, page/block state machine."""

from repro.flash.geometry import Geometry
from repro.flash.timing import FlashTiming
from repro.flash.chip import FlashArray, PageState
from repro.flash.errors import (
    FlashError,
    ProgramError,
    EraseError,
    InvalidAddressError,
)

__all__ = [
    "Geometry",
    "FlashTiming",
    "FlashArray",
    "PageState",
    "FlashError",
    "ProgramError",
    "EraseError",
    "InvalidAddressError",
]
