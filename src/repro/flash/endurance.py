"""Flash endurance model.

Translates per-block erase counts into lifetime estimates — the
"reliability" half of the paper's claim that fewer erases extend SSD
life.  The model is deliberately first-order: each block tolerates
``rated_cycles`` program/erase cycles; the device dies when its worst
block does (no spare remapping), so both the mean and the maximum wear
matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SSDConfig
from repro.flash.chip import FlashArray

#: Z-NAND-class SLC flash is typically rated around 10^5 P/E cycles;
#: conventional TLC is nearer 3x10^3.
DEFAULT_RATED_CYCLES = 100_000


@dataclass(frozen=True)
class EnduranceReport:
    """Lifetime estimates derived from observed wear."""

    rated_cycles: int
    mean_cycles_used: float
    max_cycles_used: int
    #: fraction of rated life left on the average block (0..1).
    mean_life_remaining: float
    #: fraction of rated life left on the worst block — the device's
    #: effective remaining endurance without block sparing.
    worst_life_remaining: float
    #: total bytes writable over the device lifetime at the observed
    #: write amplification (TBW-style figure).
    lifetime_writes_bytes: float


class EnduranceModel:
    """Maps wear counters to lifetime estimates."""

    def __init__(self, rated_cycles: int = DEFAULT_RATED_CYCLES) -> None:
        if rated_cycles < 1:
            raise ValueError("rated_cycles must be >= 1")
        self.rated_cycles = rated_cycles

    def report(
        self, flash: FlashArray, config: SSDConfig, waf: float = 1.0
    ) -> EnduranceReport:
        """Summarize endurance given observed wear and a WAF.

        ``waf`` is the write amplification factor the workload exhibits
        (from :meth:`repro.device.ssd.RunResult.write_amplification`);
        lifetime host writes scale with 1/WAF.
        """
        counts = flash.erase_count
        mean_used = float(counts.mean()) if counts.size else 0.0
        max_used = int(counts.max()) if counts.size else 0
        effective_waf = max(waf, 1e-9)
        lifetime = (
            self.rated_cycles * config.geometry.physical_bytes / effective_waf
        )
        return EnduranceReport(
            rated_cycles=self.rated_cycles,
            mean_cycles_used=mean_used,
            max_cycles_used=max_used,
            mean_life_remaining=max(0.0, 1.0 - mean_used / self.rated_cycles),
            worst_life_remaining=max(0.0, 1.0 - max_used / self.rated_cycles),
            lifetime_writes_bytes=lifetime,
        )

    def cycles_until_failure(self, flash: FlashArray) -> int:
        """P/E cycles the worst block can still absorb."""
        max_used = int(flash.erase_count.max()) if flash.erase_count.size else 0
        return max(0, self.rated_cycles - max_used)
