"""Per-block metadata view.

The authoritative state lives in the flat NumPy arrays of
:class:`repro.flash.chip.FlashArray`; :class:`BlockInfo` is a cheap
read-only snapshot used by GC policies and reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockInfo:
    """Snapshot of one flash block's bookkeeping counters."""

    block: int
    valid_pages: int
    invalid_pages: int
    free_pages: int
    erase_count: int
    #: Simulation time of the most recent program into this block; used
    #: by the cost-benefit victim policy as the block "age" reference.
    last_write_us: float

    @property
    def utilization(self) -> float:
        """Fraction of non-free pages that are valid (``u`` in the
        cost-benefit formula)."""
        total = self.valid_pages + self.invalid_pages + self.free_pages
        return self.valid_pages / total if total else 0.0

    @property
    def is_full(self) -> bool:
        return self.free_pages == 0

    @property
    def is_clean(self) -> bool:
        """True when the block is fully erased (all pages free)."""
        return self.valid_pages == 0 and self.invalid_pages == 0
