"""Command-line entry point.

Examples::

    cagc-repro list
    cagc-repro run fig9
    cagc-repro run all --scale full --jobs 4
    cagc-repro sweep --schemes baseline cagc --seeds 0 1 2 --jobs 4
    cagc-repro fuzz --seeds 20 --shrink
    cagc-repro trace-gen --preset mail --requests 20000 --out mail.csv
    cagc-repro trace-info mail.csv
    cagc-repro simulate --scheme cagc --preset mail --blocks 256
    cagc-repro simulate --scheme baseline --replay mail.csv --policy cost-benefit
    cagc-repro simulate --scheme cagc --trace run.json --trace-format chrome
    cagc-repro report --workload mail --scheme cagc
    cagc-repro report --compare mail/baseline mail/cagc --threshold 0.1
    cagc-repro metrics --workload mail --scheme cagc --format prom
    cagc-repro metrics --workload mail --format jsonl --slo
    cagc-repro bench-history

Experiment runs are cached persistently (``results/cache`` or
``$CAGC_CACHE_DIR``), so repeated invocations are nearly instant;
``--no-cache`` forces fresh simulations and ``--jobs N`` fans
cache-misses out over N worker processes.

Observability: ``--trace FILE`` records a span trace of any ``simulate``
or ``run`` invocation (``--trace-format chrome`` opens in Perfetto /
``chrome://tracing``), ``--heartbeat SECS`` prints wall-clock progress to
stderr, ``report`` renders the full telemetry view of a cached run, and
every subcommand takes ``-q`` / ``-v`` to gate status chatter.  Every
cached run also carries a metrics snapshot (final values + simulated-time
series): ``metrics`` exports it as a Prometheus text snapshot or a
JSONL/CSV time-series dump and ``--slo`` evaluates burn rates against
declarative latency/WAF objectives, ``report --compare RUN_A RUN_B``
diffs two runs metric-by-metric with threshold flagging, and
``bench-history`` tabulates the per-case µs/op trajectory recorded in
``BENCH_history.jsonl`` across commits.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.config import GeometryConfig, SSDConfig
from repro.device.ssd import run_trace
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import SCALES, reset_result_caches
from repro.experiments.registry import warm_experiments
from repro.ftl.gc import POLICIES, make_policy
from repro.metrics.report import format_table
from repro.obs import log
from repro.runner import RunCache, RunSpec, cache_enabled, run_specs, sweep_specs
from repro.runner.cache import ENV_NO_CACHE
from repro.schemes import make_scheme
from repro.workloads.analysis import profile_trace, refcount_histogram
from repro.workloads.fiu import FIU_PRESETS, build_fiu_trace
from repro.workloads.fiu_format import dump_fiu_trace, load_fiu_trace
from repro.workloads.trace import Trace

SCHEME_NAMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cache-miss simulations "
        "(0 = one per CPU; default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the persistent result cache",
    )


def _add_array_args(parser: argparse.ArgumentParser) -> None:
    """``--array-devices`` / ``--tenants`` / ``--gc-coord`` / ``--ncq-depth``."""
    parser.add_argument(
        "--array-devices",
        type=int,
        default=0,
        metavar="N",
        help="replay on an N-device SSD array instead of one device "
        "(default: 0, single device)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=1,
        metavar="T",
        help="tenant streams multiplexed across the array (with "
        "--array-devices; default: 1)",
    )
    parser.add_argument(
        "--gc-coord",
        default="independent",
        choices=("independent", "staggered", "global-token"),
        help="array GC coordination policy (default: independent)",
    )
    parser.add_argument(
        "--ncq-depth",
        type=int,
        default=32,
        metavar="D",
        help="per-device NCQ admission window (default: 32)",
    )


def _add_run_selector_args(parser: argparse.ArgumentParser) -> None:
    """The cached-run coordinates shared by ``report`` and ``metrics``."""
    parser.add_argument("--workload", default="mail", choices=sorted(FIU_PRESETS))
    parser.add_argument("--scheme", default="cagc", choices=SCHEME_NAMES)
    parser.add_argument("--policy", default="greedy", choices=sorted(POLICIES))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale",
        default="bench",
        choices=sorted(SCALES),
        help="device/trace sizing (default: bench)",
    )
    parser.add_argument(
        "--device",
        default="single",
        choices=("single", "parallel"),
        help="controller model (default: single)",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """``--trace`` / ``--trace-format`` / ``--heartbeat`` (repro.obs)."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a span trace of the run (foreground I/O, GC phases, "
        "hash lanes) to FILE",
    )
    parser.add_argument(
        "--trace-format",
        default="chrome",
        choices=("chrome", "jsonl"),
        help="trace file format: 'chrome' loads in Perfetto / "
        "chrome://tracing (default), 'jsonl' is one event per line",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECS",
        help="print wall-clock progress to stderr every SECS seconds",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cagc-repro",
        description="Reproduce the CAGC paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser(
        "run",
        help="run one experiment (or 'all'); --jobs N parallelizes the "
        "underlying simulations",
    )
    run_p.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run_p.add_argument(
        "--scale",
        default="bench",
        choices=("quick", "bench", "full"),
        help="device/trace sizing (default: bench)",
    )
    _add_parallel_args(run_p)
    _add_obs_args(run_p)

    sweep_p = sub.add_parser(
        "sweep",
        help="fan a (workload x scheme x policy x seed) grid out over "
        "worker processes and tabulate every run",
    )
    sweep_p.add_argument(
        "--workloads",
        nargs="+",
        default=["homes", "web-vm", "mail"],
        choices=sorted(FIU_PRESETS),
        help="FIU presets to sweep (default: the Table II trio)",
    )
    sweep_p.add_argument(
        "--schemes",
        nargs="+",
        default=["baseline", "cagc"],
        choices=SCHEME_NAMES,
        help="FTL schemes to sweep (default: baseline cagc)",
    )
    sweep_p.add_argument(
        "--policies",
        nargs="+",
        default=["greedy"],
        choices=sorted(POLICIES),
        help="victim policies to sweep (default: greedy)",
    )
    sweep_p.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0],
        help="trace seeds to sweep (default: 0)",
    )
    sweep_p.add_argument(
        "--scale",
        default="bench",
        choices=sorted(SCALES),
        help="device/trace sizing (default: bench)",
    )
    sweep_p.add_argument(
        "--out", default=None, metavar="FILE", help="also write results as JSON"
    )
    _add_parallel_args(sweep_p)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: replay adversarial traces through the "
        "real FTL and the reference oracle, reporting divergences",
    )
    fuzz_p.add_argument(
        "--seeds", type=int, default=20, metavar="N", help="fuzz seeds 0..N-1 (default: 20)"
    )
    fuzz_p.add_argument(
        "--schemes",
        nargs="+",
        default=list(SCHEME_NAMES),
        choices=SCHEME_NAMES,
        help="FTL schemes to fuzz (default: all)",
    )
    fuzz_p.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="POLICY",
        help="victim policies (default: greedy cost-benefit random region-aware)",
    )
    fuzz_p.add_argument(
        "--requests", type=int, default=220, help="requests per fuzz trace"
    )
    fuzz_p.add_argument(
        "--check-every",
        type=int,
        default=1,
        metavar="K",
        help="compare state snapshots every K requests (default: 1)",
    )
    fuzz_p.add_argument(
        "--shrink",
        action="store_true",
        help="on divergence, delta-debug the trace to a minimal reproducer "
        "and write it under --regress-dir",
    )
    fuzz_p.add_argument(
        "--regress-dir",
        default="tests/regress",
        help="where shrunk reproducers are written (default: tests/regress)",
    )

    gen_p = sub.add_parser("trace-gen", help="generate a synthetic FIU-like trace")
    gen_p.add_argument("--preset", default="mail", choices=sorted(FIU_PRESETS))
    gen_p.add_argument("--requests", type=int, default=20_000)
    gen_p.add_argument("--blocks", type=int, default=256, help="device blocks the trace is sized to")
    gen_p.add_argument("--pages-per-block", type=int, default=64)
    gen_p.add_argument("--seed", type=int, default=None)
    gen_p.add_argument("--out", required=True, help="output path")
    gen_p.add_argument(
        "--format",
        default="csv",
        choices=("csv", "fiu", "npz"),
        help="output format (npz: uncompressed columns, memory-mappable)",
    )

    info_p = sub.add_parser("trace-info", help="analyze a trace file")
    info_p.add_argument(
        "trace", help="trace path (.csv/.npz from trace-gen, or FIU format)"
    )
    info_p.add_argument(
        "--format",
        default=None,
        choices=(None, "csv", "fiu", "npz"),
        help="force input format",
    )

    sim_p = sub.add_parser("simulate", help="replay a workload under one scheme")
    sim_p.add_argument(
        "--scheme",
        default="cagc",
        choices=("baseline", "inline-dedupe", "cagc", "lba-hotcold"),
    )
    sim_p.add_argument("--preset", default="mail", choices=sorted(FIU_PRESETS))
    sim_p.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a trace file instead of a preset",
    )
    sim_p.add_argument(
        "--stream",
        action="store_true",
        help="stream the --replay trace in chunks (constant memory: "
        "lazy parsing for text formats, memory-mapped columns for npz, "
        "histogram latency capture instead of per-request samples)",
    )
    sim_p.add_argument(
        "--chunk-size",
        type=int,
        default=65536,
        metavar="REQUESTS",
        help="requests per streamed chunk (with --stream; default 65536)",
    )
    sim_p.add_argument("--policy", default="greedy", choices=sorted(POLICIES))
    sim_p.add_argument("--blocks", type=int, default=256)
    sim_p.add_argument("--pages-per-block", type=int, default=64)
    sim_p.add_argument("--channels", type=int, default=4)
    sim_p.add_argument("--fill-factor", type=float, default=3.0)
    sim_p.add_argument("--gc-mode", default="blocking", choices=("blocking", "preemptive"))
    sim_p.add_argument(
        "--kernel",
        default=None,
        choices=("reference", "vectorized"),
        help="replay kernel (default: REPRO_KERNEL env var or 'reference'); "
        "vectorized batches request runs through repro.kernel",
    )
    sim_p.add_argument("--wear-aware", action="store_true")
    sim_p.add_argument(
        "--device",
        default="serial",
        choices=("serial", "parallel"),
        help="serial: single-queue FlashSim model; parallel: per-channel queues",
    )
    sim_p.add_argument(
        "--write-buffer", type=int, default=0, metavar="PAGES",
        help="DRAM write-back buffer size in pages (serial device only)",
    )
    _add_array_args(sim_p)
    _add_obs_args(sim_p)

    cmp_p = sub.add_parser(
        "compare", help="run every scheme on one workload and tabulate"
    )
    cmp_p.add_argument("--preset", default="mail", choices=sorted(FIU_PRESETS))
    cmp_p.add_argument("--policy", default="greedy", choices=sorted(POLICIES))
    cmp_p.add_argument("--blocks", type=int, default=256)
    cmp_p.add_argument("--pages-per-block", type=int, default=64)
    cmp_p.add_argument("--fill-factor", type=float, default=3.0)

    rep_p = sub.add_parser(
        "report",
        help="full telemetry view of one run (latency percentiles, WAF, "
        "dedup ratios, GC phase breakdown) from the result cache; "
        "--compare diffs the metrics of two cached runs instead",
    )
    _add_run_selector_args(rep_p)
    rep_p.add_argument(
        "--out", default=None, metavar="FILE", help="also write the report as JSON"
    )
    rep_p.add_argument(
        "--compare",
        nargs=2,
        default=None,
        metavar=("RUN_A", "RUN_B"),
        help="diff two runs' metrics instead of reporting one; runs are "
        "named as report labels them: workload[/scheme[/policy]]"
        "[@scale][#seed] (array shape/device flags apply to both)",
    )
    rep_p.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative-delta flagging threshold for --compare "
        "(default: 0.05)",
    )
    rep_p.add_argument(
        "--fail-on-diff",
        action="store_true",
        help="with --compare: exit 1 when any metric is flagged",
    )
    _add_array_args(rep_p)
    _add_parallel_args(rep_p)

    met_p = sub.add_parser(
        "metrics",
        help="export the metrics snapshot of a cached run (Prometheus "
        "text, or the simulated-time series as JSONL/CSV) and "
        "optionally evaluate SLO burn rates",
    )
    _add_run_selector_args(met_p)
    met_p.add_argument(
        "--format",
        default="prom",
        choices=("prom", "jsonl", "csv"),
        help="prom: OpenMetrics-style final-values snapshot (default); "
        "jsonl/csv: the time series, one simulated-time sample per row",
    )
    met_p.add_argument(
        "--out", default=None, metavar="FILE", help="write here instead of stdout"
    )
    met_p.add_argument(
        "--slo",
        action="store_true",
        help="also print the SLO burn-rate table and GC-spike annotations",
    )
    met_p.add_argument(
        "--slo-p99-us",
        type=float,
        default=500.0,
        metavar="US",
        help="windowed p99 latency objective (default: 500)",
    )
    met_p.add_argument(
        "--slo-p999-us",
        type=float,
        default=2_000.0,
        metavar="US",
        help="windowed p999 latency objective (default: 2000)",
    )
    met_p.add_argument(
        "--slo-waf",
        type=float,
        default=4.0,
        metavar="X",
        help="end-of-run write-amplification objective (default: 4.0)",
    )
    _add_array_args(met_p)
    _add_parallel_args(met_p)

    hist_p = sub.add_parser(
        "bench-history",
        help="per-case µs/op trajectory across commits from "
        "BENCH_history.jsonl, with regression annotations",
    )
    hist_p.add_argument(
        "--file",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="history file (default: BENCH_history.jsonl)",
    )
    hist_p.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="fractional slowdown before a step is annotated "
        "(default: 0.25, the bench guard's)",
    )
    hist_p.add_argument(
        "--cases",
        nargs="+",
        default=None,
        metavar="CASE",
        help="restrict the table to these bench cases",
    )

    for sub_parser in sub.choices.values():
        log.add_verbosity_args(sub_parser)
    return parser


def _load_trace(path: str, fmt: Optional[str], stream: bool = False, chunk_size: int = 65536):
    from repro.workloads.stream import open_trace

    return open_trace(path, fmt=fmt, stream=stream, chunk_size=chunk_size)


def _disable_cache() -> None:
    """Honour ``--no-cache`` for this process (and any workers)."""
    os.environ[ENV_NO_CACHE] = "1"
    reset_result_caches()


def _make_observers(args):
    """Build (tracer, telemetry, heartbeat) from the obs flags."""
    from repro.obs import Heartbeat, RunTelemetry, Tracer

    tracer = Tracer() if args.trace else None
    telemetry = RunTelemetry() if args.trace else None
    heartbeat = Heartbeat(args.heartbeat) if args.heartbeat is not None else None
    return tracer, telemetry, heartbeat


def _write_trace(tracer, timeline, args) -> None:
    """Fold the device timeline into the trace and write it out."""
    if timeline is not None:
        tracer.add_counters_from(timeline.to_dict())
    tracer.write(args.trace, args.trace_format)
    log.info(
        "wrote %d trace events (%s) to %s",
        len(tracer),
        args.trace_format,
        args.trace,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.no_cache:
        _disable_cache()
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        log.error(
            "error: unknown experiment %r; choose from %s",
            unknown[0],
            sorted(EXPERIMENTS),
        )
        return 2
    # Prewarm the shared result cache: every (workload, scheme, policy,
    # seed) replay behind the selected experiments runs once, fanned out
    # over the worker pool; the report builders below then only read.
    start = time.time()
    warmed = warm_experiments(ids, scale=args.scale, jobs=args.jobs)
    if warmed and args.jobs != 1:
        log.info("(warmed %d runs in %.1fs)", warmed, time.time() - start)
    if args.trace:
        _trace_one_experiment_run(ids, args)
    for experiment_id in ids:
        start = time.time()
        try:
            report = run_experiment(experiment_id, scale=args.scale)
        except ValueError as exc:
            log.error("error: %s", exc)
            return 2
        print(report)
        log.info("(%.1fs)", time.time() - start)
    return 0


def _trace_one_experiment_run(args_ids, args) -> None:
    """``run --trace``: re-execute one representative spec, traced.

    Cached results carry no event stream, so tracing requires a replay;
    the first spec behind the selected experiments is re-run with the
    observers attached (the cache itself is untouched — observers never
    change the simulated outcome).
    """
    from repro.experiments.registry import specs_for_experiments

    specs = specs_for_experiments(args_ids, scale=args.scale)
    if not specs:
        log.warning("--trace: no underlying runs for %s", args_ids)
        return
    spec = specs[0]
    tracer, telemetry, heartbeat = _make_observers(args)
    log.info("tracing %s ...", spec.label())
    spec.execute(tracer=tracer, telemetry=telemetry, heartbeat=heartbeat)
    _write_trace(tracer, None, args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.no_cache:
        _disable_cache()
    specs = sweep_specs(
        tuple(args.workloads),
        tuple(args.schemes),
        policies=tuple(args.policies),
        seeds=tuple(args.seeds),
        scale=args.scale,
    )
    cache = RunCache.from_env() if cache_enabled() else None
    start = time.time()
    results = run_specs(specs, jobs=args.jobs, cache=cache)
    wall = time.time() - start
    rows = []
    records = []
    for spec, result in zip(specs, results):
        rows.append(
            (
                spec.workload,
                spec.scheme,
                spec.policy,
                spec.seed,
                result.blocks_erased,
                result.pages_migrated,
                f"{result.latency.mean_us:.0f}us",
                f"{result.latency.p99_us:.0f}us",
                f"{result.write_amplification():.2f}",
            )
        )
        records.append(
            {
                "workload": spec.workload,
                "scheme": spec.scheme,
                "policy": spec.policy,
                "seed": spec.seed,
                "scale": spec.scale,
                "blocks_erased": result.blocks_erased,
                "pages_migrated": result.pages_migrated,
                "mean_response_us": result.latency.mean_us,
                "p99_response_us": result.latency.p99_us,
                "write_amplification": result.write_amplification(),
            }
        )
    print(
        format_table(
            ("Workload", "Scheme", "Policy", "Seed", "Erases", "Migrated", "Mean", "p99", "WAF"),
            rows,
            title=f"sweep: {len(specs)} runs @ {args.scale}",
        )
    )
    hits = cache.hits if cache is not None else 0
    log.info("(%.1fs, %d/%d from cache, jobs=%d)", wall, hits, len(specs), args.jobs)
    if args.out:
        Path(args.out).write_text(json.dumps(records, indent=2) + "\n")
        log.info("wrote %s", args.out)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.oracle import (
        ALL_POLICIES,
        diff_trace,
        fuzz_config,
        fuzz_trace,
        make_divergence_predicate,
        shrink_trace,
    )
    from repro.oracle.fuzz import profile_for_seed
    from repro.oracle.shrink import save_regression

    policies = tuple(args.policies) if args.policies else ALL_POLICIES
    unknown = [p for p in policies if p not in ALL_POLICIES]
    if unknown:
        log.error(
            "error: unknown policy %r; choose from %s",
            unknown[0],
            sorted(ALL_POLICIES),
        )
        return 2
    config = fuzz_config()
    start = time.time()
    runs = 0
    divergences = []
    for seed in range(args.seeds):
        trace = fuzz_trace(seed, config, n_requests=args.requests)
        for scheme in args.schemes:
            for policy in policies:
                runs += 1
                divergence = diff_trace(
                    trace,
                    scheme=scheme,
                    policy=policy,
                    config=config,
                    check_every=args.check_every,
                )
                if divergence is None:
                    continue
                print(f"seed {seed} ({profile_for_seed(seed)}): {divergence}")
                divergences.append((seed, divergence))
                if args.shrink:
                    minimal = shrink_trace(
                        trace,
                        make_divergence_predicate(scheme, policy, config),
                        name=f"fuzz-s{seed}-{scheme}-{policy}",
                    )
                    path = save_regression(
                        minimal, args.regress_dir, f"fuzz-s{seed}-{scheme}-{policy}"
                    )
                    log.info(
                        "  shrunk %d -> %d requests: %s", len(trace), len(minimal), path
                    )
    wall = time.time() - start
    print(
        f"fuzz: {runs} differential runs, {len(divergences)} divergences "
        f"({wall:.1f}s)"
    )
    return 1 if divergences else 0


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    geometry = GeometryConfig(
        blocks=args.blocks, pages_per_block=args.pages_per_block
    )
    config = SSDConfig(geometry=geometry)
    trace = build_fiu_trace(
        args.preset, config, n_requests=args.requests, seed=args.seed
    )
    if args.format == "csv":
        trace.save_csv(args.out)
    elif args.format == "npz":
        trace.save_npz(args.out)
    else:
        dump_fiu_trace(trace, args.out)
    stats = trace.stats()
    log.info(
        "wrote %s requests (%s written pages, dedup %.1f%%) to %s",
        f"{stats.requests:,}",
        f"{stats.written_pages:,}",
        stats.dedup_ratio * 100,
        args.out,
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    if not Path(args.trace).exists():
        log.error("error: no such file: %s", args.trace)
        return 2
    trace = _load_trace(args.trace, args.format)
    stats = trace.stats()
    profile = profile_trace(trace)
    rows = [
        ("requests", stats.requests),
        ("write ratio", f"{stats.write_ratio:.1%}"),
        ("dedup ratio", f"{stats.dedup_ratio:.1%}"),
        ("mean request size", f"{stats.avg_req_kb:.1f}KB"),
        ("written pages", stats.written_pages),
        ("working set (pages)", profile.working_set_pages),
        ("mean overwrites/LPN", f"{profile.mean_overwrites:.2f}"),
        ("unique contents", profile.unique_contents),
        ("top-1% content share", f"{profile.top1pct_content_share:.1%}"),
        ("mean final refcount", f"{profile.mean_final_refcount:.2f}"),
    ]
    print(format_table(("Metric", "Value"), rows, title=f"trace: {trace.name}"))
    print(
        format_table(
            ("Refcount", "Live contents"),
            [(label, f"{frac:.1%}") for label, frac in refcount_histogram(trace)],
            title="final refcount distribution",
        )
    )
    return 0


def _array_report_rows(result) -> List[tuple]:
    """``(metric, value)`` rows for an :class:`ArrayResult` table: the
    array-wide view first, then the per-tenant SLO rows the serving
    tier is judged on."""
    telemetry = result.telemetry
    erased = sum(r.blocks_erased for r in result.devices)
    migrated = sum(r.pages_migrated for r in result.devices)
    rows = [
        ("devices x tenants", f"{len(result)} x {result.tenants}"),
        ("gc coordination", result.coordination),
        ("requests", telemetry.hist.total),
        ("mean response", f"{telemetry.hist.mean_us:.1f}us"),
        (
            "ncq depth (peak/held)",
            f"{result.ncq_depth} "
            f"({max(result.ncq_peaks)}/{sum(result.ncq_held)})",
        ),
        ("blocks erased", erased),
        ("pages migrated", migrated),
        ("simulated time", f"{result.simulated_us / 1e6:.2f}s"),
    ]
    for key in ("gc_deferrals", "idle_bursts", "token_grants", "windows_fired"):
        if key in result.coord_stats:
            rows.append((key.replace("_", " "), result.coord_stats[key]))
    rows.extend(telemetry.slo_rows())
    for device, hist in enumerate(telemetry.device_hists):
        if hist.total:
            rows.append(
                (
                    f"device {device} p99 / p999",
                    f"{hist.percentile(99.0):.0f} / "
                    f"{hist.percentile(99.9):.0f}us",
                )
            )
    # Per-device batched-vs-scalar CAGC collect outcomes, present only
    # when the epoch kernel replayed the array.
    for device, stats in enumerate(getattr(result, "kernel_gc", ()) or ()):
        if stats and any(stats.values()):
            rows.append(
                (
                    f"device {device} kernel GC",
                    ", ".join(
                        f"{key}={count}" for key, count in stats.items() if count
                    ),
                )
            )
    return rows


def _simulate_array(args, config) -> int:
    """``simulate --array-devices N``: multi-tenant array replay."""
    from repro.array import SSDArray
    from repro.workloads.multiplex import multiplex_traces

    if args.replay is not None:
        log.error("error: --array-devices does not support --replay")
        return 2
    if args.device == "parallel":
        log.error("error: --array-devices requires --device serial")
        return 2
    slots = (args.tenants + args.array_devices - 1) // args.array_devices
    tenant_traces = [
        build_fiu_trace(
            args.preset,
            config,
            n_requests=0,
            fill_factor=args.fill_factor / slots,
            lpn_utilization=0.84 / slots,
            seed=10_000 + t,
        )
        for t in range(args.tenants)
    ]
    merged = multiplex_traces(
        tenant_traces,
        args.array_devices,
        config.logical_pages,
        name=f"{args.preset}x{args.tenants}",
    )
    schemes = [
        make_scheme(args.scheme, config, policy=make_policy(args.policy))
        for _ in range(args.array_devices)
    ]
    tracer, _, heartbeat = _make_observers(args)
    array = SSDArray(
        schemes,
        coordination=args.gc_coord,
        ncq_depth=args.ncq_depth,
        tracer=tracer,
        heartbeat=heartbeat,
    )
    start = time.time()
    result = array.replay(merged)
    wall = time.time() - start
    if tracer is not None:
        _write_trace(tracer, None, args)
    rows = _array_report_rows(result)
    if config.kernel == "vectorized":
        reason = result.kernel_fallback_reason
        if reason is not None:
            rows.append(("kernel fallback", reason))
        if tracer is not None:
            attr = tracer.kernel_attribution()
            rows.append(
                (
                    "kernel batches",
                    f"{attr['batches']:.0f} "
                    f"(mean {attr['mean_batch_requests']:.0f} reqs)",
                )
            )
            rows.append(("kernel fallback rate", f"{attr['fallback_rate']:.2%}"))
            for key in sorted(attr):
                if key.startswith("fallback_requests["):
                    rows.append((f"kernel {key}", f"{attr[key]:.0f}"))
            if reason is not None or (
                attr["fallback_requests"] and attr["fallback_rate"] >= 1.0
            ):
                log.warning(
                    "100%% of requests fell back to the reference array "
                    "loop (%s)",
                    reason or "per-request fallback",
                )
        elif reason is not None:
            log.warning(
                "100%% of requests fell back to the reference array loop (%s)",
                reason,
            )
    rows.append(("wall time", f"{wall:.2f}s"))
    print(
        format_table(
            ("Metric", "Value"),
            rows,
            title=f"array {args.scheme} / {merged.name} / {args.gc_coord}",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    geometry = GeometryConfig(
        blocks=args.blocks,
        pages_per_block=args.pages_per_block,
        channels=args.channels,
    )
    config = SSDConfig(
        geometry=geometry,
        gc_mode=args.gc_mode,
        wear_aware_allocation=args.wear_aware,
        write_buffer_pages=args.write_buffer,
        **({"kernel": args.kernel} if args.kernel is not None else {}),
    )
    config.validate()
    if args.array_devices:
        return _simulate_array(args, config)
    if args.replay is not None:
        trace = _load_trace(
            args.replay, None, stream=args.stream, chunk_size=args.chunk_size
        )
    else:
        trace = build_fiu_trace(
            args.preset, config, n_requests=0, fill_factor=args.fill_factor
        )
    scheme = make_scheme(args.scheme, config, policy=make_policy(args.policy))
    tracer, telemetry, heartbeat = _make_observers(args)
    start = time.time()
    if args.device == "parallel":
        from repro.device.parallel import ParallelSSD

        device = ParallelSSD(scheme, tracer=tracer, heartbeat=heartbeat)
    else:
        from repro.device.ssd import SSD

        device = SSD(
            scheme,
            tracer=tracer,
            telemetry=telemetry,
            heartbeat=heartbeat,
            # Streaming replays drop per-request samples for the fixed
            # histogram so memory stays flat over arbitrarily long traces.
            keep_samples=not args.stream,
        )
    result = device.replay(trace)
    wall = time.time() - start
    if tracer is not None:
        _write_trace(tracer, getattr(device, "timeline", None), args)
    lat = result.latency
    rows = [
        ("requests", lat.count),
        ("mean response", f"{lat.mean_us:.1f}us"),
        ("p50 / p95 / p99", f"{lat.median_us:.0f} / {lat.p95_us:.0f} / {lat.p99_us:.0f}us"),
        ("blocks erased", result.blocks_erased),
        ("pages migrated", result.pages_migrated),
        ("GC dedup hits", result.gc.dedup_skipped),
        ("write amplification", f"{result.write_amplification():.2f}"),
        ("max block wear", result.wear.max_erase),
        ("simulated time", f"{result.simulated_us / 1e6:.2f}s"),
        ("wall time", f"{wall:.2f}s"),
    ]
    if result.buffer is not None:
        rows.append(("buffer absorption", f"{result.buffer.absorption_ratio:.1%}"))
    if tracer is not None and config.kernel == "vectorized":
        attr = tracer.kernel_attribution()
        rows.append(
            (
                "kernel batches",
                f"{attr['batches']:.0f} "
                f"(mean {attr['mean_batch_requests']:.0f} reqs)",
            )
        )
        rows.append(("kernel fallback rate", f"{attr['fallback_rate']:.2%}"))
        rows.append(
            (
                "kernel wall (vec/fallback)",
                f"{attr['vectorized_wall_us'] / 1e3:.1f} / "
                f"{attr['fallback_wall_us'] / 1e3:.1f}ms",
            )
        )
        # Per-reason fallback attribution (only reasons that occurred).
        for key in sorted(attr):
            if key.startswith("fallback_requests[") or key.startswith(
                "gc_fallbacks["
            ):
                rows.append((f"kernel {key}", f"{attr[key]:.0f}"))
        gc_stats = getattr(scheme, "kernel_gc_stats", None)
        if gc_stats:
            rows.append(
                (
                    "kernel GC collects",
                    ", ".join(
                        f"{key}={count}"
                        for key, count in gc_stats.items()
                        if count
                    )
                    or "none",
                )
            )
    print(
        format_table(
            ("Metric", "Value"),
            rows,
            title=f"{args.scheme} / {trace.name} / {args.policy} / {args.gc_mode}",
        )
    )
    return 0


def _spec_from_args(args: argparse.Namespace) -> RunSpec:
    """Build the cached-run spec from the shared selector flags."""
    return RunSpec(
        workload=args.workload,
        scheme=args.scheme,
        policy=args.policy,
        seed=args.seed,
        scale=args.scale,
        device=args.device,
        array_devices=args.array_devices,
        tenants=args.tenants,
        gc_coord=args.gc_coord,
        ncq_depth=args.ncq_depth,
    )


def _fallback_reason(sample: str) -> str:
    """``cagc_..._total{reason="x"}`` -> ``x``."""
    return sample.split('reason="', 1)[1].rstrip('"}')


def _kernel_doc(result) -> Optional[dict]:
    """Kernel attribution from the metrics snapshot (or array result)."""
    fallback_reason = getattr(result, "kernel_fallback_reason", None)
    snapshot = result.metrics
    if snapshot is None:
        if fallback_reason is None:
            return None
        return {"fallback_reason": fallback_reason}
    family = "cagc_kernel_fallback_requests_total"
    doc = {
        "batches": snapshot.values.get("cagc_kernel_batches_total", 0.0),
        "batched_requests": snapshot.values.get(
            "cagc_kernel_batched_requests_total", 0.0
        ),
        "fallback_requests": {
            _fallback_reason(sample): value
            for sample, value in snapshot.values.items()
            if sample.startswith(family + "{")
        },
    }
    if fallback_reason is not None:
        doc["fallback_reason"] = fallback_reason
    return doc


def _kernel_rows(kernel: Optional[dict]) -> List[tuple]:
    """``(metric, value)`` table rows mirroring :func:`_kernel_doc`."""
    if not kernel:
        return []
    rows = []
    if kernel.get("batches"):
        rows.append(
            (
                "kernel batches",
                f"{kernel['batches']:.0f} "
                f"({kernel['batched_requests']:.0f} reqs)",
            )
        )
    for reason in sorted(kernel.get("fallback_requests", ())):
        rows.append(
            (
                f"kernel fallback[{reason}]",
                f"{kernel['fallback_requests'][reason]:.0f}",
            )
        )
    if kernel.get("fallback_reason"):
        rows.append(("kernel fallback reason", kernel["fallback_reason"]))
    return rows


def _slo_doc(result, array: bool) -> List[dict]:
    """Structured SLO rows: per-tenant percentiles for arrays, the
    declarative burn-rate evaluation for single devices."""
    if array:
        telemetry = result.telemetry
        doc = [
            {
                "scope": "array",
                "p99_us": telemetry.hist.percentile(99.0),
                "p999_us": telemetry.hist.percentile(99.9),
                "requests": telemetry.hist.total,
            }
        ]
        for tenant, (p99, p999) in telemetry.tenant_percentiles():
            doc.append(
                {
                    "scope": f"tenant-{tenant}",
                    "p99_us": p99,
                    "p999_us": p999,
                    "requests": telemetry.tenant_hists[tenant].total,
                }
            )
        return doc
    if result.metrics is None:
        return []
    from repro.obs import evaluate_slos

    return evaluate_slos(result.metrics)


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the unified telemetry view of one (possibly cached) run."""
    from repro.obs import RunTelemetry

    if args.no_cache:
        _disable_cache()
    if args.compare is not None:
        return _cmd_report_compare(args)
    spec = _spec_from_args(args)
    cache = RunCache.from_env() if cache_enabled() else None
    start = time.time()
    result = run_specs([spec], jobs=args.jobs, cache=cache)[0]
    wall = time.time() - start
    kernel = _kernel_doc(result)
    if args.array_devices:
        rows = _array_report_rows(result)
    else:
        rows = RunTelemetry.summary_rows(result)
    rows = list(rows) + _kernel_rows(kernel)
    print(format_table(("Metric", "Value"), rows, title=spec.label()))
    hits = cache.hits if cache is not None else 0
    log.info("(%.1fs, %s)", wall, "cached" if hits else "fresh run")
    if args.out:
        doc = {
            "run": spec.label(),
            "metrics": {k: v for k, v in rows},
            "kernel": kernel,
            "slo": _slo_doc(result, array=bool(args.array_devices)),
        }
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        log.info("wrote %s", args.out)
    return 0


def _fmt_delta_cell(value) -> str:
    from repro.obs import export

    if value is None:
        return "-"
    return export.format_value(float(value))


def _cmd_report_compare(args: argparse.Namespace) -> int:
    """``report --compare RUN_A RUN_B``: cross-run metric diffing."""
    from repro.obs.compare import DEFAULT_THRESHOLD, compare_snapshots, flagged, summarize

    extras = dict(
        device=args.device,
        array_devices=args.array_devices,
        tenants=args.tenants,
        gc_coord=args.gc_coord,
        ncq_depth=args.ncq_depth,
    )
    try:
        spec_a = RunSpec.parse(args.compare[0], **extras)
        spec_b = RunSpec.parse(args.compare[1], **extras)
    except ValueError as exc:
        log.error("error: %s", exc)
        return 2
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    cache = RunCache.from_env() if cache_enabled() else None
    results = run_specs([spec_a, spec_b], jobs=args.jobs, cache=cache)
    for spec, result in zip((spec_a, spec_b), results):
        if result.metrics is None:
            log.error(
                "error: %s carries no metrics snapshot (parallel-device "
                "runs are unmetered); re-run with --no-cache or a "
                "metered device model",
                spec.label(),
            )
            return 2
    rows = compare_snapshots(
        results[0].metrics, results[1].metrics, threshold=threshold
    )
    hot = flagged(rows)
    summary = summarize(rows, threshold)
    if hot:
        table = [
            (
                row["metric"],
                _fmt_delta_cell(row["a"]),
                _fmt_delta_cell(row["b"]),
                _fmt_delta_cell(row["delta"]),
                "-" if row["rel"] is None else f"{row['rel']:+.1%}",
            )
            for row in hot
        ]
        print(
            format_table(
                ("Metric", "A", "B", "Delta", "Rel"),
                table,
                title=f"{spec_a.label()}  vs  {spec_b.label()}",
            )
        )
    print(
        f"compare: {summary['metrics']} metrics, {summary['flagged']} "
        f"flagged above {threshold:.0%}"
        + ("" if hot else " (runs are metric-identical at this threshold)")
    )
    if args.out:
        doc = {
            "run_a": spec_a.label(),
            "run_b": spec_b.label(),
            "threshold": threshold,
            "summary": summary,
            "rows": rows,
        }
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        log.info("wrote %s", args.out)
    return 1 if (args.fail_on_diff and hot) else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Export a cached run's metrics snapshot; optionally judge SLOs."""
    from repro.obs import prometheus_text, series_csv, series_jsonl
    from repro.obs.slo import default_objectives, evaluate_slos, gc_spike_annotations

    if args.no_cache:
        _disable_cache()
    spec = _spec_from_args(args)
    cache = RunCache.from_env() if cache_enabled() else None
    result = run_specs([spec], jobs=args.jobs, cache=cache)[0]
    snapshot = result.metrics
    if snapshot is None:
        log.error(
            "error: %s carries no metrics snapshot (parallel-device runs "
            "are unmetered)",
            spec.label(),
        )
        return 2
    render = {"prom": prometheus_text, "jsonl": series_jsonl, "csv": series_csv}
    text = render[args.format](snapshot)
    if args.out:
        Path(args.out).write_text(text)
        log.info(
            "wrote %s (%s, %d samples)", args.out, args.format, snapshot.samples
        )
    else:
        sys.stdout.write(text)
    if args.slo:
        objectives = default_objectives(
            p99_us=args.slo_p99_us, p999_us=args.slo_p999_us, waf=args.slo_waf
        )
        rows = [
            (
                r["objective"],
                r["target"],
                f"{r['limit']:g}",
                f"{r['worst']:.1f}",
                f"{r['violations']}/{r['windows']}",
                f"{r['burn_rate']:.2f}",
                r["status"],
            )
            for r in evaluate_slos(snapshot, objectives)
        ]
        print(
            format_table(
                ("Objective", "Target", "Limit", "Worst", "Viol", "Burn", "Status"),
                rows,
                title=f"SLO burn rates: {spec.label()}",
            )
        )
        spikes = gc_spike_annotations(snapshot, limit=args.slo_p99_us)
        correlated = sum(1 for s in spikes if s["correlated"])
        print(
            f"gc spikes: {len(spikes)} windows above p99 objective, "
            f"{correlated} correlated with collect activity"
        )
        for spike in spikes[:10]:
            print(
                f"  t={spike['t_us'] / 1e6:.3f}s  "
                f"p99={spike['value']:.0f}us  gc+{spike['gc_delta']:.0f}"
            )
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    """Tabulate BENCH_history.jsonl with regression annotations."""
    from repro.metrics.history import DEFAULT_THRESHOLD, history_rows, load_history

    path = Path(args.file)
    if not path.exists():
        log.error("error: no such file: %s", path)
        return 2
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    entries = load_history(path)
    if not entries:
        print(f"bench-history: no comparable entries in {path}")
        return 0
    header, rows, regressions = history_rows(
        entries, threshold=threshold, cases=args.cases
    )
    print(
        format_table(
            header,
            rows,
            title=f"bench history: {len(entries)} snapshots "
            f"(! = >{threshold:.0%} slowdown vs last recording)",
        )
    )
    for record in regressions:
        print(
            f"regression: {record['case']} at {record['git_sha']} "
            f"({record['taken_at']}): {record['prev_us_per_op']:.2f} -> "
            f"{record['us_per_op']:.2f} us/op (x{record['ratio']:.2f})"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    geometry = GeometryConfig(blocks=args.blocks, pages_per_block=args.pages_per_block)
    config = SSDConfig(geometry=geometry)
    config.validate()
    trace = build_fiu_trace(
        args.preset, config, n_requests=0, fill_factor=args.fill_factor
    )
    stats = trace.stats()
    print(
        f"workload {args.preset}: {stats.requests:,} requests, "
        f"dedup {stats.dedup_ratio:.1%}, write ratio {stats.write_ratio:.1%}\n"
    )
    rows = []
    for name in ("baseline", "inline-dedupe", "cagc", "lba-hotcold"):
        scheme = make_scheme(name, config, policy=make_policy(args.policy))
        result = run_trace(scheme, trace)
        rows.append(
            (
                name,
                result.blocks_erased,
                result.pages_migrated,
                f"{result.latency.mean_us:.0f}us",
                f"{result.latency.p99_us:.0f}us",
                f"{result.write_amplification():.2f}",
            )
        )
    print(
        format_table(
            ("Scheme", "Erases", "Migrated", "Mean", "p99", "WAF"),
            rows,
            title=f"all schemes, {args.policy} victim policy",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    log.setup_from_args(args)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "trace-gen":
        return _cmd_trace_gen(args)
    if args.command == "trace-info":
        return _cmd_trace_info(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "bench-history":
        return _cmd_bench_history(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
