"""Command-line entry point.

Examples::

    cagc-repro list
    cagc-repro run fig9
    cagc-repro run all --scale full
    cagc-repro trace-gen --preset mail --requests 20000 --out mail.csv
    cagc-repro trace-info mail.csv
    cagc-repro simulate --scheme cagc --preset mail --blocks 256
    cagc-repro simulate --scheme baseline --trace mail.csv --policy cost-benefit
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.config import GeometryConfig, SSDConfig
from repro.device.ssd import run_trace
from repro.experiments import EXPERIMENTS, run_experiment
from repro.ftl.gc import POLICIES, make_policy
from repro.metrics.report import format_table
from repro.schemes import make_scheme
from repro.workloads.analysis import profile_trace, refcount_histogram
from repro.workloads.fiu import FIU_PRESETS, build_fiu_trace
from repro.workloads.fiu_format import dump_fiu_trace, load_fiu_trace
from repro.workloads.trace import Trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cagc-repro",
        description="Reproduce the CAGC paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run_p.add_argument(
        "--scale",
        default="bench",
        choices=("quick", "bench", "full"),
        help="device/trace sizing (default: bench)",
    )

    gen_p = sub.add_parser("trace-gen", help="generate a synthetic FIU-like trace")
    gen_p.add_argument("--preset", default="mail", choices=sorted(FIU_PRESETS))
    gen_p.add_argument("--requests", type=int, default=20_000)
    gen_p.add_argument("--blocks", type=int, default=256, help="device blocks the trace is sized to")
    gen_p.add_argument("--pages-per-block", type=int, default=64)
    gen_p.add_argument("--seed", type=int, default=None)
    gen_p.add_argument("--out", required=True, help="output path")
    gen_p.add_argument(
        "--format", default="csv", choices=("csv", "fiu"), help="output format"
    )

    info_p = sub.add_parser("trace-info", help="analyze a trace file")
    info_p.add_argument("trace", help="trace path (.csv from trace-gen, or FIU format)")
    info_p.add_argument(
        "--format", default=None, choices=(None, "csv", "fiu"), help="force input format"
    )

    sim_p = sub.add_parser("simulate", help="replay a workload under one scheme")
    sim_p.add_argument(
        "--scheme",
        default="cagc",
        choices=("baseline", "inline-dedupe", "cagc", "lba-hotcold"),
    )
    sim_p.add_argument("--preset", default="mail", choices=sorted(FIU_PRESETS))
    sim_p.add_argument("--trace", default=None, help="replay a trace file instead of a preset")
    sim_p.add_argument("--policy", default="greedy", choices=sorted(POLICIES))
    sim_p.add_argument("--blocks", type=int, default=256)
    sim_p.add_argument("--pages-per-block", type=int, default=64)
    sim_p.add_argument("--channels", type=int, default=4)
    sim_p.add_argument("--fill-factor", type=float, default=3.0)
    sim_p.add_argument("--gc-mode", default="blocking", choices=("blocking", "preemptive"))
    sim_p.add_argument("--wear-aware", action="store_true")
    sim_p.add_argument(
        "--device",
        default="serial",
        choices=("serial", "parallel"),
        help="serial: single-queue FlashSim model; parallel: per-channel queues",
    )
    sim_p.add_argument(
        "--write-buffer", type=int, default=0, metavar="PAGES",
        help="DRAM write-back buffer size in pages (serial device only)",
    )

    cmp_p = sub.add_parser(
        "compare", help="run every scheme on one workload and tabulate"
    )
    cmp_p.add_argument("--preset", default="mail", choices=sorted(FIU_PRESETS))
    cmp_p.add_argument("--policy", default="greedy", choices=sorted(POLICIES))
    cmp_p.add_argument("--blocks", type=int, default=256)
    cmp_p.add_argument("--pages-per-block", type=int, default=64)
    cmp_p.add_argument("--fill-factor", type=float, default=3.0)
    return parser


def _load_trace(path: str, fmt: Optional[str]) -> Trace:
    if fmt is None:
        fmt = "csv" if path.endswith(".csv") else "fiu"
    if fmt == "csv":
        return Trace.load_csv(path)
    return load_fiu_trace(path)


def _cmd_run(args: argparse.Namespace) -> int:
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        start = time.time()
        try:
            report = run_experiment(experiment_id, scale=args.scale)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report)
        print(f"({time.time() - start:.1f}s)\n")
    return 0


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    geometry = GeometryConfig(
        blocks=args.blocks, pages_per_block=args.pages_per_block
    )
    config = SSDConfig(geometry=geometry)
    trace = build_fiu_trace(
        args.preset, config, n_requests=args.requests, seed=args.seed
    )
    if args.format == "csv":
        trace.save_csv(args.out)
    else:
        dump_fiu_trace(trace, args.out)
    stats = trace.stats()
    print(
        f"wrote {stats.requests:,} requests ({stats.written_pages:,} written pages, "
        f"dedup {stats.dedup_ratio:.1%}) to {args.out}"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    if not Path(args.trace).exists():
        print(f"error: no such file: {args.trace}", file=sys.stderr)
        return 2
    trace = _load_trace(args.trace, args.format)
    stats = trace.stats()
    profile = profile_trace(trace)
    rows = [
        ("requests", stats.requests),
        ("write ratio", f"{stats.write_ratio:.1%}"),
        ("dedup ratio", f"{stats.dedup_ratio:.1%}"),
        ("mean request size", f"{stats.avg_req_kb:.1f}KB"),
        ("written pages", stats.written_pages),
        ("working set (pages)", profile.working_set_pages),
        ("mean overwrites/LPN", f"{profile.mean_overwrites:.2f}"),
        ("unique contents", profile.unique_contents),
        ("top-1% content share", f"{profile.top1pct_content_share:.1%}"),
        ("mean final refcount", f"{profile.mean_final_refcount:.2f}"),
    ]
    print(format_table(("Metric", "Value"), rows, title=f"trace: {trace.name}"))
    print(
        format_table(
            ("Refcount", "Live contents"),
            [(label, f"{frac:.1%}") for label, frac in refcount_histogram(trace)],
            title="final refcount distribution",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    geometry = GeometryConfig(
        blocks=args.blocks,
        pages_per_block=args.pages_per_block,
        channels=args.channels,
    )
    config = SSDConfig(
        geometry=geometry,
        gc_mode=args.gc_mode,
        wear_aware_allocation=args.wear_aware,
        write_buffer_pages=args.write_buffer,
    )
    config.validate()
    if args.trace is not None:
        trace = _load_trace(args.trace, None)
    else:
        trace = build_fiu_trace(
            args.preset, config, n_requests=0, fill_factor=args.fill_factor
        )
    scheme = make_scheme(args.scheme, config, policy=make_policy(args.policy))
    start = time.time()
    if args.device == "parallel":
        from repro.device.parallel import ParallelSSD

        result = ParallelSSD(scheme).replay(trace)
    else:
        result = run_trace(scheme, trace)
    wall = time.time() - start
    lat = result.latency
    rows = [
        ("requests", lat.count),
        ("mean response", f"{lat.mean_us:.1f}us"),
        ("p50 / p95 / p99", f"{lat.median_us:.0f} / {lat.p95_us:.0f} / {lat.p99_us:.0f}us"),
        ("blocks erased", result.blocks_erased),
        ("pages migrated", result.pages_migrated),
        ("GC dedup hits", result.gc.dedup_skipped),
        ("write amplification", f"{result.write_amplification():.2f}"),
        ("max block wear", result.wear.max_erase),
        ("simulated time", f"{result.simulated_us / 1e6:.2f}s"),
        ("wall time", f"{wall:.2f}s"),
    ]
    if result.buffer is not None:
        rows.append(("buffer absorption", f"{result.buffer.absorption_ratio:.1%}"))
    print(
        format_table(
            ("Metric", "Value"),
            rows,
            title=f"{args.scheme} / {trace.name} / {args.policy} / {args.gc_mode}",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    geometry = GeometryConfig(blocks=args.blocks, pages_per_block=args.pages_per_block)
    config = SSDConfig(geometry=geometry)
    config.validate()
    trace = build_fiu_trace(
        args.preset, config, n_requests=0, fill_factor=args.fill_factor
    )
    stats = trace.stats()
    print(
        f"workload {args.preset}: {stats.requests:,} requests, "
        f"dedup {stats.dedup_ratio:.1%}, write ratio {stats.write_ratio:.1%}\n"
    )
    rows = []
    for name in ("baseline", "inline-dedupe", "cagc", "lba-hotcold"):
        scheme = make_scheme(name, config, policy=make_policy(args.policy))
        result = run_trace(scheme, trace)
        rows.append(
            (
                name,
                result.blocks_erased,
                result.pages_migrated,
                f"{result.latency.mean_us:.0f}us",
                f"{result.latency.p99_us:.0f}us",
                f"{result.write_amplification():.2f}",
            )
        )
    print(
        format_table(
            ("Scheme", "Erases", "Migrated", "Mean", "p99", "WAF"),
            rows,
            title=f"all schemes, {args.policy} victim policy",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace-gen":
        return _cmd_trace_gen(args)
    if args.command == "trace-info":
        return _cmd_trace_info(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
