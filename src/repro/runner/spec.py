"""Work-unit abstraction for the experiment runner.

A :class:`RunSpec` is a frozen, hashable description of exactly one
simulation: which Table II workload preset to replay, under which FTL
scheme, victim policy, trace seed and experiment scale — plus optional
config/trace overrides, scheme options and device choice so that the
ablation sweeps (threshold, OP space, GC mode, channel counts, ...) are
expressible as specs too.  Every paper figure and ablation decomposes
into a fan-out of independent specs, so the spec is the unit of
scheduling (process-pool fan-out) and of caching (persistent result
store keyed by :meth:`RunSpec.key`).

The key is a *content hash*: a SHA-256 over the canonical JSON of the
spec fields plus the cache schema version, so it is stable across
processes and Python versions (unlike ``hash()``) and changes whenever
the serialized result format changes.

Override fields are sorted ``(key, value)`` tuples (kept canonical by
``__post_init__``) with JSON-serializable values.  Config override keys
may be dotted to reach the nested dataclasses: ``"timing.hash_us"``
builds a ``TimingConfig(hash_us=...)``, ``"geometry.channels"`` rewrites
the scale's geometry.  :func:`freeze_overrides` builds the tuples from a
mapping or kwargs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.runner.serialize import SCHEMA_VERSION

#: override tuples: sorted ((key, value), ...) with JSON values.
Overrides = Tuple[Tuple[str, Any], ...]


def freeze_overrides(
    mapping: Optional[Mapping[str, Any]] = None, **kwargs: Any
) -> Overrides:
    """Canonical override tuple from a mapping and/or kwargs.

    Use the mapping form for dotted keys (``{"timing.hash_us": 2.0}``)
    that are not valid Python identifiers.
    """
    merged: Dict[str, Any] = dict(mapping or {})
    merged.update(kwargs)
    return tuple(sorted(merged.items()))


@dataclass(frozen=True)
class RunSpec:
    """One (workload, scheme, policy, seed, scale) simulation."""

    workload: str
    scheme: str
    policy: str = "greedy"
    seed: int = 0
    scale: str = "bench"
    #: SSDConfig field overrides; dotted keys reach timing/geometry.
    config_overrides: Overrides = ()
    #: keyword overrides for the scale's trace builder (fill_factor, ...).
    trace_overrides: Overrides = ()
    #: scheme-constructor options (cagc only): ``prefer_hot_victims``,
    #: ``placement`` ("never-cold").
    scheme_options: Overrides = ()
    #: controller: "single" (FlashSim-style queue) or "parallel".
    device: str = "single"
    #: 0 = one bare device (the historical path).  N >= 1 replays the
    #: workload on an N-device :class:`repro.array.SSDArray` instead,
    #: with ``tenants`` per-tenant traces multiplexed across it.
    array_devices: int = 0
    #: tenant streams multiplexed onto the array (array runs only).
    tenants: int = 1
    #: array GC coordination: independent | staggered | global-token.
    gc_coord: str = "independent"
    #: per-device NCQ admission window (array runs only).
    ncq_depth: int = 32

    def __post_init__(self) -> None:
        # Canonicalize: same overrides in any order -> equal spec, equal
        # hash, equal cache key.
        for name in ("config_overrides", "trace_overrides", "scheme_options"):
            value = tuple(sorted(tuple(item) for item in getattr(self, name)))
            object.__setattr__(self, name, value)

    def key(self) -> str:
        """Stable content-hash key for cache file naming."""
        doc = {"v": SCHEMA_VERSION, **asdict(self)}
        for name in ("config_overrides", "trace_overrides", "scheme_options"):
            doc[name] = dict(doc[name])
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    def label(self) -> str:
        """Human-readable id, e.g. ``mail/cagc/greedy@bench#0``."""
        base = f"{self.workload}/{self.scheme}/{self.policy}@{self.scale}#{self.seed}"
        extras = []
        for name, tag in (
            ("config_overrides", "cfg"),
            ("trace_overrides", "trace"),
            ("scheme_options", "opt"),
        ):
            pairs = getattr(self, name)
            if pairs:
                extras.append(f"{tag}:" + ",".join(f"{k}={v}" for k, v in pairs))
        if self.device != "single":
            extras.append(f"dev:{self.device}")
        if self.array_devices:
            extras.append(
                f"array:{self.array_devices}x{self.tenants}t/{self.gc_coord}"
            )
        return base + (f" [{'; '.join(extras)}]" if extras else "")

    @classmethod
    def parse(cls, text: str, **kwargs: Any) -> "RunSpec":
        """Inverse of the base :meth:`label` form.

        Accepts ``workload[/scheme[/policy]][@scale][#seed]`` — the part
        of the label before any ``[extras]`` — so CLI surfaces like
        ``report --compare`` can name cached runs the same way reports
        print them.  Extras (overrides, array shape) are not parseable
        from the label; pass them as ``kwargs`` / CLI flags instead.
        """
        base = text.strip()
        if "[" in base or " " in base:
            raise ValueError(
                f"run label {text!r} carries extras; pass overrides/array "
                "shape as explicit flags instead"
            )
        seed = 0
        if "#" in base:
            base, seed_text = base.rsplit("#", 1)
            seed = int(seed_text)
        scale = "bench"
        if "@" in base:
            base, scale = base.rsplit("@", 1)
        parts = base.split("/")
        if len(parts) == 2:
            workload, scheme = parts
            policy = "greedy"
        elif len(parts) == 3:
            workload, scheme, policy = parts
        else:
            raise ValueError(
                f"run label {text!r} is not workload/scheme[/policy]"
                "[@scale][#seed]"
            )
        return cls(
            workload=workload,
            scheme=scheme,
            policy=policy,
            seed=seed,
            scale=scale,
            **kwargs,
        )

    # ------------------------------------------------------------ execution

    def _build_config(self, sc):
        import dataclasses as dc

        from repro.config import TimingConfig

        timing_kwargs: Dict[str, Any] = {}
        geometry_kwargs: Dict[str, Any] = {}
        flat: Dict[str, Any] = {}
        for key, value in self.config_overrides:
            if key.startswith("timing."):
                timing_kwargs[key[len("timing.") :]] = value
            elif key.startswith("geometry."):
                geometry_kwargs[key[len("geometry.") :]] = value
            else:
                flat[key] = value
        if timing_kwargs:
            flat["timing"] = TimingConfig(**timing_kwargs)
        config = sc.config(**flat)
        if geometry_kwargs:
            config = dc.replace(
                config, geometry=dc.replace(config.geometry, **geometry_kwargs)
            )
            config.validate()
        return config

    def _build_scheme(self, config):
        from repro.ftl.gc import make_policy
        from repro.schemes import make_scheme

        policy = make_policy(self.policy, seed=self.seed)
        options = dict(self.scheme_options)
        if not options:
            return make_scheme(self.scheme, config, policy=policy)
        if self.scheme != "cagc":
            raise ValueError(
                f"scheme_options are only supported for 'cagc', not {self.scheme!r}"
            )
        from repro.core.cagc import CAGCScheme
        from repro.core.placement import NeverColdPlacement

        placement = None
        placement_name = options.pop("placement", None)
        if placement_name is not None:
            if placement_name != "never-cold":
                raise ValueError(f"unknown placement override {placement_name!r}")
            placement = NeverColdPlacement(config)
        return CAGCScheme(config, policy=policy, placement=placement, **options)

    def execute(
        self,
        tracer=None,
        telemetry=None,
        heartbeat=None,
        metrics="auto",
        keep_samples=True,
    ):
        """Run the simulation described by this spec (no caching).

        Mirrors the historical ``gc_efficiency_result`` construction
        exactly: ``seed=0`` replays the preset's canonical trace, other
        seeds draw an independent trace with the same characteristics.

        ``tracer``/``telemetry``/``heartbeat``/``metrics`` attach
        :mod:`repro.obs` observers to the replay (observers never enter
        the cache key: they must not — and by construction cannot —
        change the simulated outcome, only record it).  ``metrics``
        defaults to ``"auto"``: a stock
        :class:`~repro.obs.metrics.DeviceMetrics` (or ``ArrayMetrics``
        for array specs) is attached, so every cached result carries a
        metrics snapshot for the ``metrics``/``report --compare`` CLI
        surfaces; pass ``None`` to run bare or a pre-built bundle to
        control the registry/interval.  ``keep_samples=False`` switches
        latency capture to the constant-memory histogram
        (``response_times_us`` comes back empty); use it for
        large-scale runs where O(requests) sample storage dominates RSS.
        """
        # Imported lazily: repro.experiments.common itself builds on the
        # runner, so a module-level import would be circular.
        from repro.experiments.common import get_scale
        from repro.device.ssd import run_trace

        sc = get_scale(self.scale)
        config = self._build_config(sc)
        if self.array_devices:
            if metrics == "auto":
                from repro.obs.metrics import ArrayMetrics

                metrics = ArrayMetrics()
            return self._execute_array(
                sc, config, tracer=tracer, heartbeat=heartbeat,
                metrics=metrics, keep_samples=keep_samples,
            )
        if metrics == "auto":
            if self.device == "single":
                from repro.obs.metrics import DeviceMetrics

                metrics = DeviceMetrics()
            else:
                metrics = None  # ParallelSSD does not take observers
        trace = sc.trace(
            self.workload,
            config,
            seed=(10_000 + self.seed) if self.seed else None,
            **dict(self.trace_overrides),
        )
        ftl = self._build_scheme(config)
        if self.device == "parallel":
            from repro.device.parallel import ParallelSSD

            return ParallelSSD(ftl, tracer=tracer, heartbeat=heartbeat).replay(trace)
        if self.device != "single":
            raise ValueError(f"unknown device {self.device!r}")
        return run_trace(
            ftl,
            trace,
            tracer=tracer,
            telemetry=telemetry,
            heartbeat=heartbeat,
            metrics=metrics,
            keep_samples=keep_samples,
        )

    def _execute_array(
        self, sc, config, tracer, heartbeat, metrics, keep_samples
    ):
        """Array branch of :meth:`execute`: returns an ``ArrayResult``.

        Each tenant draws an independent trace of the same workload
        preset, scaled down by the number of tenant slots per device so
        every *device* sees the same LPN utilization and write pressure
        as a single-device run of this spec — coordination policies are
        then compared under identical per-device GC stress.
        """
        from repro.array import SSDArray
        from repro.workloads.multiplex import multiplex_traces

        if self.device != "single":
            raise ValueError(
                f"array runs require device='single', got {self.device!r}"
            )
        slots = (self.tenants + self.array_devices - 1) // self.array_devices
        overrides = dict(self.trace_overrides)
        utilization = overrides.pop("lpn_utilization", sc.lpn_utilization)
        fill_factor = overrides.pop("fill_factor", sc.fill_factor)
        tenant_traces = [
            sc.trace(
                self.workload,
                config,
                seed=10_000 + 997 * self.seed + t,
                lpn_utilization=utilization / slots,
                fill_factor=fill_factor / slots,
                **overrides,
            )
            for t in range(self.tenants)
        ]
        merged = multiplex_traces(
            tenant_traces,
            self.array_devices,
            config.logical_pages,
            name=f"{self.workload}x{self.tenants}",
        )
        ftls = [self._build_scheme(config) for _ in range(self.array_devices)]
        return SSDArray(
            ftls,
            coordination=self.gc_coord,
            ncq_depth=self.ncq_depth,
            tracer=tracer,
            heartbeat=heartbeat,
            metrics=metrics,
            keep_samples=keep_samples,
        ).replay(merged)


def sweep_specs(
    workloads: Tuple[str, ...],
    schemes: Tuple[str, ...],
    policies: Tuple[str, ...] = ("greedy",),
    seeds: Tuple[int, ...] = (0,),
    scale: str = "bench",
) -> Tuple[RunSpec, ...]:
    """Cartesian product of the sweep axes, in deterministic order."""
    return tuple(
        RunSpec(workload=w, scheme=s, policy=p, seed=seed, scale=scale)
        for w in workloads
        for s in schemes
        for p in policies
        for seed in seeds
    )
