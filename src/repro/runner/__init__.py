"""Experiment runner: work units, persistent cache, parallel execution.

The subsystem that turns the paper's figure/ablation sweeps into a
schedulable fan-out:

* :class:`RunSpec` — frozen description of one simulation with a
  stable content-hash :meth:`~RunSpec.key`;
* :class:`RunCache` — persistent, schema-versioned result store shared
  across processes (``results/cache`` or ``$CAGC_CACHE_DIR``);
* :func:`run_specs` — cache-aware executor with ``ProcessPoolExecutor``
  fan-out, deterministic and bit-identical to serial execution;
* :func:`sweep_specs` — cartesian-product spec builder for CLI sweeps.
"""

from repro.runner.cache import RunCache, cache_enabled, default_cache_root
from repro.runner.executor import execute_spec, resolve_jobs, run_specs
from repro.runner.serialize import (
    SCHEMA_VERSION,
    SchemaMismatchError,
    result_from_bytes,
    result_to_bytes,
)
from repro.runner.spec import RunSpec, freeze_overrides, sweep_specs

__all__ = [
    "RunSpec",
    "RunCache",
    "freeze_overrides",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "cache_enabled",
    "default_cache_root",
    "execute_spec",
    "resolve_jobs",
    "result_from_bytes",
    "result_to_bytes",
    "run_specs",
    "sweep_specs",
]
