"""Schema-versioned serialization of :class:`~repro.device.ssd.RunResult`.

A ``RunResult`` mixes plain dataclasses (latency summary, GC/IO
counters, wear stats, optional write-buffer stats) with a NumPy array
of raw per-request response times, so it is stored as an ``.npz``
archive: the array verbatim plus one JSON metadata entry.  JSON floats
round-trip exactly (shortest-repr), so a load reproduces the result
bit-for-bit — the property the runner's determinism tests pin.

``SCHEMA_VERSION`` is folded into every cache key (see
:meth:`repro.runner.spec.RunSpec.key`); bumping it therefore invalidates
all previously cached results instead of misreading them.  Loads also
verify the version embedded in the file and raise
:class:`SchemaMismatchError` on disagreement (e.g. a cache directory
shared between checkouts).
"""

from __future__ import annotations

import io
import json
from typing import Optional

import numpy as np

from repro.device.writebuffer import WriteBufferStats
from repro.metrics.counters import GCCounters, IOCounters
from repro.metrics.latency import LatencySummary
from repro.ftl.wear import WearStats

#: Bump on any incompatible change to the stored result layout.
#: v2: GCCounters gained per-phase busy-time fields (gc_read_us, ...).
#: v3: array results (kind="array": per-device results + SLO histograms).
#: v4: optional metrics snapshot (final values + columnar time series).
SCHEMA_VERSION = 5


class SchemaMismatchError(RuntimeError):
    """A stored result was written under a different schema version."""


def _run_result_meta(result) -> dict:
    return {
        "scheme": result.scheme,
        "trace": result.trace,
        "latency": result.latency.as_dict(),
        "gc": vars(result.gc).copy(),
        "io": vars(result.io).copy(),
        "wear": {
            "total_erases": result.wear.total_erases,
            "max_erase": result.wear.max_erase,
            "mean_erase": result.wear.mean_erase,
            "std_erase": result.wear.std_erase,
        },
        "simulated_us": result.simulated_us,
        "buffer": vars(result.buffer).copy() if result.buffer is not None else None,
    }


def _run_result_from(meta: dict, samples: np.ndarray):
    from repro.device.ssd import RunResult  # circular at import time

    buffer: Optional[WriteBufferStats] = None
    if meta["buffer"] is not None:
        buffer = WriteBufferStats(**meta["buffer"])
    return RunResult(
        scheme=meta["scheme"],
        trace=meta["trace"],
        latency=LatencySummary(**meta["latency"]),
        response_times_us=samples,
        gc=GCCounters(**meta["gc"]),
        io=IOCounters(**meta["io"]),
        wear=WearStats(**meta["wear"]),
        simulated_us=meta["simulated_us"],
        buffer=buffer,
    )


def _metrics_meta(snapshot) -> Optional[dict]:
    """JSON side of a metrics snapshot (floats round-trip exactly);
    the series columns are named here and stored as npz arrays —
    ``metrics_col_{i}`` — because sample ids carry characters (braces,
    quotes) that do not belong in zip member names."""
    if snapshot is None:
        return None
    return {
        "values": snapshot.values,
        "interval_us": snapshot.interval_us,
        "columns": list(snapshot.series),
    }


def _metrics_arrays(snapshot) -> dict:
    if snapshot is None:
        return {}
    arrays = {"metrics_times_us": np.ascontiguousarray(snapshot.times_us)}
    for i, name in enumerate(snapshot.series):
        arrays[f"metrics_col_{i}"] = np.ascontiguousarray(snapshot.series[name])
    return arrays


def _metrics_from_archive(meta: Optional[dict], archive):
    if meta is None:
        return None
    from repro.obs.metrics import MetricsSnapshot

    return MetricsSnapshot(
        values=meta["values"],
        times_us=archive["metrics_times_us"].copy(),
        series={
            name: archive[f"metrics_col_{i}"].copy()
            for i, name in enumerate(meta["columns"])
        },
        interval_us=meta["interval_us"],
    )


def result_to_bytes(result) -> bytes:
    """Serialize a ``RunResult`` or ``ArrayResult`` to ``.npz`` bytes."""
    from repro.array.device import ArrayResult

    if isinstance(result, ArrayResult):
        return _array_result_to_bytes(result)
    meta = {"schema": SCHEMA_VERSION, "kind": "run", **_run_result_meta(result)}
    meta["metrics"] = _metrics_meta(result.metrics)
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        response_times_us=np.ascontiguousarray(result.response_times_us),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **_metrics_arrays(result.metrics),
    )
    return buf.getvalue()


def _array_result_to_bytes(result) -> bytes:
    meta = {
        "schema": SCHEMA_VERSION,
        "kind": "array",
        "coordination": result.coordination,
        "trace": result.trace,
        "tenants": result.tenants,
        "simulated_us": result.simulated_us,
        "ncq_depth": result.ncq_depth,
        "ncq_peaks": list(result.ncq_peaks),
        "ncq_held": list(result.ncq_held),
        "coord_stats": result.coord_stats,
        "kernel_fallback_reason": result.kernel_fallback_reason,
        "kernel_gc": [dict(stats) for stats in result.kernel_gc],
        "devices": [_run_result_meta(r) for r in result.devices],
        "metrics": _metrics_meta(result.metrics),
    }
    arrays = {
        f"device_{i}_response_times_us": np.ascontiguousarray(
            r.response_times_us
        )
        for i, r in enumerate(result.devices)
    }
    arrays.update(_metrics_arrays(result.metrics))
    for family, packed in result.telemetry.to_arrays().items():
        for field, values in packed.items():
            arrays[f"tele_{family}_{field}"] = np.ascontiguousarray(values)
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )
    return buf.getvalue()


def result_from_bytes(payload: bytes):
    """Reconstruct a result from :func:`result_to_bytes` output."""
    with np.load(io.BytesIO(payload)) as archive:
        meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
        if meta.get("schema") != SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"stored schema {meta.get('schema')!r} != current {SCHEMA_VERSION}"
            )
        if meta.get("kind", "run") == "array":
            return _array_result_from_archive(meta, archive)
        samples = archive["response_times_us"].copy()
        metrics = _metrics_from_archive(meta.get("metrics"), archive)
    result = _run_result_from(meta, samples)
    if metrics is not None:
        import dataclasses as dc

        result = dc.replace(result, metrics=metrics)
    return result


def _array_result_from_archive(meta: dict, archive):
    from repro.array.device import ArrayResult
    from repro.array.telemetry import ArrayTelemetry

    devices = tuple(
        _run_result_from(
            device_meta, archive[f"device_{i}_response_times_us"].copy()
        )
        for i, device_meta in enumerate(meta["devices"])
    )
    telemetry = ArrayTelemetry.from_arrays(
        {
            family: {
                field: archive[f"tele_{family}_{field}"]
                for field in ("counts", "total", "sum_us", "max_us")
            }
            for family in ("global", "device", "tenant")
        }
    )
    return ArrayResult(
        coordination=meta["coordination"],
        trace=meta["trace"],
        devices=devices,
        tenants=meta["tenants"],
        telemetry=telemetry,
        simulated_us=meta["simulated_us"],
        ncq_depth=meta["ncq_depth"],
        ncq_peaks=tuple(meta["ncq_peaks"]),
        ncq_held=tuple(meta["ncq_held"]),
        coord_stats=meta["coord_stats"],
        kernel_fallback_reason=meta["kernel_fallback_reason"],
        kernel_gc=tuple(
            dict(stats) for stats in meta.get("kernel_gc", ())
        ),
        metrics=_metrics_from_archive(meta.get("metrics"), archive),
    )
