"""Schema-versioned serialization of :class:`~repro.device.ssd.RunResult`.

A ``RunResult`` mixes plain dataclasses (latency summary, GC/IO
counters, wear stats, optional write-buffer stats) with a NumPy array
of raw per-request response times, so it is stored as an ``.npz``
archive: the array verbatim plus one JSON metadata entry.  JSON floats
round-trip exactly (shortest-repr), so a load reproduces the result
bit-for-bit — the property the runner's determinism tests pin.

``SCHEMA_VERSION`` is folded into every cache key (see
:meth:`repro.runner.spec.RunSpec.key`); bumping it therefore invalidates
all previously cached results instead of misreading them.  Loads also
verify the version embedded in the file and raise
:class:`SchemaMismatchError` on disagreement (e.g. a cache directory
shared between checkouts).
"""

from __future__ import annotations

import io
import json
from typing import Optional

import numpy as np

from repro.device.writebuffer import WriteBufferStats
from repro.metrics.counters import GCCounters, IOCounters
from repro.metrics.latency import LatencySummary
from repro.ftl.wear import WearStats

#: Bump on any incompatible change to the stored result layout.
#: v2: GCCounters gained per-phase busy-time fields (gc_read_us, ...).
SCHEMA_VERSION = 2


class SchemaMismatchError(RuntimeError):
    """A stored result was written under a different schema version."""


def result_to_bytes(result) -> bytes:
    """Serialize a ``RunResult`` to compressed ``.npz`` bytes."""
    meta = {
        "schema": SCHEMA_VERSION,
        "scheme": result.scheme,
        "trace": result.trace,
        "latency": result.latency.as_dict(),
        "gc": vars(result.gc).copy(),
        "io": vars(result.io).copy(),
        "wear": {
            "total_erases": result.wear.total_erases,
            "max_erase": result.wear.max_erase,
            "mean_erase": result.wear.mean_erase,
            "std_erase": result.wear.std_erase,
        },
        "simulated_us": result.simulated_us,
        "buffer": vars(result.buffer).copy() if result.buffer is not None else None,
    }
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        response_times_us=np.ascontiguousarray(result.response_times_us),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    return buf.getvalue()


def result_from_bytes(payload: bytes):
    """Reconstruct a ``RunResult`` from :func:`result_to_bytes` output."""
    from repro.device.ssd import RunResult  # circular at import time

    with np.load(io.BytesIO(payload)) as archive:
        meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
        samples = archive["response_times_us"].copy()
    if meta.get("schema") != SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"stored schema {meta.get('schema')!r} != current {SCHEMA_VERSION}"
        )
    buffer: Optional[WriteBufferStats] = None
    if meta["buffer"] is not None:
        buffer = WriteBufferStats(**meta["buffer"])
    return RunResult(
        scheme=meta["scheme"],
        trace=meta["trace"],
        latency=LatencySummary(**meta["latency"]),
        response_times_us=samples,
        gc=GCCounters(**meta["gc"]),
        io=IOCounters(**meta["io"]),
        wear=WearStats(**meta["wear"]),
        simulated_us=meta["simulated_us"],
        buffer=buffer,
    )
