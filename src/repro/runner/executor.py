"""Fan-out execution of :class:`RunSpec` batches.

``run_specs`` is the orchestration core: it deduplicates the requested
specs, satisfies what it can from the persistent :class:`RunCache`, and
fans the misses out over a ``ProcessPoolExecutor`` (``jobs`` worker
processes, default ``os.cpu_count()``).  Each simulation is fully
independent and internally seeded, so parallel execution is guaranteed
to return results bit-identical to serial execution — the equivalence
the runner test suite asserts per scheme.

Workers return serialized results (the parent deserializes and writes
the cache), which keeps cache writes single-writer/atomic and avoids
pickling ``RunResult`` dataclasses across the process boundary twice.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.runner.cache import RunCache
from repro.runner.serialize import result_from_bytes, result_to_bytes
from repro.runner.spec import RunSpec

#: progress callback: (spec, source) with source in {"cache", "run"}.
ProgressFn = Callable[[RunSpec, str], None]


def execute_spec(spec: RunSpec):
    """Run one spec in-process (no caching).  Picklable worker entry."""
    return spec.execute()


def _execute_spec_bytes(spec: RunSpec) -> bytes:
    """Worker entry: run one spec and return the serialized result."""
    return result_to_bytes(spec.execute())


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value (``None``/0 -> cpu count)."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
    progress: Optional[ProgressFn] = None,
) -> List[object]:
    """Execute ``specs``; returns results aligned with the input order.

    Duplicate specs are computed once.  ``cache`` (when given) is
    consulted first and updated with every fresh result; ``jobs=1``
    runs serially in-process, ``jobs>1`` fans cache-misses out over a
    process pool.
    """
    unique: List[RunSpec] = []
    seen: Dict[RunSpec, None] = {}
    for spec in specs:
        if spec not in seen:
            seen[spec] = None
            unique.append(spec)

    results: Dict[RunSpec, object] = {}
    misses: List[RunSpec] = []
    for spec in unique:
        cached = cache.get(spec) if cache is not None else None
        if cached is not None:
            results[spec] = cached
            if progress is not None:
                progress(spec, "cache")
        else:
            misses.append(spec)

    if misses:
        for spec, result in zip(misses, _execute_misses(misses, resolve_jobs(jobs))):
            results[spec] = result
            if cache is not None:
                cache.put(spec, result)
            if progress is not None:
                progress(spec, "run")

    return [results[spec] for spec in specs]


def _execute_misses(misses: List[RunSpec], jobs: int) -> List[object]:
    if jobs <= 1 or len(misses) == 1:
        return [execute_spec(spec) for spec in misses]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(misses))) as pool:
            payloads = list(pool.map(_execute_spec_bytes, misses))
    except (OSError, PermissionError):
        # Restricted environments (no /dev/shm, forbidden fork) fall
        # back to serial execution; results are identical by design.
        return [execute_spec(spec) for spec in misses]
    return [result_from_bytes(payload) for payload in payloads]
