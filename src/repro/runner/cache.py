"""Persistent cross-process cache of simulation results.

Layout: one compressed ``.npz`` file per :class:`~repro.runner.spec.RunSpec`,
named by the spec's content-hash key and sharded by its first two hex
digits to keep directories small::

    <root>/
      <k[:2]>/<key>.npz

The root resolves, in order, to ``$CAGC_CACHE_DIR``, else
``results/cache`` under the current working directory.  Keys embed the
serialization schema version, so a schema bump simply orphans old
entries (they are never misread); corrupt or stale files are treated as
misses.  Writes are atomic (temp file + ``os.replace``) so a crashed or
parallel writer can never leave a half-written entry behind.

Set ``CAGC_NO_CACHE=1`` to disable persistence entirely (every run is
computed fresh; the in-process memo in ``repro.experiments.common``
still applies).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.runner.spec import RunSpec
from repro.runner.serialize import (
    SchemaMismatchError,
    result_from_bytes,
    result_to_bytes,
)

ENV_CACHE_DIR = "CAGC_CACHE_DIR"
ENV_NO_CACHE = "CAGC_NO_CACHE"
DEFAULT_SUBDIR = Path("results") / "cache"


def default_cache_root() -> Path:
    """Resolve the cache directory from the environment."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path.cwd() / DEFAULT_SUBDIR


def cache_enabled() -> bool:
    return os.environ.get(ENV_NO_CACHE, "") not in ("1", "true", "yes")


class RunCache:
    """Filesystem-backed store of serialized :class:`RunResult` objects."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls) -> Optional["RunCache"]:
        """The default cache, or ``None`` when disabled via env."""
        return cls() if cache_enabled() else None

    def path_for(self, spec: RunSpec) -> Path:
        key = spec.key()
        return self.root / key[:2] / f"{key}.npz"

    def get(self, spec: RunSpec):
        """Cached ``RunResult`` for ``spec``, or ``None`` on a miss."""
        path = self.path_for(spec)
        try:
            payload = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            result = result_from_bytes(payload)
        except (SchemaMismatchError, ValueError, KeyError, OSError):
            # Stale schema or corrupt file: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result) -> Path:
        """Store ``result`` under ``spec`` (atomic write)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result_to_bytes(result)
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.npz"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.npz"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
