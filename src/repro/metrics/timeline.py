"""Time-series capture of device state during a run.

Records named series of (time, value) samples — free-space fraction,
cumulative erases, GC busy time — so studies can see *when* GC pressure
builds, not just totals.  Samples append into growable NumPy buffers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class _Series:
    __slots__ = ("times", "values", "n")

    def __init__(self) -> None:
        self.times = np.empty(64, dtype=np.float64)
        self.values = np.empty(64, dtype=np.float64)
        self.n = 0

    def append(self, t: float, v: float) -> None:
        if self.n == len(self.times):
            self.times = np.concatenate([self.times, np.empty_like(self.times)])
            self.values = np.concatenate([self.values, np.empty_like(self.values)])
        self.times[self.n] = t
        self.values[self.n] = v
        self.n += 1


class TimelineRecorder:
    """Named (time, value) series with O(1) amortized appends."""

    def __init__(self) -> None:
        self._series: Dict[str, _Series] = {}

    def sample(self, name: str, time_us: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = _Series()
        series.append(time_us, value)

    def names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) arrays for one series (copies)."""
        s = self._series.get(name)
        if s is None:
            return np.empty(0), np.empty(0)
        return s.times[: s.n].copy(), s.values[: s.n].copy()

    def last(self, name: str) -> Tuple[float, float]:
        s = self._series.get(name)
        if s is None or s.n == 0:
            raise KeyError(f"no samples for series {name!r}")
        return float(s.times[s.n - 1]), float(s.values[s.n - 1])

    def resample(self, name: str, points: int = 50) -> Tuple[np.ndarray, np.ndarray]:
        """Step-interpolate a series onto an even time grid (for text
        plots and comparisons between runs of different event counts).

        Degenerate series resample gracefully: an empty (or unknown)
        series yields empty arrays, a single-sample series a constant
        grid — short runs that trigger GC zero or one times must not
        crash reporting.
        """
        if points < 1:
            raise ValueError("points must be >= 1")
        times, values = self.series(name)
        if times.size == 0:
            return np.empty(0), np.empty(0)
        if times.size == 1:
            return np.full(points, times[0]), np.full(points, values[0])
        grid = np.linspace(times[0], times[-1], points)
        idx = np.clip(np.searchsorted(times, grid, side="right") - 1, 0, times.size - 1)
        return grid, values[idx]

    def to_dict(self) -> Dict[str, Dict[str, List[float]]]:
        """All series as plain lists: ``{name: {"times_us", "values"}}``.

        JSON-ready; :meth:`repro.obs.Tracer.add_counters_from` consumes
        this shape to turn the timeline into Perfetto counter tracks.
        """
        out: Dict[str, Dict[str, List[float]]] = {}
        for name in self.names():
            times, values = self.series(name)
            out[name] = {"times_us": times.tolist(), "values": values.tolist()}
        return out
