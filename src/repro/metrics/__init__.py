"""Measurement: latency recording, GC counters, CDFs, report tables."""

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.counters import GCCounters, IOCounters
from repro.metrics.cdf import empirical_cdf, cdf_at
from repro.metrics.report import format_table, normalize

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "GCCounters",
    "IOCounters",
    "empirical_cdf",
    "cdf_at",
    "format_table",
    "normalize",
]
