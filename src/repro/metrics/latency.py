"""Per-request latency capture and summarization.

Response time = completion − arrival, including queueing delay — the
quantity Figs 2, 11 and 12 report.  Samples append into a growable
NumPy buffer (amortized O(1), no Python-list boxing of half a million
floats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one run's response times (microseconds)."""

    count: int
    mean_us: float
    median_us: float
    p95_us: float
    p99_us: float
    p999_us: float
    max_us: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "median_us": self.median_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "max_us": self.max_us,
        }


_EMPTY = LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyRecorder:
    """Growable buffer of response-time samples."""

    def __init__(self, capacity: int = 1024) -> None:
        self._buf = np.empty(max(capacity, 16), dtype=np.float64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        if self._n == len(self._buf):
            grown = np.empty(len(self._buf) * 2, dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = latency_us
        self._n += 1

    def samples(self) -> np.ndarray:
        """View of the recorded samples (do not mutate)."""
        return self._buf[: self._n]

    def summary(self) -> LatencySummary:
        if self._n == 0:
            return _EMPTY
        samples = self.samples()
        q = np.percentile(samples, [50, 95, 99, 99.9])
        return LatencySummary(
            count=self._n,
            mean_us=float(samples.mean()),
            median_us=float(q[0]),
            p95_us=float(q[1]),
            p99_us=float(q[2]),
            p999_us=float(q[3]),
            max_us=float(samples.max()),
        )

    def cdf(self, points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs of the empirical CDF (Fig 12)."""
        from repro.metrics.cdf import empirical_cdf

        return empirical_cdf(self.samples(), points)
