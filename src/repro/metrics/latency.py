"""Per-request latency capture and summarization.

Response time = completion − arrival, including queueing delay — the
quantity Figs 2, 11 and 12 report.  Samples append into a growable
NumPy buffer (amortized O(1), no Python-list boxing of half a million
floats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one run's response times (microseconds)."""

    count: int
    mean_us: float
    median_us: float
    p95_us: float
    p99_us: float
    p999_us: float
    max_us: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "median_us": self.median_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "max_us": self.max_us,
        }


_EMPTY = LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


#: Histogram-mode binning: log-spaced edges from 0.1 µs to 10 s give
#: <1.2 % relative quantile error with a fixed 4 KB-ish footprint.
_HIST_LO_US = 0.1
_HIST_HI_US = 1e7
_HIST_BINS = 800


class LatencyRecorder:
    """Response-time capture: exact samples or a fixed-size histogram.

    ``keep_samples=True`` (the default) appends every sample into a
    growable buffer — exact percentiles, O(requests) memory.  With
    ``keep_samples=False`` samples fold into a fixed log-spaced
    histogram instead: percentiles become bin-accurate approximations
    (sub-percent relative error) but memory stays constant no matter
    how long the replay runs — the mode streaming replays of
    multi-million-request traces use.
    """

    def __init__(self, capacity: int = 1024, keep_samples: bool = True) -> None:
        self.keep_samples = keep_samples
        self._n = 0
        if keep_samples:
            self._buf = np.empty(max(capacity, 16), dtype=np.float64)
        else:
            self._buf = np.empty(0, dtype=np.float64)
            self._bins = np.zeros(_HIST_BINS + 2, dtype=np.int64)
            self._log_lo = np.log(_HIST_LO_US)
            self._bin_scale = _HIST_BINS / (np.log(_HIST_HI_US) - self._log_lo)
            self._sum = 0.0
            self._max = 0.0

    def __len__(self) -> int:
        return self._n

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        if not self.keep_samples:
            self._record_binned(latency_us)
            return
        if self._n == len(self._buf):
            grown = np.empty(len(self._buf) * 2, dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = latency_us
        self._n += 1

    def record_many(self, latencies_us: np.ndarray) -> None:
        """Append a whole batch of samples at once.

        Bit-identical to calling :meth:`record` in a loop: exact mode
        bulk-copies into the sample buffer; histogram mode still folds
        one sample at a time because ``_sum`` accumulates in request
        order (float addition is not associative).
        """
        arr = np.ascontiguousarray(latencies_us, dtype=np.float64)
        if arr.size == 0:
            return
        if np.min(arr) < 0:
            raise ValueError(f"negative latency {float(np.min(arr))}")
        if not self.keep_samples:
            for value in arr.tolist():
                self._record_binned(value)
            return
        need = self._n + arr.size
        if need > len(self._buf):
            capacity = len(self._buf)
            while capacity < need:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : need] = arr
        self._n = need

    def _record_binned(self, latency_us: float) -> None:
        if latency_us < _HIST_LO_US:
            idx = 0
        elif latency_us >= _HIST_HI_US:
            idx = _HIST_BINS + 1
        else:
            from math import log

            idx = 1 + int((log(latency_us) - self._log_lo) * self._bin_scale)
        self._bins[idx] += 1
        self._sum += latency_us
        if latency_us > self._max:
            self._max = latency_us
        self._n += 1

    def samples(self) -> np.ndarray:
        """View of the recorded samples (do not mutate).

        Empty in histogram mode — per-sample data was never retained.
        """
        return self._buf[: self._n] if self.keep_samples else self._buf

    def summary(self) -> LatencySummary:
        if self._n == 0:
            return _EMPTY
        if not self.keep_samples:
            return self._summary_binned()
        samples = self.samples()
        q = np.percentile(samples, [50, 95, 99, 99.9])
        return LatencySummary(
            count=self._n,
            mean_us=float(samples.mean()),
            median_us=float(q[0]),
            p95_us=float(q[1]),
            p99_us=float(q[2]),
            p999_us=float(q[3]),
            max_us=float(samples.max()),
        )

    def _summary_binned(self) -> LatencySummary:
        cum = np.cumsum(self._bins)
        # Geometric bin midpoints; the clamp bins report their edge.
        edges = np.exp(
            self._log_lo + np.arange(_HIST_BINS + 1) / self._bin_scale
        )
        mids = np.empty(_HIST_BINS + 2)
        mids[0] = _HIST_LO_US
        mids[1:-1] = np.sqrt(edges[:-1] * edges[1:])
        mids[-1] = self._max
        def quantile(q: float) -> float:
            rank = q * (self._n - 1)
            idx = int(np.searchsorted(cum, rank + 1.0, side="left"))
            return float(min(mids[idx], self._max))
        return LatencySummary(
            count=self._n,
            mean_us=self._sum / self._n,
            median_us=quantile(0.50),
            p95_us=quantile(0.95),
            p99_us=quantile(0.99),
            p999_us=quantile(0.999),
            max_us=self._max,
        )

    def cdf(self, points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs of the empirical CDF (Fig 12)."""
        from repro.metrics.cdf import empirical_cdf

        return empirical_cdf(self.samples(), points)
