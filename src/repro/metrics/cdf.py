"""Empirical cumulative distribution functions (paper Fig 12)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def empirical_cdf(samples: np.ndarray, points: int = 200) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` evaluated at ``points`` evenly spaced x.

    ``F(x)`` is the fraction of samples <= x; x spans [0, max(sample)].
    Empty input yields empty arrays.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return np.empty(0), np.empty(0)
    if points < 2:
        raise ValueError("points must be >= 2")
    xs = np.linspace(0.0, float(samples.max()), points)
    sorted_samples = np.sort(samples)
    fs = np.searchsorted(sorted_samples, xs, side="right") / samples.size
    return xs, fs


def cdf_at(samples: np.ndarray, x: float) -> float:
    """Fraction of samples <= ``x``."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return 0.0
    return float((samples <= x).mean())


def quantile(samples: np.ndarray, q: float) -> float:
    """The q-quantile (0..1) of the samples."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    return float(np.quantile(samples, q))
