"""Bench-history analysis: per-case µs/op trajectories across commits.

``tools/bench_snapshot.py`` appends one JSON line per snapshot to
``BENCH_history.jsonl`` — ``{"cases": {name: us_per_op},
"git_sha", "python", "schema", "taken_at"}`` — which makes the file a
small time series of the hot loop's cost per commit.  This module turns
it into the ``cagc-repro bench-history`` view: the trajectory table and
regression annotations using the same fractional-slowdown policy as
``scripts/check_bench_regression.py`` (a case regresses when its µs/op
exceeds the previous recorded value by more than the threshold).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: mirrors scripts/check_bench_regression.py's DEFAULT_THRESHOLD: the
#: allowed fractional slowdown before a step is annotated.
DEFAULT_THRESHOLD = 0.25

#: history entries older than this schema carry incomparable cases.
HISTORY_SCHEMA = 4


def load_history(path: Path) -> List[dict]:
    """Parse the JSONL history in append (chronological) order.

    Blank lines are skipped; entries from other snapshot schemas are
    dropped (their per-case numbers are not comparable).
    """
    entries: List[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        if entry.get("schema") == HISTORY_SCHEMA and "cases" in entry:
            entries.append(entry)
    return entries


def case_names(entries: Sequence[dict]) -> List[str]:
    """Union of case names over the history, sorted."""
    names: Set[str] = set()
    for entry in entries:
        names.update(entry["cases"])
    return sorted(names)


def annotate_regressions(
    entries: Sequence[dict], threshold: float = DEFAULT_THRESHOLD
) -> Tuple[List[Set[str]], List[dict]]:
    """Per-entry regressed-case sets plus flat annotation records.

    A case regresses at an entry when its µs/op exceeds the most recent
    earlier recording of the same case by more than ``threshold`` —
    cases may appear and disappear across commits (new benchmarks), so
    the comparison always uses the last value seen, not the immediately
    preceding entry.
    """
    last: Dict[str, float] = {}
    flags: List[Set[str]] = []
    records: List[dict] = []
    for entry in entries:
        hit: Set[str] = set()
        for case in sorted(entry["cases"]):
            us = float(entry["cases"][case])
            prev = last.get(case)
            if prev is not None and us > prev * (1.0 + threshold):
                hit.add(case)
                records.append(
                    {
                        "git_sha": entry.get("git_sha", "?"),
                        "taken_at": entry.get("taken_at", "?"),
                        "case": case,
                        "prev_us_per_op": prev,
                        "us_per_op": us,
                        "ratio": us / prev,
                    }
                )
            last[case] = us
        flags.append(hit)
    return flags, records


def history_rows(
    entries: Sequence[dict],
    threshold: float = DEFAULT_THRESHOLD,
    cases: Optional[Sequence[str]] = None,
) -> Tuple[Tuple[str, ...], List[tuple], List[dict]]:
    """``(header, rows, regressions)`` for the trajectory table.

    One row per history entry (chronological), one column per case;
    regressed steps are marked with a trailing ``!``.
    """
    names = list(cases) if cases else case_names(entries)
    flags, records = annotate_regressions(entries, threshold)
    header = ("Commit", "Taken at") + tuple(names)
    rows: List[tuple] = []
    for entry, hit in zip(entries, flags):
        cells = [entry.get("git_sha", "?"), entry.get("taken_at", "?")]
        for case in names:
            us = entry["cases"].get(case)
            if us is None:
                cells.append("-")
            else:
                cells.append(f"{us:.2f}" + ("!" if case in hit else ""))
        rows.append(tuple(cells))
    records = [r for r in records if r["case"] in names]
    return header, rows, records


__all__ = [
    "DEFAULT_THRESHOLD",
    "HISTORY_SCHEMA",
    "annotate_regressions",
    "case_names",
    "history_rows",
    "load_history",
]
