"""Plain-text report helpers: fixed-width tables and normalization.

Every experiment prints its results as rows matching the paper's
figures; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def normalize(values: Dict[str, Number], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline's (the paper's normalized plots).

    A zero baseline maps everything to 0 to avoid propagating infinities
    into report tables.
    """
    base = float(values[baseline_key])
    if base == 0.0:
        return {k: 0.0 for k in values}
    return {k: float(v) / base for k, v in values.items()}


def reduction_pct(baseline: Number, improved: Number) -> float:
    """Percent reduction of ``improved`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - float(improved) / float(baseline))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "  "
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(h for h in headers)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
