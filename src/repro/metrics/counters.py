"""Operation counters for the GC-efficiency metrics (Figs 9, 10).

``GCCounters`` tracks exactly what the paper plots: flash blocks erased
and data pages migrated (written) during GC; plus the pieces needed for
write amplification and dedup effectiveness analysis.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GCCounters:
    """Garbage-collection activity over one run."""

    blocks_erased: int = 0
    #: valid pages physically rewritten during GC (paper Fig 10's
    #: "data pages migrated"); dedup-eliminated copies are *not* counted.
    pages_migrated: int = 0
    #: valid pages examined (read) during GC, including dedup hits.
    pages_examined: int = 0
    #: migrations avoided because the page's content was already stored.
    dedup_skipped: int = 0
    #: promotions of canonical pages into the cold region (CAGC only).
    promotions: int = 0
    gc_invocations: int = 0
    #: total simulated time spent inside GC bursts (microseconds).
    gc_busy_us: float = 0.0
    #: per-phase busy time attribution (microseconds): how long each
    #: pipeline resource was occupied across all collections.  In the
    #: overlapped CAGC pipeline these *sum to more than* ``gc_busy_us``
    #: (that's the overlap the paper claims); in traditional serial GC
    #: read + write + erase equals the makespan exactly.
    gc_read_us: float = 0.0
    gc_hash_us: float = 0.0
    gc_write_us: float = 0.0
    gc_erase_us: float = 0.0

    def merge_block(
        self,
        pages_examined: int,
        pages_migrated: int,
        dedup_skipped: int = 0,
        promotions: int = 0,
        duration_us: float = 0.0,
        read_us: float = 0.0,
        hash_us: float = 0.0,
        write_us: float = 0.0,
        erase_us: float = 0.0,
    ) -> None:
        self.blocks_erased += 1
        self.pages_examined += pages_examined
        self.pages_migrated += pages_migrated
        self.dedup_skipped += dedup_skipped
        self.promotions += promotions
        self.gc_busy_us += duration_us
        self.gc_read_us += read_us
        self.gc_hash_us += hash_us
        self.gc_write_us += write_us
        self.gc_erase_us += erase_us


@dataclass
class IOCounters:
    """Foreground I/O activity over one run."""

    read_requests: int = 0
    write_requests: int = 0
    trim_requests: int = 0
    pages_read: int = 0
    #: logical pages the host asked to write.
    logical_pages_written: int = 0
    #: physical page programs serving user writes (inline dedup makes
    #: this smaller than logical_pages_written).
    user_pages_programmed: int = 0
    #: inline dedup hits on the write path.
    inline_dedup_hits: int = 0

    def write_amplification(self, gc: GCCounters) -> float:
        """WAF = all physical programs / logical pages written."""
        if self.logical_pages_written == 0:
            return 0.0
        physical = self.user_pages_programmed + gc.pages_migrated
        return physical / self.logical_pages_written
