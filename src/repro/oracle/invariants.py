"""Single entry point for full-state consistency checking.

Before this module, every caller that wanted "check everything" strung
together its own list of ``check_invariants`` calls (experiments,
integration tests, the victim-index property tests).
:func:`check_all` is the one promoted entry point: it accepts either a
device (:class:`repro.device.ssd.SSD` / ``ParallelSSD``) or a bare
:class:`repro.schemes.base.FTLScheme`, runs every structural check the
FTL stack defines, and layers on the cross-structure checks that no
single structure can see on its own:

* every fingerprint-index entry agrees with the per-page fingerprint
  store and points at a live page;
* (optionally) the program/erase conservation laws — every physical
  program is a user program or a GC migration, every erase a GC erase.

The accounting checks assume all I/O entered through the request-level
API (``write_request``/``destage``/``trim_request``); callers that
drive ``write_page`` directly (the Fig 7/8 demos, property tests) pass
``accounting=False``.

All failures raise ``AssertionError`` with a message naming the
violated invariant, so the differential harness can report them as
divergences with context.
"""

from __future__ import annotations

from repro.flash.chip import PageState


def _resolve_scheme(obj):
    """Accept an SSD-like device (``.scheme``) or a scheme itself."""
    return getattr(obj, "scheme", obj)


def check_index_agreement(scheme) -> None:
    """Fingerprint index <-> page_fp store <-> flash state agreement."""
    index = scheme.index
    page_fp = scheme.page_fp
    flash = scheme.flash
    for ppn in list(scheme.mapping.mapped_ppns()):
        if index.contains_ppn(ppn):
            fp = index.fp_of(ppn)
            if page_fp.get(ppn) != fp:
                raise AssertionError(
                    f"index says ppn {ppn} holds fp {fp:#x} but page_fp "
                    f"says {page_fp.get(ppn)}"
                )
            if flash.state_of(ppn) != PageState.VALID:
                raise AssertionError(f"canonical ppn {ppn} not VALID in flash")
            if index.peek(fp) != ppn:
                raise AssertionError(f"index entry for fp {fp:#x} not symmetric")


def check_accounting(scheme) -> None:
    """Program/erase conservation: physical activity must be fully
    explained by the request-level and GC counters."""
    flash = scheme.flash
    io = scheme.io_counters
    gc = scheme.gc_counters
    expected_programs = io.user_pages_programmed + gc.pages_migrated
    if flash.total_programs != expected_programs:
        raise AssertionError(
            f"program conservation violated: flash programmed "
            f"{flash.total_programs} pages but user writes ({io.user_pages_programmed}) "
            f"+ GC migrations ({gc.pages_migrated}) = {expected_programs}"
        )
    if flash.total_erases != gc.blocks_erased:
        raise AssertionError(
            f"erase conservation violated: flash erased {flash.total_erases} "
            f"blocks but GC counted {gc.blocks_erased}"
        )


def check_all(obj, accounting: bool = True) -> None:
    """Run every invariant over a device or scheme; raise on the first
    violation.

    ``accounting=False`` skips the conservation laws for callers that
    bypass the request-level API (direct ``write_page`` drivers).
    """
    scheme = _resolve_scheme(obj)
    # Structural self-checks of each component plus the cross-structure
    # checks FTLScheme already bundles (mapped => VALID, page_fp cover,
    # victim-index consistency).
    scheme.check_invariants()
    check_index_agreement(scheme)
    if accounting:
        check_accounting(scheme)
