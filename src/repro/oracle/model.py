"""The reference SSD model: small, slow, and obviously correct.

:class:`OracleSSD` consumes the same request stream as the real
:class:`repro.device.ssd.SSD` but keeps no physical state at all — just
a dict from LPN to content fingerprint plus naive per-content referrer
counts.  Everything it predicts follows from first principles:

* the logical content map is exactly what the request stream dictates
  (writes bind, trims unbind; GC and dedup must never change it);
* a content's referrer count is the number of LPNs currently holding
  it, however the scheme shares physical pages;
* the foreground program count is scheme-determined: Baseline, CAGC
  and LBA-hotcold program every logical page; Inline-Dedupe programs
  only when the content has no live copy at write time (the canonical
  page of a content lives exactly as long as some LPN references it);
* the number of live physical pages is bracketed by
  [distinct live contents, live LPNs], with the bracket collapsing to
  a point for every scheme except CAGC (whose GC-time dedup merges an
  order-dependent subset of duplicates).

The model deliberately avoids sharing any code with the real FTL — its
value as an oracle comes from being an independent derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.workloads.request import OpKind

#: Schemes whose foreground write path programs every logical page.
_ALWAYS_PROGRAM = ("baseline", "cagc", "lba-hotcold")


@dataclass(frozen=True)
class OracleSnapshot:
    """The oracle's view of the device state, for comparison."""

    #: LPN -> content fingerprint for every live logical page.
    content: Dict[int, int]
    #: content fingerprint -> number of LPNs currently holding it.
    content_referrers: Dict[int, int]
    #: inclusive bounds on the number of live physical pages.
    live_pages_min: int
    live_pages_max: int
    #: request/page counters (exact when ``counters_exact``).
    write_requests: int = 0
    read_requests: int = 0
    trim_requests: int = 0
    logical_pages_written: int = 0
    pages_read: int = 0
    user_pages_programmed: int = 0
    inline_dedup_hits: int = 0
    #: False when the run's counters are not predictable from content
    #: alone (e.g. a DRAM write buffer absorbs overwrites).
    counters_exact: bool = True


class OracleSSD:
    """Reference model: dict-based content store + naive refcounts."""

    def __init__(self, scheme: str = "baseline", counters_exact: bool = True) -> None:
        if scheme not in _ALWAYS_PROGRAM + ("inline-dedupe",):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.scheme = scheme
        #: LPN -> content fingerprint.
        self.content: Dict[int, int] = {}
        #: content fingerprint -> live referrer (LPN) count.
        self.refs: Dict[int, int] = {}
        self.write_requests = 0
        self.read_requests = 0
        self.trim_requests = 0
        self.logical_pages_written = 0
        self.pages_read = 0
        self.user_pages_programmed = 0
        self.inline_dedup_hits = 0
        self.counters_exact = counters_exact

    # ------------------------------------------------------------------ requests

    def apply(self, op: int, lpn: int, npages: int, fps: Optional[Sequence[int]]) -> None:
        """Apply one trace row (same shape as ``Trace.iter_rows`` yields)."""
        if op == int(OpKind.WRITE):
            assert fps is not None
            self.write(lpn, fps)
        elif op == int(OpKind.READ):
            self.read(lpn, npages)
        elif op == int(OpKind.TRIM):
            self.trim(lpn, npages)
        else:
            raise ValueError(f"unknown opcode {op}")

    def write(self, lpn: int, fps: Sequence[int]) -> None:
        self.write_requests += 1
        for offset, fp in enumerate(fps):
            self._write_page(lpn + offset, int(fp))
        self.logical_pages_written += len(fps)

    def _write_page(self, lpn: int, fp: int) -> None:
        refs = self.refs
        if self.scheme == "inline-dedupe":
            # The canonical copy of a content exists exactly while some
            # LPN references it, so the index lookup the real scheme
            # does before binding hits iff the content is live now.
            if refs.get(fp, 0) > 0:
                self.inline_dedup_hits += 1
            else:
                self.user_pages_programmed += 1
        else:
            self.user_pages_programmed += 1
        old = self.content.get(lpn)
        if old is not None:
            self._drop_ref(old)
        self.content[lpn] = fp
        refs[fp] = refs.get(fp, 0) + 1

    def read(self, lpn: int, npages: int) -> int:
        """Returns the number of mapped pages, like the real scheme."""
        self.read_requests += 1
        self.pages_read += npages
        content = self.content
        return sum(1 for off in range(npages) if lpn + off in content)

    def trim(self, lpn: int, npages: int) -> int:
        self.trim_requests += 1
        trimmed = 0
        for offset in range(npages):
            old = self.content.pop(lpn + offset, None)
            if old is not None:
                self._drop_ref(old)
                trimmed += 1
        return trimmed

    def _drop_ref(self, fp: int) -> None:
        left = self.refs[fp] - 1
        if left == 0:
            del self.refs[fp]
        else:
            self.refs[fp] = left

    # ------------------------------------------------------------------ views

    def live_page_bounds(self) -> Tuple[int, int]:
        """Bounds on live physical pages implied by the scheme's dedup.

        No dedup: one page per live LPN.  Inline dedup: exactly one
        page per distinct live content.  CAGC: GC-time dedup merges
        some duplicates, so the count lies between the two.
        """
        n_lpns = len(self.content)
        n_contents = len(self.refs)
        if self.scheme == "inline-dedupe":
            return n_contents, n_contents
        if self.scheme == "cagc":
            return n_contents, n_lpns
        return n_lpns, n_lpns

    def snapshot(self) -> OracleSnapshot:
        lo, hi = self.live_page_bounds()
        return OracleSnapshot(
            content=dict(self.content),
            content_referrers=dict(self.refs),
            live_pages_min=lo,
            live_pages_max=hi,
            write_requests=self.write_requests,
            read_requests=self.read_requests,
            trim_requests=self.trim_requests,
            logical_pages_written=self.logical_pages_written,
            pages_read=self.pages_read,
            user_pages_programmed=self.user_pages_programmed,
            inline_dedup_hits=self.inline_dedup_hits,
            counters_exact=self.counters_exact,
        )
