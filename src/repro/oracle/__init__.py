"""Differential-oracle verification subsystem.

The perf work of earlier PRs was proved correct with one-off sha256
trajectory comparisons; this package makes that machinery reusable:

* :mod:`repro.oracle.model` — :class:`OracleSSD`, a deliberately
  simple, obviously-correct reference model of the device (dict-based
  LPN -> content store, naive dedup refcounts, brute-force accounting);
* :mod:`repro.oracle.diff` — the differential harness: replay any
  trace through both the real FTL and the oracle under any
  scheme x policy x config combination and report the first divergence;
* :mod:`repro.oracle.fuzz` — seeded adversarial workload generator
  (duplicate-heavy, overwrite storms, GC-pressure fills, trim churn);
* :mod:`repro.oracle.arraydiff` — the array harness: replay a
  multi-tenant trace through an N-device :class:`repro.array.SSDArray`
  (NCQ admission, GC coordination) and diff every device's end state
  against its own oracle over the router's pure split;
* :mod:`repro.oracle.shrink` — delta-debugging shrinker that reduces a
  diverging trace to a minimal reproducing regression case;
* :mod:`repro.oracle.invariants` — :func:`check_all`, the single
  entry point for the cross-structure consistency checks.
"""

from repro.oracle.model import OracleSSD, OracleSnapshot
from repro.oracle.diff import (
    ALL_POLICIES,
    ALL_SCHEMES,
    Divergence,
    build_scheme,
    compare_snapshots,
    diff_kernels,
    diff_trace,
)
from repro.oracle.arraydiff import (
    ARRAY_DEVICE_COUNTS,
    array_pages_per_device,
    diff_array,
    diff_array_kernels,
    make_array_divergence_predicate,
)
from repro.oracle.fuzz import PROFILES, fuzz_config, fuzz_trace
from repro.oracle.invariants import check_all
from repro.oracle.shrink import ddmin, make_divergence_predicate, shrink_trace

__all__ = [
    "OracleSSD",
    "OracleSnapshot",
    "ALL_POLICIES",
    "ALL_SCHEMES",
    "Divergence",
    "build_scheme",
    "compare_snapshots",
    "diff_kernels",
    "diff_trace",
    "ARRAY_DEVICE_COUNTS",
    "array_pages_per_device",
    "diff_array",
    "diff_array_kernels",
    "make_array_divergence_predicate",
    "PROFILES",
    "fuzz_config",
    "fuzz_trace",
    "check_all",
    "ddmin",
    "make_divergence_predicate",
    "shrink_trace",
]
