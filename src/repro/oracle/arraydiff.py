"""Array-level differential harness: every device vs. the oracle.

The single-device harness (:mod:`repro.oracle.diff`) checks one FTL
against :class:`~repro.oracle.model.OracleSSD`.  The array raises a new
question the device diff cannot answer: does splitting a multi-tenant
stream across N lanes on a *shared clock* — with NCQ admission and a
GC-coordination policy reordering collection work between devices —
still leave every device in exactly the state the naive model predicts
for its share of the stream?

:func:`diff_array` answers it the same way the device-replay mode does:

1. replay the trace through a real :class:`~repro.array.SSDArray`
   (every lane's ``gc_hook`` wired to the structural invariant checker,
   so corruption trips mid-run, not just at the end);
2. re-split the trace with the pure range router — splitting is a pure
   function of LPNs, so the oracle's view of "device i's requests" is
   derived independently of the array's own routing;
3. drive one :class:`OracleSSD` per device over its sub-stream and
   compare end-state snapshots device by device.

Counters are compared exactly: coordination policies only move GC work
in *time* (deferrals, idle bursts, token hand-offs) — which pages are
live, what each LPN maps to, and every request counter stay a pure
function of the per-device request order, exactly as in the device
harness's preemptive mode.  A coordination policy that broke that —
say, dropping a deferred collection and with it a migration — shows up
here as a counter or conservation-law divergence.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import SSDConfig
from repro.oracle.diff import Divergence, build_scheme, compare_snapshots
from repro.oracle.fuzz import ARRAY_TENANTS, fuzz_config, lpn_span
from repro.oracle.invariants import check_all
from repro.oracle.model import OracleSSD
from repro.workloads.trace import Trace

#: device counts the array sweep exercises — each must divide the
#: ``array`` profile's tenant-quarter count so quarters map whole onto
#: devices and no fuzz extent can straddle a device boundary.
ARRAY_DEVICE_COUNTS = (1, 2, 4)


def array_pages_per_device(config: SSDConfig, devices: int) -> int:
    """Per-device LPN window covering the fuzz span's tenant quarters.

    The ``array`` fuzz profile keeps every extent inside one quarter of
    :func:`lpn_span`; exporting ``quarters/devices`` quarters per device
    makes the router split any such trace cleanly for every supported
    device count (including 1, the degenerate single-device array).
    """
    if devices not in ARRAY_DEVICE_COUNTS or ARRAY_TENANTS % devices:
        raise ValueError(
            f"devices must be one of {ARRAY_DEVICE_COUNTS}, got {devices}"
        )
    quarter = max(lpn_span(config) // ARRAY_TENANTS, 1)
    return quarter * (ARRAY_TENANTS // devices)


def diff_array(
    trace: Trace,
    devices: int = 4,
    scheme: str = "cagc",
    policy: str = "greedy",
    config: Optional[SSDConfig] = None,
    coordination: str = "independent",
    ncq_depth: int = 8,
) -> Optional[Divergence]:
    """Replay ``trace`` on a ``devices``-lane array and diff every
    device's end state against its own oracle; ``None`` when all agree.

    Divergence messages are prefixed ``device i:`` so a failing sweep
    localizes to a lane even though end-state comparison cannot
    localize to a request (the shrinker does that).
    """
    from repro.array import SSDArray

    if config is None:
        config = fuzz_config()
    if config.write_buffer_pages > 0:
        raise ValueError("the array does not model DRAM write buffers")
    pages_per_device = array_pages_per_device(config, devices)
    schemes = [build_scheme(scheme, policy, config) for _ in range(devices)]
    array = SSDArray(
        schemes,
        coordination=coordination,
        ncq_depth=ncq_depth,
        pages_per_device=pages_per_device,
    )
    for lane in array.lanes:
        lane.gc_hook = check_all
    try:
        array.replay(trace)
        for lane in array.lanes:
            check_all(lane)
    except AssertionError as exc:
        return Divergence(-1, "invariant", str(exc), scheme, policy)
    except Exception as exc:
        return Divergence(
            -1, "exception", f"{type(exc).__name__}: {exc}", scheme, policy
        )
    for device, (sub, _tenants) in enumerate(array.router.split(trace)):
        oracle = OracleSSD(scheme, counters_exact=True)
        for _, op, lpn, npages, fps in sub.iter_rows():
            oracle.apply(op, lpn, npages, fps)
        msg = compare_snapshots(
            array.lanes[device].state_snapshot(), oracle.snapshot()
        )
        if msg:
            return Divergence(
                -1,
                "state",
                f"device {device} [{coordination}]: {msg}",
                scheme,
                policy,
            )
    return None


def diff_array_kernels(
    trace: Trace,
    devices: int = 4,
    scheme: str = "cagc",
    policy: str = "greedy",
    config: Optional[SSDConfig] = None,
    coordination: str = "independent",
    ncq_depth: int = 8,
    metrics: bool = False,
) -> Optional[Divergence]:
    """Replay ``trace`` on a ``kernel=reference`` array and a
    ``kernel=vectorized`` one and return the first observable
    difference; ``None`` when the epoch kernel is bit-identical.

    The array counterpart of :func:`repro.oracle.diff.diff_kernels`:
    per-device response-time trajectories, GC/IO/wear counters,
    simulated time, state snapshots and NCQ admission counters must all
    match exactly, as must the coordinator's stats.  The always-on
    :class:`~repro.array.telemetry.ArrayTelemetry` histograms are held
    to exact bucket counts / totals / maxima; ``sum_us`` is compared to
    a relative tolerance because the epoch kernel folds each batch with
    a vectorized summation whose float addition order differs from the
    reference loop's one-at-a-time accumulation.

    With ``metrics=True`` an :class:`~repro.obs.metrics.ArrayMetrics`
    bundle is attached to both replays and the kernel-independent
    aggregates are diffed: the global request counter and latency
    histogram plus every per-device and per-tenant child.  Time-series
    sample counts and the batch/fallback counters are deliberately
    *not* compared — the two kernels clock the sampler differently
    (per completion vs per batch boundary) by design.
    """
    import math

    import numpy as np

    from dataclasses import replace as _dc_replace

    from repro.array import SSDArray

    if config is None:
        config = fuzz_config()
    pages_per_device = array_pages_per_device(config, devices)
    results = {}
    snapshots = {}
    meters = {}
    for kernel in ("reference", "vectorized"):
        cfg = _dc_replace(config, kernel=kernel)
        schemes = [build_scheme(scheme, policy, cfg) for _ in range(devices)]
        meter = None
        if metrics:
            from repro.obs.metrics import ArrayMetrics

            meter = ArrayMetrics()
        meters[kernel] = meter
        array = SSDArray(
            schemes,
            coordination=coordination,
            ncq_depth=ncq_depth,
            pages_per_device=pages_per_device,
            metrics=meter,
        )
        try:
            results[kernel] = array.replay(trace)
            for lane in array.lanes:
                check_all(lane)
        except AssertionError as exc:
            return Divergence(-1, "invariant", f"[{kernel}] {exc}", scheme, policy)
        except Exception as exc:
            return Divergence(
                -1,
                "exception",
                f"[{kernel}] {type(exc).__name__}: {exc}",
                scheme,
                policy,
            )
        snapshots[kernel] = [lane.state_snapshot() for lane in array.lanes]
    ref, vec = results["reference"], results["vectorized"]
    for device in range(devices):
        rd, vd = ref.devices[device], vec.devices[device]
        a, b = rd.response_times_us, vd.response_times_us
        if len(a) != len(b):
            return Divergence(
                -1,
                "state",
                f"device {device} [{coordination}]: recorded "
                f"{len(a)} vs {len(b)} response times",
                scheme,
                policy,
            )
        if not np.array_equal(a, b):
            first = int(np.argmax(np.asarray(a) != np.asarray(b)))
            return Divergence(
                first,
                "state",
                f"device {device} [{coordination}]: response time "
                f"{a[first]!r} (reference) vs {b[first]!r} (vectorized)",
                scheme,
                policy,
            )
        for label, ra, rb in (
            ("simulated_us", rd.simulated_us, vd.simulated_us),
            ("gc counters", rd.gc, vd.gc),
            ("io counters", rd.io, vd.io),
            ("wear", rd.wear, vd.wear),
            ("ncq peak", ref.ncq_peaks[device], vec.ncq_peaks[device]),
            ("ncq held", ref.ncq_held[device], vec.ncq_held[device]),
            (
                "state snapshot",
                snapshots["reference"][device],
                snapshots["vectorized"][device],
            ),
        ):
            if ra != rb:
                return Divergence(
                    -1,
                    "state",
                    f"device {device} [{coordination}]: {label}: "
                    f"{ra!r} != {rb!r}",
                    scheme,
                    policy,
                )
    for label, ra, rb in (
        ("simulated_us", ref.simulated_us, vec.simulated_us),
        ("coord stats", ref.coord_stats, vec.coord_stats),
        ("tenants", ref.tenants, vec.tenants),
    ):
        if ra != rb:
            return Divergence(
                -1,
                "state",
                f"[{coordination}] {label}: {ra!r} != {rb!r}",
                scheme,
                policy,
            )
    rt, vt = ref.telemetry, vec.telemetry
    pairs = [("array", rt.hist, vt.hist)]
    pairs += [
        (f"device {i}", rh, vh)
        for i, (rh, vh) in enumerate(zip(rt.device_hists, vt.device_hists))
    ]
    pairs += [
        (f"tenant {i}", rh, vh)
        for i, (rh, vh) in enumerate(zip(rt.tenant_hists, vt.tenant_hists))
    ]
    for label, rh, vh in pairs:
        if not np.array_equal(rh.counts, vh.counts):
            return Divergence(
                -1,
                "telemetry",
                f"{label} histogram bucket counts differ",
                scheme,
                policy,
            )
        exact = (
            ("hist total", rh.total, vh.total),
            ("hist max_us", rh.max_us, vh.max_us),
        )
        for sub, ra, rb in exact:
            if ra != rb:
                return Divergence(
                    -1,
                    "telemetry",
                    f"{label} {sub}: {ra!r} != {rb!r}",
                    scheme,
                    policy,
                )
        if not math.isclose(rh.sum_us, vh.sum_us, rel_tol=1e-9, abs_tol=1e-6):
            return Divergence(
                -1,
                "telemetry",
                f"{label} hist sum_us: {rh.sum_us!r} != {vh.sum_us!r}",
                scheme,
                policy,
            )
    if metrics:
        rm, vm = meters["reference"], meters["vectorized"]
        counter_pairs = [("requests counter", rm.requests, vm.requests)]
        counter_pairs += [
            (f"device {i} requests", ra, rb)
            for i, (ra, rb) in enumerate(zip(rm._device_req, vm._device_req))
        ]
        counter_pairs += [
            (f"tenant {i} requests", ra, rb)
            for i, (ra, rb) in enumerate(zip(rm._tenant_req, vm._tenant_req))
        ]
        for label, ra, rb in counter_pairs:
            if ra.value != rb.value:
                return Divergence(
                    -1,
                    "metrics",
                    f"{label}: {ra.value!r} != {rb.value!r}",
                    scheme,
                    policy,
                )
        hist_pairs = [("latency", rm.latency.hist, vm.latency.hist)]
        hist_pairs += [
            (f"device {i} latency", rh, vh)
            for i, (rh, vh) in enumerate(zip(rm._device_hist, vm._device_hist))
        ]
        hist_pairs += [
            (f"tenant {i} latency", rh, vh)
            for i, (rh, vh) in enumerate(zip(rm._tenant_hist, vm._tenant_hist))
        ]
        for label, rh, vh in hist_pairs:
            if not np.array_equal(rh.counts, vh.counts):
                return Divergence(
                    -1,
                    "metrics",
                    f"{label} histogram bucket counts differ",
                    scheme,
                    policy,
                )
            for sub, ra, rb in (
                ("hist total", rh.total, vh.total),
                ("hist max_us", rh.max_us, vh.max_us),
            ):
                if ra != rb:
                    return Divergence(
                        -1,
                        "metrics",
                        f"{label} {sub}: {ra!r} != {rb!r}",
                        scheme,
                        policy,
                    )
            if not math.isclose(
                rh.sum_us, vh.sum_us, rel_tol=1e-9, abs_tol=1e-6
            ):
                return Divergence(
                    -1,
                    "metrics",
                    f"{label} hist sum_us: {rh.sum_us!r} != {vh.sum_us!r}",
                    scheme,
                    policy,
                )
    return None


def make_array_divergence_predicate(
    devices: int = 4,
    scheme: str = "cagc",
    policy: str = "greedy",
    config: Optional[SSDConfig] = None,
    coordination: str = "independent",
    ncq_depth: int = 8,
) -> Callable[[Trace], bool]:
    """Shrinker predicate: does ``trace`` still diverge on the array?

    The array counterpart of
    :func:`repro.oracle.shrink.make_divergence_predicate` — hand it to
    :func:`repro.oracle.shrink.shrink_trace`.  Shrinking drops whole
    requests, which can only shed extents from tenant quarters, so
    every shrunken candidate still routes cleanly.
    """
    if config is None:
        config = fuzz_config()

    def predicate(trace: Trace) -> bool:
        return (
            diff_array(
                trace,
                devices=devices,
                scheme=scheme,
                policy=policy,
                config=config,
                coordination=coordination,
                ncq_depth=ncq_depth,
            )
            is not None
        )

    return predicate


__all__ = [
    "ARRAY_DEVICE_COUNTS",
    "array_pages_per_device",
    "diff_array",
    "diff_array_kernels",
    "make_array_divergence_predicate",
]
