"""Automatic trace shrinking: delta-debug a diverging request stream.

Given a trace on which the differential harness reports a divergence,
:func:`shrink_trace` reduces it to a 1-minimal reproducing trace — one
from which no single request can be removed without losing the
divergence — using the classic ddmin algorithm (Zeller & Hildebrandt,
"Simplifying and Isolating Failure-Inducing Input").  The procedure is
fully deterministic: the same input trace and predicate always shrink
to the same minimal trace, so shrunk traces are stable enough to
commit under ``tests/regress/`` as permanent regression cases.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro.config import SSDConfig
from repro.oracle.diff import diff_trace
from repro.oracle.fuzz import Row, rows_to_trace
from repro.workloads.trace import Trace

T = TypeVar("T")


def ddmin(items: Sequence[T], failing: Callable[[List[T]], bool]) -> List[T]:
    """Minimize ``items`` while ``failing`` holds (1-minimal result).

    ``failing(items)`` must be True on entry and is assumed to be
    deterministic; the result is a sublist on which ``failing`` still
    holds but removing any single element makes it pass.
    """
    items = list(items)
    if not failing(items):
        raise ValueError("ddmin requires a failing input")
    n = 2
    while len(items) >= 2:
        length = len(items)
        bounds = [(i * length // n, (i + 1) * length // n) for i in range(n)]
        reduced = False
        # Try each chunk alone ("reduce to subset") ...
        for lo, hi in bounds:
            subset = items[lo:hi]
            if len(subset) < length and subset and failing(subset):
                items = subset
                n = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then each complement ("reduce to complement").
        for lo, hi in bounds:
            complement = items[:lo] + items[hi:]
            if complement and len(complement) < length and failing(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if n >= length:
            break  # single-request granularity exhausted: 1-minimal
        n = min(length, n * 2)
    return items


def make_divergence_predicate(
    scheme: str,
    policy: str,
    config: Optional[SSDConfig] = None,
    check_every: int = 1,
) -> Callable[[Trace], bool]:
    """Predicate "this trace still diverges" for :func:`shrink_trace`."""

    def predicate(trace: Trace) -> bool:
        return (
            diff_trace(
                trace,
                scheme=scheme,
                policy=policy,
                config=config,
                check_every=check_every,
            )
            is not None
        )

    return predicate


def shrink_trace(
    trace: Trace,
    predicate: Callable[[Trace], bool],
    name: Optional[str] = None,
) -> Trace:
    """Reduce ``trace`` to a 1-minimal trace still failing ``predicate``."""
    rows: List[Row] = [
        (t, op, lpn, npages, tuple(int(f) for f in fps) if fps is not None else ())
        for t, op, lpn, npages, fps in trace.iter_rows()
    ]

    def failing(subset: List[Row]) -> bool:
        return predicate(rows_to_trace(subset, name="shrink-probe"))

    minimal = ddmin(rows, failing)
    return rows_to_trace(minimal, name=name or f"{trace.name}-min")


def save_regression(trace: Trace, directory: Union[str, Path], name: str) -> Path:
    """Write a shrunk trace as a CSV regression case; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.csv"
    trace.save_csv(path)
    return path
