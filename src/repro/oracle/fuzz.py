"""Seeded adversarial workload generator for the differential oracle.

The FIU-style synthetic traces (``repro.workloads.synth``) model
realistic workloads; the fuzzer deliberately does not.  Each profile is
an attack on one corner of the FTL/GC state space the fixtures barely
touch:

* ``duplicate-heavy`` — almost every written page drawn from a handful
  of contents, driving refcounts far past the cold threshold and
  exercising dedup-merge/promotion chains;
* ``overwrite-storm`` — a tiny LPN window rewritten relentlessly, so
  blocks die almost as fast as they fill (victim-index churn);
* ``gc-fill`` — fill the whole logical space in block-sized requests,
  then overwrite at random: maximum GC pressure from the first write;
* ``mixed`` — interleaved writes, reads and range trims with a
  half-duplicate content stream (the widest state coverage per request);
* ``trim-churn`` — write extents then trim them back out, repeatedly,
  so mappings and refcounts are torn down as often as built;
* ``kernel-equivalence`` — long same-op write bursts separated by
  run-splitting trims and reads of mapped and never-written extents:
  the shapes the batched replay kernels carve runs out of, with enough
  GC pressure that triggers land mid-burst.  Aimed at the
  ``kernel=vectorized`` vs ``kernel=reference`` diff
  (:func:`repro.oracle.diff.diff_kernels`) but a legitimate adversarial
  workload for the naive-model oracle too.
* ``array`` — four disjoint LPN quarters interleaved at random, the
  multi-tenant access shape the array router splits across devices.
  Aimed at the per-device array diff
  (:func:`repro.oracle.arraydiff.diff_array`) but, the quarters being
  ordinary LPN ranges, an equally legitimate single-device workload.

Generation is deterministic per ``(seed, profile, config geometry)``
and device-safe by construction: the addressed LPN span is capped well
under the logical capacity so garbage collection can always keep up.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.config import GeometryConfig, SSDConfig
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

PROFILES = (
    "duplicate-heavy",
    "overwrite-storm",
    "gc-fill",
    "mixed",
    "trim-churn",
    "kernel-equivalence",
    "array",
)

#: tenant quarters the ``array`` profile interleaves (and the array
#: oracle sweep splits across 1/2/4 devices).
ARRAY_TENANTS = 4

#: Unique content ids start here (clear of every pool id).
_UNIQUE_FP_BASE = 1 << 40

#: Fraction of *physical* pages the fuzz LPN span may cover.  Low
#: enough that a victim block always exists once the device fills, so
#: no profile can legitimately raise DeviceFullError.
_SPAN_FRACTION = 0.69

_WRITE = int(OpKind.WRITE)
_READ = int(OpKind.READ)
_TRIM = int(OpKind.TRIM)

#: (time, op, lpn, npages, fingerprints) — one request.
Row = Tuple[float, int, int, int, Tuple[int, ...]]


def fuzz_config(**overrides) -> SSDConfig:
    """The canonical tiny fuzz device: 16 blocks x 8 pages, 2 channels.

    Small enough that a few hundred requests force dozens of GC bursts;
    regression traces under ``tests/regress/`` are recorded against
    this geometry.  Keyword overrides (e.g. ``gc_mode="preemptive"``)
    are passed through to :class:`SSDConfig`.
    """
    geometry = overrides.pop(
        "geometry", GeometryConfig(channels=2, pages_per_block=8, blocks=16)
    )
    overrides.setdefault("cold_region_ratio", 0.5)
    config = SSDConfig(geometry=geometry, **overrides)
    config.validate()
    return config


def lpn_span(config: SSDConfig) -> int:
    """LPN universe size the fuzzer addresses on ``config``."""
    return min(
        int(config.geometry.total_pages * _SPAN_FRACTION), config.logical_pages
    )


def profile_for_seed(seed: int) -> str:
    """Deterministic profile rotation across seeds."""
    return PROFILES[seed % len(PROFILES)]


class _RowBuilder:
    """Accumulates request rows with a monotonic clock and unique-fp
    counter shared by every profile."""

    def __init__(self) -> None:
        self.rows: List[Row] = []
        self._clock = 0.0
        self._unique = _UNIQUE_FP_BASE

    def _tick(self) -> float:
        self._clock += 7.0
        return self._clock

    def unique_fp(self) -> int:
        self._unique += 1
        return self._unique

    def write(self, lpn: int, fps: List[int]) -> None:
        self.rows.append((self._tick(), _WRITE, int(lpn), len(fps), tuple(fps)))

    def read(self, lpn: int, npages: int) -> None:
        self.rows.append((self._tick(), _READ, int(lpn), int(npages), ()))

    def trim(self, lpn: int, npages: int) -> None:
        self.rows.append((self._tick(), _TRIM, int(lpn), int(npages), ()))


def _extent(rng: np.random.Generator, span: int, max_pages: int) -> Tuple[int, int]:
    """A random (lpn, npages) extent fully inside the span."""
    npages = int(rng.integers(1, max_pages + 1))
    npages = min(npages, span)
    lpn = int(rng.integers(0, span - npages + 1))
    return lpn, npages


def _fps(rng: np.random.Generator, b: _RowBuilder, npages: int, pool: int, dup_prob: float) -> List[int]:
    """Per-page fingerprints: pool duplicates with prob ``dup_prob``."""
    return [
        int(rng.integers(0, pool)) if rng.random() < dup_prob else b.unique_fp()
        for _ in range(npages)
    ]


def _gen_duplicate_heavy(rng, b: _RowBuilder, span: int, n: int) -> None:
    for _ in range(n):
        if rng.random() < 0.9:
            lpn, npages = _extent(rng, span, 4)
            b.write(lpn, _fps(rng, b, npages, pool=6, dup_prob=0.95))
        else:
            b.read(*_extent(rng, span, 4))


def _gen_overwrite_storm(rng, b: _RowBuilder, span: int, n: int) -> None:
    window = min(12, span)
    for _ in range(n):
        npages = int(rng.integers(1, 3))
        npages = min(npages, window)
        lpn = int(rng.integers(0, window - npages + 1))
        b.write(lpn, _fps(rng, b, npages, pool=3, dup_prob=0.5))


def _gen_gc_fill(rng, b: _RowBuilder, span: int, n: int) -> None:
    # Phase 1: cover the whole span in block-sized sequential writes.
    chunk = 8
    lpn = 0
    while lpn < span and len(b.rows) < n // 3:
        npages = min(chunk, span - lpn)
        b.write(lpn, _fps(rng, b, npages, pool=16, dup_prob=0.3))
        lpn += npages
    # Phase 2: random overwrites until the request budget is spent.
    while len(b.rows) < n:
        lpn, npages = _extent(rng, span, 4)
        b.write(lpn, _fps(rng, b, npages, pool=16, dup_prob=0.3))


def _gen_mixed(rng, b: _RowBuilder, span: int, n: int) -> None:
    for _ in range(n):
        roll = rng.random()
        if roll < 0.55:
            lpn, npages = _extent(rng, span, 6)
            b.write(lpn, _fps(rng, b, npages, pool=32, dup_prob=0.5))
        elif roll < 0.80:
            b.read(*_extent(rng, span, 6))
        else:
            b.trim(*_extent(rng, span, 6))


def _gen_trim_churn(rng, b: _RowBuilder, span: int, n: int) -> None:
    while len(b.rows) < n:
        lpn, npages = _extent(rng, span, 8)
        npages = max(npages, min(4, span))
        lpn = min(lpn, span - npages)
        b.write(lpn, _fps(rng, b, npages, pool=8, dup_prob=0.6))
        if len(b.rows) < n and rng.random() < 0.7:
            cut = int(rng.integers(1, npages + 1))
            b.trim(lpn, cut)


def _gen_kernel_equivalence(rng, b: _RowBuilder, span: int, n: int) -> None:
    while len(b.rows) < n:
        # A write burst long enough that, on the tiny fuzz device, the
        # GC watermark usually fires inside it (runs split mid-burst).
        for _ in range(int(rng.integers(4, 17))):
            if len(b.rows) >= n:
                return
            lpn, npages = _extent(rng, span, 6)
            b.write(lpn, _fps(rng, b, npages, pool=12, dup_prob=0.6))
        roll = rng.random()
        if roll < 0.40:
            b.read(*_extent(rng, span, 6))
        elif roll < 0.60:
            # The span tail stays unwritten early on: an unmapped read
            # (zero pages resolved) between two batched runs.
            b.read(span - 1, 1)
        else:
            b.trim(*_extent(rng, span, 4))


def _gen_array(rng, b: _RowBuilder, span: int, n: int) -> None:
    # Each "tenant" owns one quarter of the span; requests hop between
    # tenants at random but never cross a quarter edge — exactly the
    # boundary structure the range router preserves, with enough
    # overwrite churn inside every quarter that all array devices GC.
    quarter = max(span // ARRAY_TENANTS, 1)
    while len(b.rows) < n:
        tenant = int(rng.integers(0, ARRAY_TENANTS))
        lpn, npages = _extent(rng, quarter, 4)
        lpn += tenant * quarter
        roll = rng.random()
        if roll < 0.60:
            b.write(lpn, _fps(rng, b, npages, pool=16, dup_prob=0.5))
        elif roll < 0.85:
            b.read(lpn, npages)
        else:
            b.trim(lpn, npages)


_GENERATORS = {
    "duplicate-heavy": _gen_duplicate_heavy,
    "overwrite-storm": _gen_overwrite_storm,
    "gc-fill": _gen_gc_fill,
    "mixed": _gen_mixed,
    "trim-churn": _gen_trim_churn,
    "kernel-equivalence": _gen_kernel_equivalence,
    "array": _gen_array,
}


def rows_to_trace(rows: List[Row], name: str = "fuzz") -> Trace:
    """Build a :class:`Trace` from fuzz/shrink request rows."""
    n = len(rows)
    times = np.empty(n, dtype=np.float64)
    ops = np.empty(n, dtype=np.uint8)
    lpns = np.empty(n, dtype=np.int64)
    npages = np.empty(n, dtype=np.int32)
    fps: List[int] = []
    offsets = np.zeros(n + 1, dtype=np.int64)
    for i, (t, op, lpn, count, page_fps) in enumerate(rows):
        times[i] = t
        ops[i] = op
        lpns[i] = lpn
        npages[i] = count
        fps.extend(page_fps)
        offsets[i + 1] = len(fps)
    return Trace(
        times, ops, lpns, npages, np.asarray(fps, dtype=np.int64), offsets, name
    )


def fuzz_rows(
    seed: int,
    config: Optional[SSDConfig] = None,
    n_requests: int = 220,
    profile: Optional[str] = None,
) -> List[Row]:
    """Generate the raw request rows of one fuzz trace."""
    if config is None:
        config = fuzz_config()
    if profile is None:
        profile = profile_for_seed(seed)
    if profile not in _GENERATORS:
        raise ValueError(f"unknown fuzz profile {profile!r}; choose from {PROFILES}")
    rng = np.random.default_rng([seed, PROFILES.index(profile)])
    builder = _RowBuilder()
    _GENERATORS[profile](rng, builder, lpn_span(config), n_requests)
    return builder.rows


def fuzz_trace(
    seed: int,
    config: Optional[SSDConfig] = None,
    n_requests: int = 220,
    profile: Optional[str] = None,
) -> Trace:
    """One adversarial trace, deterministic per seed/profile/geometry."""
    if profile is None:
        profile = profile_for_seed(seed)
    rows = fuzz_rows(seed, config=config, n_requests=n_requests, profile=profile)
    return rows_to_trace(rows, name=f"fuzz-{profile}-s{seed}")
