"""Differential harness: real FTL vs. reference oracle.

:func:`diff_trace` replays one trace through the real FTL stack and
through :class:`repro.oracle.model.OracleSSD` simultaneously and
reports the **first** request at which they disagree — on the logical
content map, per-content referrer counts, live-page bounds, read
results, request counters, the program/erase conservation laws, or any
structural invariant (:func:`repro.oracle.invariants.check_all` runs
after every GC burst and at end of trace).

Two drive modes:

* **step** (default) — requests are applied one at a time through the
  scheme-level API with blocking-GC semantics, exactly the state
  transitions ``device.ssd.SSD`` performs in FIFO service order.  This
  is what gives request-granular divergence localization, which the
  shrinker relies on.
* **device replay** — the trace runs through a real event-driven
  :class:`repro.device.ssd.SSD` (``gc_hook`` wired to the invariant
  checker) and only end states are compared.  Configurations whose
  state transitions are not a pure function of request order
  (``gc_mode="preemptive"``, a DRAM write buffer) are forced onto this
  mode automatically; with a write buffer the request counters are no
  longer content-predictable, so only state is compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SSDConfig
from repro.ftl.gc import make_policy
from repro.ftl.gc.region_aware import RegionAwarePolicy
from repro.oracle.invariants import check_all
from repro.oracle.model import OracleSSD, OracleSnapshot
from repro.schemes import make_scheme
from repro.schemes.base import FTLScheme, StateSnapshot
from repro.workloads.request import OpKind
from repro.workloads.trace import Trace

ALL_SCHEMES = ("baseline", "inline-dedupe", "cagc", "lba-hotcold")
#: The four victim-selection behaviours the paper's sensitivity study
#: spans: three base policies plus the hot-first region-aware wrapper.
ALL_POLICIES = ("greedy", "cost-benefit", "random", "region-aware")


@dataclass(frozen=True)
class Divergence:
    """First point at which the real device and the oracle disagreed."""

    #: index of the request being (or just) applied; -1 when the
    #: failure could not be localized (device-replay mode).
    request_index: int
    #: ``state`` (snapshot mismatch), ``invariant`` (check_all failure),
    #: or ``exception`` (the real stack crashed).
    kind: str
    message: str
    scheme: str
    policy: str

    def __str__(self) -> str:
        where = (
            f"request {self.request_index}"
            if self.request_index >= 0
            else "end of replay"
        )
        return (
            f"[{self.scheme}/{self.policy}] {self.kind} divergence at "
            f"{where}: {self.message}"
        )


def build_scheme(scheme: str, policy: str, config: SSDConfig) -> FTLScheme:
    """Instantiate ``scheme`` with ``policy`` (including the
    ``region-aware`` wrapper over greedy)."""
    if policy == "region-aware":
        built = make_scheme(scheme, config)  # default greedy base
        built.policy = RegionAwarePolicy(built.policy, built.allocator)
        return built
    return make_scheme(scheme, config, policy=make_policy(policy))


def _first_dict_diff(name: str, real: dict, oracle: dict) -> Optional[str]:
    if real == oracle:
        return None
    for key in sorted(set(real) | set(oracle)):
        rv, ov = real.get(key), oracle.get(key)
        if rv != ov:
            return (
                f"{name} mismatch at key {key}: real={rv} oracle={ov} "
                f"(sizes {len(real)}/{len(oracle)})"
            )
    return f"{name} mismatch"  # pragma: no cover - unreachable


def compare_snapshots(real: StateSnapshot, oracle: OracleSnapshot) -> Optional[str]:
    """First discrepancy between the two views, or ``None``."""
    msg = _first_dict_diff("logical content", real.content, oracle.content)
    if msg:
        return msg
    msg = _first_dict_diff(
        "content referrers", real.content_referrers, oracle.content_referrers
    )
    if msg:
        return msg
    if not oracle.live_pages_min <= real.live_pages <= oracle.live_pages_max:
        return (
            f"live pages {real.live_pages} outside oracle bounds "
            f"[{oracle.live_pages_min}, {oracle.live_pages_max}]"
        )
    if oracle.counters_exact:
        for field in (
            "write_requests",
            "read_requests",
            "trim_requests",
            "logical_pages_written",
            "pages_read",
            "user_pages_programmed",
            "inline_dedup_hits",
        ):
            rv = getattr(real, field)
            ov = getattr(oracle, field)
            if rv != ov:
                return f"counter {field}: real={rv} oracle={ov}"
    if real.total_programs != real.user_pages_programmed + real.pages_migrated:
        return (
            f"program conservation: flash={real.total_programs} != user "
            f"{real.user_pages_programmed} + migrated {real.pages_migrated}"
        )
    if real.total_erases != real.blocks_erased:
        return (
            f"erase conservation: flash={real.total_erases} != GC "
            f"{real.blocks_erased}"
        )
    return None


def _check_invariants(scheme: FTLScheme, accounting: bool = True) -> Optional[str]:
    try:
        check_all(scheme, accounting=accounting)
    except AssertionError as exc:
        return str(exc)
    return None


def diff_trace(
    trace: Trace,
    scheme: str = "baseline",
    policy: str = "greedy",
    config: Optional[SSDConfig] = None,
    check_every: int = 1,
    device_replay: bool = False,
) -> Optional[Divergence]:
    """Replay ``trace`` through the real FTL and the oracle; return the
    first :class:`Divergence`, or ``None`` when they agree throughout.
    """
    if config is None:
        from repro.oracle.fuzz import fuzz_config

        config = fuzz_config()
    if config.gc_mode != "blocking" or config.write_buffer_pages > 0:
        # State transitions depend on idle timing / buffer eviction
        # order; only end states are meaningfully comparable.
        device_replay = True
    if device_replay:
        return _diff_device_replay(trace, scheme, policy, config)
    return _diff_stepwise(trace, scheme, policy, config, check_every)


def _diff_stepwise(
    trace: Trace,
    scheme_name: str,
    policy: str,
    config: SSDConfig,
    check_every: int,
) -> Optional[Divergence]:
    scheme = build_scheme(scheme_name, policy, config)
    oracle = OracleSSD(scheme_name)
    op_write, op_read, op_trim = int(OpKind.WRITE), int(OpKind.READ), int(OpKind.TRIM)

    def diverged(i: int, kind: str, message: str) -> Divergence:
        return Divergence(i, kind, message, scheme_name, policy)

    last = -1
    for i, (now, op, lpn, npages, fps) in enumerate(trace.iter_rows()):
        last = i
        real_mapped = None
        try:
            if op == op_write:
                # Blocking-mode device semantics: the GC watermark is
                # checked (and a burst run) before the write lands.
                if scheme.needs_gc():
                    scheme.run_gc(now)
                    msg = _check_invariants(scheme)
                    if msg:
                        return diverged(i, "invariant", f"after GC: {msg}")
                scheme.write_request(lpn, fps, now)
            elif op == op_read:
                real_mapped = scheme.read_request(lpn, npages)
            elif op == op_trim:
                scheme.trim_request(lpn, npages, now)
            else:
                raise ValueError(f"unknown opcode {op}")
        except AssertionError as exc:
            return diverged(i, "invariant", str(exc))
        except Exception as exc:  # the real stack crashed
            return diverged(i, "exception", f"{type(exc).__name__}: {exc}")
        if op == op_write:
            oracle.write(lpn, fps)
        elif op == op_read:
            oracle_mapped = oracle.read(lpn, npages)
            if real_mapped != oracle_mapped:
                return diverged(
                    i,
                    "state",
                    f"read({lpn}, {npages}) mapped {real_mapped} pages, "
                    f"oracle says {oracle_mapped}",
                )
        else:
            oracle.trim(lpn, npages)
        if (i + 1) % check_every == 0:
            msg = compare_snapshots(scheme.state_snapshot(), oracle.snapshot())
            if msg:
                return diverged(i, "state", msg)
    msg = _check_invariants(scheme)
    if msg:
        return diverged(last, "invariant", f"end of trace: {msg}")
    msg = compare_snapshots(scheme.state_snapshot(), oracle.snapshot())
    if msg:
        return diverged(last, "state", msg)
    return None


def _diff_device_replay(
    trace: Trace, scheme_name: str, policy: str, config: SSDConfig
) -> Optional[Divergence]:
    from repro.device.ssd import SSD

    scheme = build_scheme(scheme_name, policy, config)
    ssd = SSD(scheme)
    ssd.gc_hook = check_all
    counters_exact = config.write_buffer_pages == 0
    try:
        ssd.replay(trace)
        check_all(ssd)
    except AssertionError as exc:
        return Divergence(-1, "invariant", str(exc), scheme_name, policy)
    except Exception as exc:
        return Divergence(
            -1, "exception", f"{type(exc).__name__}: {exc}", scheme_name, policy
        )
    oracle = OracleSSD(scheme_name, counters_exact=counters_exact)
    for _, op, lpn, npages, fps in trace.iter_rows():
        oracle.apply(op, lpn, npages, fps)
    msg = compare_snapshots(ssd.state_snapshot(), oracle.snapshot())
    if msg:
        return Divergence(-1, "state", msg, scheme_name, policy)
    return None


def diff_kernels(
    trace: Trace,
    scheme: str = "baseline",
    policy: str = "greedy",
    config: Optional[SSDConfig] = None,
    telemetry: bool = False,
    metrics: bool = False,
) -> Optional[Divergence]:
    """Replay ``trace`` under ``kernel=reference`` and
    ``kernel=vectorized`` and return the first observable difference.

    Unlike :func:`diff_trace` this diffs the two replay *paths* against
    each other, not against the naive model.  The kernel contract is
    bit identity, so everything a replay produces must match exactly:
    the per-request response-time trajectory, the GC/IO counters, wear,
    simulated time, and the full logical state snapshot.  Structural
    invariants are checked on both devices so a divergence that keeps
    the snapshots equal but corrupts internal bookkeeping still trips.

    With ``telemetry=True`` a ``RunTelemetry`` observer is attached to
    both replays (the vectorized path folds it per batch) and the
    resulting latency histograms are diffed too — counts, total, sum
    and max must match bit-exactly.

    With ``metrics=True`` a ``DeviceMetrics`` bundle is attached to
    both replays and the kernel-independent aggregates are diffed: the
    request counter and the latency histogram's counts/total/sum/max.
    Time-series sample counts and the batch counters are deliberately
    *not* compared — the two kernels clock the sampler differently
    (per completion vs per batch boundary) by design.
    """
    import numpy as np

    from dataclasses import replace as _dc_replace

    from repro.device.ssd import SSD

    if config is None:
        from repro.oracle.fuzz import fuzz_config

        config = fuzz_config()
    results = {}
    snapshots = {}
    observers = {}
    meters = {}
    for kernel in ("reference", "vectorized"):
        cfg = _dc_replace(config, kernel=kernel)
        observer = None
        if telemetry:
            from repro.obs.telemetry import RunTelemetry

            observer = RunTelemetry(snapshot_every_us=500.0)
        observers[kernel] = observer
        meter = None
        if metrics:
            from repro.obs.metrics import DeviceMetrics

            meter = DeviceMetrics()
        meters[kernel] = meter
        ssd = SSD(build_scheme(scheme, policy, cfg), telemetry=observer, metrics=meter)
        try:
            results[kernel] = ssd.replay(trace)
            check_all(ssd)
        except AssertionError as exc:
            return Divergence(-1, "invariant", f"[{kernel}] {exc}", scheme, policy)
        except Exception as exc:
            return Divergence(
                -1,
                "exception",
                f"[{kernel}] {type(exc).__name__}: {exc}",
                scheme,
                policy,
            )
        snapshots[kernel] = ssd.state_snapshot()
    ref, vec = results["reference"], results["vectorized"]
    a, b = ref.response_times_us, vec.response_times_us
    if len(a) != len(b):
        return Divergence(
            -1,
            "state",
            f"recorded {len(a)} vs {len(b)} response times",
            scheme,
            policy,
        )
    if not np.array_equal(a, b):
        first = int(np.argmax(a != b))
        return Divergence(
            first,
            "state",
            f"response time {a[first]!r} (reference) vs {b[first]!r} (vectorized)",
            scheme,
            policy,
        )
    for label, ra, rb in (
        ("simulated_us", ref.simulated_us, vec.simulated_us),
        ("gc counters", ref.gc, vec.gc),
        ("io counters", ref.io, vec.io),
        ("wear", ref.wear, vec.wear),
        ("state snapshot", snapshots["reference"], snapshots["vectorized"]),
    ):
        if ra != rb:
            return Divergence(
                -1, "state", f"{label}: {ra!r} != {rb!r}", scheme, policy
            )
    if telemetry:
        rh = observers["reference"].hist
        vh = observers["vectorized"].hist
        if not np.array_equal(rh.counts, vh.counts):
            return Divergence(
                -1, "telemetry", "histogram bucket counts differ", scheme, policy
            )
        for label, ra, rb in (
            ("hist total", rh.total, vh.total),
            ("hist sum_us", rh.sum_us, vh.sum_us),
            ("hist max_us", rh.max_us, vh.max_us),
        ):
            if ra != rb:
                return Divergence(
                    -1, "telemetry", f"{label}: {ra!r} != {rb!r}", scheme, policy
                )
    if metrics:
        rm, vm = meters["reference"], meters["vectorized"]
        rh, vh = rm.latency.hist, vm.latency.hist
        if not np.array_equal(rh.counts, vh.counts):
            return Divergence(
                -1, "metrics", "latency histogram bucket counts differ", scheme, policy
            )
        for label, ra, rb in (
            ("requests counter", rm.requests.value, vm.requests.value),
            ("hist total", rh.total, vh.total),
            ("hist sum_us", rh.sum_us, vh.sum_us),
            ("hist max_us", rh.max_us, vh.max_us),
        ):
            if ra != rb:
                return Divergence(
                    -1, "metrics", f"{label}: {ra!r} != {rb!r}", scheme, policy
                )
    return None
