"""Multi-tenant workload multiplexer for the SSD-array serving tier.

Each tenant brings an ordinary single-device :class:`Trace` addressed
to its own private LPN space starting at zero.  The multiplexer places
every tenant into a disjoint window of the array's global LPN space and
merges the per-tenant request streams into one arrival-ordered stream:

* **placement** — tenant ``t`` lives on home device ``t % devices`` at
  slot ``t // devices``; its window is ``slot * span`` pages into that
  device's range, where ``span = pages_per_device // slots_per_device``.
  A tenant's window never straddles a device boundary, which is what
  keeps array routing a pure per-LPN function (no extent splitting).
* **merge** — requests are stable-sorted by ``(time_us, tenant, seq)``
  where ``seq`` is the request's index within its tenant's trace.  The
  ordering is a pure function of the inputs: re-multiplexing the same
  traces always yields the identical merged stream, regardless of dict
  ordering or iteration incidentals.

The result is a :class:`MultiplexedTrace` — a drop-in :class:`Trace`
(global LPNs, merged clock) that additionally carries the per-request
``tenant_ids`` column and the :class:`TenantPlacement` table, which the
array's telemetry uses for per-tenant SLO attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TenantPlacement:
    """Where one tenant's LPN window lives in the array's global space."""

    tenant: int
    device: int
    #: first global LPN of the tenant's window.
    base_lpn: int
    #: window size in pages; every request of the tenant must fit in
    #: ``[0, span)`` of its private space.
    span: int


def tenant_layout(
    tenants: int, devices: int, pages_per_device: int
) -> Tuple[TenantPlacement, ...]:
    """Deterministic disjoint placement of ``tenants`` onto ``devices``.

    Tenants round-robin across devices; when there are more tenants
    than devices, each device's LPN range is split into equal slots.
    """
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    if devices < 1:
        raise ValueError(f"devices must be >= 1, got {devices}")
    slots = (tenants + devices - 1) // devices
    span = pages_per_device // slots
    if span < 1:
        raise ValueError(
            f"pages_per_device={pages_per_device} cannot host {slots} "
            f"tenant slots per device"
        )
    placements = []
    for t in range(tenants):
        device = t % devices
        slot = t // devices
        placements.append(
            TenantPlacement(
                tenant=t,
                device=device,
                base_lpn=device * pages_per_device + slot * span,
                span=span,
            )
        )
    return tuple(placements)


class MultiplexedTrace(Trace):
    """A merged multi-tenant trace: a :class:`Trace` plus tenant tags."""

    def __init__(
        self,
        *args,
        tenant_ids: np.ndarray,
        placements: Tuple[TenantPlacement, ...],
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if len(tenant_ids) != len(self.times_us):
            raise ValueError("tenant_ids length mismatch")
        self.tenant_ids = np.asarray(tenant_ids, dtype=np.int32)
        self.placements = placements

    @property
    def tenants(self) -> int:
        return len(self.placements)


def _gather_fps(
    fps_flat: np.ndarray, fp_offsets: np.ndarray, order: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Reorder a variable-length fingerprint column by request ``order``."""
    counts = (fp_offsets[1:] - fp_offsets[:-1])[order]
    new_offsets = np.zeros(len(order) + 1, dtype=np.int64)
    np.cumsum(counts, out=new_offsets[1:])
    total = int(new_offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), new_offsets
    # Gather index: for each output slot, the position in the source
    # flat array = source run start + offset within the run.
    starts = np.repeat(fp_offsets[:-1][order], counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(new_offsets[:-1], counts)
    return fps_flat[starts + within], new_offsets


def multiplex_traces(
    traces: Sequence[Trace],
    devices: int,
    pages_per_device: int,
    name: str = "multi",
) -> MultiplexedTrace:
    """Merge per-tenant traces into one arrival-ordered array stream.

    Tenant ``t``'s LPNs are rebased into its :func:`tenant_layout`
    window (the caller's traces address ``[0, span)`` each); the merged
    stream is stable-sorted by ``(time_us, tenant, seq)``.  Raises if a
    tenant's trace does not fit its window.
    """
    if not traces:
        raise ValueError("need at least one tenant trace")
    placements = tenant_layout(len(traces), devices, pages_per_device)
    for trace, placement in zip(traces, placements):
        top = trace.max_lpn()
        if len(trace) and top >= placement.span:
            raise ValueError(
                f"tenant {placement.tenant} trace {trace.name!r} addresses "
                f"LPN {top} outside its window span {placement.span}"
            )
    times = np.concatenate([t.times_us for t in traces])
    ops = np.concatenate([t.ops for t in traces])
    lpns = np.concatenate(
        [t.lpns + p.base_lpn for t, p in zip(traces, placements)]
    )
    npages = np.concatenate([t.npages for t in traces])
    tenants = np.concatenate(
        [np.full(len(t), p.tenant, dtype=np.int32) for t, p in zip(traces, placements)]
    )
    seqs = np.concatenate(
        [np.arange(len(t), dtype=np.int64) for t in traces]
    )
    # Concatenation keeps each request's fingerprint run consecutive,
    # so the concat-order offset table is just the count cumsum.
    fp_counts = np.concatenate([t.fp_offsets[1:] - t.fp_offsets[:-1] for t in traces])
    fps_concat = (
        np.concatenate([t.fps_flat for t in traces])
        if any(len(t.fps_flat) for t in traces)
        else np.empty(0, dtype=np.int64)
    )
    offsets_concat = np.zeros(len(times) + 1, dtype=np.int64)
    np.cumsum(fp_counts, out=offsets_concat[1:])
    # Stable merge order: (time_us, tenant, seq).  lexsort keys are
    # listed least-significant first.
    order = np.lexsort((seqs, tenants, times))
    fps_flat, fp_offsets = _gather_fps(fps_concat, offsets_concat, order)
    return MultiplexedTrace(
        times[order],
        ops[order],
        lpns[order],
        npages[order],
        fps_flat,
        fp_offsets,
        name,
        tenant_ids=tenants[order],
        placements=placements,
    )


def demultiplex_lpns(
    lpns: np.ndarray, placements: Sequence[TenantPlacement]
) -> np.ndarray:
    """Tenant id per request, recovered purely from global LPNs.

    The inverse of the placement map — used by the shrinker, which
    carries plain request rows and re-derives tenant tags afterwards.
    """
    out = np.full(len(lpns), -1, dtype=np.int32)
    for p in placements:
        mask = (lpns >= p.base_lpn) & (lpns < p.base_lpn + p.span)
        out[mask] = p.tenant
    return out


__all__ = [
    "TenantPlacement",
    "MultiplexedTrace",
    "tenant_layout",
    "multiplex_traces",
    "demultiplex_lpns",
]
