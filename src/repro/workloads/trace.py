"""Trace container with array-backed storage and CSV serialization.

A :class:`Trace` stores half a million requests in a handful of NumPy
arrays (times, opcodes, extents) plus one flat fingerprint array with a
per-request offset table — no per-request Python objects on the replay
hot path.  ``iter_requests`` materializes :class:`IORequest` views for
API consumers that prefer objects.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.workloads.request import IORequest, OpKind


@dataclass(frozen=True)
class TraceStats:
    """Aggregate characteristics, comparable against the paper's Table II."""

    requests: int
    write_ratio: float
    dedup_ratio: float
    avg_req_kb: float
    read_requests: int
    write_requests: int
    trim_requests: int
    written_pages: int
    unique_written_pages: int
    span_us: float


class Trace:
    """An ordered sequence of page-granular I/O requests."""

    def __init__(
        self,
        times_us: np.ndarray,
        ops: np.ndarray,
        lpns: np.ndarray,
        npages: np.ndarray,
        fps_flat: np.ndarray,
        fp_offsets: np.ndarray,
        name: str = "trace",
    ) -> None:
        n = len(times_us)
        if not (len(ops) == len(lpns) == len(npages) == n):
            raise ValueError("array length mismatch")
        if len(fp_offsets) != n + 1:
            raise ValueError("fp_offsets must have n+1 entries")
        self.times_us = np.asarray(times_us, dtype=np.float64)
        self.ops = np.asarray(ops, dtype=np.uint8)
        self.lpns = np.asarray(lpns, dtype=np.int64)
        self.npages = np.asarray(npages, dtype=np.int32)
        self.fps_flat = np.asarray(fps_flat, dtype=np.int64)
        self.fp_offsets = np.asarray(fp_offsets, dtype=np.int64)
        self.name = name

    def __len__(self) -> int:
        return len(self.times_us)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_requests(cls, requests: Sequence[IORequest], name: str = "trace") -> "Trace":
        n = len(requests)
        times = np.empty(n, dtype=np.float64)
        ops = np.empty(n, dtype=np.uint8)
        lpns = np.empty(n, dtype=np.int64)
        npages = np.empty(n, dtype=np.int32)
        fps: List[int] = []
        offsets = np.zeros(n + 1, dtype=np.int64)
        for i, req in enumerate(requests):
            times[i] = req.time_us
            ops[i] = int(req.op)
            lpns[i] = req.lpn
            npages[i] = req.npages
            if req.fingerprints is not None:
                fps.extend(req.fingerprints)
            offsets[i + 1] = len(fps)
        return cls(times, ops, lpns, npages, np.asarray(fps, dtype=np.int64), offsets, name)

    # -- iteration -------------------------------------------------------------------

    def iter_rows(
        self,
    ) -> Iterator[Tuple[float, int, int, int, Optional[np.ndarray]]]:
        """Yield ``(time_us, op, lpn, npages, fps-or-None)`` tuples.

        This is the replay hot path: no object construction, fingerprint
        slices are views into the flat array.
        """
        times = self.times_us
        ops = self.ops
        lpns = self.lpns
        npages = self.npages
        fps = self.fps_flat
        offsets = self.fp_offsets
        write = int(OpKind.WRITE)
        for i in range(len(times)):
            op = int(ops[i])
            page_fps = fps[offsets[i] : offsets[i + 1]] if op == write else None
            yield (float(times[i]), op, int(lpns[i]), int(npages[i]), page_fps)

    def iter_requests(self) -> Iterator[IORequest]:
        """Yield :class:`IORequest` objects (convenience API)."""
        for time_us, op, lpn, npages, page_fps in self.iter_rows():
            yield IORequest(
                time_us=time_us,
                op=OpKind(op),
                lpn=lpn,
                npages=npages,
                fingerprints=tuple(int(f) for f in page_fps) if page_fps is not None else None,
            )

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    # -- statistics --------------------------------------------------------------------

    def stats(self) -> TraceStats:
        """Measure Table II-style characteristics of this trace."""
        n = len(self)
        is_write = self.ops == int(OpKind.WRITE)
        is_read = self.ops == int(OpKind.READ)
        is_trim = self.ops == int(OpKind.TRIM)
        writes = int(is_write.sum())
        written_pages = int(self.npages[is_write].sum()) if writes else 0
        # Dedup ratio: fraction of written pages whose content was already
        # written earlier in the trace (the FIU-trace convention).
        unique = int(np.unique(self.fps_flat).size)
        duplicates = len(self.fps_flat) - unique
        dedup_ratio = duplicates / len(self.fps_flat) if len(self.fps_flat) else 0.0
        avg_req_kb = float(self.npages.mean()) * 4.0 if n else 0.0
        span = float(self.times_us[-1] - self.times_us[0]) if n > 1 else 0.0
        return TraceStats(
            requests=n,
            write_ratio=writes / n if n else 0.0,
            dedup_ratio=dedup_ratio,
            avg_req_kb=avg_req_kb,
            read_requests=int(is_read.sum()),
            write_requests=writes,
            trim_requests=int(is_trim.sum()),
            written_pages=written_pages,
            unique_written_pages=unique,
            span_us=span,
        )

    def written_page_count(self) -> int:
        return int(self.npages[self.ops == int(OpKind.WRITE)].sum())

    def max_lpn(self) -> int:
        if len(self) == 0:
            return 0
        return int((self.lpns + self.npages).max()) - 1

    # -- serialization --------------------------------------------------------------------

    CSV_HEADER = ["time_us", "op", "lpn", "npages", "fingerprints"]

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV (fingerprints hex, slash-separated)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.CSV_HEADER)
            for time_us, op, lpn, npages, page_fps in self.iter_rows():
                fp_field = (
                    "/".join(format(int(f), "x") for f in page_fps)
                    if page_fps is not None
                    else ""
                )
                writer.writerow([repr(time_us), op, lpn, npages, fp_field])

    @classmethod
    def load_csv(cls, path: Union[str, Path], name: Optional[str] = None) -> "Trace":
        """Load a trace written by :meth:`save_csv`."""
        times: List[float] = []
        ops: List[int] = []
        lpns: List[int] = []
        npages: List[int] = []
        fps: List[int] = []
        offsets: List[int] = [0]
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != cls.CSV_HEADER:
                raise ValueError(f"unrecognized trace CSV header: {header}")
            for row in reader:
                times.append(float(row[0]))
                op = int(row[1])
                ops.append(op)
                lpns.append(int(row[2]))
                npages.append(int(row[3]))
                if op == int(OpKind.WRITE):
                    fps.extend(int(tok, 16) for tok in row[4].split("/"))
                offsets.append(len(fps))
        return cls(
            np.asarray(times),
            np.asarray(ops, dtype=np.uint8),
            np.asarray(lpns, dtype=np.int64),
            np.asarray(npages, dtype=np.int32),
            np.asarray(fps, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
            name or Path(path).stem,
        )
