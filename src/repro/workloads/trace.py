"""Trace container with array-backed storage and CSV/npz serialization.

A :class:`Trace` stores half a million requests in a handful of NumPy
arrays (times, opcodes, extents) plus one flat fingerprint array with a
per-request offset table — no per-request Python objects on the replay
hot path.  ``iter_requests`` materializes :class:`IORequest` views for
API consumers that prefer objects.

For production-scale traces the columns also serialize to an
uncompressed ``.npz`` (:meth:`Trace.save_npz`) that loads back as
memory-mapped views (:meth:`Trace.load_npz`): the OS pages column data
in and out on demand, so replaying a multi-million-request trace never
materializes it in RAM.  :meth:`Trace.slice` and :meth:`Trace.iter_chunks`
carve zero-copy windows out of the columns for chunked consumers (see
:mod:`repro.workloads.stream` for the streaming dispatch layer).
"""

from __future__ import annotations

import csv
import struct
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.workloads.request import IORequest, OpKind


def _mmap_npz_member(path: Union[str, Path], info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one stored (uncompressed) ``.npy`` member of an npz.

    ``zipfile`` has no public "offset of member data" API, so this reads
    the member's local file header to find where the raw ``.npy`` bytes
    start, parses the npy header there, and maps the array data that
    follows it.  Only valid for ``ZIP_STORED`` members (the raw bytes
    *are* the npy file).
    """
    with open(path, "rb") as fh:
        fh.seek(info.header_offset)
        local = fh.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            raise ValueError(f"{path}: bad local header for {info.filename}")
        name_len, extra_len = struct.unpack("<HH", local[26:30])
        fh.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            raise ValueError(f"{path}: unsupported npy version {version}")
        if fortran:
            raise ValueError(f"{path}: fortran-order member {info.filename}")
        data_offset = fh.tell()
    return np.memmap(path, dtype=dtype, mode="r", offset=data_offset, shape=shape)


@dataclass(frozen=True)
class TraceStats:
    """Aggregate characteristics, comparable against the paper's Table II."""

    requests: int
    write_ratio: float
    dedup_ratio: float
    avg_req_kb: float
    read_requests: int
    write_requests: int
    trim_requests: int
    written_pages: int
    unique_written_pages: int
    span_us: float


class Trace:
    """An ordered sequence of page-granular I/O requests."""

    def __init__(
        self,
        times_us: np.ndarray,
        ops: np.ndarray,
        lpns: np.ndarray,
        npages: np.ndarray,
        fps_flat: np.ndarray,
        fp_offsets: np.ndarray,
        name: str = "trace",
    ) -> None:
        n = len(times_us)
        if not (len(ops) == len(lpns) == len(npages) == n):
            raise ValueError("array length mismatch")
        if len(fp_offsets) != n + 1:
            raise ValueError("fp_offsets must have n+1 entries")
        self.times_us = np.asarray(times_us, dtype=np.float64)
        self.ops = np.asarray(ops, dtype=np.uint8)
        self.lpns = np.asarray(lpns, dtype=np.int64)
        self.npages = np.asarray(npages, dtype=np.int32)
        self.fps_flat = np.asarray(fps_flat, dtype=np.int64)
        self.fp_offsets = np.asarray(fp_offsets, dtype=np.int64)
        self.name = name

    def __len__(self) -> int:
        return len(self.times_us)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_requests(cls, requests: Sequence[IORequest], name: str = "trace") -> "Trace":
        n = len(requests)
        times = np.empty(n, dtype=np.float64)
        ops = np.empty(n, dtype=np.uint8)
        lpns = np.empty(n, dtype=np.int64)
        npages = np.empty(n, dtype=np.int32)
        fps: List[int] = []
        offsets = np.zeros(n + 1, dtype=np.int64)
        for i, req in enumerate(requests):
            times[i] = req.time_us
            ops[i] = int(req.op)
            lpns[i] = req.lpn
            npages[i] = req.npages
            if req.fingerprints is not None:
                fps.extend(req.fingerprints)
            offsets[i + 1] = len(fps)
        return cls(times, ops, lpns, npages, np.asarray(fps, dtype=np.int64), offsets, name)

    # -- iteration -------------------------------------------------------------------

    def iter_rows(
        self,
    ) -> Iterator[Tuple[float, int, int, int, Optional[np.ndarray]]]:
        """Yield ``(time_us, op, lpn, npages, fps-or-None)`` tuples.

        This is the replay hot path: no object construction, fingerprint
        slices are views into the flat array.
        """
        times = self.times_us
        ops = self.ops
        lpns = self.lpns
        npages = self.npages
        fps = self.fps_flat
        offsets = self.fp_offsets
        write = int(OpKind.WRITE)
        for i in range(len(times)):
            op = int(ops[i])
            page_fps = fps[offsets[i] : offsets[i + 1]] if op == write else None
            yield (float(times[i]), op, int(lpns[i]), int(npages[i]), page_fps)

    def iter_requests(self, chunk_size: Optional[int] = None) -> Iterator[IORequest]:
        """Yield :class:`IORequest` objects (convenience API).

        ``chunk_size`` bounds how much of the backing columns is touched
        at a time: with memory-mapped columns the OS can reclaim each
        chunk's pages once iteration moves past it.  Materialized traces
        yield identical requests either way.
        """
        if chunk_size is not None:
            for chunk in self.iter_chunks(chunk_size):
                yield from chunk.iter_requests()
            return
        for time_us, op, lpn, npages, page_fps in self.iter_rows():
            yield IORequest(
                time_us=time_us,
                op=OpKind(op),
                lpn=lpn,
                npages=npages,
                fingerprints=tuple(int(f) for f in page_fps) if page_fps is not None else None,
            )

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    # -- chunked views -----------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "Trace":
        """Zero-copy window ``[start, stop)`` over the trace columns.

        Fingerprint offsets are rebased to the window's flat-array
        slice; every column is a NumPy view, so slicing a memory-mapped
        trace touches no data pages until the slice is iterated.
        """
        n = len(self)
        start = max(0, min(start, n))
        stop = max(start, min(stop, n))
        fp_lo = int(self.fp_offsets[start])
        fp_hi = int(self.fp_offsets[stop])
        return Trace(
            self.times_us[start:stop],
            self.ops[start:stop],
            self.lpns[start:stop],
            self.npages[start:stop],
            self.fps_flat[fp_lo:fp_hi],
            self.fp_offsets[start : stop + 1] - fp_lo,
            self.name,
        )

    def iter_chunks(self, chunk_size: int = 65536) -> Iterator["Trace"]:
        """Yield the trace as consecutive :meth:`slice` windows."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        for start in range(0, len(self), chunk_size):
            yield self.slice(start, start + chunk_size)

    # -- statistics --------------------------------------------------------------------

    def stats(self) -> TraceStats:
        """Measure Table II-style characteristics of this trace."""
        n = len(self)
        is_write = self.ops == int(OpKind.WRITE)
        is_read = self.ops == int(OpKind.READ)
        is_trim = self.ops == int(OpKind.TRIM)
        writes = int(is_write.sum())
        written_pages = int(self.npages[is_write].sum()) if writes else 0
        # Dedup ratio: fraction of written pages whose content was already
        # written earlier in the trace (the FIU-trace convention).
        unique = int(np.unique(self.fps_flat).size)
        duplicates = len(self.fps_flat) - unique
        dedup_ratio = duplicates / len(self.fps_flat) if len(self.fps_flat) else 0.0
        avg_req_kb = float(self.npages.mean()) * 4.0 if n else 0.0
        span = float(self.times_us[-1] - self.times_us[0]) if n > 1 else 0.0
        return TraceStats(
            requests=n,
            write_ratio=writes / n if n else 0.0,
            dedup_ratio=dedup_ratio,
            avg_req_kb=avg_req_kb,
            read_requests=int(is_read.sum()),
            write_requests=writes,
            trim_requests=int(is_trim.sum()),
            written_pages=written_pages,
            unique_written_pages=unique,
            span_us=span,
        )

    def written_page_count(self) -> int:
        return int(self.npages[self.ops == int(OpKind.WRITE)].sum())

    def max_lpn(self) -> int:
        if len(self) == 0:
            return 0
        return int((self.lpns + self.npages).max()) - 1

    # -- serialization --------------------------------------------------------------------

    CSV_HEADER = ["time_us", "op", "lpn", "npages", "fingerprints"]

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as CSV (fingerprints hex, slash-separated)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.CSV_HEADER)
            for time_us, op, lpn, npages, page_fps in self.iter_rows():
                fp_field = (
                    "/".join(format(int(f), "x") for f in page_fps)
                    if page_fps is not None
                    else ""
                )
                writer.writerow([repr(time_us), op, lpn, npages, fp_field])

    @classmethod
    def load_csv(cls, path: Union[str, Path], name: Optional[str] = None) -> "Trace":
        """Load a trace written by :meth:`save_csv`."""
        times: List[float] = []
        ops: List[int] = []
        lpns: List[int] = []
        npages: List[int] = []
        fps: List[int] = []
        offsets: List[int] = [0]
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != cls.CSV_HEADER:
                raise ValueError(f"unrecognized trace CSV header: {header}")
            for row in reader:
                times.append(float(row[0]))
                op = int(row[1])
                ops.append(op)
                lpns.append(int(row[2]))
                npages.append(int(row[3]))
                if op == int(OpKind.WRITE):
                    fps.extend(int(tok, 16) for tok in row[4].split("/"))
                offsets.append(len(fps))
        return cls(
            np.asarray(times),
            np.asarray(ops, dtype=np.uint8),
            np.asarray(lpns, dtype=np.int64),
            np.asarray(npages, dtype=np.int32),
            np.asarray(fps, dtype=np.int64),
            np.asarray(offsets, dtype=np.int64),
            name or Path(path).stem,
        )

    _NPZ_FIELDS = ("times_us", "ops", "lpns", "npages", "fps_flat", "fp_offsets")

    def save_npz(self, path: Union[str, Path]) -> None:
        """Write the trace columns as an *uncompressed* ``.npz``.

        Uncompressed on purpose: stored (not deflated) zip members can
        be memory-mapped straight out of the archive, which is what
        makes :meth:`load_npz` constant-memory.
        """
        np.savez(path, **{f: getattr(self, f) for f in self._NPZ_FIELDS})

    @classmethod
    def load_npz(
        cls, path: Union[str, Path], name: Optional[str] = None, mmap: bool = True
    ) -> "Trace":
        """Load a trace written by :meth:`save_npz`.

        With ``mmap=True`` (the default) every column is an
        ``np.memmap`` view into the file — the process's resident set
        stays constant no matter how many requests the trace holds,
        because the OS pages column data in on access and drops it
        under pressure.  Falls back to an ordinary in-memory read for
        compressed archives.
        """
        columns = {}
        with zipfile.ZipFile(path) as zf:
            for field in cls._NPZ_FIELDS:
                member = field + ".npy"
                try:
                    info = zf.getinfo(member)
                except KeyError:
                    raise ValueError(f"{path}: not a trace npz (missing {member})")
                if mmap and info.compress_type == zipfile.ZIP_STORED:
                    columns[field] = _mmap_npz_member(path, info)
                else:
                    with zf.open(member) as fh:
                        columns[field] = np.lib.format.read_array(fh)
        return cls(name=name or Path(path).stem.replace(".npz", ""), **columns)
