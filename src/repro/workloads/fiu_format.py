"""Parser for FIU IODedup-style content traces.

The paper replays the FIU SyLab traces (Koller & Rangaswami, "I/O
Deduplication", TOS 2010; SNIA IOTTA trace 391).  Those traces are not
redistributable, but users with access can replay them directly: this
module parses the published record format into a :class:`Trace`.

Record format (whitespace-separated, one 4 KB block per record)::

    <timestamp_ns> <pid> <process> <block> <size_blocks> <op> <major> <minor> <md5>

* ``timestamp_ns`` — nanoseconds; converted to the simulator's
  microsecond clock, rebased to zero at the first record.
* ``block`` — logical block number in 4 KB units (used as the LPN).
* ``size_blocks`` — spanned 4 KB blocks; the FIU tooling emits one
  record per block, so this is almost always 1.
* ``op`` — ``W`` or ``R`` (case-insensitive).
* ``md5`` — hex digest of the block's content; truncated to 63 bits for
  the simulator's integer fingerprints (collisions at simulator scale
  are negligible).  Read records' hashes are ignored.

Consecutive same-op records that are contiguous in LBA and share a
timestamp are coalesced into multi-page requests (``coalesce=True``),
recovering the original request sizes Table II reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Union

import numpy as np

from repro.workloads.request import OpKind
from repro.workloads.trace import Trace


class FIUFormatError(ValueError):
    """Raised on malformed FIU trace records."""


@dataclass(frozen=True)
class FIURecord:
    """One parsed FIU trace record."""

    time_us: float
    pid: int
    process: str
    block: int
    size_blocks: int
    op: OpKind
    fingerprint: int


def parse_fiu_line(line: str, lineno: int = 0) -> Optional[FIURecord]:
    """Parse one record; ``None`` for blank/comment lines."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    fields = line.split()
    if len(fields) != 9:
        raise FIUFormatError(
            f"line {lineno}: expected 9 fields, got {len(fields)}: {line[:80]!r}"
        )
    ts, pid, process, block, size, op, _major, _minor, digest = fields
    op_upper = op.upper()
    if op_upper not in ("W", "R"):
        raise FIUFormatError(f"line {lineno}: unknown op {op!r}")
    try:
        fingerprint = int(digest, 16) & ((1 << 63) - 1)
    except ValueError:
        raise FIUFormatError(f"line {lineno}: bad md5 field {digest!r}") from None
    try:
        return FIURecord(
            time_us=int(ts) / 1000.0,
            pid=int(pid),
            process=process,
            block=int(block),
            size_blocks=int(size),
            op=OpKind.WRITE if op_upper == "W" else OpKind.READ,
            fingerprint=fingerprint,
        )
    except ValueError as exc:
        raise FIUFormatError(f"line {lineno}: {exc}") from None


def iter_fiu_records(lines: Iterable[str]) -> Iterator[FIURecord]:
    for lineno, line in enumerate(lines, start=1):
        record = parse_fiu_line(line, lineno)
        if record is not None:
            yield record


class _RequestBuilder:
    """Accumulates coalesced FIU request rows into Trace columns.

    Shared by the one-shot loader and the streaming chunk reader so both
    produce byte-identical requests: the coalescing rule and the
    timestamp rebase arithmetic live here exactly once.
    """

    def __init__(self, coalesce: bool) -> None:
        self.coalesce = coalesce
        self.base_us: Optional[float] = None
        self.group: List[FIURecord] = []
        self.times: List[float] = []
        self.ops: List[int] = []
        self.lpns: List[int] = []
        self.npages: List[int] = []
        self.fps: List[int] = []
        self.offsets: List[int] = [0]

    def __len__(self) -> int:
        """Requests flushed so far (the open group is not counted)."""
        return len(self.times)

    def push(self, record: FIURecord) -> None:
        if self.base_us is None:
            self.base_us = record.time_us
        group = self.group
        if not group:
            group.append(record)
            return
        head = group[-1]
        contiguous = (
            self.coalesce
            and record.op == group[0].op
            and record.time_us == group[0].time_us
            and record.pid == group[0].pid
            and record.block == head.block + head.size_blocks
        )
        if contiguous:
            group.append(record)
        else:
            self._flush()
            self.group = [record]

    def _flush(self) -> None:
        group = self.group
        head = group[0]
        self.times.append(head.time_us - self.base_us)
        self.ops.append(int(head.op))
        self.lpns.append(head.block)
        self.npages.append(len(group))
        if head.op == OpKind.WRITE:
            self.fps.extend(r.fingerprint for r in group)
        self.offsets.append(len(self.fps))

    def finish(self) -> None:
        """Flush the trailing open group at end of input."""
        if self.group:
            self._flush()
            self.group = []

    def take_trace(self, name: str) -> Trace:
        """Emit the flushed rows as a Trace and reset the columns (the
        open coalescing group and timestamp base carry over)."""
        trace = Trace(
            np.asarray(self.times, dtype=np.float64),
            np.asarray(self.ops, dtype=np.uint8),
            np.asarray(self.lpns, dtype=np.int64),
            np.asarray(self.npages, dtype=np.int32),
            np.asarray(self.fps, dtype=np.int64),
            np.asarray(self.offsets, dtype=np.int64),
            name,
        )
        self.times = []
        self.ops = []
        self.lpns = []
        self.npages = []
        self.fps = []
        self.offsets = [0]
        return trace


def load_fiu_trace(
    source: Union[str, Path, TextIO],
    name: Optional[str] = None,
    coalesce: bool = True,
) -> Trace:
    """Load an FIU IODedup trace file into a :class:`Trace`.

    ``source`` may be a path or an open text stream.  Timestamps are
    rebased so the trace starts at t=0.
    """
    if isinstance(source, (str, Path)):
        trace_name = name or Path(source).stem
        with open(source) as fh:
            return _load_all(fh, trace_name, coalesce)
    return _load_all(source, name or "fiu", coalesce)


def _load_all(lines: Iterable[str], trace_name: str, coalesce: bool) -> Trace:
    builder = _RequestBuilder(coalesce)
    for record in iter_fiu_records(lines):
        builder.push(record)
    builder.finish()
    return builder.take_trace(trace_name)


def iter_fiu_chunks(
    source: Union[str, Path, TextIO],
    chunk_size: int = 65536,
    name: Optional[str] = None,
    coalesce: bool = True,
) -> Iterator[Trace]:
    """Stream an FIU trace file as :class:`Trace` chunks of
    ``chunk_size`` requests, at memory proportional to one chunk.

    Concatenating the chunks reproduces :func:`load_fiu_trace` exactly:
    the coalescing group that is still open when a chunk fills carries
    over into the next chunk (a multi-record request is never split),
    and timestamps stay rebased to the whole trace's first record.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(source, (str, Path)):
        trace_name = name or Path(source).stem
        with open(source) as fh:
            yield from _iter_chunks(fh, trace_name, chunk_size, coalesce)
        return
    yield from _iter_chunks(source, name or "fiu", chunk_size, coalesce)


def _iter_chunks(
    lines: Iterable[str], trace_name: str, chunk_size: int, coalesce: bool
) -> Iterator[Trace]:
    builder = _RequestBuilder(coalesce)
    empty = True
    for record in iter_fiu_records(lines):
        builder.push(record)
        if len(builder) >= chunk_size:
            empty = False
            yield builder.take_trace(trace_name)
    builder.finish()
    if len(builder) or empty:
        yield builder.take_trace(trace_name)


def dump_fiu_trace(trace: Trace, path: Union[str, Path], process: str = "repro") -> None:
    """Write a :class:`Trace` in the FIU record format (round-trip aid).

    Multi-page requests expand to one record per block, as the FIU
    tooling does.  Reads get a zero digest (their hashes are unused).
    """
    with open(path, "w") as fh:
        for time_us, op, lpn, npages, page_fps in trace.iter_rows():
            ts_ns = int(round(time_us * 1000.0))
            kind = "W" if op == int(OpKind.WRITE) else "R"
            if op == int(OpKind.TRIM):
                continue  # the FIU format has no TRIM records
            for i in range(npages):
                digest = (
                    format(int(page_fps[i]), "032x")
                    if page_fps is not None
                    else "0" * 32
                )
                fh.write(
                    f"{ts_ns} 1 {process} {lpn + i} 1 {kind} 8 0 {digest}\n"
                )
